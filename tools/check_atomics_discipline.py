#!/usr/bin/env python3
"""Static lint enforcing BitFlow's atomics discipline.

std::atomic's operator forms (`x++`, `x = v`, implicit loads) and
default-argument member functions all mean memory_order_seq_cst — the
strongest, slowest ordering, silently, with no record of whether the author
*meant* sequential consistency or just forgot to choose.  Every lock-free
structure in this tree (telemetry counters, trace rings, the failpoint gate,
thread-pool tallies) was designed around a specific, documented ordering;
this lint keeps that explicit.

Four rules:

  1. Explicit ordering on every atomic member-function access: each
     .load()/.store()/.exchange()/.fetch_*()/.compare_exchange_*() call must
     name a memory_order argument.  fetch_* and compare_exchange_* are
     atomic-only names and are checked everywhere; load/store/exchange are
     checked when the receiver is a known atomic variable (declared anywhere
     in the scanned tree), so `stream.load()`-style homonyms cannot trip it.

  2. No operator forms on declared atomics: ++/--, compound assignment
     (+= etc.) and plain `= value` assignment are all hidden seq_cst
     round-trips; spell them fetch_add/fetch_sub/store with an ordering.

  3. seq_cst is quarantined in library code: under src/, any
     memory_order_seq_cst must carry a `// NOLINT-atomic(<why>)` marker on
     the same line (or be listed in SEQ_CST_ALLOWLIST).  Sequential
     consistency is legitimate — but in a tree whose hot paths are counted
     in relaxed loads, it must be a recorded decision, not a default.
     Tests and benches may use it freely (explicitly).

  4. Ordering contract comment on every atomic declaration under src/: the
     declaration (or the comment block within {} lines above it) must say
     which orderings its accesses use and why — grep for "Ordering
     contract:" in src/telemetry/metrics.hpp for the house style.

Exit status: 0 when the tree is clean, 1 with one "file:line: message" per
violation otherwise.  `--self-test` runs the lint against the fixture trees
in tools/lint_fixtures/atomics/ and verifies it accepts the good tree and
rejects each seeded violation in the bad tree.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}

# Rule 3: files under these directories are library code — seq_cst needs a
# justification marker there.
LIBRARY_DIRS = ("src",)

# (file, justification) pairs exempt from rule 3 without an inline marker.
# Deliberately empty: prefer the inline `// NOLINT-atomic(...)` marker, which
# keeps the justification next to the code it excuses.
SEQ_CST_ALLOWLIST: dict[str, str] = {}

# How many lines above an atomic declaration may hold its contract comment.
CONTRACT_WINDOW = 8
CONTRACT_KEYWORDS = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|ordering|order", re.IGNORECASE)

# Atomic-only member-function names: safe to police by name alone.
ATOMIC_ONLY_METHODS = (
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong", "test_and_set",
)
# Names shared with non-atomic types: policed only on known atomic receivers.
GENERIC_METHODS = ("load", "store", "exchange")

METHOD_CALL = re.compile(
    r"([A-Za-z_]\w*(?:\s*\[[^\][]*\])?)\s*(?:\.|->)\s*("
    + "|".join(ATOMIC_ONLY_METHODS + GENERIC_METHODS) + r")\s*\(")

# A declaration whose type spells std::atomic< at the start of the
# declarator (possibly behind cv/storage qualifiers or a unique_ptr/array
# wrapper).  Matches declarations, not make_unique<...> expressions.
ATOMIC_DECL = re.compile(
    r"^\s*(?:inline\s+|static\s+|mutable\s+|extern\s+|constexpr\s+|const\s+|thread_local\s+)*"
    r"(?:std::unique_ptr<\s*)?(?:std::)?atomic(?:_flag)?\s*<")

# Name collection is looser than ATOMIC_DECL: it also looks inside
# containers (std::vector<std::atomic<int>> hits) so rule 2 covers them.
ATOMIC_NAME = re.compile(r"\batomic(?:_flag)?\s*<[^;]*?>\s*(?:\[\s*\]\s*>\s*)?"
                         r"([A-Za-z_]\w*)\s*(?:\{|=|;|\[|$)")

INCREMENT = r"(?:\+\+|--)"
COMPOUND = r"(?:\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=)"

STRING_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LITERAL = re.compile(r"'(?:[^'\\\n]|\\.)*'")
NOLINT_ATOMIC = re.compile(r"//\s*NOLINT-atomic\(.+\)")


def strip_string_literals(text: str) -> str:
    text = STRING_LITERAL.sub(lambda m: '"' + " " * (len(m.group(0)) - 2) + '"', text)
    return CHAR_LITERAL.sub(lambda m: "'" + " " * (len(m.group(0)) - 2) + "'", text)


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, offset-preserving."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def balanced_args(text: str, open_paren: int) -> str:
    """Argument text of the call whose '(' is at `open_paren`."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return text[open_paren + 1:]


def collect_atomic_names(scan: str) -> set[str]:
    names = set()
    for line in scan.splitlines():
        if "atomic" not in line or "using" in line or "typedef" in line:
            continue
        for m in ATOMIC_NAME.finditer(line):
            names.add(m.group(1))
    return names


def is_library_file(rel: str) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in LIBRARY_DIRS)


def check_member_calls(rel: str, scan: str, atomics: set[str],
                       errors: list[str]) -> None:
    for m in METHOD_CALL.finditer(scan):
        receiver, method = m.group(1), m.group(2)
        receiver_name = receiver.split("[")[0].strip()
        if method in GENERIC_METHODS and receiver_name not in atomics:
            continue
        args = balanced_args(scan, m.end() - 1)
        if "memory_order" in args:
            continue
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: {receiver_name}.{method}() without an explicit "
            "memory_order (defaulted seq_cst — name the ordering the contract calls for)")


def check_operator_forms(rel: str, scan: str, atomics: set[str],
                         errors: list[str]) -> None:
    if not atomics:
        return
    alt = "|".join(re.escape(a) for a in sorted(atomics))
    # `name[...]` covers atomic arrays/vectors (hits[i]++).
    target = rf"(?:{alt})(?:\s*\[[^\][]*\])?"
    patterns = [
        (re.compile(rf"(?<![\w.>]){target}\s*{INCREMENT}"),
         "++/-- on an atomic is a hidden seq_cst RMW — use fetch_add/fetch_sub"),
        (re.compile(rf"{INCREMENT}\s*{target}(?![\w])"),
         "++/-- on an atomic is a hidden seq_cst RMW — use fetch_add/fetch_sub"),
        (re.compile(rf"(?<![\w.>]){target}\s*{COMPOUND}"),
         "compound assignment on an atomic is a hidden seq_cst RMW — use fetch_*"),
        (re.compile(rf"(?<![\w.>]){target}\s*=(?![=])"),
         "assignment to an atomic is a hidden seq_cst store — use .store(v, order)"),
    ]
    for line_start, line in _line_spans(scan):
        if "atomic" in line:
            continue  # a declaration line: `std::atomic<bool> stop = false;` is init
        for pat, why in patterns:
            for m in pat.finditer(line):
                # `Type name = init;` of a NON-atomic that shares an atomic's
                # name (WorkerStats mirrors Ticks) is a declaration, not a
                # hidden store: skip when a type-ish token precedes the name.
                before = line[:m.start()].rstrip()
                if "=" in m.group(0) and before and before[-1] in \
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_>&*:":
                    continue
                errors.append(f"{rel}:{line_of(scan, line_start + m.start())}: {why}")


def _line_spans(text: str):
    pos = 0
    for line in text.splitlines(keepends=True):
        yield pos, line.rstrip("\n")
        pos += len(line)


def check_seq_cst(rel: str, scan: str, raw_lines: list[str],
                  errors: list[str]) -> None:
    if not is_library_file(rel) or rel in SEQ_CST_ALLOWLIST:
        return
    for line_start, line in _line_spans(scan):
        if "memory_order_seq_cst" not in line and "memory_order::seq_cst" not in line:
            continue
        lineno = line_of(scan, line_start)
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if NOLINT_ATOMIC.search(raw):
            continue
        errors.append(
            f"{rel}:{lineno}: seq_cst in library code without a justification — add "
            "`// NOLINT-atomic(<why sequential consistency is required>)` or weaken the order")


def check_contract_comments(rel: str, scan: str, raw_lines: list[str],
                            errors: list[str]) -> None:
    if not is_library_file(rel):
        return
    for line_start, line in _line_spans(scan):
        if not ATOMIC_DECL.match(line):
            continue
        lineno = line_of(scan, line_start)
        lo = max(0, lineno - 1 - CONTRACT_WINDOW)
        window = raw_lines[lo:lineno]
        documented = any(
            ("//" in w or "*" in w.lstrip()[:1]) and CONTRACT_KEYWORDS.search(w)
            for w in window)
        if not documented:
            errors.append(
                f"{rel}:{lineno}: atomic declaration without an ordering-contract comment — "
                "say which memory orders its accesses use and why (see "
                "src/telemetry/metrics.hpp for the house style)")


def scan_tree(root: pathlib.Path) -> tuple[list[str], int]:
    files: list[tuple[str, str]] = []
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.suffix in SOURCE_SUFFIXES:
                files.append((path.relative_to(root).as_posix(),
                              path.read_text(errors="replace")))

    # Known atomic variable names.  Rule 1's generic-method check is
    # tree-wide (an extern atomic declared in a header is policed at its use
    # sites in other files); rule 2's operator check is per-file, because
    # short names like `count` legitimately recur as plain locals elsewhere
    # and operator misuse virtually always sits next to the declaration.
    atomics: set[str] = set()
    scans: dict[str, str] = {}
    local_atomics: dict[str, set[str]] = {}
    for rel, text in files:
        scan = strip_comments(strip_string_literals(text))
        scans[rel] = scan
        local_atomics[rel] = collect_atomic_names(scan)
        atomics |= local_atomics[rel]

    errors: list[str] = []
    for rel, text in files:
        scan = scans[rel]
        raw_lines = text.splitlines()
        check_member_calls(rel, scan, atomics, errors)
        check_operator_forms(rel, scan, local_atomics[rel], errors)
        check_seq_cst(rel, scan, raw_lines, errors)
        check_contract_comments(rel, scan, raw_lines, errors)
    return errors, len(files)


def self_test(fixtures: pathlib.Path) -> int:
    ok_errors, ok_n = scan_tree(fixtures / "good")
    failures = []
    if ok_errors:
        failures.append("good fixture tree should be clean, got:\n    "
                        + "\n    ".join(ok_errors))
    if ok_n == 0:
        failures.append("good fixture tree scanned no files")

    bad_errors, bad_n = scan_tree(fixtures / "bad")
    if bad_n == 0:
        failures.append("bad fixture tree scanned no files")
    joined = "\n".join(bad_errors)
    expectations = [
        ("defaulted load", r"g_flag\.load\(\) without an explicit memory_order"),
        ("defaulted fetch_add", r"counter\.fetch_add\(\) without an explicit memory_order"),
        ("operator ++", r"\+\+/-- on an atomic"),
        ("operator ++ on element", r"src/mod/ops\.cpp:22: \+\+/--"),
        ("plain assignment", r"assignment to an atomic is a hidden seq_cst store"),
        ("compound assignment", r"compound assignment on an atomic"),
        ("unjustified seq_cst", r"seq_cst in library code without a justification"),
        ("missing contract comment", r"atomic declaration without an ordering-contract"),
    ]
    for label, pat in expectations:
        if not re.search(pat, joined):
            failures.append(f"bad fixture tree: expected a '{label}' violation "
                            f"matching /{pat}/, lint reported:\n{joined or '  (nothing)'}")
    # The justified seq_cst and the documented atomic in the bad tree must
    # NOT be flagged (they pin the escape hatches).
    for label, pat in [("NOLINT-atomic escape", r"src/mod/justified\.cpp"),
                       ("documented declaration", r"src/mod/documented\.hpp")]:
        if re.search(pat, joined):
            failures.append(f"bad fixture tree: {label} was flagged but must be accepted")

    if failures:
        print(f"atomics discipline self-test: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"atomics discipline self-test: OK "
          f"({ok_n}+{bad_n} fixture files, {len(bad_errors)} seeded violations caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against tools/lint_fixtures/atomics/ instead of the tree")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent
                         / "lint_fixtures" / "atomics")

    errors, n_files = scan_tree(root)
    if errors:
        print(f"atomics discipline: {len(errors)} violation(s) in {n_files} scanned files:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"atomics discipline: OK ({n_files} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
