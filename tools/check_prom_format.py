#!/usr/bin/env python3
"""Prometheus text-exposition lint for BitFlow's metrics registry.

Reads an exposition dump (a file argument, or stdin) — normally produced by
``bitflow_metrics_dump`` — and checks the line format against the subset of
the Prometheus text format the registry emits:

  1. Every line is either a ``# TYPE <name> <counter|gauge|histogram>``
     comment or a ``name{labels} value`` sample; no blank interior lines.
  2. Metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the registry
     sanitizes dotted names, so a leaked ``.`` is a bug).
  3. Every sample is preceded by a TYPE comment for its family, declared
     exactly once.
  4. Histogram families are complete and ordered: one or more ``_bucket``
     samples with non-decreasing ``le`` bounds, cumulative non-decreasing
     counts, a final ``le="+Inf"`` bucket, then ``_sum`` and ``_count``,
     with count equal to the +Inf bucket.
  5. Values parse as numbers; counter and histogram samples are
     non-negative.

Exit status: 0 when the dump is clean, 1 with one "line N: message" per
violation otherwise.
"""

from __future__ import annotations

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([^ ]+) (counter|gauge|histogram)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')


def parse_le(labels: str) -> str | None:
    for part in labels.split(","):
        if part.startswith('le="') and part.endswith('"'):
            return part[4:-1]
    return None


def base_family(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(lines: list[str]) -> list[str]:
    errors: list[str] = []
    declared: dict[str, str] = {}  # family -> kind
    # histogram family -> list of (le, count); cleared when _count seen
    open_hist: dict[str, list[tuple[str, float]]] = {}

    for i, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line:
            if i != len(lines):
                errors.append(f"line {i}: blank interior line")
            continue
        m = TYPE_RE.match(line)
        if m:
            family, kind = m.groups()
            if not NAME_RE.match(family):
                errors.append(f"line {i}: bad metric name {family!r}")
            if family in declared:
                errors.append(f"line {i}: duplicate TYPE for {family}")
            declared[family] = kind
            continue
        if line.startswith("#"):
            errors.append(f"line {i}: unexpected comment {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {i}: unparseable sample {line!r}")
            continue
        name, _, labels, value = m.groups()
        family = base_family(name)
        kind = declared.get(family) or declared.get(name)
        if kind is None:
            errors.append(f"line {i}: sample {name} has no preceding TYPE")
            continue
        for lab in (labels or "").split(","):
            if lab and not LABEL_RE.match(lab):
                errors.append(f"line {i}: bad label pair {lab!r}")
        try:
            v = float(value)
        except ValueError:
            errors.append(f"line {i}: non-numeric value {value!r}")
            continue
        if kind in ("counter", "histogram") and v < 0:
            errors.append(f"line {i}: negative {kind} value {v}")
        if kind != "histogram":
            continue
        # Histogram family bookkeeping.
        if name.endswith("_bucket"):
            le = parse_le(labels or "")
            if le is None:
                errors.append(f"line {i}: _bucket sample without le label")
                continue
            series = open_hist.setdefault(family, [])
            if series:
                prev_le, prev_count = series[-1]
                if prev_le == "+Inf":
                    errors.append(f"line {i}: bucket after le=\"+Inf\"")
                elif le != "+Inf" and float(le) <= float(prev_le):
                    errors.append(f"line {i}: le bounds not increasing")
                if v < prev_count:
                    errors.append(f"line {i}: cumulative count decreased")
            series.append((le, v))
        elif name.endswith("_count"):
            series = open_hist.pop(family, [])
            if not series or series[-1][0] != "+Inf":
                errors.append(f"line {i}: histogram {family} missing +Inf bucket")
            elif series[-1][1] != v:
                errors.append(
                    f"line {i}: {family}_count {v} != +Inf bucket {series[-1][1]}")
    for family in open_hist:
        errors.append(f"histogram {family} has buckets but no _count")
    return errors


def main() -> int:
    if len(sys.argv) > 1:
        with open(sys.argv[1], encoding="utf-8") as f:
            lines = f.readlines()
    else:
        lines = sys.stdin.readlines()
    if not any(line.strip() for line in lines):
        print("empty exposition dump", file=sys.stderr)
        return 1
    errors = check(lines)
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        samples = sum(1 for l in lines if l.strip() and not l.startswith("#"))
        print(f"OK: {samples} samples, "
              f"{sum(1 for l in lines if l.startswith('# TYPE'))} families")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
