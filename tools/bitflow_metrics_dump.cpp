// Runs a miniature serving workload and prints the process metrics registry
// in Prometheus text exposition format to stdout.
//
// This is the feed for tools/check_prom_format.py (wired into ctest and
// CI's telemetry job): the dump exercises every instrument family the
// engine, thread pool and failpoint catalog register — counters, callback
// gauges, linear and log2 histograms — so the lint sees a representative
// exposition, not a hand-written fixture.
#include <cstdio>
#include <future>
#include <vector>

#include "bitpack/packer.hpp"
#include "io/model.hpp"
#include "models/vgg.hpp"
#include "serve/engine.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/util.hpp"

namespace {

using namespace bitflow;

io::Model make_model() {
  io::Model m(graph::TensorDesc{8, 8, 8});
  FilterBank filters = models::random_filters(16, 3, 3, 8, 11);
  std::vector<float> th(16, 0.0f);
  m.add_conv("c1", bitpack::pack_filters(filters), 1, 1, th);
  m.add_maxpool("p1", kernels::PoolSpec{2, 2, 2});
  const auto w = models::random_fc_weights(4 * 4 * 16, 10, 12);
  m.add_fc("f1", bitpack::pack_transpose_fc_weights(w.data(), 4 * 4 * 16, 10));
  return m;
}

Tensor make_input(std::uint64_t seed) {
  Tensor t = Tensor::hwc(8, 8, 8);
  fill_uniform(t, seed);
  return t;
}

}  // namespace

int main() {
  const io::Model model = make_model();
  serve::EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  auto created = serve::Engine::create(model, cfg);
  if (!created.is_ok()) {
    std::fprintf(stderr, "engine creation failed\n");
    return 1;
  }
  serve::Engine engine = std::move(created).value();
  std::vector<std::future<core::Result<std::vector<float>>>> futs;
  futs.reserve(16);
  for (int i = 0; i < 16; ++i) {
    futs.push_back(engine.submit(make_input(static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futs) {
    if (!f.get().is_ok()) {
      std::fprintf(stderr, "request failed\n");
      return 1;
    }
  }
  engine.shutdown();
  std::fputs(telemetry::registry().prometheus_text().c_str(), stdout);
  return 0;
}
