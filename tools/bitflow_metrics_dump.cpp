// Runs a miniature serving workload and prints the process metrics registry
// in Prometheus text exposition format to stdout.
//
// This is the feed for tools/check_prom_format.py (wired into ctest and
// CI's telemetry job): the dump exercises every instrument family the
// engine, thread pool and failpoint catalog register — counters, callback
// gauges, linear and log2 histograms — so the lint sees a representative
// exposition, not a hand-written fixture.
//
// --via-server exercises the serving tier's OTHER exposition path instead:
// a ShardRouter behind net::Server, traffic through real loopback sockets,
// and the dump fetched over HTTP GET /metrics — what a Prometheus scraper
// would actually see, per-shard gauges and net.* counters included.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "bitpack/packer.hpp"
#include "io/model.hpp"
#include "models/vgg.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "serve/shard_router.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/util.hpp"

namespace {

using namespace bitflow;

io::Model make_model() {
  io::Model m(graph::TensorDesc{8, 8, 8});
  FilterBank filters = models::random_filters(16, 3, 3, 8, 11);
  std::vector<float> th(16, 0.0f);
  m.add_conv("c1", bitpack::pack_filters(filters), 1, 1, th);
  m.add_maxpool("p1", kernels::PoolSpec{2, 2, 2});
  const auto w = models::random_fc_weights(4 * 4 * 16, 10, 12);
  m.add_fc("f1", bitpack::pack_transpose_fc_weights(w.data(), 4 * 4 * 16, 10));
  return m;
}

Tensor make_input(std::uint64_t seed) {
  Tensor t = Tensor::hwc(8, 8, 8);
  fill_uniform(t, seed);
  return t;
}

/// The scraper's view: router + server, loopback traffic, GET /metrics.
int dump_via_server() {
  serve::RouterConfig cfg;
  cfg.shards = 2;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 4;
  cfg.engine.net.num_threads = 1;
  auto r = serve::ShardRouter::create(make_model(), cfg);
  if (!r.is_ok()) {
    std::fprintf(stderr, "router creation failed: %s\n", r.status().to_string().c_str());
    return 1;
  }
  serve::ShardRouter router = std::move(r.value());
  auto s = net::Server::start(router);
  if (!s.is_ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.status().to_string().c_str());
    return 1;
  }
  net::Server server = std::move(s.value());

  auto conn = net::Client::connect("127.0.0.1", server.port());
  if (!conn.is_ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  net::Client client = std::move(conn.value());
  for (int i = 0; i < 16; ++i) {
    const Tensor t = make_input(static_cast<std::uint64_t>(i));
    net::RequestFrame req;
    req.id = static_cast<std::uint64_t>(i) + 1;
    req.h = 8;
    req.w = 8;
    req.c = 8;
    req.data.assign(t.elements().begin(), t.elements().end());
    auto got = client.infer(req, std::chrono::milliseconds(5000));
    if (!got.is_ok()) {
      std::fprintf(stderr, "request failed: %s\n", got.status().to_string().c_str());
      return 1;
    }
  }
  auto body = net::Client::http_get("127.0.0.1", server.port(), "/metrics");
  if (!body.is_ok()) {
    std::fprintf(stderr, "GET /metrics failed: %s\n", body.status().to_string().c_str());
    return 1;
  }
  std::fputs(body.value().c_str(), stdout);
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--via-server") == 0) {
    return dump_via_server();
  }
  const io::Model model = make_model();
  serve::EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  auto created = serve::Engine::create(model, cfg);
  if (!created.is_ok()) {
    std::fprintf(stderr, "engine creation failed\n");
    return 1;
  }
  serve::Engine engine = std::move(created).value();
  std::vector<std::future<core::Result<std::vector<float>>>> futs;
  futs.reserve(16);
  for (int i = 0; i < 16; ++i) {
    futs.push_back(engine.submit(make_input(static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futs) {
    if (!f.get().is_ok()) {
      std::fprintf(stderr, "request failed\n");
      return 1;
    }
  }
  engine.shutdown();
  std::fputs(telemetry::registry().prometheus_text().c_str(), stdout);
  return 0;
}
