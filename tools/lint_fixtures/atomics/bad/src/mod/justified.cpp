// Fixture: the rule-3 escape hatch.  This file must produce ZERO violations
// even though it sits in the bad tree and uses seq_cst in library code.
#include <atomic>

namespace fixture {

int justified_fence() {
  // Ordering contract: seq_cst handshake — both sides need the total order.
  std::atomic<int> flag{0};
  flag.store(1, std::memory_order_seq_cst);  // NOLINT-atomic(Dekker handshake: store must totally order with the peer's)
  return flag.load(std::memory_order_relaxed);
}

}  // namespace fixture
