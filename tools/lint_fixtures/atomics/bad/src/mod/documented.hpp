// Fixture: the rule-4 acceptance path.  This header must produce ZERO
// violations: its declaration carries a proper contract comment.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class Documented {
 public:
  void bump() noexcept { n_.fetch_add(1, std::memory_order_relaxed); }

 private:
  // Ordering contract: relaxed everywhere — a tally orders nothing.
  std::atomic<std::uint64_t> n_{0};
};

}  // namespace fixture
