// Fixture: one seeded violation per rule.  The self-test pins that the lint
// rejects every one of these (and nothing in justified.cpp / documented.hpp).
#include <array>
#include <atomic>
#include <cstdint>

namespace fixture {

extern std::atomic<bool> g_flag;

std::atomic<std::uint64_t> counter{0};

bool defaulted_load() { return g_flag.load(); }

void defaulted_rmw() { counter.fetch_add(1); }

void operator_forms() {
  std::array<std::atomic<int>, 4> hits;
  std::atomic<bool> stop{false};
  std::atomic<int> total{0};
  counter++;
  for (int i = 0; i < 4; ++i) hits[i]++;
  stop = true;
  total += 2;
  (void)stop;
  (void)total;
}

int unjustified_seq_cst() {
  std::atomic<int> x{0};
  x.store(1, std::memory_order_seq_cst);
  return 0;
}

}  // namespace fixture
