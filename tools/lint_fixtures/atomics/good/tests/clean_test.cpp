// Tests may use seq_cst freely — but still explicitly.
#include <atomic>

int main() {
  std::atomic<int> counter{0};
  counter.fetch_add(1, std::memory_order_seq_cst);
  std::atomic<bool> stop{false};
  stop.store(true, std::memory_order_relaxed);
  return counter.load(std::memory_order_seq_cst) == 1 &&
                 stop.load(std::memory_order_relaxed)
             ? 0
             : 1;
}
