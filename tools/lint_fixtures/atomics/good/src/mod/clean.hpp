// Fixture: every rule satisfied.  Kept deliberately close to the idioms in
// src/telemetry so the lint's acceptance behaviour is pinned against real
// house style, not a toy.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class Tally {
 public:
  void add(std::uint64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  // Ordering contract: relaxed everywhere — a tally orders nothing.
  std::atomic<std::uint64_t> v_{0};
};

// Ordering contract: release-publish by the writer, acquire by the reader;
// the payload written before the store is visible after the load.
extern std::atomic<bool> g_published;

inline void publish() { g_published.store(true, std::memory_order_release); }
inline bool consume() { return g_published.load(std::memory_order_acquire); }

// A non-atomic `load` homonym must not trip rule 1.
struct Stream {
  int load() { return 0; }
};
inline int use_stream(Stream& s) { return s.load(); }

}  // namespace fixture
