#include "mod/clean.hpp"

namespace fixture {

// Ordering contract: see clean.hpp (release/acquire publication flag).
std::atomic<bool> g_published{false};

// seq_cst with an inline justification is accepted in library code.
// NOLINT-atomic(fixture: pins the justification escape hatch) below:
int fence_with_reason() {
  std::atomic<int> x{0};  // Ordering contract: seq_cst, see marker below.
  x.store(1, std::memory_order_seq_cst);  // NOLINT-atomic(Dekker-style flag handshake needs total order)
  return x.load(std::memory_order_relaxed);
}

}  // namespace fixture
