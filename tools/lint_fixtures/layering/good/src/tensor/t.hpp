// Fixture: tensor may include core (a direct dependency).
#pragma once
#include "core/status.hpp"
#include "tensor/detail.hpp"
