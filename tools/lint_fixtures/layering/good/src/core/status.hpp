// Fixture: a leaf-module header including only the standard library.
#pragma once
#include <string>
