// Fixture: serve reaching DOWN through its transitive closure is fine —
// baseline is not a direct dep of serve, but graph pulls it in.
#include "baseline/float_ops.hpp"
#include "core/status.hpp"
#include "tensor/t.hpp"
