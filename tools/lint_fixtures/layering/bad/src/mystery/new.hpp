// Fixture: a module absent from the layering spec.
#pragma once
