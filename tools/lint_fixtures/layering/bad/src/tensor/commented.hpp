// Fixture: a commented-out upward include must NOT be flagged.
#pragma once
// #include "serve/engine.hpp"
/* #include "serve/engine.hpp" */
