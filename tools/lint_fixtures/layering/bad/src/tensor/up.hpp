// Fixture: an upward include — tensor must never see serve.
#pragma once
#include "serve/engine.hpp"
