// Fixture: core is a leaf — it may not include tensor.
#pragma once
#include "tensor/t.hpp"
