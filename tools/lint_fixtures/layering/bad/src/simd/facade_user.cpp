// Fixture: internal code including the umbrella facade.
#include "core/bitflow.hpp"
