// Fixture: a clean file in the bad tree (violations are per-file, not per-tree).
#include "core/status.hpp"
