#!/usr/bin/env python3
"""Static lint enforcing BitFlow's ISA-hygiene invariant.

The whole dispatch design of this repository rests on one property that the
compiler cannot check: *every* use of a vector ISA must live in a translation
unit compiled with exactly that ISA's -m flags, selected at runtime by CPUID.
If an intrinsic (or an -m flag) leaks into a shared header or a generic TU,
the binary silently requires wider hardware than the baseline x86-64 the
README promises, and the scalar baselines stop being honest.

Three rules, in decreasing order of severity:

  1. Raw SIMD intrinsic calls (_mm_*/_mm256_*/_mm512_*), vector register
     types (__m128/__m256/__m512) and <immintrin.h> includes may appear only
     in the per-ISA translation units, or in the designated SIMD
     implementation headers that those TUs include.  The register-view
     header bitpack/bit64.hpp may *name* register types (its Table II
     unions) and include <immintrin.h>, but must not call intrinsics.

  2. SIMD implementation headers (simd/bitops_inline.hpp and
     simd/bitops_tile.hpp) may be included only by per-ISA translation
     units: they contain real intrinsic bodies whose lowering depends on
     the including TU's -m flags.

  3. In the CMake tree, ISA -m flags (-msse*, -mavx*, -mpopcnt, -mfma, ...)
     may be attached only to per-ISA translation units via
     set_source_files_properties — never through add_compile_options,
     target_compile_options, or CMAKE_CXX_FLAGS.

Exit status: 0 when the tree is clean, 1 with one "file:line: message" per
violation otherwise.  Run from anywhere: paths are resolved relative to the
repository root (the parent of this script's directory).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --- the allowlists: the only places ISA-specific code may live --------------

# Translation units compiled with per-ISA -m flags (see the matching
# set_source_files_properties calls in the CMake tree).
PER_ISA_TUS = {
    "src/simd/bitops_u64.cpp",
    "src/simd/bitops_sse.cpp",
    "src/simd/bitops_avx2.cpp",
    "src/simd/bitops_avx512.cpp",
    "src/simd/bitops_avx512vp.cpp",
    "src/kernels/pressedconv_u64.cpp",
    "src/kernels/pressedconv_sse.cpp",
    "src/kernels/pressedconv_avx2.cpp",
    "src/kernels/pressedconv_avx512.cpp",
    "src/kernels/pressedconv_avx512vp.cpp",
    "src/bitpack/pack_avx2.cpp",
    "src/baseline/sgemm_avx2.cpp",
    "src/baseline/unopt_binary.cpp",
}

# Headers holding intrinsic implementations; their lowering depends on the
# including TU's flags, so only per-ISA TUs may include them.
SIMD_IMPL_HEADERS = {
    "src/simd/bitops_inline.hpp",
    "src/simd/bitops_tile.hpp",
}

# Headers that may name vector register types (byte-compatible union views)
# but must not call intrinsics.
REGISTER_VIEW_HEADERS = {
    "src/bitpack/bit64.hpp",
}

SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}

INTRINSIC_CALL = re.compile(r"\b_mm(?:256|512)?_[A-Za-z0-9_]+\s*\(")
VECTOR_TYPE = re.compile(r"\b__m(?:128|256|512)[id]?\b")
INTRIN_INCLUDE = re.compile(
    r'#\s*include\s*[<"](?:imm|x86|xmm|emm|pmm|tmm|smm|nmm|wmm|amm|avx\w*)intrin\.h[>"]')
IMPL_HEADER_INCLUDE = re.compile(r'#\s*include\s*[<"]([^">]*bitops_(?:inline|tile)\.hpp)[">]')

# ISA-selecting -m flags.  Deliberately narrow so flags like -march (banned
# separately in review) or -mtune never match by accident, and generic flags
# (-m64) stay out of scope.
ISA_FLAG = re.compile(
    r"-m(?:sse[0-9.]*[a-z0-9.]*|ssse3|avx(?:2|512[a-z0-9]*)?|popcnt|fma4?|bmi2?|f16c|xop)\b")

SET_SRC_PROPS = re.compile(r"set_source_files_properties\s*\(", re.IGNORECASE)


STRING_LITERAL = re.compile(r'"(?:[^"\\\n]|\\.)*"')


def strip_string_literals(text: str) -> str:
    """Blanks double-quoted string literals (offset-preserving) so intrinsic
    names inside report/log strings don't trip the lint."""
    return STRING_LITERAL.sub(lambda m: '"' + " " * (len(m.group(0)) - 2) + '"', text)


def strip_line_comments(text: str, marker: str) -> str:
    """Blanks everything from `marker` to end of line, preserving offsets."""
    out = []
    for line in text.splitlines(keepends=True):
        idx = line.find(marker)
        if idx >= 0:
            body = line[:idx]
            tail = line[idx:]
            line = body + re.sub(r"[^\n]", " ", tail)
        out.append(line)
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def check_cxx_file(rel: str, text: str, errors: list[str]) -> None:
    if rel in PER_ISA_TUS or rel in SIMD_IMPL_HEADERS:
        return  # may contain anything ISA-specific
    scan = strip_line_comments(strip_string_literals(text), "//")
    if rel in REGISTER_VIEW_HEADERS:
        for m in INTRINSIC_CALL.finditer(scan):
            errors.append(
                f"{rel}:{line_of(scan, m.start())}: intrinsic call {m.group(0).strip('( ')} in a "
                "register-view header (bit64.hpp may name __m types but not call intrinsics)")
        return
    for m in INTRINSIC_CALL.finditer(scan):
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: raw SIMD intrinsic {m.group(0).strip('( ')} "
            "outside the per-ISA translation units")
    for m in VECTOR_TYPE.finditer(scan):
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: vector register type {m.group(0)} outside the "
            "per-ISA translation units / register-view headers")
    for m in INTRIN_INCLUDE.finditer(scan):
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: <immintrin.h>-family include outside the per-ISA "
            "translation units")


def check_impl_header_includes(rel: str, text: str, errors: list[str]) -> None:
    if rel in PER_ISA_TUS or rel in SIMD_IMPL_HEADERS:
        return
    scan = strip_line_comments(text, "//")
    for m in IMPL_HEADER_INCLUDE.finditer(scan):
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: includes SIMD impl header {m.group(1)} — only "
            "per-ISA translation units may include it (its lowering depends on the TU's -m flags)")


def allowed_flag_spans(rel_dir: str, text: str, errors: list[str]) -> list[tuple[int, int]]:
    """Spans of set_source_files_properties(...) calls whose sources are all
    per-ISA TUs.  A call on any other source file is itself reported."""
    spans = []
    for m in SET_SRC_PROPS.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        body = text[m.end():i - 1]
        files = []
        for tok in body.replace("\n", " ").split():
            if tok.upper() == "PROPERTIES":
                break
            files.append(tok.strip('"'))
        if not ISA_FLAG.search(body):
            continue
        bad = [f for f in files
               if (f"{rel_dir}/{f}" if rel_dir else f) not in PER_ISA_TUS]
        if bad:
            errors.append(
                f"{rel_dir or '.'}/CMakeLists.txt:{line_of(text, m.start())}: ISA -m flags "
                f"attached to non-per-ISA source(s): {', '.join(bad)}")
        else:
            spans.append((m.start(), i))
    return spans


def check_cmake_file(rel: str, text: str, errors: list[str]) -> None:
    scan = strip_line_comments(text, "#")
    rel_dir = str(pathlib.PurePosixPath(rel).parent)
    if rel_dir == ".":
        rel_dir = ""
    spans = allowed_flag_spans(rel_dir, scan, errors)
    for m in ISA_FLAG.finditer(scan):
        if any(lo <= m.start() < hi for lo, hi in spans):
            continue
        errors.append(
            f"{rel}:{line_of(scan, m.start())}: ISA flag {m.group(0)} outside a "
            "set_source_files_properties call on a per-ISA translation unit")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    root = args.root.resolve()

    errors: list[str] = []
    n_files = 0
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if path.name == "CMakeLists.txt":
                n_files += 1
                check_cmake_file(rel, path.read_text(errors="replace"), errors)
            elif path.suffix in SOURCE_SUFFIXES:
                n_files += 1
                text = path.read_text(errors="replace")
                check_cxx_file(rel, text, errors)
                check_impl_header_includes(rel, text, errors)
    # The top-level CMakeLists is outside SCAN_DIRS; check it too.
    top = root / "CMakeLists.txt"
    if top.is_file():
        n_files += 1
        check_cmake_file("CMakeLists.txt", top.read_text(errors="replace"), errors)

    # The allowlist must not rot: every listed file has to exist.
    for listed in sorted(PER_ISA_TUS | SIMD_IMPL_HEADERS | REGISTER_VIEW_HEADERS):
        if not (root / listed).is_file():
            errors.append(f"{listed}: listed in the hygiene allowlist but missing from the tree")

    if errors:
        print(f"ISA hygiene: {len(errors)} violation(s) in {n_files} scanned files:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"ISA hygiene: OK ({n_files} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
