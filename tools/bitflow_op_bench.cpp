// bitflow_op_bench: ad-hoc operator benchmarking from the command line.
//
//   $ bitflow_op_bench conv <H> <W> <C> <K> [kernel=3] [stride=1] [pad=1]
//   $ bitflow_op_bench fc   <N> <K>
//   $ bitflow_op_bench pool <H> <W> <C> [window=2] [stride=2]
//
// Times the float baseline, the unoptimized binary engine, and BitFlow on
// the given geometry (single thread) and prints the speedups — the tool to
// answer "what would BitFlow buy me on *my* layer?".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "baseline/float_ops.hpp"
#include "baseline/unopt_binary.hpp"
#include "bitpack/packer.hpp"
#include "models/vgg.hpp"
#include "ops/operators.hpp"
#include "runtime/timer.hpp"
#include "tensor/util.hpp"

namespace {

using namespace bitflow;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s conv <H> <W> <C> <K> [kernel=3] [stride=1] [pad=1]\n"
               "       %s fc   <N> <K>\n"
               "       %s pool <H> <W> <C> [window=2] [stride=2]\n",
               argv0, argv0, argv0);
  return 2;
}

void report(const char* name, double t_float, double t_unopt, double t_bitflow) {
  std::printf("%-18s %10.3f ms\n", "float baseline:", t_float * 1e3);
  std::printf("%-18s %10.3f ms   (%5.1fx over float)\n", "unopt binary:", t_unopt * 1e3,
              t_float / t_unopt);
  std::printf("%-18s %10.3f ms   (%5.1fx over float, %4.1fx over unopt) [%s]\n",
              "BitFlow:", t_bitflow * 1e3, t_float / t_bitflow, t_unopt / t_bitflow, name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  runtime::ThreadPool pool(1);
  const auto arg = [&](int i, std::int64_t def) {
    return i < argc ? std::atoll(argv[i]) : def;
  };

  if (std::strcmp(argv[1], "conv") == 0) {
    if (argc < 6) return usage(argv[0]);
    const std::int64_t h = arg(2, 0), w = arg(3, 0), c = arg(4, 0), k = arg(5, 0);
    const std::int64_t kernel = arg(6, 3), stride = arg(7, 1), pad = arg(8, 1);
    std::printf("conv %lldx%lldx%lld -> %lld filters, %lldx%lld s%lld p%lld, 1 thread\n\n",
                (long long)h, (long long)w, (long long)c, (long long)k, (long long)kernel,
                (long long)kernel, (long long)stride, (long long)pad);
    const FilterBank filters = models::random_filters(k, kernel, kernel, c, 1);
    Tensor in = Tensor::hwc(h, w, c);
    fill_uniform(in, 2);
    const std::int64_t oh = (h + 2 * pad - kernel) / stride + 1;
    const std::int64_t ow = (w + 2 * pad - kernel) / stride + 1;
    Tensor out = Tensor::hwc(oh, ow, k);

    ops::FloatConvOp fop(filters, stride, pad);
    const double tf = runtime::measure_best_seconds([&] { fop.run(in, pool, out); }, 3, 0.2);
    baseline::UnoptBinaryConv uop(filters, kernels::ConvSpec{kernel, kernel, stride});
    const Tensor padded = baseline::pad_float(in, pad);
    Tensor uout = Tensor::hwc(oh, ow, k);
    const double tu =
        runtime::measure_best_seconds([&] { uop.run(padded, pool, uout); }, 3, 0.2);
    ops::BinaryConvOp bop(filters, stride, pad);
    const double tb = runtime::measure_best_seconds([&] { bop.run(in, pool, out); }, 3, 0.2);
    report(std::string(simd::isa_name(bop.isa())).c_str(), tf, tu, tb);
    return 0;
  }

  if (std::strcmp(argv[1], "fc") == 0) {
    if (argc < 4) return usage(argv[0]);
    const std::int64_t n = arg(2, 0), k = arg(3, 0);
    std::printf("fc %lld -> %lld, 1 thread\n\n", (long long)n, (long long)k);
    const auto w = models::random_fc_weights(n, k, 1);
    std::vector<float> x(static_cast<std::size_t>(n));
    std::mt19937_64 rng(2);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (float& v : x) v = dist(rng);
    std::vector<float> y(static_cast<std::size_t>(k));
    const double tf = runtime::measure_best_seconds(
        [&] { baseline::float_fc(w.data(), x.data(), y.data(), n, k, pool); }, 3, 0.2);
    baseline::UnoptBinaryFc ufc(w.data(), n, k);
    const double tu = runtime::measure_best_seconds(
        [&] { ufc.run(x.data(), pool, y.data()); }, 3, 0.2);
    ops::BinaryFcOp bfc(w.data(), n, k);
    const double tb = runtime::measure_best_seconds(
        [&] { bfc.run(x.data(), pool, y.data()); }, 3, 0.2);
    report(std::string(simd::isa_name(bfc.isa())).c_str(), tf, tu, tb);
    return 0;
  }

  if (std::strcmp(argv[1], "pool") == 0) {
    if (argc < 5) return usage(argv[0]);
    const std::int64_t h = arg(2, 0), w = arg(3, 0), c = arg(4, 0);
    const std::int64_t window = arg(5, 2), stride = arg(6, 2);
    std::printf("maxpool %lldx%lldx%lld, %lldx%lld s%lld, 1 thread\n\n", (long long)h,
                (long long)w, (long long)c, (long long)window, (long long)window,
                (long long)stride);
    Tensor in = Tensor::hwc(h, w, c);
    fill_uniform(in, 3);
    const kernels::PoolSpec spec{window, window, stride};
    Tensor fout = Tensor::hwc(spec.out_h(h), spec.out_w(w), c);
    const double tf = runtime::measure_best_seconds(
        [&] { baseline::float_maxpool(in, spec, pool, fout); }, 3, 0.2);
    const PackedTensor packed = bitpack::pack_activations(in);
    PackedTensor pout(spec.out_h(h), spec.out_w(w), c);
    const double tu = runtime::measure_best_seconds(
        [&] { baseline::unopt_binary_maxpool(packed, spec, pool, pout); }, 3, 0.2);
    ops::BinaryPoolOp bop(spec, c);
    const double tb = runtime::measure_best_seconds(
        [&] { bop.run_packed(packed, pool, pout, 0); }, 3, 0.2);
    report(std::string(simd::isa_name(bop.isa())).c_str(), tf, tu, tb);
    return 0;
  }
  return usage(argv[0]);
}
