# ctest glue for the prom_format test: run the metrics demo, capture its
# exposition dump to a file, and feed it through check_prom_format.py.
# DUMP_ARGS (optional) selects the dump mode, e.g. --via-server for the
# HTTP GET /metrics path through the serving front-end.
separate_arguments(dump_args NATIVE_COMMAND "${DUMP_ARGS}")
execute_process(COMMAND ${DUMP} ${dump_args} OUTPUT_FILE ${OUT} RESULT_VARIABLE dump_rc)
if(NOT dump_rc EQUAL 0)
  message(FATAL_ERROR "bitflow_metrics_dump failed with ${dump_rc}")
endif()
execute_process(COMMAND ${PYTHON} ${LINT} ${OUT} RESULT_VARIABLE lint_rc)
if(NOT lint_rc EQUAL 0)
  message(FATAL_ERROR "check_prom_format.py found violations")
endif()
