// bitflow_model_info: inspect a .bflow model file.
//
//   $ bitflow_model_info model.bflow
//
// Prints the layer table (kind, name, geometry, thresholds), total packed
// weight size, and the kernel each layer would get on this machine.
#include <cstdio>
#include <string>

#include "graph/scheduler.hpp"
#include "io/model.hpp"
#include "simd/cpu_features.hpp"

int main(int argc, char** argv) {
  using namespace bitflow;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <model.bflow>\n", argv[0]);
    return 2;
  }
  io::Model model;
  try {
    model = io::Model::load(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto in = model.input();
  std::printf("BitFlow model: %s\n", argv[1]);
  std::printf("input: %lld x %lld x %lld\n", static_cast<long long>(in.h),
              static_cast<long long>(in.w), static_cast<long long>(in.c));
  std::printf("layers: %zu, weights: %.2f KB packed\n\n", model.num_layers(),
              static_cast<double>(model.weight_bytes()) / 1e3);
  std::printf("%-12s %-10s %-26s %-6s %-8s\n", "name", "kind", "geometry", "thresh", "kernel");
  for (const auto& l : model.layers()) {
    char geom[64] = "";
    std::int64_t packed_dim = 0;
    const char* kind = "?";
    switch (l.kind) {
      case graph::LayerKind::kConv:
        kind = l.full_precision ? "conv(fp32)" : "conv";
        if (l.full_precision) {
          std::snprintf(geom, sizeof geom, "%lldx%lldx%lld -> %lld s%lld p%lld",
                        static_cast<long long>(l.float_filters.kernel_h()),
                        static_cast<long long>(l.float_filters.kernel_w()),
                        static_cast<long long>(l.float_filters.channels()),
                        static_cast<long long>(l.float_filters.num_filters()),
                        static_cast<long long>(l.stride), static_cast<long long>(l.pad));
        } else {
          std::snprintf(geom, sizeof geom, "%lldx%lldx%lld -> %lld s%lld p%lld",
                        static_cast<long long>(l.filters.kernel_h()),
                        static_cast<long long>(l.filters.kernel_w()),
                        static_cast<long long>(l.filters.channels()),
                        static_cast<long long>(l.filters.num_filters()),
                        static_cast<long long>(l.stride), static_cast<long long>(l.pad));
          packed_dim = l.filters.channels();
        }
        break;
      case graph::LayerKind::kPool:
        kind = "maxpool";
        std::snprintf(geom, sizeof geom, "%lldx%lld s%lld", static_cast<long long>(l.pool.pool_h),
                      static_cast<long long>(l.pool.pool_w),
                      static_cast<long long>(l.pool.stride));
        break;
      case graph::LayerKind::kFc:
        kind = "fc";
        std::snprintf(geom, sizeof geom, "%lld -> %lld",
                      static_cast<long long>(l.fc_weights.cols()),
                      static_cast<long long>(l.fc_weights.rows()));
        packed_dim = l.fc_weights.cols();
        break;
    }
    const std::string kernel =
        packed_dim > 0
            ? std::string(simd::isa_name(graph::select_isa(packed_dim, simd::cpu_features())))
            : std::string("-");
    std::printf("%-12s %-10s %-26s %-6s %-8s\n", l.name.c_str(), kind, geom,
                l.thresholds.empty() ? "no" : "yes", kernel.c_str());
  }
  return 0;
}
