#!/usr/bin/env python3
"""Static checker enforcing BitFlow's module layering (the include DAG).

Each top-level directory under src/ is a module.  The DAG below records, for
every module, the modules it may include *directly*; anything in the
transitive closure is also allowed (a module may name what its dependencies
already force into every TU).  The spec itself is verified acyclic on every
run, so a stray edge that would legalize an include cycle is caught in the
same breath as the include that wanted it.

The layering (leaves first):

    core                          — Status/Result, checks, failpoints, sync
    tensor, simd      -> core
    data              -> tensor
    telemetry         -> core, simd
    runtime           -> core, telemetry
    bitpack, kernels  -> core, runtime, simd, tensor
    baseline          -> kernels (+ the floors below)
    graph             -> baseline, bitpack, kernels, telemetry, ...
    models, ops, io   -> graph, ...
    serve             -> graph, io, ...
    net               -> serve, core, telemetry (the wire front-end; it may
                         NOT reach around the router into graph/kernels)
    train             -> graph, io, data, bitpack
    gpuref            — self-contained reference, includes nothing

Special case: src/core/bitflow.hpp (and its TU) is the umbrella facade — the
one header downstream *users* include to get the whole library.  It may
include any module, and in exchange NOTHING inside src/ may include it:
internal code naming the facade would dissolve the layering into "everything
sees everything" the first time it happened.

Exit status: 0 when the tree is clean, 1 with one "file:line: message" per
violation otherwise.  `--self-test` runs against the fixture trees in
tools/lint_fixtures/layering/.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Module -> modules it may include DIRECTLY.  Transitive closure is allowed.
DIRECT_DEPS: dict[str, set[str]] = {
    "core": set(),
    "tensor": {"core"},
    "simd": {"core"},
    "data": {"tensor"},
    "telemetry": {"core", "simd"},
    "runtime": {"core", "telemetry"},
    "bitpack": {"core", "runtime", "simd", "tensor"},
    "kernels": {"core", "runtime", "simd", "tensor"},
    "baseline": {"kernels", "runtime", "simd", "tensor"},
    "tune": {"bitpack", "core", "kernels", "runtime", "simd", "telemetry",
             "tensor"},
    "graph": {"baseline", "bitpack", "core", "kernels", "runtime", "simd",
              "telemetry", "tensor", "tune"},
    "models": {"graph", "tensor"},
    "ops": {"baseline", "bitpack", "graph", "kernels", "runtime", "tensor"},
    "io": {"core", "graph", "kernels", "tensor"},
    "serve": {"core", "graph", "io", "runtime", "simd", "telemetry", "tensor"},
    "net": {"core", "serve", "telemetry"},
    "train": {"bitpack", "data", "graph", "io"},
    "gpuref": set(),
}

# The umbrella facade: may include everything; includable by nothing in src/.
FACADE = "core/bitflow.hpp"
FACADE_FILES = {"src/core/bitflow.hpp", "src/core/bitflow.cpp"}

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}

QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, offset-preserving, so a commented-out
    include cannot trip (or hide) a violation."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def topo_check(deps: dict[str, set[str]]) -> list[str]:
    """Errors for unknown modules in the spec and for cycles (DFS)."""
    errors = []
    for mod, ds in deps.items():
        for d in ds:
            if d not in deps:
                errors.append(f"layering spec: module '{mod}' depends on unknown '{d}'")
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in deps}

    def dfs(m: str, path: list[str]) -> None:
        color[m] = GRAY
        for d in sorted(deps[m]):
            if d not in color:
                continue
            if color[d] == GRAY:
                cyc = path[path.index(d):] + [d] if d in path else [m, d]
                errors.append("layering spec: dependency cycle " + " -> ".join(cyc))
            elif color[d] == WHITE:
                dfs(d, path + [d])
        color[m] = BLACK

    for m in sorted(deps):
        if color[m] == WHITE:
            dfs(m, [m])
    return errors


def transitive_closure(deps: dict[str, set[str]]) -> dict[str, set[str]]:
    closure: dict[str, set[str]] = {}

    def visit(m: str) -> set[str]:
        if m in closure:
            return closure[m]
        closure[m] = set(deps[m])  # provisional (spec is acyclic by topo_check)
        for d in deps[m]:
            if d in deps:
                closure[m] |= visit(d)
        return closure[m]

    for m in deps:
        visit(m)
    return closure


def scan_tree(root: pathlib.Path,
              deps: dict[str, set[str]] | None = None) -> tuple[list[str], int]:
    deps = DIRECT_DEPS if deps is None else deps
    errors = topo_check(deps)
    allowed = transitive_closure(deps)

    src = root / "src"
    n_files = 0
    for path in sorted(src.rglob("*")) if src.is_dir() else []:
        if not path.is_file() or path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root).as_posix()
        rel_in_src = path.relative_to(src).as_posix()
        parts = rel_in_src.split("/")
        if len(parts) < 2:
            continue  # a file directly under src/ belongs to no module
        module = parts[0]
        n_files += 1
        if module not in deps:
            errors.append(f"{rel}:1: module '{module}' is not in the layering spec — "
                          "add it to DIRECT_DEPS in tools/check_layering.py with its "
                          "allowed dependencies")
            continue
        is_facade = rel in FACADE_FILES
        scan = strip_comments(path.read_text(errors="replace"))
        for m in QUOTED_INCLUDE.finditer(scan):
            inc = m.group(1)
            lineno = line_of(scan, m.start())
            if inc == FACADE and not is_facade:
                errors.append(
                    f"{rel}:{lineno}: includes the umbrella facade {FACADE} — internal "
                    "code must include the specific headers it uses, only downstream "
                    "users include the facade")
                continue
            if "/" not in inc:
                continue  # same-directory relative include
            target = inc.split("/")[0]
            if target not in deps:
                continue  # not one of our modules (e.g. third-party style path)
            if target == module or is_facade:
                continue
            if target not in allowed[module]:
                direct = ", ".join(sorted(deps[module])) or "(nothing)"
                errors.append(
                    f"{rel}:{lineno}: module '{module}' must not include '{inc}' — "
                    f"'{target}' is not in its dependency closure (direct deps: {direct}). "
                    "Either the include points the wrong way through the layering, or the "
                    "DAG in tools/check_layering.py needs a deliberate new edge")
    return errors, n_files


def self_test(fixtures: pathlib.Path) -> int:
    failures = []
    ok_errors, ok_n = scan_tree(fixtures / "good")
    if ok_errors:
        failures.append("good fixture tree should be clean, got:\n    "
                        + "\n    ".join(ok_errors))
    if ok_n == 0:
        failures.append("good fixture tree scanned no files")

    bad_errors, bad_n = scan_tree(fixtures / "bad")
    if bad_n == 0:
        failures.append("bad fixture tree scanned no files")
    joined = "\n".join(bad_errors)
    expectations = [
        ("upward include", r"src/tensor/up\.hpp:\d+: module 'tensor' must not include 'serve/"),
        ("leaf include", r"src/core/leafy\.hpp:\d+: module 'core' must not include 'tensor/"),
        ("facade include", r"src/simd/facade_user\.cpp:\d+: includes the umbrella facade"),
        ("unknown module", r"src/mystery/new\.hpp:1: module 'mystery' is not in the layering spec"),
    ]
    for label, pat in expectations:
        if not re.search(pat, joined):
            failures.append(f"bad fixture tree: expected a '{label}' violation matching "
                            f"/{pat}/, checker reported:\n{joined or '  (nothing)'}")
    # A commented-out upward include must NOT be flagged.
    if re.search(r"src/tensor/commented\.hpp", joined):
        failures.append("bad fixture tree: commented-out include was flagged")

    # The cycle detector must reject a looped spec.
    looped = {m: set(d) for m, d in DIRECT_DEPS.items()}
    looped["core"] = {"serve"}
    cycle_errors = topo_check(looped)
    if not any("cycle" in e for e in cycle_errors):
        failures.append("topo_check accepted a spec with core -> serve -> ... -> core")

    if failures:
        print(f"layering self-test: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"layering self-test: OK ({ok_n}+{bad_n} fixture files, "
          f"{len(bad_errors)} seeded violations caught)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run against tools/lint_fixtures/layering/ instead of the tree")
    args = parser.parse_args()

    if args.self_test:
        return self_test(pathlib.Path(__file__).resolve().parent
                         / "lint_fixtures" / "layering")

    errors, n_files = scan_tree(args.root.resolve())
    if errors:
        print(f"module layering: {len(errors)} violation(s) in {n_files} scanned files:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"module layering: OK ({n_files} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
