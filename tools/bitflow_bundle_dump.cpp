// Inspects a flight-recorder diagnostic bundle: verifies the manifest
// (version, section sizes, FNV-1a checksums), re-parses trace.json checking
// per-thread span well-nesting, parses metrics.prom, and prints a summary.
//
//   bitflow_bundle_dump <bundle-dir>            load + validate + summarize
//   bitflow_bundle_dump <bundle-dir> --rid <n>  also require request n's
//                                               wire-to-kernel span chain
//   bitflow_bundle_dump --self-test             fixture round-trip (ctest)
//
// Exit status is 0 only when every check passes, so the tool doubles as the
// bundle acceptance gate in tests and CI.
//
// --self-test needs no pre-built fixture: it arms the recorder into a temp
// directory, logs events, fires a manual trigger, and validates the bundle
// it just wrote — then corrupts the bundle on disk (section bit flip,
// manifest truncation, section removal) and asserts the loader fails closed
// on each, mirroring the fuzz discipline of flight_recorder_test.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "telemetry/flight_recorder.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bitflow;

int fail(const char* what, const core::Status& st) {
  std::fprintf(stderr, "bitflow_bundle_dump: %s: %s\n", what, st.to_string().c_str());
  return 1;
}

int dump(const std::string& dir, std::uint64_t rid, bool want_rid) {
  auto loaded = telemetry::load_bundle(dir);
  if (!loaded.is_ok()) return fail("load failed", loaded.status());
  const telemetry::Bundle bundle = std::move(loaded).value();
  const core::Status st = telemetry::validate_bundle(bundle);
  if (!st.ok()) return fail("validation failed", st);
  std::fputs(telemetry::bundle_summary(bundle).c_str(), stdout);
  if (want_rid) {
    if (!telemetry::bundle_has_request_chain(bundle, rid)) {
      std::fprintf(stderr,
                   "bitflow_bundle_dump: request %llu has no complete "
                   "wire-to-kernel span chain in trace.json\n",
                   static_cast<unsigned long long>(rid));
      return 1;
    }
    std::printf("request %llu: wire-to-kernel chain present\n",
                static_cast<unsigned long long>(rid));
  }
  return 0;
}

// --- self-test ------------------------------------------------------------

#define CHECK(cond)                                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "self-test FAILED at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      return 1;                                                             \
    }                                                                       \
  } while (0)

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const std::string& body) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

int self_test() {
  const fs::path root =
      fs::temp_directory_path() /
      ("bitflow_bundle_dump_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(root, ec);

  // Produce a real bundle the way the serving tier would.
  telemetry::FlightRecorderConfig cfg;
  cfg.dir = root.string();
  cfg.event_capacity = 64;
  cfg.min_bundle_interval = std::chrono::milliseconds(0);
  cfg.max_bundles = 4;
  telemetry::flight_start(cfg);
  telemetry::flight_add_context(&cfg, "selftest",
                                [] { return std::string("fixture section\n"); });
  telemetry::flight_event("shed", "self-test shed", 7);
  telemetry::flight_event("reload", "self-test reload");
  CHECK(telemetry::flight_trigger(telemetry::FlightTrigger::kManual,
                                  "bundle_dump self-test"));
  telemetry::flight_remove_contexts(&cfg);
  telemetry::flight_stop();

  const fs::path bundle_dir = root / "bundle-000001";
  CHECK(fs::exists(bundle_dir / "MANIFEST.json"));

  // The happy path: load, validate, summarize, and check fixture contents.
  auto loaded = telemetry::load_bundle(bundle_dir.string());
  CHECK(loaded.is_ok());
  const telemetry::Bundle bundle = std::move(loaded).value();
  CHECK(telemetry::validate_bundle(bundle).ok());
  CHECK(bundle.manifest.version == telemetry::kBundleManifestVersion);
  CHECK(bundle.manifest.trigger == "manual");
  CHECK(bundle.sections.count("selftest.txt") == 1);
  CHECK(bundle.sections.at("selftest.txt") == "fixture section\n");
  CHECK(bundle.sections.at("events.log").find("self-test shed") != std::string::npos);
  CHECK(!telemetry::bundle_summary(bundle).empty());
  // No traffic ran, so no request chain may be claimed.
  CHECK(!telemetry::bundle_has_request_chain(bundle, 7));

  // Corruption 1: flip one byte inside a checksummed section.
  {
    const fs::path victim = bundle_dir / "events.log";
    std::string body = read_file(victim);
    CHECK(!body.empty());
    body[body.size() / 2] ^= 0x20;
    write_file(victim, body);
    CHECK(!telemetry::load_bundle(bundle_dir.string()).is_ok());
    body[body.size() / 2] ^= 0x20;  // restore
    write_file(victim, body);
    CHECK(telemetry::load_bundle(bundle_dir.string()).is_ok());
  }

  // Corruption 2: truncate a listed section (size mismatch).
  {
    const fs::path victim = bundle_dir / "metrics.prom";
    const std::string body = read_file(victim);
    write_file(victim, body.substr(0, body.size() / 2));
    CHECK(!telemetry::load_bundle(bundle_dir.string()).is_ok());
    write_file(victim, body);  // restore
  }

  // Corruption 3: delete a required section entirely.
  {
    const fs::path victim = bundle_dir / "trace.json";
    const std::string body = read_file(victim);
    fs::remove(victim, ec);
    CHECK(!telemetry::load_bundle(bundle_dir.string()).is_ok());
    write_file(victim, body);  // restore
  }

  // Corruption 4: truncate the manifest itself.
  {
    const fs::path manifest = bundle_dir / "MANIFEST.json";
    const std::string body = read_file(manifest);
    write_file(manifest, body.substr(0, body.size() / 3));
    CHECK(!telemetry::load_bundle(bundle_dir.string()).is_ok());
    write_file(manifest, body);  // restore
  }

  // A directory that is not a bundle at all fails closed too.
  CHECK(!telemetry::load_bundle((root / "nope").string()).is_ok());

  // Restored bundle passes through the public entry point end to end.
  CHECK(dump(bundle_dir.string(), 0, false) == 0);

  fs::remove_all(root, ec);
  std::puts("bitflow_bundle_dump self-test OK");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--self-test") == 0) {
    return self_test();
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: bitflow_bundle_dump <bundle-dir> [--rid <n>]\n"
                 "       bitflow_bundle_dump --self-test\n");
    return 2;
  }
  std::uint64_t rid = 0;
  bool want_rid = false;
  if (argc >= 4 && std::strcmp(argv[2], "--rid") == 0) {
    rid = std::strtoull(argv[3], nullptr, 10);
    want_rid = true;
  }
  return dump(argv[1], rid, want_rid);
}
