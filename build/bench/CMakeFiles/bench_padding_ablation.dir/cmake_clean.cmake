file(REMOVE_RECURSE
  "CMakeFiles/bench_padding_ablation.dir/bench_padding_ablation.cpp.o"
  "CMakeFiles/bench_padding_ablation.dir/bench_padding_ablation.cpp.o.d"
  "bench_padding_ablation"
  "bench_padding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_padding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
