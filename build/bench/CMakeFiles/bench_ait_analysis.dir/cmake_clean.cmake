file(REMOVE_RECURSE
  "CMakeFiles/bench_ait_analysis.dir/bench_ait_analysis.cpp.o"
  "CMakeFiles/bench_ait_analysis.dir/bench_ait_analysis.cpp.o.d"
  "bench_ait_analysis"
  "bench_ait_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ait_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
