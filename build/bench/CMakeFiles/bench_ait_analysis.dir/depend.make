# Empty dependencies file for bench_ait_analysis.
# This may be replaced when dependencies are built.
