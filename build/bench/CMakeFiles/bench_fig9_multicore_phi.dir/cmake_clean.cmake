file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multicore_phi.dir/bench_fig9_multicore_phi.cpp.o"
  "CMakeFiles/bench_fig9_multicore_phi.dir/bench_fig9_multicore_phi.cpp.o.d"
  "bench_fig9_multicore_phi"
  "bench_fig9_multicore_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multicore_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
