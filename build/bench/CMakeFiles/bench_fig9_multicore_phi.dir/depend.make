# Empty dependencies file for bench_fig9_multicore_phi.
# This may be replaced when dependencies are built.
