# Empty dependencies file for bench_isa_ablation.
# This may be replaced when dependencies are built.
