file(REMOVE_RECURSE
  "CMakeFiles/bench_isa_ablation.dir/bench_isa_ablation.cpp.o"
  "CMakeFiles/bench_isa_ablation.dir/bench_isa_ablation.cpp.o.d"
  "bench_isa_ablation"
  "bench_isa_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isa_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
