# Empty dependencies file for bench_fig10_gpu_compare.
# This may be replaced when dependencies are built.
