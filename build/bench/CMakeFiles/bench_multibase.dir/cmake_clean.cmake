file(REMOVE_RECURSE
  "CMakeFiles/bench_multibase.dir/bench_multibase.cpp.o"
  "CMakeFiles/bench_multibase.dir/bench_multibase.cpp.o.d"
  "bench_multibase"
  "bench_multibase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multibase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
