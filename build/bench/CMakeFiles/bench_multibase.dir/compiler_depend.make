# Empty compiler generated dependencies file for bench_multibase.
# This may be replaced when dependencies are built.
