file(REMOVE_RECURSE
  "CMakeFiles/bench_simd_caps.dir/bench_simd_caps.cpp.o"
  "CMakeFiles/bench_simd_caps.dir/bench_simd_caps.cpp.o.d"
  "bench_simd_caps"
  "bench_simd_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simd_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
