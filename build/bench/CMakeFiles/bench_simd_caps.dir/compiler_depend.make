# Empty compiler generated dependencies file for bench_simd_caps.
# This may be replaced when dependencies are built.
