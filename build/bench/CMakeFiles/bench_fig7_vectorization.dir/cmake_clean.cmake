file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vectorization.dir/bench_fig7_vectorization.cpp.o"
  "CMakeFiles/bench_fig7_vectorization.dir/bench_fig7_vectorization.cpp.o.d"
  "bench_fig7_vectorization"
  "bench_fig7_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
