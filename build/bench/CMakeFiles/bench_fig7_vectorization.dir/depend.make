# Empty dependencies file for bench_fig7_vectorization.
# This may be replaced when dependencies are built.
