file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multicore_i7.dir/bench_fig8_multicore_i7.cpp.o"
  "CMakeFiles/bench_fig8_multicore_i7.dir/bench_fig8_multicore_i7.cpp.o.d"
  "bench_fig8_multicore_i7"
  "bench_fig8_multicore_i7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multicore_i7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
