# Empty compiler generated dependencies file for bench_fig8_multicore_i7.
# This may be replaced when dependencies are built.
