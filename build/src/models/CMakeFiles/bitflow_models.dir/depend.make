# Empty dependencies file for bitflow_models.
# This may be replaced when dependencies are built.
