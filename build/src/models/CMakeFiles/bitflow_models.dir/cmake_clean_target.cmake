file(REMOVE_RECURSE
  "libbitflow_models.a"
)
