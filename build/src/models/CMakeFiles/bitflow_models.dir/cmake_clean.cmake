file(REMOVE_RECURSE
  "CMakeFiles/bitflow_models.dir/vgg.cpp.o"
  "CMakeFiles/bitflow_models.dir/vgg.cpp.o.d"
  "libbitflow_models.a"
  "libbitflow_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
