file(REMOVE_RECURSE
  "libbitflow_graph.a"
)
