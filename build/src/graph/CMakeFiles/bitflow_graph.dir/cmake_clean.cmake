file(REMOVE_RECURSE
  "CMakeFiles/bitflow_graph.dir/network.cpp.o"
  "CMakeFiles/bitflow_graph.dir/network.cpp.o.d"
  "CMakeFiles/bitflow_graph.dir/scheduler.cpp.o"
  "CMakeFiles/bitflow_graph.dir/scheduler.cpp.o.d"
  "libbitflow_graph.a"
  "libbitflow_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
