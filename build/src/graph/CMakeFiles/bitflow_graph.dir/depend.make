# Empty dependencies file for bitflow_graph.
# This may be replaced when dependencies are built.
