# Empty dependencies file for bitflow_core.
# This may be replaced when dependencies are built.
