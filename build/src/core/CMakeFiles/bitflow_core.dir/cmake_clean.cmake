file(REMOVE_RECURSE
  "CMakeFiles/bitflow_core.dir/ait.cpp.o"
  "CMakeFiles/bitflow_core.dir/ait.cpp.o.d"
  "CMakeFiles/bitflow_core.dir/bitflow.cpp.o"
  "CMakeFiles/bitflow_core.dir/bitflow.cpp.o.d"
  "libbitflow_core.a"
  "libbitflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
