file(REMOVE_RECURSE
  "libbitflow_core.a"
)
