file(REMOVE_RECURSE
  "CMakeFiles/bitflow_data.dir/synthetic.cpp.o"
  "CMakeFiles/bitflow_data.dir/synthetic.cpp.o.d"
  "libbitflow_data.a"
  "libbitflow_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
