# Empty dependencies file for bitflow_data.
# This may be replaced when dependencies are built.
