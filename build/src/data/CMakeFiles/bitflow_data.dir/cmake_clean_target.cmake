file(REMOVE_RECURSE
  "libbitflow_data.a"
)
