file(REMOVE_RECURSE
  "libbitflow_bitpack.a"
)
