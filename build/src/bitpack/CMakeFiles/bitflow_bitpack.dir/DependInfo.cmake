
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitpack/pack_avx2.cpp" "src/bitpack/CMakeFiles/bitflow_bitpack.dir/pack_avx2.cpp.o" "gcc" "src/bitpack/CMakeFiles/bitflow_bitpack.dir/pack_avx2.cpp.o.d"
  "/root/repo/src/bitpack/packer.cpp" "src/bitpack/CMakeFiles/bitflow_bitpack.dir/packer.cpp.o" "gcc" "src/bitpack/CMakeFiles/bitflow_bitpack.dir/packer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/bitflow_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/bitflow_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bitflow_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
