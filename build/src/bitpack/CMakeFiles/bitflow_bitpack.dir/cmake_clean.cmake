file(REMOVE_RECURSE
  "CMakeFiles/bitflow_bitpack.dir/pack_avx2.cpp.o"
  "CMakeFiles/bitflow_bitpack.dir/pack_avx2.cpp.o.d"
  "CMakeFiles/bitflow_bitpack.dir/packer.cpp.o"
  "CMakeFiles/bitflow_bitpack.dir/packer.cpp.o.d"
  "libbitflow_bitpack.a"
  "libbitflow_bitpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_bitpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
