# Empty compiler generated dependencies file for bitflow_bitpack.
# This may be replaced when dependencies are built.
