file(REMOVE_RECURSE
  "CMakeFiles/bitflow_simd.dir/bitops_avx2.cpp.o"
  "CMakeFiles/bitflow_simd.dir/bitops_avx2.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/bitops_avx512.cpp.o"
  "CMakeFiles/bitflow_simd.dir/bitops_avx512.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/bitops_avx512vp.cpp.o"
  "CMakeFiles/bitflow_simd.dir/bitops_avx512vp.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/bitops_sse.cpp.o"
  "CMakeFiles/bitflow_simd.dir/bitops_sse.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/bitops_u64.cpp.o"
  "CMakeFiles/bitflow_simd.dir/bitops_u64.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/cpu_features.cpp.o"
  "CMakeFiles/bitflow_simd.dir/cpu_features.cpp.o.d"
  "CMakeFiles/bitflow_simd.dir/dispatch.cpp.o"
  "CMakeFiles/bitflow_simd.dir/dispatch.cpp.o.d"
  "libbitflow_simd.a"
  "libbitflow_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
