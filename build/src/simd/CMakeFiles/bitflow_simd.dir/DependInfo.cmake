
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simd/bitops_avx2.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx2.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx2.cpp.o.d"
  "/root/repo/src/simd/bitops_avx512.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx512.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx512.cpp.o.d"
  "/root/repo/src/simd/bitops_avx512vp.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx512vp.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_avx512vp.cpp.o.d"
  "/root/repo/src/simd/bitops_sse.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_sse.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_sse.cpp.o.d"
  "/root/repo/src/simd/bitops_u64.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_u64.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/bitops_u64.cpp.o.d"
  "/root/repo/src/simd/cpu_features.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/cpu_features.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/cpu_features.cpp.o.d"
  "/root/repo/src/simd/dispatch.cpp" "src/simd/CMakeFiles/bitflow_simd.dir/dispatch.cpp.o" "gcc" "src/simd/CMakeFiles/bitflow_simd.dir/dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
