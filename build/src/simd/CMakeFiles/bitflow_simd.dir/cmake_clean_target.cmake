file(REMOVE_RECURSE
  "libbitflow_simd.a"
)
