# Empty dependencies file for bitflow_simd.
# This may be replaced when dependencies are built.
