file(REMOVE_RECURSE
  "libbitflow_train.a"
)
