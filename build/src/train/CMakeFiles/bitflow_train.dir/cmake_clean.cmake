file(REMOVE_RECURSE
  "CMakeFiles/bitflow_train.dir/export.cpp.o"
  "CMakeFiles/bitflow_train.dir/export.cpp.o.d"
  "CMakeFiles/bitflow_train.dir/layers.cpp.o"
  "CMakeFiles/bitflow_train.dir/layers.cpp.o.d"
  "CMakeFiles/bitflow_train.dir/models.cpp.o"
  "CMakeFiles/bitflow_train.dir/models.cpp.o.d"
  "CMakeFiles/bitflow_train.dir/sequential.cpp.o"
  "CMakeFiles/bitflow_train.dir/sequential.cpp.o.d"
  "libbitflow_train.a"
  "libbitflow_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
