# Empty compiler generated dependencies file for bitflow_train.
# This may be replaced when dependencies are built.
