file(REMOVE_RECURSE
  "CMakeFiles/bitflow_gpuref.dir/gpu_reference.cpp.o"
  "CMakeFiles/bitflow_gpuref.dir/gpu_reference.cpp.o.d"
  "libbitflow_gpuref.a"
  "libbitflow_gpuref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_gpuref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
