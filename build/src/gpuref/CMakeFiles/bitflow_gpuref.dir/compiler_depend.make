# Empty compiler generated dependencies file for bitflow_gpuref.
# This may be replaced when dependencies are built.
