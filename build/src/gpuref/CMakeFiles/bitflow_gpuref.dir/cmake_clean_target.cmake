file(REMOVE_RECURSE
  "libbitflow_gpuref.a"
)
