# Empty dependencies file for bitflow_runtime.
# This may be replaced when dependencies are built.
