file(REMOVE_RECURSE
  "CMakeFiles/bitflow_runtime.dir/scaling_sim.cpp.o"
  "CMakeFiles/bitflow_runtime.dir/scaling_sim.cpp.o.d"
  "CMakeFiles/bitflow_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/bitflow_runtime.dir/thread_pool.cpp.o.d"
  "CMakeFiles/bitflow_runtime.dir/timer.cpp.o"
  "CMakeFiles/bitflow_runtime.dir/timer.cpp.o.d"
  "libbitflow_runtime.a"
  "libbitflow_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
