file(REMOVE_RECURSE
  "libbitflow_runtime.a"
)
