
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bgemm.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/bgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/bgemm.cpp.o.d"
  "/root/repo/src/kernels/binary_maxpool.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/binary_maxpool.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/binary_maxpool.cpp.o.d"
  "/root/repo/src/kernels/padding.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/padding.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/padding.cpp.o.d"
  "/root/repo/src/kernels/pressedconv.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv.cpp.o.d"
  "/root/repo/src/kernels/pressedconv_avx2.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx2.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx2.cpp.o.d"
  "/root/repo/src/kernels/pressedconv_avx512.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx512.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx512.cpp.o.d"
  "/root/repo/src/kernels/pressedconv_avx512vp.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx512vp.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_avx512vp.cpp.o.d"
  "/root/repo/src/kernels/pressedconv_sse.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_sse.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_sse.cpp.o.d"
  "/root/repo/src/kernels/pressedconv_u64.cpp" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_u64.cpp.o" "gcc" "src/kernels/CMakeFiles/bitflow_kernels.dir/pressedconv_u64.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/bitflow_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/bitflow_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bitflow_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
