# Empty compiler generated dependencies file for bitflow_kernels.
# This may be replaced when dependencies are built.
