file(REMOVE_RECURSE
  "CMakeFiles/bitflow_kernels.dir/bgemm.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/bgemm.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/binary_maxpool.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/binary_maxpool.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/padding.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/padding.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx2.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx2.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx512.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx512.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx512vp.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_avx512vp.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_sse.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_sse.cpp.o.d"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_u64.cpp.o"
  "CMakeFiles/bitflow_kernels.dir/pressedconv_u64.cpp.o.d"
  "libbitflow_kernels.a"
  "libbitflow_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
