file(REMOVE_RECURSE
  "libbitflow_kernels.a"
)
