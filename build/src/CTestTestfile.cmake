# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tensor")
subdirs("runtime")
subdirs("simd")
subdirs("bitpack")
subdirs("kernels")
subdirs("baseline")
subdirs("ops")
subdirs("graph")
subdirs("io")
subdirs("models")
subdirs("train")
subdirs("data")
subdirs("gpuref")
subdirs("core")
