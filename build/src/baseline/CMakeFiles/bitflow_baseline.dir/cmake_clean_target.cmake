file(REMOVE_RECURSE
  "libbitflow_baseline.a"
)
