# Empty compiler generated dependencies file for bitflow_baseline.
# This may be replaced when dependencies are built.
