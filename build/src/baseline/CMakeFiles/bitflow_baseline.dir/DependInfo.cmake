
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/float_ops.cpp" "src/baseline/CMakeFiles/bitflow_baseline.dir/float_ops.cpp.o" "gcc" "src/baseline/CMakeFiles/bitflow_baseline.dir/float_ops.cpp.o.d"
  "/root/repo/src/baseline/sgemm.cpp" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm.cpp.o" "gcc" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm.cpp.o.d"
  "/root/repo/src/baseline/sgemm_avx2.cpp" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm_avx2.cpp.o" "gcc" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm_avx2.cpp.o.d"
  "/root/repo/src/baseline/sgemm_generic.cpp" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm_generic.cpp.o" "gcc" "src/baseline/CMakeFiles/bitflow_baseline.dir/sgemm_generic.cpp.o.d"
  "/root/repo/src/baseline/unopt_binary.cpp" "src/baseline/CMakeFiles/bitflow_baseline.dir/unopt_binary.cpp.o" "gcc" "src/baseline/CMakeFiles/bitflow_baseline.dir/unopt_binary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/bitflow_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/bitflow_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bitflow_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bitflow_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
