file(REMOVE_RECURSE
  "CMakeFiles/bitflow_baseline.dir/float_ops.cpp.o"
  "CMakeFiles/bitflow_baseline.dir/float_ops.cpp.o.d"
  "CMakeFiles/bitflow_baseline.dir/sgemm.cpp.o"
  "CMakeFiles/bitflow_baseline.dir/sgemm.cpp.o.d"
  "CMakeFiles/bitflow_baseline.dir/sgemm_avx2.cpp.o"
  "CMakeFiles/bitflow_baseline.dir/sgemm_avx2.cpp.o.d"
  "CMakeFiles/bitflow_baseline.dir/sgemm_generic.cpp.o"
  "CMakeFiles/bitflow_baseline.dir/sgemm_generic.cpp.o.d"
  "CMakeFiles/bitflow_baseline.dir/unopt_binary.cpp.o"
  "CMakeFiles/bitflow_baseline.dir/unopt_binary.cpp.o.d"
  "libbitflow_baseline.a"
  "libbitflow_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
