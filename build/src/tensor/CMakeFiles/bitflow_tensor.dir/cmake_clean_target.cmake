file(REMOVE_RECURSE
  "libbitflow_tensor.a"
)
