file(REMOVE_RECURSE
  "CMakeFiles/bitflow_tensor.dir/util.cpp.o"
  "CMakeFiles/bitflow_tensor.dir/util.cpp.o.d"
  "libbitflow_tensor.a"
  "libbitflow_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
