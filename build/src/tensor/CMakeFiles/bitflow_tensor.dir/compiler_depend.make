# Empty compiler generated dependencies file for bitflow_tensor.
# This may be replaced when dependencies are built.
