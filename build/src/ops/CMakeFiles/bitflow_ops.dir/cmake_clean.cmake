file(REMOVE_RECURSE
  "CMakeFiles/bitflow_ops.dir/multibase.cpp.o"
  "CMakeFiles/bitflow_ops.dir/multibase.cpp.o.d"
  "CMakeFiles/bitflow_ops.dir/operators.cpp.o"
  "CMakeFiles/bitflow_ops.dir/operators.cpp.o.d"
  "libbitflow_ops.a"
  "libbitflow_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
