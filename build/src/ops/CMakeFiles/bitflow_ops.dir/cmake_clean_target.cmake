file(REMOVE_RECURSE
  "libbitflow_ops.a"
)
