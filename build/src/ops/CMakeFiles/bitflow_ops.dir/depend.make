# Empty dependencies file for bitflow_ops.
# This may be replaced when dependencies are built.
