file(REMOVE_RECURSE
  "libbitflow_io.a"
)
