file(REMOVE_RECURSE
  "CMakeFiles/bitflow_io.dir/model.cpp.o"
  "CMakeFiles/bitflow_io.dir/model.cpp.o.d"
  "libbitflow_io.a"
  "libbitflow_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
