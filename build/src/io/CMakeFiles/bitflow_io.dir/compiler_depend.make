# Empty compiler generated dependencies file for bitflow_io.
# This may be replaced when dependencies are built.
