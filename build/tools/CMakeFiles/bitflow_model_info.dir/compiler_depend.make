# Empty compiler generated dependencies file for bitflow_model_info.
# This may be replaced when dependencies are built.
