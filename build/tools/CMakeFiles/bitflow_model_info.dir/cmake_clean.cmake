file(REMOVE_RECURSE
  "CMakeFiles/bitflow_model_info.dir/bitflow_model_info.cpp.o"
  "CMakeFiles/bitflow_model_info.dir/bitflow_model_info.cpp.o.d"
  "bitflow_model_info"
  "bitflow_model_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_model_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
