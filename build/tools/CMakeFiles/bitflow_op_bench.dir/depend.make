# Empty dependencies file for bitflow_op_bench.
# This may be replaced when dependencies are built.
