file(REMOVE_RECURSE
  "CMakeFiles/bitflow_op_bench.dir/bitflow_op_bench.cpp.o"
  "CMakeFiles/bitflow_op_bench.dir/bitflow_op_bench.cpp.o.d"
  "bitflow_op_bench"
  "bitflow_op_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflow_op_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
