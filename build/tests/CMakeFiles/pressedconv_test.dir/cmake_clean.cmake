file(REMOVE_RECURSE
  "CMakeFiles/pressedconv_test.dir/pressedconv_test.cpp.o"
  "CMakeFiles/pressedconv_test.dir/pressedconv_test.cpp.o.d"
  "pressedconv_test"
  "pressedconv_test.pdb"
  "pressedconv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressedconv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
