# Empty compiler generated dependencies file for pressedconv_test.
# This may be replaced when dependencies are built.
