# Empty compiler generated dependencies file for ait_test.
# This may be replaced when dependencies are built.
