file(REMOVE_RECURSE
  "CMakeFiles/ait_test.dir/ait_test.cpp.o"
  "CMakeFiles/ait_test.dir/ait_test.cpp.o.d"
  "ait_test"
  "ait_test.pdb"
  "ait_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ait_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
