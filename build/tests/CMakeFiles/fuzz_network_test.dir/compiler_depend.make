# Empty compiler generated dependencies file for fuzz_network_test.
# This may be replaced when dependencies are built.
