file(REMOVE_RECURSE
  "CMakeFiles/fuzz_network_test.dir/fuzz_network_test.cpp.o"
  "CMakeFiles/fuzz_network_test.dir/fuzz_network_test.cpp.o.d"
  "fuzz_network_test"
  "fuzz_network_test.pdb"
  "fuzz_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
