# Empty dependencies file for gpuref_test.
# This may be replaced when dependencies are built.
