file(REMOVE_RECURSE
  "CMakeFiles/gpuref_test.dir/gpuref_test.cpp.o"
  "CMakeFiles/gpuref_test.dir/gpuref_test.cpp.o.d"
  "gpuref_test"
  "gpuref_test.pdb"
  "gpuref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
