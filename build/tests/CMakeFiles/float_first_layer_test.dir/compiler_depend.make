# Empty compiler generated dependencies file for float_first_layer_test.
# This may be replaced when dependencies are built.
