file(REMOVE_RECURSE
  "CMakeFiles/float_first_layer_test.dir/float_first_layer_test.cpp.o"
  "CMakeFiles/float_first_layer_test.dir/float_first_layer_test.cpp.o.d"
  "float_first_layer_test"
  "float_first_layer_test.pdb"
  "float_first_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_first_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
