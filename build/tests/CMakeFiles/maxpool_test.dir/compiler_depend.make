# Empty compiler generated dependencies file for maxpool_test.
# This may be replaced when dependencies are built.
