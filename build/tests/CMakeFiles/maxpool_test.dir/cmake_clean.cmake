file(REMOVE_RECURSE
  "CMakeFiles/maxpool_test.dir/maxpool_test.cpp.o"
  "CMakeFiles/maxpool_test.dir/maxpool_test.cpp.o.d"
  "maxpool_test"
  "maxpool_test.pdb"
  "maxpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
