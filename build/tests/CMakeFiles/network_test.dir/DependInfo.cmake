
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/network_test.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/network_test.dir/network_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bitflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/bitflow_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/bitflow_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/bitflow_train.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bitflow_io.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bitflow_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bitflow_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bitflow_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/bitpack/CMakeFiles/bitflow_bitpack.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/bitflow_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bitflow_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bitflow_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bitflow_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuref/CMakeFiles/bitflow_gpuref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
