# Empty dependencies file for multibase_test.
# This may be replaced when dependencies are built.
