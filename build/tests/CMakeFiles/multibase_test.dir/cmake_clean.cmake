file(REMOVE_RECURSE
  "CMakeFiles/multibase_test.dir/multibase_test.cpp.o"
  "CMakeFiles/multibase_test.dir/multibase_test.cpp.o.d"
  "multibase_test"
  "multibase_test.pdb"
  "multibase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
