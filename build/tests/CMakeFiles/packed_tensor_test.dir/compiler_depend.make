# Empty compiler generated dependencies file for packed_tensor_test.
# This may be replaced when dependencies are built.
