file(REMOVE_RECURSE
  "CMakeFiles/packed_tensor_test.dir/packed_tensor_test.cpp.o"
  "CMakeFiles/packed_tensor_test.dir/packed_tensor_test.cpp.o.d"
  "packed_tensor_test"
  "packed_tensor_test.pdb"
  "packed_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
