# Empty dependencies file for bgemm_test.
# This may be replaced when dependencies are built.
