file(REMOVE_RECURSE
  "CMakeFiles/bgemm_test.dir/bgemm_test.cpp.o"
  "CMakeFiles/bgemm_test.dir/bgemm_test.cpp.o.d"
  "bgemm_test"
  "bgemm_test.pdb"
  "bgemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
