# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/packed_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/bitpack_test[1]_include.cmake")
include("/root/repo/build/tests/pressedconv_test[1]_include.cmake")
include("/root/repo/build/tests/bgemm_test[1]_include.cmake")
include("/root/repo/build/tests/maxpool_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/ait_test[1]_include.cmake")
include("/root/repo/build/tests/gpuref_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/multibase_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_network_test[1]_include.cmake")
include("/root/repo/build/tests/float_first_layer_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_extra_test[1]_include.cmake")
