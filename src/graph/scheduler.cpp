#include "graph/scheduler.hpp"

namespace bitflow::graph {

simd::IsaLevel select_isa(std::int64_t channels, const simd::CpuFeatures& f,
                          SchedulerPolicy policy) {
  if (policy == SchedulerPolicy::kWidest) return f.best_isa();
  if (channels % 512 == 0 && f.supports(simd::IsaLevel::kAvx512)) return simd::IsaLevel::kAvx512;
  if (channels % 256 == 0 && f.supports(simd::IsaLevel::kAvx2)) return simd::IsaLevel::kAvx2;
  if (channels % 128 == 0 && f.supports(simd::IsaLevel::kSse)) return simd::IsaLevel::kSse;
  return simd::IsaLevel::kU64;
}

std::string explain_isa_selection(std::int64_t channels, const simd::CpuFeatures& f,
                                  SchedulerPolicy policy) {
  const simd::IsaLevel isa = select_isa(channels, f, policy);
  std::string s = "C=" + std::to_string(channels) + " -> " + std::string(isa_name(isa));
  if (policy == SchedulerPolicy::kWidest) {
    s += " (widest hardware ISA)";
    return s;
  }
  if (channels % 512 == 0 && f.supports(simd::IsaLevel::kAvx512)) {
    s += " (rule 1: multiple of 512, AVX-512 available)";
  } else if (channels % 256 == 0 && f.supports(simd::IsaLevel::kAvx2)) {
    s += " (rule 2: multiple of 256, AVX2 available)";
  } else if (channels % 128 == 0 && f.supports(simd::IsaLevel::kSse)) {
    s += " (rule 3: multiple of 128, SSE available)";
  } else if (channels % 32 == 0) {
    s += " (rule 4: multiple of 32, scalar word kernel)";
  } else {
    s += " (rule 4: channel tail zero-padded, scalar word kernel)";
  }
  return s;
}

}  // namespace bitflow::graph
