// The "shape inferer" component of the vector execution scheduler (paper
// Sec. III-B): computes every operator's output extents from the network
// input size and the filter geometry, so buffers can be pre-allocated and
// kernels selected before the first inference.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/check.hpp"
#include "kernels/binary_maxpool.hpp"
#include "kernels/conv_spec.hpp"

namespace bitflow::graph {

/// Logical (unpadded) extents of an activation tensor flowing through the
/// graph.  FC activations are represented as 1 x 1 x N.
struct TensorDesc {
  std::int64_t h = 0;
  std::int64_t w = 0;
  std::int64_t c = 0;

  [[nodiscard]] std::int64_t num_elements() const noexcept { return h * w * c; }
  [[nodiscard]] bool operator==(const TensorDesc&) const = default;
};

/// Output extents of a convolution with symmetric input padding `pad`.
[[nodiscard]] inline TensorDesc infer_conv(const TensorDesc& in, const kernels::ConvSpec& spec,
                                           std::int64_t pad, std::int64_t out_channels) {
  BF_CHECK(in.h >= 1 && in.w >= 1 && in.c >= 1, "infer_conv: degenerate input ", in.h, "x", in.w,
           "x", in.c);
  BF_CHECK(pad >= 0, "infer_conv: negative padding ", pad);
  BF_CHECK(out_channels >= 1, "infer_conv: out_channels ", out_channels);
  spec.validate();
  const std::int64_t ph = in.h + 2 * pad;
  const std::int64_t pw = in.w + 2 * pad;
  if (ph < spec.kernel_h || pw < spec.kernel_w) {
    throw std::invalid_argument("infer_conv: kernel does not fit padded input");
  }
  return {spec.out_h(ph), spec.out_w(pw), out_channels};
}

/// Output extents of a max pooling operator.
[[nodiscard]] inline TensorDesc infer_pool(const TensorDesc& in, const kernels::PoolSpec& spec) {
  BF_CHECK(in.h >= 1 && in.w >= 1 && in.c >= 1, "infer_pool: degenerate input ", in.h, "x", in.w,
           "x", in.c);
  BF_CHECK(spec.pool_h >= 1 && spec.pool_w >= 1 && spec.stride >= 1, "infer_pool: bad window ",
           spec.pool_h, "x", spec.pool_w, " stride ", spec.stride);
  const std::int64_t oh = spec.out_h(in.h);
  const std::int64_t ow = spec.out_w(in.w);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("infer_pool: window does not fit");
  return {oh, ow, in.c};
}

/// Output extents of a fully connected operator with `k` outputs; the input
/// is flattened HWC.
[[nodiscard]] inline TensorDesc infer_fc(const TensorDesc& in, std::int64_t k) {
  if (in.num_elements() <= 0) throw std::invalid_argument("infer_fc: empty input");
  return {1, 1, k};
}

}  // namespace bitflow::graph
