#include "graph/network.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "baseline/float_ops.hpp"
#include "bitpack/packer.hpp"
#include "core/failpoint.hpp"
#include "runtime/timer.hpp"

namespace bitflow::graph {

namespace {

/// A layer as described by the user, before finalize() lowers it.
struct PendingLayer {
  LayerKind kind = LayerKind::kConv;
  std::string name;
  // conv
  FilterBank conv_weights;
  kernels::ConvSpec conv_spec;
  std::int64_t pad = 0;
  // pool
  kernels::PoolSpec pool_spec;
  // fc
  std::vector<float> fc_weights;
  std::int64_t fc_n = 0, fc_k = 0;
  // pre-packed weights (add_conv_packed / add_fc_packed)
  PackedFilterBank conv_packed;
  PackedMatrix fc_packed;
  bool prepacked = false;
  bool full_precision = false;  // first-layer float conv
  // shared
  std::vector<float> thresholds;
};

/// A lowered, executable stage.
struct Stage {
  LayerKind kind = LayerKind::kConv;
  simd::IsaLevel isa = simd::IsaLevel::kU64;
  bool is_last = false;  ///< last stage emits float scores, not bits

  // conv
  kernels::ConvSpec conv_spec;
  PackedFilterBank filters;
  kernels::ConvBinarizeFn conv_bin = nullptr;
  kernels::ConvDotFn conv_dot = nullptr;
  // first-layer full-precision conv
  bool full_precision = false;
  std::vector<float> float_weights_t;  // (kh*kw*C) x K, im2col layout
  std::int64_t float_k = 0;

  // pool
  kernels::PoolSpec pool_spec;

  // fc
  PackedMatrix fc_weights;  // k x n bits (pre-transposed at finalize)
  kernels::BgemmFn fc_dot = nullptr;
  kernels::BgemmBinarizeFn fc_bin = nullptr;

  std::vector<float> thresholds;  // empty = sign at zero

  // buffer routing (indices into Impl buffers)
  int in_act = -1, out_act = -1;  // packed activation tensors
  int in_fc = -1, out_fc = -1;    // packed fc bit rows
  std::int64_t out_margin = 0;    // interior offset in the output buffer
  bool flatten_input = false;     // conv/pool output -> fc row transition
};

}  // namespace

struct BinaryNetwork::Impl {
  NetworkConfig cfg;
  runtime::ThreadPool pool;
  std::vector<PendingLayer> pending;
  bool finalized = false;

  // Finalized state.
  TensorDesc input{};
  std::int64_t input_margin = 0;
  std::vector<LayerInfo> infos;
  std::vector<Stage> stages;
  std::vector<PackedTensor> acts;     // pre-allocated activation buffers
  std::vector<PackedMatrix> fc_bits;  // pre-allocated fc bit rows
  std::vector<float> scores;          // final output
  Tensor last_conv_dot;               // float buffer if the last stage is a conv
  Tensor f_in_padded;                 // padded float input (full-precision first conv)
  Tensor f_dots;                      // its convolution outputs
  std::vector<float> f_cols;          // its im2col scratch
  std::vector<double> profile_ms;
  std::int64_t weight_bytes = 0;

  explicit Impl(NetworkConfig c) : cfg(c), pool(c.num_threads) {
    if (c.num_threads < 1) throw std::invalid_argument("NetworkConfig: num_threads >= 1");
  }
};

BinaryNetwork::BinaryNetwork(NetworkConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}
BinaryNetwork::BinaryNetwork(BinaryNetwork&&) noexcept = default;
BinaryNetwork& BinaryNetwork::operator=(BinaryNetwork&&) noexcept = default;
BinaryNetwork::~BinaryNetwork() = default;

void BinaryNetwork::add_conv(std::string name, FilterBank weights, std::int64_t stride,
                             std::int64_t pad, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(weights.num_filters())) {
    throw std::invalid_argument("add_conv: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{weights.kernel_h(), weights.kernel_w(), stride};
  l.conv_weights = std::move(weights);
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_conv_float(std::string name, FilterBank weights, std::int64_t stride,
                                   std::int64_t pad, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!impl_->pending.empty()) {
    throw std::invalid_argument("add_conv_float: only valid as the first layer");
  }
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(weights.num_filters())) {
    throw std::invalid_argument("add_conv_float: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{weights.kernel_h(), weights.kernel_w(), stride};
  l.conv_weights = std::move(weights);
  l.full_precision = true;
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_conv_packed(std::string name, PackedFilterBank filters,
                                    std::int64_t stride, std::int64_t pad,
                                    std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(filters.num_filters())) {
    throw std::invalid_argument("add_conv_packed: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{filters.kernel_h(), filters.kernel_w(), stride};
  l.conv_packed = std::move(filters);
  l.prepacked = true;
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_maxpool(std::string name, kernels::PoolSpec spec) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  PendingLayer l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.pool_spec = spec;
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_fc(std::string name, std::vector<float> weights, std::int64_t n,
                           std::int64_t k, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (weights.size() != static_cast<std::size_t>(n * k)) {
    throw std::invalid_argument("add_fc: weights must be n*k floats");
  }
  if (!thresholds.empty() && thresholds.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("add_fc: thresholds must have one entry per output");
  }
  PendingLayer l;
  l.kind = LayerKind::kFc;
  l.name = std::move(name);
  l.fc_weights = std::move(weights);
  l.fc_n = n;
  l.fc_k = k;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_fc_packed(std::string name, PackedMatrix weights,
                                  std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() && thresholds.size() != static_cast<std::size_t>(weights.rows())) {
    throw std::invalid_argument("add_fc_packed: thresholds must have one entry per output");
  }
  PendingLayer l;
  l.kind = LayerKind::kFc;
  l.name = std::move(name);
  l.fc_n = weights.cols();
  l.fc_k = weights.rows();
  l.fc_packed = std::move(weights);
  l.prepacked = true;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::finalize(TensorDesc input) {
  Impl& im = *impl_;
  if (im.finalized) throw std::logic_error("BinaryNetwork: finalize called twice");
  if (im.pending.empty()) throw std::logic_error("BinaryNetwork: no layers");
  const std::size_t n_layers = im.pending.size();
  const simd::CpuFeatures& hw = simd::cpu_features();
  if (im.cfg.max_isa.has_value() && !hw.supports(*im.cfg.max_isa)) {
    throw std::invalid_argument(
        "finalize: configured max_isa " + std::string(simd::isa_name(*im.cfg.max_isa)) +
        " is not executable on this CPU");
  }

  // Pass 1: shape inference + validation + ISA selection.
  im.input = input;
  TensorDesc cur = input;
  bool seen_fc = false;
  auto clamp_isa = [&](simd::IsaLevel isa) {
    // Armed simd.force_fallback degrades every layer to the scalar u64
    // kernels — the ISA-parity harness guarantees this changes nothing but
    // throughput, which is exactly what the fault matrix asserts.
    if (BF_FAILPOINT_TRIGGERED("simd.force_fallback")) return simd::IsaLevel::kU64;
    if (im.cfg.max_isa.has_value() &&
        static_cast<int>(isa) > static_cast<int>(*im.cfg.max_isa)) {
      return *im.cfg.max_isa;
    }
    return isa;
  };
  for (std::size_t i = 0; i < n_layers; ++i) {
    PendingLayer& l = im.pending[i];
    LayerInfo info;
    info.name = l.name;
    info.kind = l.kind;
    info.in = cur;
    switch (l.kind) {
      case LayerKind::kConv: {
        if (seen_fc) throw std::invalid_argument("BinaryNetwork: conv after fc unsupported");
        const std::int64_t layer_c =
            l.prepacked ? l.conv_packed.channels() : l.conv_weights.channels();
        const std::int64_t layer_k =
            l.prepacked ? l.conv_packed.num_filters() : l.conv_weights.num_filters();
        if (layer_c != cur.c) {
          throw std::invalid_argument("finalize: " + l.name + " channel mismatch");
        }
        cur = infer_conv(cur, l.conv_spec, l.pad, layer_k);
        info.pad = l.pad;
        info.full_precision = l.full_precision;
        if (l.full_precision) {
          info.isa = simd::IsaLevel::kU64;
          info.isa_reason = "full-precision first layer (im2col + sgemm)";
        } else {
          info.isa = clamp_isa(select_isa(layer_c, hw, im.cfg.policy));
          info.isa_reason = explain_isa_selection(layer_c, hw, im.cfg.policy);
        }
        break;
      }
      case LayerKind::kPool: {
        if (seen_fc) throw std::invalid_argument("BinaryNetwork: pool after fc unsupported");
        cur = infer_pool(cur, l.pool_spec);
        info.isa = clamp_isa(select_isa(cur.c, hw, im.cfg.policy));
        info.isa_reason = explain_isa_selection(cur.c, hw, im.cfg.policy);
        break;
      }
      case LayerKind::kFc: {
        if (cur.num_elements() != l.fc_n) {
          throw std::invalid_argument("finalize: " + l.name + " input size mismatch");
        }
        seen_fc = true;
        cur = infer_fc(cur, l.fc_k);
        info.isa = clamp_isa(select_isa(l.fc_n, hw, im.cfg.policy));
        info.isa_reason = explain_isa_selection(l.fc_n, hw, im.cfg.policy);
        break;
      }
    }
    info.out = cur;
    im.infos.push_back(std::move(info));
  }

  // Pass 2: memory planning.  The margin of each activation buffer equals
  // the padding its *consumer* wants, so padding is realized by writing
  // interiors (Fig. 5).  Buffer i is the input of layer i.
  auto consumer_margin = [&](std::size_t layer) -> std::int64_t {
    return (layer < n_layers && im.pending[layer].kind == LayerKind::kConv)
               ? im.pending[layer].pad
               : 0;
  };
  im.input_margin = consumer_margin(0);

  // Pass 3: lower layers to stages, pack weights, allocate buffers.
  // acts[i] holds the packed input of stage i (for conv/pool stages).
  TensorDesc flow = input;
  for (std::size_t i = 0; i < n_layers; ++i) {
    PendingLayer& l = im.pending[i];
    const LayerInfo& info = im.infos[i];
    Stage s;
    s.kind = l.kind;
    s.isa = info.isa;
    s.is_last = (i + 1 == n_layers);
    s.thresholds = std::move(l.thresholds);
    switch (l.kind) {
      case LayerKind::kConv: {
        s.conv_spec = l.conv_spec;
        if (l.full_precision) {
          s.full_precision = true;
          s.float_k = l.conv_weights.num_filters();
          s.float_weights_t = baseline::flatten_filters_transposed(l.conv_weights);
          im.weight_bytes +=
              static_cast<std::int64_t>(s.float_weights_t.size()) * 4;
          // Pre-allocate the padded float input and the dot buffer.
          im.f_in_padded = Tensor::hwc(flow.h + 2 * l.pad, flow.w + 2 * l.pad, flow.c);
          im.f_dots = Tensor::hwc(info.out.h, info.out.w, info.out.c);
        } else {
          s.filters =
              l.prepacked ? std::move(l.conv_packed) : bitpack::pack_filters(l.conv_weights);
          im.weight_bytes += s.filters.num_filters() * s.filters.words_per_filter() * 8;
          s.conv_bin = kernels::conv_binarize_kernel(info.isa);
          s.conv_dot = kernels::conv_dot_kernel(info.isa);
        }
        l.conv_weights = FilterBank();  // drop the float weights
        break;
      }
      case LayerKind::kPool: {
        s.pool_spec = l.pool_spec;
        break;
      }
      case LayerKind::kFc: {
        s.fc_weights = l.prepacked
                           ? std::move(l.fc_packed)
                           : bitpack::pack_transpose_fc_weights(l.fc_weights.data(), l.fc_n,
                                                                l.fc_k);
        im.weight_bytes += s.fc_weights.rows() * s.fc_weights.words_per_row() * 8;
        s.fc_dot = kernels::bgemm_kernel(info.isa);
        s.fc_bin = kernels::bgemm_binarize_kernel(info.isa);
        l.fc_weights.clear();
        l.fc_weights.shrink_to_fit();
        break;
      }
    }

    // Buffer routing.
    if (l.kind == LayerKind::kConv || l.kind == LayerKind::kPool) {
      if (static_cast<std::size_t>(im.acts.size()) == i && i == 0) {
        im.acts.emplace_back(flow.h + 2 * im.input_margin, flow.w + 2 * im.input_margin, flow.c);
      }
      s.in_act = static_cast<int>(i);
      const TensorDesc& out = info.out;
      s.out_margin = consumer_margin(i + 1);
      if (s.is_last && l.kind == LayerKind::kConv) {
        // Final conv: raw dot products into a float tensor.
        im.last_conv_dot = Tensor::hwc(out.h, out.w, out.c);
      } else {
        im.acts.emplace_back(out.h + 2 * s.out_margin, out.w + 2 * s.out_margin, out.c);
        s.out_act = static_cast<int>(im.acts.size()) - 1;
      }
    } else {  // fc
      if (i == 0 || im.pending[i - 1].kind != LayerKind::kFc) {
        // First fc in the chain: its packed input row comes from flattening
        // (or, if the network starts with fc, from packing the input).
        s.flatten_input = true;
        im.fc_bits.emplace_back(1, l.fc_n);
        s.in_fc = static_cast<int>(im.fc_bits.size()) - 1;
      } else {
        s.in_fc = static_cast<int>(im.fc_bits.size()) - 1;
      }
      if (!s.is_last) {
        im.fc_bits.emplace_back(1, l.fc_k);
        s.out_fc = static_cast<int>(im.fc_bits.size()) - 1;
      }
    }
    flow = info.out;
    im.stages.push_back(std::move(s));
  }
  im.scores.resize(static_cast<std::size_t>(flow.num_elements()));
  im.pending.clear();
  im.pending.shrink_to_fit();
  im.finalized = true;
}

std::span<const float> BinaryNetwork::infer(const Tensor& input_hwc) {
  Impl& im = *impl_;
  if (!im.finalized) throw std::logic_error("BinaryNetwork: infer before finalize");
  if (input_hwc.height() != im.input.h || input_hwc.width() != im.input.w ||
      input_hwc.channels() != im.input.c) {
    throw std::invalid_argument("infer: input extents do not match finalized network");
  }
  const bool profile = im.cfg.profile;
  im.profile_ms.clear();
  runtime::Timer timer;

  // Input stage: binarize + pack into the first buffer's interior — unless
  // the first layer is the full-precision conv, which consumes floats.
  const bool starts_with_fc = im.stages.front().kind == LayerKind::kFc;
  const bool starts_full_precision = im.stages.front().full_precision;
  if (starts_full_precision) {
    // Copy the image into the interior of the pre-allocated padded buffer
    // (margins stay zero: standard zero-padding for a float convolution).
    const std::int64_t row_bytes = input_hwc.width() * input_hwc.channels() *
                                   static_cast<std::int64_t>(sizeof(float));
    for (std::int64_t h = 0; h < input_hwc.height(); ++h) {
      std::memcpy(im.f_in_padded.data() +
                      im.f_in_padded.index(h + im.input_margin, im.input_margin, 0),
                  input_hwc.data() + input_hwc.index(h, 0, 0),
                  static_cast<std::size_t>(row_bytes));
    }
  } else if (!starts_with_fc) {
    bitpack::pack_activations_into_interior(input_hwc, im.acts[0], im.input_margin, im.pool);
  } else {
    // Network starts fully connected: pack the flattened input row.
    PackedMatrix& row = im.fc_bits[static_cast<std::size_t>(im.stages.front().in_fc)];
    PackedMatrix packed = bitpack::pack_rows(input_hwc.data(), 1, input_hwc.num_elements());
    std::copy(packed.words(), packed.words() + packed.num_words(), row.words());
  }
  if (profile) {
    im.profile_ms.push_back(timer.elapsed_ms());
    timer.reset();
  }

  for (std::size_t i = 0; i < im.stages.size(); ++i) {
    Stage& s = im.stages[i];
    const float* th = s.thresholds.empty() ? nullptr : s.thresholds.data();
    switch (s.kind) {
      case LayerKind::kConv: {
        if (s.full_precision) {
          baseline::float_conv_im2col(im.f_in_padded, s.float_weights_t, s.float_k,
                                      s.conv_spec, im.pool, im.f_dots, im.f_cols);
          if (s.is_last) {
            std::copy(im.f_dots.data(), im.f_dots.data() + im.f_dots.num_elements(),
                      im.scores.data());
          } else {
            bitpack::pack_thresholded_into_interior(
                im.f_dots, th, im.acts[static_cast<std::size_t>(s.out_act)], s.out_margin);
          }
          break;
        }
        const PackedTensor& in = im.acts[static_cast<std::size_t>(s.in_act)];
        if (s.is_last) {
          s.conv_dot(in, s.filters, s.conv_spec, im.pool, im.last_conv_dot);
          std::copy(im.last_conv_dot.data(),
                    im.last_conv_dot.data() + im.last_conv_dot.num_elements(),
                    im.scores.data());
        } else {
          s.conv_bin(in, s.filters, s.conv_spec, th, im.pool,
                     im.acts[static_cast<std::size_t>(s.out_act)], s.out_margin);
        }
        break;
      }
      case LayerKind::kPool: {
        const PackedTensor& in = im.acts[static_cast<std::size_t>(s.in_act)];
        if (s.is_last) {
          // Rare but supported: network ends in a pool; emit decoded signs.
          PackedTensor out(im.infos[i].out.h, im.infos[i].out.w, im.infos[i].out.c);
          kernels::binary_maxpool(in, s.pool_spec, s.isa, im.pool, out, 0);
          const Tensor signs = bitpack::unpack_to_signs(out);
          std::copy(signs.data(), signs.data() + signs.num_elements(), im.scores.data());
        } else {
          kernels::binary_maxpool(in, s.pool_spec, s.isa, im.pool,
                                  im.acts[static_cast<std::size_t>(s.out_act)], s.out_margin);
        }
        break;
      }
      case LayerKind::kFc: {
        PackedMatrix& in = im.fc_bits[static_cast<std::size_t>(s.in_fc)];
        if (s.flatten_input && !starts_with_fc) {
          // The producing conv/pool stage wrote a margin-0 buffer; flatten it.
          bitpack::flatten_packed(im.acts.back(), in);
        }
        if (s.is_last) {
          s.fc_dot(in, s.fc_weights, im.pool, im.scores.data());
        } else {
          s.fc_bin(in, s.fc_weights, th, im.pool,
                   im.fc_bits[static_cast<std::size_t>(s.out_fc)]);
        }
        break;
      }
    }
    if (profile) {
      im.profile_ms.push_back(timer.elapsed_ms());
      timer.reset();
    }
  }
  return im.scores;
}

bool BinaryNetwork::finalized() const noexcept { return impl_->finalized; }
const std::vector<LayerInfo>& BinaryNetwork::layers() const { return impl_->infos; }
TensorDesc BinaryNetwork::input_desc() const { return impl_->input; }
std::int64_t BinaryNetwork::output_size() const {
  return static_cast<std::int64_t>(impl_->scores.size());
}
int BinaryNetwork::num_threads() const noexcept { return impl_->cfg.num_threads; }
std::int64_t BinaryNetwork::packed_weight_bytes() const { return impl_->weight_bytes; }
const std::vector<double>& BinaryNetwork::last_profile_ms() const { return impl_->profile_ms; }

}  // namespace bitflow::graph
