#include "graph/network.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "baseline/float_ops.hpp"
#include "bitpack/packer.hpp"
#include "core/ait.hpp"
#include "core/failpoint.hpp"
#include "telemetry/perf_counters.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "tune/tuner.hpp"

namespace bitflow::graph {

namespace {

/// A layer as described by the user, before finalize() lowers it.
struct PendingLayer {
  LayerKind kind = LayerKind::kConv;
  std::string name;
  // conv
  FilterBank conv_weights;
  kernels::ConvSpec conv_spec;
  std::int64_t pad = 0;
  // pool
  kernels::PoolSpec pool_spec;
  // fc
  std::vector<float> fc_weights;
  std::int64_t fc_n = 0, fc_k = 0;
  // pre-packed weights (add_conv_packed / add_fc_packed)
  PackedFilterBank conv_packed;
  PackedMatrix fc_packed;
  bool prepacked = false;
  bool full_precision = false;  // first-layer float conv
  // shared
  std::vector<float> thresholds;
};

/// A lowered, executable stage.  Immutable after finalize(): stages hold the
/// packed weights and (batch-capable) kernel pointers, never scratch.
struct Stage {
  LayerKind kind = LayerKind::kConv;
  simd::IsaLevel isa = simd::IsaLevel::kU64;
  bool is_last = false;  ///< last stage emits float scores, not bits

  // Register-tiled layers hold only the interleaved weights + tiled kernels;
  // filter-major layers only the untiled set (finalize never keeps both —
  // the interleave is a permutation, so weight bytes are unchanged).
  bool tiled = false;

  // conv
  kernels::ConvSpec conv_spec;
  PackedFilterBank filters;
  kernels::ConvBinarizeBatchFn conv_bin = nullptr;
  kernels::ConvDotBatchFn conv_dot = nullptr;
  TiledFilterBank filters_tiled;
  kernels::ConvBinarizeTiledBatchFn conv_bin_tiled = nullptr;
  kernels::ConvDotTiledBatchFn conv_dot_tiled = nullptr;
  // first-layer full-precision conv
  bool full_precision = false;
  std::vector<float> float_weights_t;  // (kh*kw*C) x K, im2col layout
  std::int64_t float_k = 0;

  // pool
  kernels::PoolSpec pool_spec;

  // fc
  PackedMatrix fc_weights;  // k x n bits (pre-transposed at finalize)
  kernels::BgemmRowsFn fc_dot = nullptr;
  kernels::BgemmBinarizeRowsFn fc_bin = nullptr;
  TiledBitMatrix fc_tiled;
  kernels::BgemmRowsTiledFn fc_dot_tiled = nullptr;
  kernels::BgemmBinarizeRowsTiledFn fc_bin_tiled = nullptr;

  std::vector<float> thresholds;  // empty = sign at zero

  // buffer routing (indices into the context's buffers)
  int in_act = -1, out_act = -1;  // packed activation tensors
  int in_fc = -1, out_fc = -1;    // packed fc bit rows
  std::int64_t out_margin = 0;    // interior offset in the output buffer
  bool flatten_input = false;     // conv/pool output -> fc row transition
};

/// Extents of one planned buffer.
struct PlannedDims {
  std::int64_t h = 0, w = 0, c = 0;
};

/// The memory plan finalize() computes: every buffer a context must carry,
/// by extent.  Allocation happens per context in make_context().
struct BufferPlan {
  std::vector<PlannedDims> acts;         // packed activation buffers
  std::vector<std::int64_t> fc_cols;     // packed fc bit-row widths
  PlannedDims last_conv_dot{};           // float dots if the last stage is a conv
  bool need_last_conv_dot = false;
  PlannedDims last_pool_out{};           // packed output if the last stage is a pool
  bool need_last_pool_out = false;
  PlannedDims f_in_padded{}, f_dots{};   // full-precision first conv
  bool need_float_first = false;
  std::int64_t scores_size = 0;          // per-image output floats
};

}  // namespace

struct BinaryNetwork::Impl {
  NetworkConfig cfg;
  std::vector<PendingLayer> pending;
  bool finalized = false;

  // Finalized state — read-only after finalize(), shared by every context.
  TensorDesc input{};
  std::int64_t input_margin = 0;
  std::vector<LayerInfo> infos;
  std::vector<Stage> stages;
  BufferPlan plan;
  std::int64_t weight_bytes = 0;

  // Profiler metadata, fixed at finalize().  span_names/kernel_names back
  // the trace spans (TraceSpan keeps the const char* — the strings must
  // never move, so these vectors are sized once and never touched again).
  std::vector<std::string> span_names;    // "layer:<name>", one per stage
  std::vector<std::string> kernel_names;  // "<kernel>[<isa>]", one per stage
  std::vector<double> stage_ops;          // binary ops per image (2/MAC); 0 = n/a
  std::vector<double> stage_ait;          // direct-conv AIT; 0 = n/a
  // Shared lock-free accumulators: [0] = input pack, [i+1] = stage i.  Heap
  // array so recording through a const Impl& is well-formed.
  std::unique_ptr<telemetry::SpanStats[]> span_stats;

  /// Hardware-counter accumulators, indexed like span_stats ([0] = input
  /// pack).  Summed deltas from each profiled context's PerfSampler.
  struct PerfStage {
    // Ordering contract: relaxed fetch_add/load/store everywhere — these are
    // independently monotonic sums (SpanStats discipline): a reader may see
    // a torn cross-field view, acceptable for a diagnostic ratio, and no
    // other state is published through them.
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> instructions{0};
    std::atomic<std::uint64_t> llc_misses{0};
    std::atomic<std::uint64_t> samples{0};
  };
  std::unique_ptr<PerfStage[]> perf_stats;

  /// Folds one stage's counter delta into the shared accumulators.
  void record_perf(std::size_t row, const telemetry::PerfCounts& d) const {
    if (!d.valid) return;
    PerfStage& p = perf_stats[row];
    // Ordering contract: relaxed — see PerfStage declaration.
    p.cycles.fetch_add(d.cycles, std::memory_order_relaxed);
    p.instructions.fetch_add(d.instructions, std::memory_order_relaxed);
    p.llc_misses.fetch_add(d.llc_misses, std::memory_order_relaxed);
    p.samples.fetch_add(1, std::memory_order_relaxed);
  }

  // Default context backing the batch-1 infer() convenience API.  This is
  // the only mutable member after finalize(), and only infer() touches it.
  std::unique_ptr<InferenceContext> default_ctx;
  std::vector<double> no_profile;  // empty result pre-finalize

  explicit Impl(NetworkConfig c) : cfg(c) {
    if (c.num_threads < 1) throw std::invalid_argument("NetworkConfig: num_threads >= 1");
  }
};

/// Everything one inference stream mutates: pool + all planned buffers,
/// replicated per image up to max_batch, plus the pointer arrays the batched
/// kernels take (pre-sized so steady-state inference never allocates).
struct InferenceContext::Impl {
  const BinaryNetwork::Impl* net;  // identity: contexts are net-specific
  std::int64_t max_batch;
  runtime::ThreadPool pool;

  std::vector<std::vector<PackedTensor>> acts;  // [buffer][image]
  std::vector<PackedMatrix> fc_bits;            // max_batch rows each
  std::vector<Tensor> last_conv_dot;            // [image]
  std::vector<PackedTensor> last_pool_out;      // [image]
  Tensor f_in_padded;                           // shared: the float first
  Tensor f_dots;                                // layer runs per image
  std::vector<float> f_cols;
  std::vector<float> scores;                    // max_batch * scores_size

  std::vector<const PackedTensor*> in_ptrs;
  std::vector<PackedTensor*> out_ptrs;
  std::vector<Tensor*> dot_ptrs;

  std::vector<double> profile_ms;

  /// Hardware-counter sampler, opened lazily on the first profiled
  /// infer_batch so the group covers the thread actually driving the stage
  /// loop (only known then) plus this context's pool workers.  A context is
  /// one inference stream — no concurrent access, so plain members suffice.
  telemetry::PerfSampler perf;
  bool perf_open_attempted = false;

  Impl(const BinaryNetwork::Impl* n, std::int64_t mb, int threads)
      : net(n), max_batch(mb), pool(threads) {
    const BufferPlan& plan = n->plan;
    const std::size_t b = static_cast<std::size_t>(mb);
    acts.reserve(plan.acts.size());
    for (const PlannedDims& d : plan.acts) {
      std::vector<PackedTensor>& per_image = acts.emplace_back();
      per_image.reserve(b);
      for (std::int64_t i = 0; i < mb; ++i) per_image.emplace_back(d.h, d.w, d.c);
    }
    fc_bits.reserve(plan.fc_cols.size());
    for (const std::int64_t cols : plan.fc_cols) fc_bits.emplace_back(mb, cols);
    if (plan.need_last_conv_dot) {
      last_conv_dot.reserve(b);
      for (std::int64_t i = 0; i < mb; ++i) {
        last_conv_dot.push_back(Tensor::hwc(plan.last_conv_dot.h, plan.last_conv_dot.w,
                                            plan.last_conv_dot.c));
      }
    }
    if (plan.need_last_pool_out) {
      last_pool_out.reserve(b);
      for (std::int64_t i = 0; i < mb; ++i) {
        last_pool_out.emplace_back(plan.last_pool_out.h, plan.last_pool_out.w,
                                   plan.last_pool_out.c);
      }
    }
    if (plan.need_float_first) {
      f_in_padded = Tensor::hwc(plan.f_in_padded.h, plan.f_in_padded.w, plan.f_in_padded.c);
      f_dots = Tensor::hwc(plan.f_dots.h, plan.f_dots.w, plan.f_dots.c);
    }
    scores.resize(static_cast<std::size_t>(mb * plan.scores_size));
    in_ptrs.resize(b);
    out_ptrs.resize(b);
    dot_ptrs.resize(b);
  }
};

InferenceContext::InferenceContext(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
InferenceContext::InferenceContext(InferenceContext&&) noexcept = default;
InferenceContext& InferenceContext::operator=(InferenceContext&&) noexcept = default;
InferenceContext::~InferenceContext() = default;
std::int64_t InferenceContext::max_batch() const noexcept { return impl_->max_batch; }
int InferenceContext::num_threads() const noexcept { return impl_->pool.num_threads(); }
const std::vector<double>& InferenceContext::last_profile_ms() const {
  return impl_->profile_ms;
}

BinaryNetwork::BinaryNetwork(NetworkConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}
BinaryNetwork::BinaryNetwork(BinaryNetwork&&) noexcept = default;
BinaryNetwork& BinaryNetwork::operator=(BinaryNetwork&&) noexcept = default;
BinaryNetwork::~BinaryNetwork() = default;

void BinaryNetwork::add_conv(std::string name, FilterBank weights, std::int64_t stride,
                             std::int64_t pad, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(weights.num_filters())) {
    throw std::invalid_argument("add_conv: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{weights.kernel_h(), weights.kernel_w(), stride};
  l.conv_weights = std::move(weights);
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_conv_float(std::string name, FilterBank weights, std::int64_t stride,
                                   std::int64_t pad, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!impl_->pending.empty()) {
    throw std::invalid_argument("add_conv_float: only valid as the first layer");
  }
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(weights.num_filters())) {
    throw std::invalid_argument("add_conv_float: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{weights.kernel_h(), weights.kernel_w(), stride};
  l.conv_weights = std::move(weights);
  l.full_precision = true;
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_conv_packed(std::string name, PackedFilterBank filters,
                                    std::int64_t stride, std::int64_t pad,
                                    std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(filters.num_filters())) {
    throw std::invalid_argument("add_conv_packed: thresholds must have one entry per filter");
  }
  PendingLayer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.conv_spec = kernels::ConvSpec{filters.kernel_h(), filters.kernel_w(), stride};
  l.conv_packed = std::move(filters);
  l.prepacked = true;
  l.pad = pad;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_maxpool(std::string name, kernels::PoolSpec spec) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  PendingLayer l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.pool_spec = spec;
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_fc(std::string name, std::vector<float> weights, std::int64_t n,
                           std::int64_t k, std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (weights.size() != static_cast<std::size_t>(n * k)) {
    throw std::invalid_argument("add_fc: weights must be n*k floats");
  }
  if (!thresholds.empty() && thresholds.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("add_fc: thresholds must have one entry per output");
  }
  PendingLayer l;
  l.kind = LayerKind::kFc;
  l.name = std::move(name);
  l.fc_weights = std::move(weights);
  l.fc_n = n;
  l.fc_k = k;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::add_fc_packed(std::string name, PackedMatrix weights,
                                  std::vector<float> thresholds) {
  if (impl_->finalized) throw std::logic_error("BinaryNetwork: add after finalize");
  if (!thresholds.empty() && thresholds.size() != static_cast<std::size_t>(weights.rows())) {
    throw std::invalid_argument("add_fc_packed: thresholds must have one entry per output");
  }
  PendingLayer l;
  l.kind = LayerKind::kFc;
  l.name = std::move(name);
  l.fc_n = weights.cols();
  l.fc_k = weights.rows();
  l.fc_packed = std::move(weights);
  l.prepacked = true;
  l.thresholds = std::move(thresholds);
  impl_->pending.push_back(std::move(l));
}

void BinaryNetwork::finalize(TensorDesc input) {
  Impl& im = *impl_;
  if (im.finalized) throw std::logic_error("BinaryNetwork: finalize called twice");
  if (im.pending.empty()) throw std::logic_error("BinaryNetwork: no layers");
  const std::size_t n_layers = im.pending.size();
  const simd::CpuFeatures& hw = simd::cpu_features();
  if (im.cfg.max_isa.has_value() && !hw.supports(*im.cfg.max_isa)) {
    throw std::invalid_argument(
        "finalize: configured max_isa " + std::string(simd::isa_name(*im.cfg.max_isa)) +
        " is not executable on this CPU");
  }

  // Pass 1: shape inference + validation + ISA selection.
  im.input = input;
  TensorDesc cur = input;
  bool seen_fc = false;
  auto clamp_isa = [&](simd::IsaLevel isa) {
    // Armed simd.force_fallback degrades every layer to the scalar u64
    // kernels — the ISA-parity harness guarantees this changes nothing but
    // throughput, which is exactly what the fault matrix asserts.
    if (BF_FAILPOINT_TRIGGERED("simd.force_fallback")) return simd::IsaLevel::kU64;
    if (im.cfg.max_isa.has_value() &&
        static_cast<int>(isa) > static_cast<int>(*im.cfg.max_isa)) {
      return *im.cfg.max_isa;
    }
    return isa;
  };
  for (std::size_t i = 0; i < n_layers; ++i) {
    PendingLayer& l = im.pending[i];
    LayerInfo info;
    info.name = l.name;
    info.kind = l.kind;
    info.in = cur;
    switch (l.kind) {
      case LayerKind::kConv: {
        if (seen_fc) throw std::invalid_argument("BinaryNetwork: conv after fc unsupported");
        const std::int64_t layer_c =
            l.prepacked ? l.conv_packed.channels() : l.conv_weights.channels();
        const std::int64_t layer_k =
            l.prepacked ? l.conv_packed.num_filters() : l.conv_weights.num_filters();
        if (layer_c != cur.c) {
          throw std::invalid_argument("finalize: " + l.name + " channel mismatch");
        }
        cur = infer_conv(cur, l.conv_spec, l.pad, layer_k);
        info.pad = l.pad;
        info.full_precision = l.full_precision;
        if (l.full_precision) {
          info.isa = simd::IsaLevel::kU64;
          info.isa_reason = "full-precision first layer (im2col + sgemm)";
        } else {
          info.isa = clamp_isa(select_isa(layer_c, hw, im.cfg.policy));
          info.isa_reason = explain_isa_selection(layer_c, hw, im.cfg.policy);
        }
        break;
      }
      case LayerKind::kPool: {
        if (seen_fc) throw std::invalid_argument("BinaryNetwork: pool after fc unsupported");
        cur = infer_pool(cur, l.pool_spec);
        info.isa = clamp_isa(select_isa(cur.c, hw, im.cfg.policy));
        info.isa_reason = explain_isa_selection(cur.c, hw, im.cfg.policy);
        break;
      }
      case LayerKind::kFc: {
        if (cur.num_elements() != l.fc_n) {
          throw std::invalid_argument("finalize: " + l.name + " input size mismatch");
        }
        seen_fc = true;
        cur = infer_fc(cur, l.fc_k);
        info.isa = clamp_isa(select_isa(l.fc_n, hw, im.cfg.policy));
        info.isa_reason = explain_isa_selection(l.fc_n, hw, im.cfg.policy);
        break;
      }
    }
    info.out = cur;
    im.infos.push_back(std::move(info));
  }

  // Pass 2: memory planning.  The margin of each activation buffer equals
  // the padding its *consumer* wants, so padding is realized by writing
  // interiors (Fig. 5).  Buffer i is the input of layer i.
  auto consumer_margin = [&](std::size_t layer) -> std::int64_t {
    return (layer < n_layers && im.pending[layer].kind == LayerKind::kConv)
               ? im.pending[layer].pad
               : 0;
  };
  im.input_margin = consumer_margin(0);

  // Pass 3: lower layers to stages, pack weights, record the buffer plan.
  // plan.acts[i] holds the packed input of stage i (for conv/pool stages);
  // contexts allocate one copy per batch slot.
  //
  // With auto-tuning on, each conv/fc layer's plan (tiled vs untiled, tile
  // width, parallel grain) comes from tune::decide() — a cache hit commits
  // the remembered plan instantly, a miss microbenchmarks the candidates on
  // the layer's real shapes.  Off, the static default_decision() reproduces
  // the historical heuristic exactly.  Either way every candidate is
  // bit-exact, so this pass picks speed, never values.
  tune::TuneCache tune_cache;
  std::string tune_path;
  bool tune_searched_any = false;
  std::unique_ptr<runtime::ThreadPool> tune_pool;
  if (im.cfg.auto_tune) {
    tune_path = im.cfg.tune_cache_path.empty() ? tune::default_cache_path()
                                               : im.cfg.tune_cache_path;
    if (!tune_path.empty()) tune_cache.load(tune_path);
    tune_pool = std::make_unique<runtime::ThreadPool>(im.cfg.num_threads);
  }
  TensorDesc flow = input;
  for (std::size_t i = 0; i < n_layers; ++i) {
    PendingLayer& l = im.pending[i];
    LayerInfo& info = im.infos[i];
    Stage s;
    s.kind = l.kind;
    s.isa = info.isa;
    s.is_last = (i + 1 == n_layers);
    s.thresholds = std::move(l.thresholds);
    switch (l.kind) {
      case LayerKind::kConv: {
        s.conv_spec = l.conv_spec;
        if (l.full_precision) {
          s.full_precision = true;
          s.float_k = l.conv_weights.num_filters();
          s.float_weights_t = baseline::flatten_filters_transposed(l.conv_weights);
          im.weight_bytes +=
              static_cast<std::int64_t>(s.float_weights_t.size()) * 4;
          im.plan.need_float_first = true;
          im.plan.f_in_padded = {flow.h + 2 * l.pad, flow.w + 2 * l.pad, flow.c};
          im.plan.f_dots = {info.out.h, info.out.w, info.out.c};
        } else {
          PackedFilterBank bank =
              l.prepacked ? std::move(l.conv_packed) : bitpack::pack_filters(l.conv_weights);
          im.weight_bytes += bank.num_filters() * bank.words_per_filter() * 8;
          tune::LayerWorkload wl;
          wl.kind = 0;
          wl.isa = info.isa;
          wl.vpopcnt = info.isa == simd::IsaLevel::kAvx512 && hw.avx512vpopcntdq;
          wl.threads = im.cfg.num_threads;
          wl.in_h = info.in.h + 2 * l.pad;  // the padded buffer the kernel reads
          wl.in_w = info.in.w + 2 * l.pad;
          wl.c = info.in.c;
          wl.k = bank.num_filters();
          wl.kh = l.conv_spec.kernel_h;
          wl.kw = l.conv_spec.kernel_w;
          wl.stride = l.conv_spec.stride;
          wl.fused_binarize = !s.is_last;
          tune::Decision dec;
          if (im.cfg.auto_tune) {
            bool searched = false;
            dec = tune::decide(wl, tune_cache, *tune_pool, im.cfg.tile_weights, &searched);
            tune_searched_any = tune_searched_any || searched;
          } else {
            dec = tune::default_decision(wl, im.cfg.tile_weights);
          }
          s.conv_spec.par_grain = dec.par_grain;
          if (dec.tiled) {
            // Re-lay into the interleaved register-tile layout and drop the
            // filter-major bank (same word count, permuted order).
            s.filters_tiled = bitpack::tile_filters(bank, dec.tile);
            s.tiled = true;
            s.conv_bin_tiled =
                kernels::conv_binarize_tiled_batch_kernel(info.isa, wl.vpopcnt, dec.tile);
            s.conv_dot_tiled =
                kernels::conv_dot_tiled_batch_kernel(info.isa, wl.vpopcnt, dec.tile);
            info.layout = kernels::WeightLayout::kInterleaved;
            info.tile = dec.tile;
          } else {
            s.filters = std::move(bank);
            s.conv_bin = kernels::conv_binarize_batch_kernel(info.isa, wl.vpopcnt);
            s.conv_dot = kernels::conv_dot_batch_kernel(info.isa, wl.vpopcnt);
          }
          info.par_grain = dec.par_grain;
          info.tune_source = tune::decision_source_name(dec.source);
        }
        l.conv_weights = FilterBank();  // drop the float weights
        break;
      }
      case LayerKind::kPool: {
        s.pool_spec = l.pool_spec;
        break;
      }
      case LayerKind::kFc: {
        PackedMatrix w = l.prepacked
                             ? std::move(l.fc_packed)
                             : bitpack::pack_transpose_fc_weights(l.fc_weights.data(), l.fc_n,
                                                                  l.fc_k);
        im.weight_bytes += w.rows() * w.words_per_row() * 8;
        tune::LayerWorkload wl;
        wl.kind = 1;
        wl.isa = info.isa;
        wl.vpopcnt = info.isa == simd::IsaLevel::kAvx512 && hw.avx512vpopcntdq;
        wl.threads = im.cfg.num_threads;
        wl.c = w.cols();  // input neurons
        wl.k = w.rows();  // output neurons
        wl.fused_binarize = !s.is_last;
        tune::Decision dec;
        if (im.cfg.auto_tune) {
          bool searched = false;
          dec = tune::decide(wl, tune_cache, *tune_pool, im.cfg.tile_weights, &searched);
          tune_searched_any = tune_searched_any || searched;
        } else {
          dec = tune::default_decision(wl, im.cfg.tile_weights);
        }
        if (dec.tiled) {
          s.fc_tiled = bitpack::tile_fc_weights(w, dec.tile);
          s.tiled = true;
          s.fc_dot_tiled = kernels::bgemm_rows_tiled_kernel(info.isa, wl.vpopcnt, dec.tile);
          s.fc_bin_tiled =
              kernels::bgemm_binarize_rows_tiled_kernel(info.isa, wl.vpopcnt, dec.tile);
          info.layout = kernels::WeightLayout::kInterleaved;
          info.tile = dec.tile;
        } else {
          s.fc_weights = std::move(w);
          s.fc_dot = kernels::bgemm_rows_kernel(info.isa, wl.vpopcnt);
          s.fc_bin = kernels::bgemm_binarize_rows_kernel(info.isa, wl.vpopcnt);
        }
        info.tune_source = tune::decision_source_name(dec.source);
        l.fc_weights.clear();
        l.fc_weights.shrink_to_fit();
        break;
      }
    }

    // Buffer routing.
    if (l.kind == LayerKind::kConv || l.kind == LayerKind::kPool) {
      if (im.plan.acts.size() == i && i == 0) {
        im.plan.acts.push_back(
            {flow.h + 2 * im.input_margin, flow.w + 2 * im.input_margin, flow.c});
      }
      s.in_act = static_cast<int>(i);
      const TensorDesc& out = info.out;
      s.out_margin = consumer_margin(i + 1);
      if (s.is_last && l.kind == LayerKind::kConv) {
        // Final conv: raw dot products into a float tensor.
        im.plan.need_last_conv_dot = true;
        im.plan.last_conv_dot = {out.h, out.w, out.c};
      } else if (s.is_last && l.kind == LayerKind::kPool) {
        // Rare but supported: network ends in a pool; emits decoded signs.
        im.plan.need_last_pool_out = true;
        im.plan.last_pool_out = {out.h, out.w, out.c};
      } else {
        im.plan.acts.push_back({out.h + 2 * s.out_margin, out.w + 2 * s.out_margin, out.c});
        s.out_act = static_cast<int>(im.plan.acts.size()) - 1;
      }
    } else {  // fc
      if (i == 0 || im.pending[i - 1].kind != LayerKind::kFc) {
        // First fc in the chain: its packed input row comes from flattening
        // (or, if the network starts with fc, from packing the input).
        s.flatten_input = true;
        im.plan.fc_cols.push_back(l.fc_n);
        s.in_fc = static_cast<int>(im.plan.fc_cols.size()) - 1;
      } else {
        s.in_fc = static_cast<int>(im.plan.fc_cols.size()) - 1;
      }
      if (!s.is_last) {
        im.plan.fc_cols.push_back(l.fc_k);
        s.out_fc = static_cast<int>(im.plan.fc_cols.size()) - 1;
      }
    }
    flow = info.out;
    im.stages.push_back(std::move(s));
  }
  im.plan.scores_size = flow.num_elements();
  im.pending.clear();
  im.pending.shrink_to_fit();
  if (im.cfg.auto_tune && tune_searched_any && !tune_path.empty()) {
    // Persist merged decisions so the next finalize is a pure cache walk.
    // A failed save is only a lost warm start (already counted by
    // tune.cache_io_error) — never a reason to fail finalize.
    (void)tune_cache.save(tune_path);
  }

  // Profiler metadata: interned span names, the kernel each stage will
  // actually dispatch, and the static per-image cost model each profiled
  // sample is normalized against.
  im.span_names.reserve(n_layers);
  im.kernel_names.reserve(n_layers);
  im.stage_ops.reserve(n_layers);
  im.stage_ait.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    const Stage& s = im.stages[i];
    const LayerInfo& info = im.infos[i];
    im.span_names.push_back("layer:" + info.name);
    std::string kernel;
    double ops = 0.0, ait = 0.0;
    switch (s.kind) {
      case LayerKind::kConv: {
        const double macs = static_cast<double>(info.out.h * info.out.w * info.out.c) *
                            static_cast<double>(s.conv_spec.kernel_h * s.conv_spec.kernel_w *
                                                info.in.c);
        ops = 2.0 * macs;
        if (s.full_precision) {
          kernel = "im2col_sgemm[f32]";
        } else {
          kernel = s.tiled ? (s.is_last ? "pressedconv_dot_tiled" : "pressedconv_bin_tiled")
                           : (s.is_last ? "pressedconv_dot" : "pressedconv_bin");
          // Padded extents: that is the buffer the kernel actually reads
          // (and keeps the workload non-degenerate for same-padded layers).
          ait = core::analyze_binary_conv({info.in.h + 2 * info.pad, info.in.w + 2 * info.pad,
                                           info.in.c, info.out.c, s.conv_spec.kernel_h,
                                           s.conv_spec.kernel_w})
                    .ait_direct;
        }
        break;
      }
      case LayerKind::kPool:
        kernel = "binary_maxpool";
        break;
      case LayerKind::kFc: {
        const double n_in = static_cast<double>(info.in.num_elements());
        const double k_out = static_cast<double>(info.out.num_elements());
        ops = 2.0 * n_in * k_out;
        kernel = s.tiled ? (s.is_last ? "bgemm_rows_tiled" : "bgemm_binarize_rows_tiled")
                         : (s.is_last ? "bgemm_rows" : "bgemm_binarize_rows");
        ait = core::analyze_binary_conv({1, 1, info.in.num_elements(),
                                         info.out.num_elements(), 1, 1})
                  .ait_direct;
        break;
      }
    }
    if (!s.full_precision) {
      kernel += '[';
      kernel += simd::isa_name(s.isa);
      // Surface the committed plan: ",t8" = register-tile width, ",g18" =
      // parallel grain (omitted at the pixel-level default of 1).
      if (s.tiled) {
        kernel += ",t";
        kernel += std::to_string(info.tile);
      }
      if (s.kind == LayerKind::kConv && s.conv_spec.par_grain > 1) {
        kernel += ",g";
        kernel += std::to_string(s.conv_spec.par_grain);
      }
      kernel += ']';
    }
    im.kernel_names.push_back(std::move(kernel));
    im.stage_ops.push_back(ops);
    im.stage_ait.push_back(ait);
  }
  im.span_stats = std::make_unique<telemetry::SpanStats[]>(n_layers + 1);
  im.perf_stats = std::make_unique<Impl::PerfStage[]>(n_layers + 1);

  im.finalized = true;
  // The default context backs the legacy batch-1 infer(); creating it here
  // preserves the "zero allocation per inference" property of that API.
  im.default_ctx = std::make_unique<InferenceContext>(make_context(1));
}

InferenceContext BinaryNetwork::make_context(std::int64_t max_batch) const {
  return make_context(max_batch, impl_->cfg.num_threads);
}

InferenceContext BinaryNetwork::make_context(std::int64_t max_batch, int num_threads) const {
  const Impl& im = *impl_;
  if (!im.finalized) throw std::logic_error("BinaryNetwork: make_context before finalize");
  if (max_batch < 1) throw std::invalid_argument("make_context: max_batch must be >= 1");
  if (num_threads < 1) throw std::invalid_argument("make_context: num_threads must be >= 1");
  return InferenceContext(
      std::make_unique<InferenceContext::Impl>(&im, max_batch, num_threads));
}

std::span<const float> BinaryNetwork::infer_batch(std::span<const Tensor* const> inputs,
                                                  InferenceContext& ctx) const {
  return infer_batch(inputs, ctx, core::CancelToken{});
}

std::span<const float> BinaryNetwork::infer_batch(std::span<const Tensor* const> inputs,
                                                  InferenceContext& ctx,
                                                  const core::CancelToken& cancel) const {
  const Impl& im = *impl_;
  InferenceContext::Impl& cx = *ctx.impl_;
  if (!im.finalized) throw std::logic_error("BinaryNetwork: infer before finalize");
  if (cx.net != &im) {
    throw std::invalid_argument("infer_batch: context belongs to a different network");
  }
  const std::int64_t n = static_cast<std::int64_t>(inputs.size());
  if (n < 1 || n > cx.max_batch) {
    throw std::invalid_argument("infer_batch: batch of " + std::to_string(n) +
                                " exceeds context max_batch " + std::to_string(cx.max_batch));
  }
  for (std::int64_t b = 0; b < n; ++b) {
    const Tensor& t = *inputs[static_cast<std::size_t>(b)];
    if (t.height() != im.input.h || t.width() != im.input.w || t.channels() != im.input.c) {
      throw std::invalid_argument("infer_batch: input " + std::to_string(b) +
                                  " extents do not match finalized network");
    }
  }
  // Profiling is armed per network (cfg.profile) or process-wide
  // (BITFLOW_PROFILE / telemetry::set_profiling); both feed the same
  // lock-free per-layer accumulators behind profile_report().  The disarmed
  // cost here is one relaxed atomic load, and each TraceSpan below adds one
  // more — the telemetry overhead budget CI enforces.
  const bool profile = im.cfg.profile || telemetry::profiling_enabled();
  cx.profile_ms.clear();
  telemetry::TraceSpan whole_span("graph.infer_batch", "graph", n);
  std::uint64_t t0 = profile ? telemetry::trace_now_ns() : 0;
  // Hardware-counter attribution rides the same stage boundaries as the
  // wall-clock profile.  When perf_event_open is unavailable (CI containers,
  // perf_event_paranoid, BITFLOW_NO_PERF) the sampler stays inactive and
  // every profile row keeps the calibrated-peak roofline (source=calibrated).
  if (profile && !cx.perf_open_attempted) {
    cx.perf_open_attempted = true;
    if (telemetry::PerfSampler::available()) {
      std::vector<int> tids = cx.pool.worker_tids();
      tids.push_back(0);  // the calling thread drives the stage loop
      (void)cx.perf.open(tids);
    }
  }
  const bool perf_on = profile && cx.perf.active();
  telemetry::PerfCounts perf_prev;
  if (perf_on) perf_prev = cx.perf.read();

  // Cooperative-cancellation checkpoints: the token rides the context's pool
  // (chunk-level skips inside parallel_for) and is polled here at every
  // layer boundary.  The serve.cancel_checkpoint failpoint shares the site
  // so the fault matrix can force a cancellation deterministically.  Inert
  // token: one null check + one relaxed load per layer.
  cx.pool.set_cancel_token(cancel);
  // The pool borrows the token only for the duration of this call: a latched
  // cancelled token left installed would make any later parallel_for on this
  // pool silently skip every chunk, so restore the inert token on every exit
  // path (normal return or throw).
  struct PoolTokenGuard {
    runtime::ThreadPool& pool;
    ~PoolTokenGuard() { pool.set_cancel_token(core::CancelToken{}); }
  } pool_token_guard{cx.pool};
  const auto checkpoint = [&cancel] {
    cancel.throw_if_cancelled();
    if (BF_FAILPOINT_TRIGGERED("serve.cancel_checkpoint")) {
      throw core::CancelledError(core::CancelReason::kCancelled);
    }
  };
  checkpoint();

  // Input stage: binarize + pack each image into its batch slot of the
  // first buffer's interior — unless the first layer is the full-precision
  // conv (consumes floats, handled per image in the stage loop) or the
  // network starts fully connected (pack straight into the fc bit rows).
  const bool starts_with_fc = im.stages.front().kind == LayerKind::kFc;
  const bool starts_full_precision = im.stages.front().full_precision;
  {
    telemetry::TraceSpan pack_span("pack_input", "graph", n);
    if (starts_full_precision) {
      // Nothing to pack: the per-image copy into f_in_padded happens in the
      // stage loop right before each image's float convolution.
    } else if (!starts_with_fc) {
      for (std::int64_t b = 0; b < n; ++b) {
        bitpack::pack_activations_into_interior(*inputs[static_cast<std::size_t>(b)],
                                                cx.acts[0][static_cast<std::size_t>(b)],
                                                im.input_margin, cx.pool);
      }
    } else {
      PackedMatrix& rows = cx.fc_bits[static_cast<std::size_t>(im.stages.front().in_fc)];
      for (std::int64_t b = 0; b < n; ++b) {
        const Tensor& t = *inputs[static_cast<std::size_t>(b)];
        bitpack::pack_row_into(t.data(), t.num_elements(), rows, b);
      }
    }
  }
  if (profile) {
    const std::uint64_t t1 = telemetry::trace_now_ns();
    cx.profile_ms.push_back(static_cast<double>(t1 - t0) / 1e6);
    im.span_stats[0].record(t1 - t0, static_cast<std::uint64_t>(n));
    t0 = t1;
    if (perf_on) {
      const telemetry::PerfCounts now = cx.perf.read();
      im.record_perf(0, now - perf_prev);
      perf_prev = now;
    }
  }

  const std::int64_t out_size = im.plan.scores_size;
  for (std::size_t i = 0; i < im.stages.size(); ++i) {
    checkpoint();  // layer boundary: abandoned batches stop within one layer
    const Stage& s = im.stages[i];
    const float* th = s.thresholds.empty() ? nullptr : s.thresholds.data();
    telemetry::TraceSpan layer_span(im.span_names[i].c_str(), "layer", n);
    telemetry::TraceSpan kernel_span(im.kernel_names[i].c_str(), "kernel", n);
    switch (s.kind) {
      case LayerKind::kConv: {
        if (s.full_precision) {
          // The float first layer shares one scratch set; images run
          // serially through it (C=3 im2col+sgemm is a tiny slice of total
          // compute, so the batch win comes from the binary layers).
          for (std::int64_t b = 0; b < n; ++b) {
            const Tensor& img = *inputs[static_cast<std::size_t>(b)];
            const std::int64_t margin = im.input_margin;
            const std::int64_t row_bytes =
                img.width() * img.channels() * static_cast<std::int64_t>(sizeof(float));
            for (std::int64_t h = 0; h < img.height(); ++h) {
              std::memcpy(cx.f_in_padded.data() + cx.f_in_padded.index(h + margin, margin, 0),
                          img.data() + img.index(h, 0, 0), static_cast<std::size_t>(row_bytes));
            }
            baseline::float_conv_im2col(cx.f_in_padded, s.float_weights_t, s.float_k,
                                        s.conv_spec, cx.pool, cx.f_dots, cx.f_cols);
            if (s.is_last) {
              std::copy(cx.f_dots.data(), cx.f_dots.data() + cx.f_dots.num_elements(),
                        cx.scores.data() + b * out_size);
            } else {
              bitpack::pack_thresholded_into_interior(
                  cx.f_dots, th, cx.acts[static_cast<std::size_t>(s.out_act)][
                                     static_cast<std::size_t>(b)],
                  s.out_margin);
            }
          }
          break;
        }
        std::vector<PackedTensor>& in = cx.acts[static_cast<std::size_t>(s.in_act)];
        for (std::int64_t b = 0; b < n; ++b) {
          cx.in_ptrs[static_cast<std::size_t>(b)] = &in[static_cast<std::size_t>(b)];
        }
        if (s.is_last) {
          for (std::int64_t b = 0; b < n; ++b) {
            cx.dot_ptrs[static_cast<std::size_t>(b)] =
                &cx.last_conv_dot[static_cast<std::size_t>(b)];
          }
          if (s.tiled) {
            s.conv_dot_tiled(cx.in_ptrs.data(), n, s.filters_tiled, s.conv_spec, cx.pool,
                             cx.dot_ptrs.data());
          } else {
            s.conv_dot(cx.in_ptrs.data(), n, s.filters, s.conv_spec, cx.pool,
                       cx.dot_ptrs.data());
          }
          for (std::int64_t b = 0; b < n; ++b) {
            const Tensor& dots = cx.last_conv_dot[static_cast<std::size_t>(b)];
            std::copy(dots.data(), dots.data() + dots.num_elements(),
                      cx.scores.data() + b * out_size);
          }
        } else {
          std::vector<PackedTensor>& out = cx.acts[static_cast<std::size_t>(s.out_act)];
          for (std::int64_t b = 0; b < n; ++b) {
            cx.out_ptrs[static_cast<std::size_t>(b)] = &out[static_cast<std::size_t>(b)];
          }
          if (s.tiled) {
            s.conv_bin_tiled(cx.in_ptrs.data(), n, s.filters_tiled, s.conv_spec, th, cx.pool,
                             cx.out_ptrs.data(), s.out_margin);
          } else {
            s.conv_bin(cx.in_ptrs.data(), n, s.filters, s.conv_spec, th, cx.pool,
                       cx.out_ptrs.data(), s.out_margin);
          }
        }
        break;
      }
      case LayerKind::kPool: {
        std::vector<PackedTensor>& in = cx.acts[static_cast<std::size_t>(s.in_act)];
        if (s.is_last) {
          for (std::int64_t b = 0; b < n; ++b) {
            PackedTensor& out = cx.last_pool_out[static_cast<std::size_t>(b)];
            kernels::binary_maxpool(in[static_cast<std::size_t>(b)], s.pool_spec, s.isa,
                                    cx.pool, out, 0);
            const Tensor signs = bitpack::unpack_to_signs(out);
            std::copy(signs.data(), signs.data() + signs.num_elements(),
                      cx.scores.data() + b * out_size);
          }
        } else {
          std::vector<PackedTensor>& out = cx.acts[static_cast<std::size_t>(s.out_act)];
          for (std::int64_t b = 0; b < n; ++b) {
            kernels::binary_maxpool(in[static_cast<std::size_t>(b)], s.pool_spec, s.isa,
                                    cx.pool, out[static_cast<std::size_t>(b)], s.out_margin);
          }
        }
        break;
      }
      case LayerKind::kFc: {
        PackedMatrix& in = cx.fc_bits[static_cast<std::size_t>(s.in_fc)];
        if (s.flatten_input && !starts_with_fc) {
          // The producing conv/pool stage wrote margin-0 buffers; flatten
          // each image into its own row of the batch matrix.
          std::vector<PackedTensor>& prev = cx.acts.back();
          for (std::int64_t b = 0; b < n; ++b) {
            bitpack::flatten_packed_row(prev[static_cast<std::size_t>(b)], in, b);
          }
        }
        if (s.is_last) {
          if (s.tiled) {
            s.fc_dot_tiled(in, n, s.fc_tiled, cx.pool, cx.scores.data());
          } else {
            s.fc_dot(in, n, s.fc_weights, cx.pool, cx.scores.data());
          }
        } else if (s.tiled) {
          s.fc_bin_tiled(in, n, s.fc_tiled, th, cx.pool,
                         cx.fc_bits[static_cast<std::size_t>(s.out_fc)]);
        } else {
          s.fc_bin(in, n, s.fc_weights, th, cx.pool,
                   cx.fc_bits[static_cast<std::size_t>(s.out_fc)]);
        }
        break;
      }
    }
    if (profile) {
      const std::uint64_t t1 = telemetry::trace_now_ns();
      cx.profile_ms.push_back(static_cast<double>(t1 - t0) / 1e6);
      im.span_stats[i + 1].record(t1 - t0, static_cast<std::uint64_t>(n));
      t0 = t1;
      if (perf_on) {
        const telemetry::PerfCounts now = cx.perf.read();
        im.record_perf(i + 1, now - perf_prev);
        perf_prev = now;
      }
    }
  }
  // Final checkpoint: a token that fired during the last stage's parallel_for
  // made the pool skip chunks, leaving cx.scores unwritten (or stale from a
  // previous batch).  Re-checking here upholds cancel.hpp's "partial results
  // never escape" — the scores span is returned only by a run no checkpoint
  // interrupted.
  checkpoint();
  return {cx.scores.data(), static_cast<std::size_t>(n * out_size)};
}

std::span<const float> BinaryNetwork::infer(const Tensor& input_hwc) {
  Impl& im = *impl_;
  if (!im.finalized) throw std::logic_error("BinaryNetwork: infer before finalize");
  const Tensor* input = &input_hwc;
  return infer_batch({&input, 1}, *im.default_ctx);
}

bool BinaryNetwork::finalized() const noexcept { return impl_->finalized; }
const std::vector<LayerInfo>& BinaryNetwork::layers() const { return impl_->infos; }
TensorDesc BinaryNetwork::input_desc() const { return impl_->input; }
std::int64_t BinaryNetwork::output_size() const {
  return impl_->finalized ? impl_->plan.scores_size : 0;
}
int BinaryNetwork::num_threads() const noexcept { return impl_->cfg.num_threads; }
std::int64_t BinaryNetwork::packed_weight_bytes() const { return impl_->weight_bytes; }
const std::vector<double>& BinaryNetwork::last_profile_ms() const {
  return impl_->default_ctx ? impl_->default_ctx->last_profile_ms() : impl_->no_profile;
}

ProfileReport BinaryNetwork::profile_report() const {
  const Impl& im = *impl_;
  if (!im.finalized) throw std::logic_error("BinaryNetwork: profile_report before finalize");
  ProfileReport rep;
  rep.rows.reserve(im.stages.size() + 1);
  for (std::size_t i = 0; i < im.stages.size() + 1; ++i) {
    LayerProfile row;
    if (i == 0) {
      row.name = "pack_input";
      row.kernel = "bitpack";
    } else {
      row.name = im.infos[i - 1].name;
      row.kernel = im.kernel_names[i - 1];
      row.ait = im.stage_ait[i - 1];
    }
    const telemetry::SpanStats::View v = im.span_stats[i].view();
    row.calls = v.count;
    row.images = v.units;
    row.mean_ms = v.mean_ns() / 1e6;
    row.p50_ms = static_cast<double>(v.p50_ns) / 1e6;
    row.p99_ms = static_cast<double>(v.p99_ns) / 1e6;
    row.min_ms = static_cast<double>(v.min_ns) / 1e6;
    if (i > 0 && v.total_ns > 0 && im.stage_ops[i - 1] > 0.0) {
      // ops/ns == GOPS; normalized per image so fused batches don't inflate.
      row.gops = im.stage_ops[i - 1] * static_cast<double>(v.units) /
                 static_cast<double>(v.total_ns);
      // The roof only applies to layers running the binary primitive.
      if (im.stage_ait[i - 1] > 0.0) {
        row.roof_gops = telemetry::roofline_peak_gops(im.stages[i - 1].isa);
      }
    }
    // Measured hardware-counter attribution, when the sampler ran for this
    // stage; otherwise the row keeps perf_source = "calibrated" and the
    // calibrated-peak roofline above is the only evidence.
    const Impl::PerfStage& p = im.perf_stats[i];
    // Ordering contract: relaxed — see PerfStage declaration.
    if (p.samples.load(std::memory_order_relaxed) > 0) {
      const std::uint64_t cyc = p.cycles.load(std::memory_order_relaxed);
      const std::uint64_t ins = p.instructions.load(std::memory_order_relaxed);
      const std::uint64_t miss = p.llc_misses.load(std::memory_order_relaxed);
      if (cyc > 0) row.ipc = static_cast<double>(ins) / static_cast<double>(cyc);
      if (ins > 0) {
        row.llc_mpki = static_cast<double>(miss) * 1000.0 / static_cast<double>(ins);
      }
      row.perf_source = "measured";
    }
    rep.rows.push_back(std::move(row));
  }
  return rep;
}

void BinaryNetwork::reset_profile() {
  Impl& im = *impl_;
  if (!im.finalized) return;
  for (std::size_t i = 0; i < im.stages.size() + 1; ++i) {
    im.span_stats[i].reset();
    Impl::PerfStage& p = im.perf_stats[i];
    // Ordering contract: relaxed — see PerfStage declaration.
    p.cycles.store(0, std::memory_order_relaxed);
    p.instructions.store(0, std::memory_order_relaxed);
    p.llc_misses.store(0, std::memory_order_relaxed);
    p.samples.store(0, std::memory_order_relaxed);
  }
}

std::string ProfileReport::to_table() const {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof line,
                "%-14s %-30s %7s %7s %9s %9s %9s %8s %14s %6s %5s %7s %10s\n", "layer",
                "kernel", "calls", "images", "mean_ms", "p50_ms", "p99_ms", "gops",
                "roof(gops)", "ait", "ipc", "mpki", "src");
  out += line;
  out.append(143, '-');
  out += '\n';
  for (const LayerProfile& r : rows) {
    char roof[24] = "n/a";
    char ait_s[16] = "n/a";
    char ipc_s[16] = "n/a";
    char mpki_s[16] = "n/a";
    if (r.roof_gops > 0.0) {
      std::snprintf(roof, sizeof roof, "%6.1f (%3.0f%%)", r.roof_gops,
                    100.0 * r.gops / r.roof_gops);
    }
    if (r.ait > 0.0) std::snprintf(ait_s, sizeof ait_s, "%.1f", r.ait);
    if (r.perf_source == "measured") {
      std::snprintf(ipc_s, sizeof ipc_s, "%.2f", r.ipc);
      std::snprintf(mpki_s, sizeof mpki_s, "%.2f", r.llc_mpki);
    }
    std::snprintf(line, sizeof line,
                  "%-14s %-30s %7llu %7llu %9.4f %9.4f %9.4f %8.1f %14s %6s %5s %7s %10s\n",
                  r.name.c_str(), r.kernel.c_str(),
                  static_cast<unsigned long long>(r.calls),
                  static_cast<unsigned long long>(r.images), r.mean_ms, r.p50_ms, r.p99_ms,
                  r.gops, roof, ait_s, ipc_s, mpki_s, r.perf_source.c_str());
    out += line;
  }
  return out;
}

}  // namespace bitflow::graph
