// Static binary network graph: BitFlow's network-level optimization layer
// (paper Sec. IV).
//
// A BinaryNetwork is built layer by layer from *float* weights, then
// `finalize()` performs everything the paper does once at initialization:
//   * shape inference over the whole chain (scheduler component 1);
//   * kernel selection per operator from the channel-multiple rules and the
//     detected hardware (components 2-3, Fig. 6);
//   * binarization + bit-packing of all weights, once and for all;
//   * pre-allocation of every activation buffer, with each buffer sized to
//     carry the *consumer's* padding margin so that padding costs nothing at
//     inference time (Fig. 5) — the static-graph memory planner.
//
// `infer()` then runs batch-1 inference with zero allocation: pack the
// input, run the fused conv+binarize / OR-pool / bgemm chain, return the
// float scores of the last layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/scheduler.hpp"
#include "graph/shape_infer.hpp"
#include "kernels/bgemm.hpp"
#include "kernels/binary_maxpool.hpp"
#include "kernels/pressedconv.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::graph {

/// Kind of a network layer.
enum class LayerKind { kConv, kPool, kFc };

[[nodiscard]] constexpr const char* layer_kind_name(LayerKind k) noexcept {
  switch (k) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "maxpool";
    case LayerKind::kFc: return "fc";
  }
  return "?";
}

/// Introspection record for one layer (drives the Fig. 6 operator-to-kernel
/// mapping report and the per-layer profiles).
struct LayerInfo {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  TensorDesc in;   ///< logical (unpadded) input extents
  TensorDesc out;  ///< logical output extents
  std::int64_t pad = 0;  ///< input padding consumed by this layer (conv only)
  simd::IsaLevel isa = simd::IsaLevel::kU64;
  std::string isa_reason;
  bool full_precision = false;  ///< first-layer float conv (see add_conv_float)
};

/// Network-wide execution configuration.
struct NetworkConfig {
  int num_threads = 1;
  SchedulerPolicy policy = SchedulerPolicy::kPaperRules;
  bool profile = false;  ///< record per-layer wall-clock on every inference
  /// Caps the scheduler's kernel choice (e.g. kAvx2 to model an i7-7700HQ
  /// on wider hardware).  The cap must itself be hardware-supported.
  std::optional<simd::IsaLevel> max_isa;
};

/// Sequential binary network (BitFlow targets inference latency: batch = 1,
/// linear chains — exactly the workloads of the paper's evaluation).
class BinaryNetwork {
 public:
  explicit BinaryNetwork(NetworkConfig cfg = {});
  BinaryNetwork(BinaryNetwork&&) noexcept;
  BinaryNetwork& operator=(BinaryNetwork&&) noexcept;
  ~BinaryNetwork();

  // --- construction ---------------------------------------------------------

  /// Appends a binary convolution with symmetric spatial padding `pad`.
  /// `thresholds` (size K, may be empty = all zero) is the per-output-channel
  /// binarization threshold (folded batch-norm).  Output is re-binarized
  /// unless this ends up being the network's last layer.
  void add_conv(std::string name, FilterBank weights, std::int64_t stride, std::int64_t pad,
                std::vector<float> thresholds = {});

  /// Appends a *full-precision* convolution as the network's first layer:
  /// the float input is convolved with float weights (image-to-column +
  /// sgemm), and the outputs are binarized through `thresholds` into the
  /// packed pipeline.  Keeping the first layer in full precision is the
  /// accuracy-recovery technique the paper cites (Zhuang et al.): the
  /// input image carries real-valued information a sign() would destroy,
  /// and the first layer is a tiny fraction of total compute (C is 3).
  /// Only valid as the first layer.
  void add_conv_float(std::string name, FilterBank weights, std::int64_t stride,
                      std::int64_t pad, std::vector<float> thresholds = {});

  /// Appends a binary convolution whose weights are already bit-packed
  /// (e.g. loaded from a model file via io::Model) — finalize() skips the
  /// binarize+pack step for this layer.
  void add_conv_packed(std::string name, PackedFilterBank filters, std::int64_t stride,
                       std::int64_t pad, std::vector<float> thresholds = {});

  /// Appends a binary max pooling layer.
  void add_maxpool(std::string name, kernels::PoolSpec spec);

  /// Appends a binary fully connected layer; `weights` is the row-major
  /// n x k float matrix of the paper's Table III convention.
  void add_fc(std::string name, std::vector<float> weights, std::int64_t n, std::int64_t k,
              std::vector<float> thresholds = {});

  /// Appends a binary fully connected layer from already-packed weights in
  /// the engine's internal K x N row layout (one packed input-vector row
  /// per output neuron, as produced by bitpack::pack_transpose_fc_weights).
  void add_fc_packed(std::string name, PackedMatrix weights, std::vector<float> thresholds = {});

  /// Runs shape inference, kernel selection, weight packing and memory
  /// planning for input extents `input`.  Must be called exactly once,
  /// after which the layer list is frozen.
  void finalize(TensorDesc input);

  // --- inference -------------------------------------------------------------

  /// Batch-1 inference.  `input_hwc` must match the finalized input extents.
  /// The returned span (the last layer's float outputs) stays valid until
  /// the next call.
  std::span<const float> infer(const Tensor& input_hwc);

  // --- introspection -----------------------------------------------------------

  [[nodiscard]] bool finalized() const noexcept;
  [[nodiscard]] const std::vector<LayerInfo>& layers() const;
  [[nodiscard]] TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;
  [[nodiscard]] int num_threads() const noexcept;
  /// Total bytes of packed weights (the 32x model-size story of Table V).
  [[nodiscard]] std::int64_t packed_weight_bytes() const;
  /// Per-layer wall-clock of the most recent infer() (profile mode only;
  /// index matches layers(); one extra leading entry is the input pack).
  [[nodiscard]] const std::vector<double>& last_profile_ms() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::graph
