// Static binary network graph: BitFlow's network-level optimization layer
// (paper Sec. IV).
//
// A BinaryNetwork is built layer by layer from *float* weights, then
// `finalize()` performs everything the paper does once at initialization:
//   * shape inference over the whole chain (scheduler component 1);
//   * kernel selection per operator from the channel-multiple rules and the
//     detected hardware (components 2-3, Fig. 6);
//   * binarization + bit-packing of all weights, once and for all;
//   * a memory plan sizing every activation buffer, with each buffer carrying
//     the *consumer's* padding margin so that padding costs nothing at
//     inference time (Fig. 5) — the static-graph memory planner.
//
// Thread-safety / replicated serving (the contract the serve::Engine relies
// on): after finalize() the network itself is immutable — stages, packed
// weights, layer metadata and the memory plan are only ever read.  All
// mutable per-inference state (thread pool, activation buffers, fc bit rows,
// score buffer, profile log) lives in an InferenceContext created by
// `make_context()`.  Any number of threads may call `infer_batch()`
// concurrently on the same finalized network as long as each call uses a
// different context; a single context must not be used by two calls at once.
// The convenience `infer()` uses one internal default context and is
// therefore NOT safe to call concurrently — replicated workers must go
// through make_context() + infer_batch().
//
// `infer_batch()` runs N <= max_batch images in one pass with zero
// allocation at steady state: the batch axis is fused with the spatial
// output range inside the kernels (one n*H*W parallel_for per conv, one
// n*K bgemm per fc), so a micro-batch costs one fork/join per layer
// instead of N.  Output b is bit-identical to a batch-1 run of input b.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "graph/scheduler.hpp"
#include "graph/shape_infer.hpp"
#include "kernels/bgemm.hpp"
#include "kernels/binary_maxpool.hpp"
#include "kernels/pressedconv.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::graph {

/// Kind of a network layer.
enum class LayerKind { kConv, kPool, kFc };

[[nodiscard]] constexpr const char* layer_kind_name(LayerKind k) noexcept {
  switch (k) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "maxpool";
    case LayerKind::kFc: return "fc";
  }
  return "?";
}

/// Introspection record for one layer (drives the Fig. 6 operator-to-kernel
/// mapping report and the per-layer profiles).
struct LayerInfo {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  TensorDesc in;   ///< logical (unpadded) input extents
  TensorDesc out;  ///< logical output extents
  std::int64_t pad = 0;  ///< input padding consumed by this layer (conv only)
  simd::IsaLevel isa = simd::IsaLevel::kU64;
  std::string isa_reason;
  bool full_precision = false;  ///< first-layer float conv (see add_conv_float)
  /// Weight layout finalize() chose for this layer (conv/fc only):
  /// kInterleaved when the register-tiled kernels run it, kFilterMajor when
  /// it fell back (tiling disabled, K < tile width, or no weights at all).
  kernels::WeightLayout layout = kernels::WeightLayout::kFilterMajor;
  /// Committed register-tile width T (0 = filter-major kernels) and
  /// parallel-axis grain of the fused spatial range — the execution plan the
  /// stage will dispatch.  With auto-tuning off these mirror the static
  /// heuristic (weight_tile_width / grain 1).
  std::int64_t tile = 0;
  std::int64_t par_grain = 1;
  /// Provenance of the plan: "default" (static heuristic), "search"
  /// (measured at this finalize) or "cache" (loaded from the tuning cache).
  std::string tune_source = "default";
};

/// One row of a per-layer profile (see BinaryNetwork::profile_report()).
/// Latencies are per infer_batch() invocation of that stage (a fused batch
/// is one invocation); GOPS is normalized by images, so batch size does not
/// inflate it.
struct LayerProfile {
  std::string name;    ///< layer name; row 0 is the input pack ("pack_input")
  std::string kernel;  ///< kernel + ISA actually dispatched, e.g. "pressedconv_bin_tiled[avx2]"
  std::uint64_t calls = 0;   ///< stage invocations recorded
  std::uint64_t images = 0;  ///< images processed across those calls
  double mean_ms = 0.0;
  double p50_ms = 0.0;  ///< log2-bucket upper bound
  double p99_ms = 0.0;
  double min_ms = 0.0;
  /// Achieved binary-op throughput (2 ops per MAC, the bench convention);
  /// 0 for stages with no counted arithmetic (pool, input pack).
  double gops = 0.0;
  /// Measured xor+popcount roof for this layer's ISA (telemetry
  /// roofline_peak_gops); 0 = not applicable (full-precision, pool, pack).
  double roof_gops = 0.0;
  /// Arithmetic intensity of the layer's direct binary convolution
  /// (core/ait, ops per memory element); 0 = not applicable.
  double ait = 0.0;
  /// Measured hardware-counter attribution (telemetry::PerfSampler), when
  /// perf_event_open could run: instructions per cycle and LLC misses per
  /// kilo-instruction across this stage's profiled invocations.  0 when the
  /// stage went unmeasured.
  double ipc = 0.0;
  double llc_mpki = 0.0;
  /// Roofline provenance: "measured" when hardware counters backed this
  /// row, "calibrated" when only the calibrated-peak model applies (perf
  /// unavailable: CI containers, perf_event_paranoid, BITFLOW_NO_PERF).
  std::string perf_source = "calibrated";
};

/// Aggregated per-layer profile of every profiled inference since finalize()
/// (or the last reset_profile()).
struct ProfileReport {
  std::vector<LayerProfile> rows;  ///< row 0 = input pack, then one per layer
  /// Human-readable fixed-width table (one row per layer) with a roofline
  /// column showing achieved/peak GOPS for binary layers.
  [[nodiscard]] std::string to_table() const;
};

/// Network-wide execution configuration.
struct NetworkConfig {
  int num_threads = 1;
  SchedulerPolicy policy = SchedulerPolicy::kPaperRules;
  bool profile = false;  ///< record per-layer wall-clock on every inference
  /// Caps the scheduler's kernel choice (e.g. kAvx2 to model an i7-7700HQ
  /// on wider hardware).  The cap must itself be hardware-supported.
  std::optional<simd::IsaLevel> max_isa;
  /// Re-lay conv filters and FC weights into the T-way interleaved layout at
  /// finalize() and run the register-tiled kernels (bit-exact with the
  /// filter-major path; same weight bytes).  Layers with fewer outputs than
  /// the tile width keep the filter-major layout either way.
  bool tile_weights = true;
  /// Run the finalize-time auto-tuner (tune/tuner.hpp): microbenchmark each
  /// conv/fc layer's kernel candidates (tiled vs untiled x tile width x
  /// parallel grain) on its real shapes and commit the fastest.  Every
  /// candidate is bit-exact, so tuning changes latency only.  Decisions are
  /// read from / written to the tuning cache (below) so warm starts skip the
  /// search.
  bool auto_tune = false;
  /// Path of the persistent tuning cache.  Empty (the default) falls back to
  /// $BITFLOW_TUNE_CACHE; if that is unset too, decisions are not persisted.
  /// A missing, corrupt or stale cache silently re-searches — it can never
  /// produce a wrong plan.
  std::string tune_cache_path;
};

class BinaryNetwork;

/// All mutable per-inference state of one inference stream: a thread pool
/// plus every scratch buffer the network's memory plan calls for, sized for
/// up to `max_batch` images.  Contexts are created by
/// BinaryNetwork::make_context(), are move-only, and must not outlive the
/// network they were made from.  One context serves one infer_batch() call
/// at a time; replicated workers each own their own context.
class InferenceContext {
 public:
  InferenceContext(InferenceContext&&) noexcept;
  InferenceContext& operator=(InferenceContext&&) noexcept;
  ~InferenceContext();

  [[nodiscard]] std::int64_t max_batch() const noexcept;
  [[nodiscard]] int num_threads() const noexcept;
  /// Per-layer wall-clock of the most recent infer_batch() through this
  /// context (profile mode only; one extra leading entry is the input pack).
  [[nodiscard]] const std::vector<double>& last_profile_ms() const;

 private:
  friend class BinaryNetwork;
  struct Impl;
  explicit InferenceContext(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Sequential binary network (BitFlow targets inference latency: linear
/// chains, micro-batches of a few images — exactly the serving workloads of
/// the paper's evaluation).
class BinaryNetwork {
 public:
  explicit BinaryNetwork(NetworkConfig cfg = {});
  BinaryNetwork(BinaryNetwork&&) noexcept;
  BinaryNetwork& operator=(BinaryNetwork&&) noexcept;
  ~BinaryNetwork();

  // --- construction ---------------------------------------------------------

  /// Appends a binary convolution with symmetric spatial padding `pad`.
  /// `thresholds` (size K, may be empty = all zero) is the per-output-channel
  /// binarization threshold (folded batch-norm).  Output is re-binarized
  /// unless this ends up being the network's last layer.
  void add_conv(std::string name, FilterBank weights, std::int64_t stride, std::int64_t pad,
                std::vector<float> thresholds = {});

  /// Appends a *full-precision* convolution as the network's first layer:
  /// the float input is convolved with float weights (image-to-column +
  /// sgemm), and the outputs are binarized through `thresholds` into the
  /// packed pipeline.  Keeping the first layer in full precision is the
  /// accuracy-recovery technique the paper cites (Zhuang et al.): the
  /// input image carries real-valued information a sign() would destroy,
  /// and the first layer is a tiny fraction of total compute (C is 3).
  /// Only valid as the first layer.
  void add_conv_float(std::string name, FilterBank weights, std::int64_t stride,
                      std::int64_t pad, std::vector<float> thresholds = {});

  /// Appends a binary convolution whose weights are already bit-packed
  /// (e.g. loaded from a model file via io::Model) — finalize() skips the
  /// binarize+pack step for this layer.
  void add_conv_packed(std::string name, PackedFilterBank filters, std::int64_t stride,
                       std::int64_t pad, std::vector<float> thresholds = {});

  /// Appends a binary max pooling layer.
  void add_maxpool(std::string name, kernels::PoolSpec spec);

  /// Appends a binary fully connected layer; `weights` is the row-major
  /// n x k float matrix of the paper's Table III convention.
  void add_fc(std::string name, std::vector<float> weights, std::int64_t n, std::int64_t k,
              std::vector<float> thresholds = {});

  /// Appends a binary fully connected layer from already-packed weights in
  /// the engine's internal K x N row layout (one packed input-vector row
  /// per output neuron, as produced by bitpack::pack_transpose_fc_weights).
  void add_fc_packed(std::string name, PackedMatrix weights, std::vector<float> thresholds = {});

  /// Runs shape inference, kernel selection, weight packing and memory
  /// planning for input extents `input`.  Must be called exactly once,
  /// after which the network is immutable (see the thread-safety contract
  /// at the top of this header).
  void finalize(TensorDesc input);

  // --- inference -------------------------------------------------------------

  /// Allocates an inference context able to run micro-batches of up to
  /// `max_batch` images.  The overload with `num_threads` sizes the
  /// context's own thread pool (default: the network's configured count) —
  /// replicated engine workers typically use a small per-worker pool.
  /// Only valid after finalize(); const and safe to call concurrently.
  [[nodiscard]] InferenceContext make_context(std::int64_t max_batch) const;
  [[nodiscard]] InferenceContext make_context(std::int64_t max_batch, int num_threads) const;

  /// Batch-N inference: runs inputs[0..n) (all matching the finalized input
  /// extents) through the chain using `ctx`'s buffers and pool.  Returns the
  /// concatenated float scores, laid out [image 0 scores | image 1 scores |
  /// ...], valid until the context's next use.  Bit-exact with n separate
  /// batch-1 runs.  Const: any number of concurrent calls are safe as long
  /// as every call uses a distinct context.
  std::span<const float> infer_batch(std::span<const Tensor* const> inputs,
                                     InferenceContext& ctx) const;

  /// Same, with cooperative cancellation: `cancel` is polled at every layer
  /// boundary (throwing core::CancelledError when it fired) and installed on
  /// the context's thread pool so parallel_for range chunks skip once it
  /// latches — an abandoned batch stops within roughly one layer instead of
  /// burning the full forward pass.  An inert (default) token makes this
  /// identical to the overload above; the per-checkpoint disarmed cost is
  /// one null check (< 2 ns, gated in CI like the disarmed TraceSpan).  On
  /// cancellation the context's buffers hold garbage but the context stays
  /// valid for the next call.
  std::span<const float> infer_batch(std::span<const Tensor* const> inputs,
                                     InferenceContext& ctx,
                                     const core::CancelToken& cancel) const;

  /// Batch-1 convenience API over an internal default context (created at
  /// finalize).  NOT safe to call concurrently — see the header contract.
  /// The returned span stays valid until the next call.
  std::span<const float> infer(const Tensor& input_hwc);

  // --- introspection -----------------------------------------------------------

  [[nodiscard]] bool finalized() const noexcept;
  [[nodiscard]] const std::vector<LayerInfo>& layers() const;
  [[nodiscard]] TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;
  [[nodiscard]] int num_threads() const noexcept;
  /// Total bytes of packed weights (the 32x model-size story of Table V).
  [[nodiscard]] std::int64_t packed_weight_bytes() const;
  /// Per-layer wall-clock of the most recent infer() (profile mode only;
  /// index matches layers(); one extra leading entry is the input pack).
  /// Reads the default context — for infer_batch() use
  /// InferenceContext::last_profile_ms().
  [[nodiscard]] const std::vector<double>& last_profile_ms() const;

  /// Aggregated per-layer profile across every profiled inference through
  /// this network (all contexts; the per-layer accumulators are lock-free,
  /// so concurrent replicated workers profile into the same report).
  /// Populated when NetworkConfig::profile is set or process-wide profiling
  /// is armed (telemetry::set_profiling / BITFLOW_PROFILE=1); with profiling
  /// disarmed the rows carry the static metadata but zero samples.
  /// Only valid after finalize().
  [[nodiscard]] ProfileReport profile_report() const;

  /// Clears the profile accumulators (not the static metadata).  Do not call
  /// concurrently with in-flight profiled inferences.
  void reset_profile();

 private:
  friend class InferenceContext;  // its Impl allocates from the buffer plan
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::graph
