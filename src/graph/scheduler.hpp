// Vector execution scheduler (paper Sec. III-B, Fig. 4): shape inferer +
// hardware detector + code generator.
//
// The shape inferer lives in shape_infer.hpp and the hardware detector in
// simd/cpu_features.hpp; this header is the code generator — the rule table
// that maps an operator's channel dimension to the computing kernel
// (Fig. 6):
//   rule 1: C % 512 == 0 and AVX-512 available  -> 512-bit kernel
//   rule 2: C % 256 == 0 and AVX2 available     -> 256-bit kernel
//   rule 3: C % 128 == 0 and SSE available      -> 128-bit kernel
//   rule 4: otherwise -> scalar word kernel; channel counts that are not a
//           multiple of the word size are padded with zero bits (the packers
//           maintain zero tails, so no separate padding pass exists).
//
// kWidest is a BitFlow extension beyond the paper: because NHWC channel
// packing makes a whole window row (kw * words_per_pixel words) contiguous,
// a vector register may legitimately span filter taps, so the widest
// hardware ISA is usable for any channel count.  bench_isa_ablation
// quantifies what the paper's conservative rules leave on the table.
#pragma once

#include <string>

#include "simd/cpu_features.hpp"
#include "simd/isa.hpp"

namespace bitflow::graph {

/// Kernel selection policy.
enum class SchedulerPolicy {
  kPaperRules,  ///< the channel-multiple rules of Sec. III-B (default)
  kWidest,      ///< always the widest ISA the hardware supports
};

/// Selects the ISA level for an operator whose packed dimension (channels
/// for conv/pool, input neurons for FC) is `channels`, on hardware `f`.
[[nodiscard]] simd::IsaLevel select_isa(std::int64_t channels, const simd::CpuFeatures& f,
                                        SchedulerPolicy policy = SchedulerPolicy::kPaperRules);

/// Human-readable justification of a selection ("C=256 is a multiple of 256
/// -> avx2 (rule 2)"), used by the Fig. 6 mapping report.
[[nodiscard]] std::string explain_isa_selection(std::int64_t channels,
                                                const simd::CpuFeatures& f,
                                                SchedulerPolicy policy);

}  // namespace bitflow::graph
