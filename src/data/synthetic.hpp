// Procedural classification datasets.
//
// The paper's accuracy comparison (Table V) uses MNIST / CIFAR-10 /
// ImageNet, none of which are available offline in this environment.  These
// generators produce fully deterministic stand-ins with a controllable
// difficulty dial, so the *shape* of Table V — binarized networks trail
// their float counterparts by a few points, with the gap widening as the
// task hardens — can be reproduced end to end with the training substrate.
//
//  * synth_digits : 10 classes of digit-like stroke stencils, single
//                   channel (the MNIST stand-in).
//  * synth_shapes : 6 classes of colored geometric shapes on textured
//                   backgrounds, 3 channels (the CIFAR-10 stand-in).
//
// Difficulty raises additive noise, random shifts, and per-sample contrast
// jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bitflow::data {

/// A labelled image classification dataset (images are HWC floats in
/// roughly [-1, 1]).
struct Dataset {
  std::int64_t image_size = 0;
  std::int64_t channels = 0;
  int num_classes = 0;
  std::vector<Tensor> images;
  std::vector<int> labels;

  [[nodiscard]] std::size_t size() const noexcept { return images.size(); }
};

/// Task hardness: controls noise sigma, spatial jitter, and deformation.
enum class Difficulty { kEasy, kMedium, kHard };

/// 10-class digit-stencil dataset, 1 channel, `size` x `size` pixels.
[[nodiscard]] Dataset make_synth_digits(int num_samples, Difficulty difficulty,
                                        std::uint64_t seed, std::int64_t size = 16);

/// 6-class geometric-shape dataset, 3 channels, `size` x `size` pixels.
[[nodiscard]] Dataset make_synth_shapes(int num_samples, Difficulty difficulty,
                                        std::uint64_t seed, std::int64_t size = 16);

/// Splits a dataset into train/test by taking every `holdout`-th sample as
/// test (deterministic, label-balanced enough for these generators).
void split(const Dataset& all, int holdout, Dataset& train, Dataset& test);

}  // namespace bitflow::data
