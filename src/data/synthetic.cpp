#include "data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string_view>

namespace bitflow::data {

namespace {

struct DifficultyParams {
  float noise_sigma;   ///< additive Gaussian noise
  int max_shift;       ///< uniform spatial jitter in pixels
  float contrast_min;  ///< per-sample contrast scale lower bound
  float drop_prob;     ///< probability of zeroing a foreground pixel
};

DifficultyParams params_for(Difficulty d) {
  switch (d) {
    case Difficulty::kEasy: return {0.15f, 1, 0.8f, 0.00f};
    case Difficulty::kMedium: return {0.35f, 2, 0.6f, 0.05f};
    case Difficulty::kHard: return {0.45f, 3, 0.5f, 0.10f};
  }
  throw std::invalid_argument("bad difficulty");
}

// 5x7 digit stencils ('#' = stroke).  Deliberately crude: the classifier has
// to rely on stroke topology, as with real digits.
constexpr std::array<std::array<std::string_view, 7>, 10> kDigits = {{
    {"#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"},  // 0
    {"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."},  // 1
    {"#####", "....#", "....#", "#####", "#....", "#....", "#####"},  // 2
    {"#####", "....#", "....#", ".####", "....#", "....#", "#####"},  // 3
    {"#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"},  // 4
    {"#####", "#....", "#....", "#####", "....#", "....#", "#####"},  // 5
    {"#####", "#....", "#....", "#####", "#...#", "#...#", "#####"},  // 6
    {"#####", "....#", "...#.", "..#..", "..#..", "..#..", "..#.."},  // 7
    {"#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"},  // 8
    {"#####", "#...#", "#...#", "#####", "....#", "....#", "#####"},  // 9
}};

float clampf(float v, float lo, float hi) { return std::min(hi, std::max(lo, v)); }

}  // namespace

Dataset make_synth_digits(int num_samples, Difficulty difficulty, std::uint64_t seed,
                          std::int64_t size) {
  if (size < 12) throw std::invalid_argument("make_synth_digits: size must be >= 12");
  const DifficultyParams p = params_for(difficulty);
  Dataset ds;
  ds.image_size = size;
  ds.channels = 1;
  ds.num_classes = 10;
  ds.images.reserve(static_cast<std::size_t>(num_samples));
  ds.labels.reserve(static_cast<std::size_t>(num_samples));

  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, p.noise_sigma);
  std::uniform_int_distribution<int> shift(-p.max_shift, p.max_shift);
  std::uniform_real_distribution<float> contrast(p.contrast_min, 1.0f);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);

  // Stencil scaled to ~70% of the canvas.
  const std::int64_t gw = (size * 5) / 8, gh = (size * 7) / 8;
  for (int s = 0; s < num_samples; ++s) {
    const int label = static_cast<int>(rng() % 10);
    Tensor img = Tensor::hwc(size, size, 1);
    const float c = contrast(rng);
    const int dx = shift(rng), dy = shift(rng);
    const std::int64_t x0 = (size - gw) / 2 + dx, y0 = (size - gh) / 2 + dy;
    for (std::int64_t y = 0; y < size; ++y) {
      for (std::int64_t x = 0; x < size; ++x) {
        float v = -1.0f;
        const std::int64_t sy = y - y0, sx = x - x0;
        if (sy >= 0 && sy < gh && sx >= 0 && sx < gw) {
          const std::int64_t row = sy * 7 / gh, col = sx * 5 / gw;
          if (kDigits[static_cast<std::size_t>(label)][static_cast<std::size_t>(row)]
                     [static_cast<std::size_t>(col)] == '#') {
            v = unit(rng) < p.drop_prob ? -1.0f : c;
          }
        }
        img.at(y, x, 0) = clampf(v + noise(rng), -1.0f, 1.0f);
      }
    }
    ds.images.push_back(std::move(img));
    ds.labels.push_back(label);
  }
  return ds;
}

Dataset make_synth_shapes(int num_samples, Difficulty difficulty, std::uint64_t seed,
                          std::int64_t size) {
  if (size < 12) throw std::invalid_argument("make_synth_shapes: size must be >= 12");
  const DifficultyParams p = params_for(difficulty);
  Dataset ds;
  ds.image_size = size;
  ds.channels = 3;
  ds.num_classes = 6;
  ds.images.reserve(static_cast<std::size_t>(num_samples));
  ds.labels.reserve(static_cast<std::size_t>(num_samples));

  std::mt19937_64 rng(seed);
  std::normal_distribution<float> noise(0.0f, p.noise_sigma);
  std::uniform_int_distribution<int> shift(-p.max_shift, p.max_shift);
  std::uniform_real_distribution<float> contrast(p.contrast_min, 1.0f);

  // Class palette: shape geometry x dominant channel.
  // 0 circle/red  1 circle/blue  2 square/green  3 square/magenta-ish
  // 4 cross/yellow-ish  5 triangle/cyan-ish
  for (int s = 0; s < num_samples; ++s) {
    const int label = static_cast<int>(rng() % 6);
    Tensor img = Tensor::hwc(size, size, 3);
    const float c = contrast(rng);
    const float cx = static_cast<float>(size) / 2 + static_cast<float>(shift(rng));
    const float cy = static_cast<float>(size) / 2 + static_cast<float>(shift(rng));
    const float r = static_cast<float>(size) * 0.3f;
    for (std::int64_t y = 0; y < size; ++y) {
      for (std::int64_t x = 0; x < size; ++x) {
        const float fx = static_cast<float>(x) - cx, fy = static_cast<float>(y) - cy;
        bool inside = false;
        switch (label % 6) {
          case 0:
          case 1: inside = fx * fx + fy * fy <= r * r; break;
          case 2:
          case 3: inside = std::abs(fx) <= r * 0.9f && std::abs(fy) <= r * 0.9f; break;
          case 4: inside = std::abs(fx) <= r * 0.3f || std::abs(fy) <= r * 0.3f; break;
          case 5: inside = fy >= -r && fy <= r && std::abs(fx) <= (fy + r) * 0.5f; break;
        }
        float rgb[3] = {-1.0f, -1.0f, -1.0f};
        if (inside) {
          switch (label) {
            case 0: rgb[0] = c; break;
            case 1: rgb[2] = c; break;
            case 2: rgb[1] = c; break;
            case 3: rgb[0] = c; rgb[2] = c; break;
            case 4: rgb[0] = c; rgb[1] = c; break;
            case 5: rgb[1] = c; rgb[2] = c; break;
          }
        }
        for (int ch = 0; ch < 3; ++ch) {
          img.at(y, x, ch) = clampf(rgb[ch] + noise(rng), -1.0f, 1.0f);
        }
      }
    }
    ds.images.push_back(std::move(img));
    ds.labels.push_back(label);
  }
  return ds;
}

void split(const Dataset& all, int holdout, Dataset& train, Dataset& test) {
  if (holdout < 2) throw std::invalid_argument("split: holdout must be >= 2");
  train = Dataset{all.image_size, all.channels, all.num_classes, {}, {}};
  test = Dataset{all.image_size, all.channels, all.num_classes, {}, {}};
  for (std::size_t i = 0; i < all.size(); ++i) {
    Dataset& dst = (i % static_cast<std::size_t>(holdout) == 0) ? test : train;
    dst.images.push_back(all.images[i]);
    dst.labels.push_back(all.labels[i]);
  }
}

}  // namespace bitflow::data
