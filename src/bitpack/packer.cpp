#include "bitpack/packer.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "bitpack/bit64.hpp"
#include "core/check.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::bitpack {

namespace {

/// Fused binarize + pack of 64 consecutive floats (Table II/III style: one
/// bit-field assignment per element, the compiler lowers each to a compare +
/// bit insert; no explicit shift/or in the source).
std::uint64_t pack64(const float* p) {
  bit64_u v;
  v.u = 0;
  // clang-format off
  v.b.b0  = p[0]  >= 0.0f; v.b.b1  = p[1]  >= 0.0f; v.b.b2  = p[2]  >= 0.0f; v.b.b3  = p[3]  >= 0.0f;
  v.b.b4  = p[4]  >= 0.0f; v.b.b5  = p[5]  >= 0.0f; v.b.b6  = p[6]  >= 0.0f; v.b.b7  = p[7]  >= 0.0f;
  v.b.b8  = p[8]  >= 0.0f; v.b.b9  = p[9]  >= 0.0f; v.b.b10 = p[10] >= 0.0f; v.b.b11 = p[11] >= 0.0f;
  v.b.b12 = p[12] >= 0.0f; v.b.b13 = p[13] >= 0.0f; v.b.b14 = p[14] >= 0.0f; v.b.b15 = p[15] >= 0.0f;
  v.b.b16 = p[16] >= 0.0f; v.b.b17 = p[17] >= 0.0f; v.b.b18 = p[18] >= 0.0f; v.b.b19 = p[19] >= 0.0f;
  v.b.b20 = p[20] >= 0.0f; v.b.b21 = p[21] >= 0.0f; v.b.b22 = p[22] >= 0.0f; v.b.b23 = p[23] >= 0.0f;
  v.b.b24 = p[24] >= 0.0f; v.b.b25 = p[25] >= 0.0f; v.b.b26 = p[26] >= 0.0f; v.b.b27 = p[27] >= 0.0f;
  v.b.b28 = p[28] >= 0.0f; v.b.b29 = p[29] >= 0.0f; v.b.b30 = p[30] >= 0.0f; v.b.b31 = p[31] >= 0.0f;
  v.b.b32 = p[32] >= 0.0f; v.b.b33 = p[33] >= 0.0f; v.b.b34 = p[34] >= 0.0f; v.b.b35 = p[35] >= 0.0f;
  v.b.b36 = p[36] >= 0.0f; v.b.b37 = p[37] >= 0.0f; v.b.b38 = p[38] >= 0.0f; v.b.b39 = p[39] >= 0.0f;
  v.b.b40 = p[40] >= 0.0f; v.b.b41 = p[41] >= 0.0f; v.b.b42 = p[42] >= 0.0f; v.b.b43 = p[43] >= 0.0f;
  v.b.b44 = p[44] >= 0.0f; v.b.b45 = p[45] >= 0.0f; v.b.b46 = p[46] >= 0.0f; v.b.b47 = p[47] >= 0.0f;
  v.b.b48 = p[48] >= 0.0f; v.b.b49 = p[49] >= 0.0f; v.b.b50 = p[50] >= 0.0f; v.b.b51 = p[51] >= 0.0f;
  v.b.b52 = p[52] >= 0.0f; v.b.b53 = p[53] >= 0.0f; v.b.b54 = p[54] >= 0.0f; v.b.b55 = p[55] >= 0.0f;
  v.b.b56 = p[56] >= 0.0f; v.b.b57 = p[57] >= 0.0f; v.b.b58 = p[58] >= 0.0f; v.b.b59 = p[59] >= 0.0f;
  v.b.b60 = p[60] >= 0.0f; v.b.b61 = p[61] >= 0.0f; v.b.b62 = p[62] >= 0.0f; v.b.b63 = p[63] >= 0.0f;
  // clang-format on
  return v.u;
}

/// Packs `bits` (< 64) consecutive floats into the low bits of one word.
std::uint64_t pack_partial(const float* p, std::int64_t bits) {
  std::uint64_t w = 0;
  for (std::int64_t i = 0; i < bits; ++i) {
    w |= static_cast<std::uint64_t>(p[i] >= 0.0f) << i;
  }
  return w;
}

/// Fused binarize + pack of 64 floats read with a stride (Table III: packing
/// a column of a row-major matrix, which transposes implicitly).
std::uint64_t pack64_strided(const float* p, std::int64_t stride) {
  std::uint64_t w = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    w |= static_cast<std::uint64_t>(p[i * stride] >= 0.0f) << i;
  }
  return w;
}

/// Packs a contiguous run of `count` floats into `words` (tail bits zero).
void pack_run(const float* src, std::int64_t count, std::uint64_t* dst) {
  BF_DCHECK(count >= 0, "pack_run: negative count ", count);
  std::int64_t c = 0, p = 0;
  for (; c + 64 <= count; c += 64, ++p) dst[p] = pack64(src + c);
  if (c < count) dst[p] = pack_partial(src + c, count - c);
}

}  // namespace

PackedTensor pack_activations_scalar(const Tensor& hwc) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_activations_scalar expects an HWC tensor");
  }
  PackedTensor out(hwc.height(), hwc.width(), hwc.channels());
  const std::int64_t c = hwc.channels();
  const float* src = hwc.data();
  std::uint64_t* dst = out.words();
  const std::int64_t pc = out.words_per_pixel();
  for (std::int64_t px = 0; px < hwc.height() * hwc.width(); ++px) {
    pack_run(src + px * c, c, dst + px * pc);
  }
  return out;
}

void pack_activations_into(const Tensor& hwc, PackedTensor& out) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_activations_into expects an HWC tensor");
  }
  if (out.height() != hwc.height() || out.width() != hwc.width() ||
      out.channels() != hwc.channels()) {
    throw std::invalid_argument("pack_activations_into: extent mismatch");
  }
  const std::int64_t c = hwc.channels();
  const float* src = hwc.data();
  std::uint64_t* dst = out.words();
  const std::int64_t pc = out.words_per_pixel();
  for (std::int64_t px = 0; px < hwc.height() * hwc.width(); ++px) {
    pack_run(src + px * c, c, dst + px * pc);
  }
}

void pack_activations_into_interior(const Tensor& hwc, PackedTensor& out, std::int64_t margin) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_activations_into_interior expects an HWC tensor");
  }
  if (out.height() != hwc.height() + 2 * margin || out.width() != hwc.width() + 2 * margin ||
      out.channels() != hwc.channels()) {
    throw std::invalid_argument("pack_activations_into_interior: extent mismatch");
  }
  const std::int64_t c = hwc.channels();
  const std::int64_t pc = out.words_per_pixel();
  for (std::int64_t h = 0; h < hwc.height(); ++h) {
    const float* src = hwc.data() + hwc.index(h, 0, 0);
    std::uint64_t* dst = out.pixel(h + margin, margin);
    for (std::int64_t w = 0; w < hwc.width(); ++w) {
      pack_run(src + w * c, c, dst + w * pc);
    }
  }
}

void pack_activations_into_interior(const Tensor& hwc, PackedTensor& out, std::int64_t margin,
                                    runtime::ThreadPool& pool) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_activations_into_interior expects an HWC tensor");
  }
  if (out.height() != hwc.height() + 2 * margin || out.width() != hwc.width() + 2 * margin ||
      out.channels() != hwc.channels()) {
    throw std::invalid_argument("pack_activations_into_interior: extent mismatch");
  }
  const std::int64_t c = hwc.channels();
  const std::int64_t pc = out.words_per_pixel();
  pool.parallel_for(hwc.height(), [&](runtime::Range r, int) {
    for (std::int64_t h = r.begin; h < r.end; ++h) {
      const float* src = hwc.data() + hwc.index(h, 0, 0);
      std::uint64_t* dst = out.pixel(h + margin, margin);
      for (std::int64_t w = 0; w < hwc.width(); ++w) {
        pack_run(src + w * c, c, dst + w * pc);
      }
    }
  });
}

void pack_thresholded_into_interior(const Tensor& hwc, const float* thresholds,
                                    PackedTensor& out, std::int64_t margin) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_thresholded_into_interior expects an HWC tensor");
  }
  if (out.height() != hwc.height() + 2 * margin || out.width() != hwc.width() + 2 * margin ||
      out.channels() != hwc.channels()) {
    throw std::invalid_argument("pack_thresholded_into_interior: extent mismatch");
  }
  const std::int64_t c = hwc.channels();
  const std::int64_t pc = out.words_per_pixel();
  for (std::int64_t h = 0; h < hwc.height(); ++h) {
    const float* src = hwc.data() + hwc.index(h, 0, 0);
    std::uint64_t* dst = out.pixel(h + margin, margin);
    for (std::int64_t w = 0; w < hwc.width(); ++w) {
      const float* px = src + w * c;
      std::uint64_t* words = dst + w * pc;
      for (std::int64_t p = 0; p < pc; ++p) words[p] = 0;
      for (std::int64_t cc = 0; cc < c; ++cc) {
        const float th = thresholds != nullptr ? thresholds[cc] : 0.0f;
        if (px[cc] >= th) words[cc >> 6] |= std::uint64_t{1} << (cc & 63);
      }
    }
  }
}

void flatten_packed(const PackedTensor& t, PackedMatrix& out) {
  const std::int64_t bits = t.height() * t.width() * t.channels();
  if (out.rows() != 1 || out.cols() != bits) {
    throw std::invalid_argument("flatten_packed: output must be 1 x (H*W*C)");
  }
  if (t.channels() % 64 == 0) {
    std::memcpy(out.row(0), t.words(), static_cast<std::size_t>(t.num_words()) * 8);
    return;
  }
  std::uint64_t* row = out.row(0);
  for (std::int64_t w = 0; w < out.words_per_row(); ++w) row[w] = 0;
  std::int64_t bit = 0;
  for (std::int64_t h = 0; h < t.height(); ++h) {
    for (std::int64_t w = 0; w < t.width(); ++w) {
      for (std::int64_t c = 0; c < t.channels(); ++c, ++bit) {
        if (t.get_bit(h, w, c)) row[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    }
  }
}

void flatten_packed_row(const PackedTensor& t, PackedMatrix& out, std::int64_t row) {
  const std::int64_t bits = t.height() * t.width() * t.channels();
  if (row < 0 || row >= out.rows()) {
    throw std::invalid_argument("flatten_packed_row: row out of range");
  }
  if (out.cols() != bits) {
    throw std::invalid_argument("flatten_packed_row: output cols must be H*W*C");
  }
  std::uint64_t* dst = out.row(row);
  if (t.channels() % 64 == 0) {
    std::memcpy(dst, t.words(), static_cast<std::size_t>(t.num_words()) * 8);
    return;
  }
  for (std::int64_t w = 0; w < out.words_per_row(); ++w) dst[w] = 0;
  std::int64_t bit = 0;
  for (std::int64_t h = 0; h < t.height(); ++h) {
    for (std::int64_t w = 0; w < t.width(); ++w) {
      for (std::int64_t c = 0; c < t.channels(); ++c, ++bit) {
        if (t.get_bit(h, w, c)) dst[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    }
  }
}

void pack_row_into(const float* x, std::int64_t count, PackedMatrix& out, std::int64_t row) {
  BF_CHECK(x != nullptr || count == 0, "pack_row_into: null input with count ", count);
  if (row < 0 || row >= out.rows()) {
    throw std::invalid_argument("pack_row_into: row out of range");
  }
  if (count != out.cols()) {
    throw std::invalid_argument("pack_row_into: count must equal out.cols()");
  }
  pack_run(x, count, out.row(row));
}

PackedTensor pack_activations(const Tensor& hwc) {
  if (simd::cpu_features().avx2) return pack_activations_avx2(hwc);
  return pack_activations_scalar(hwc);
}

PackedTensor pack_activations_from_chw(const Tensor& chw) {
  if (chw.layout() != Layout::kCHW) {
    throw std::invalid_argument("pack_activations_from_chw expects a CHW tensor");
  }
  const std::int64_t H = chw.height(), W = chw.width(), C = chw.channels();
  PackedTensor out(H, W, C);
  // Channel values of one pixel are H*W floats apart: every packed word
  // gathers from 64 distant cache lines.  This is the cost the NHWC layout
  // avoids.
  const std::int64_t plane = H * W;
  const float* base = chw.data();
  for (std::int64_t h = 0; h < H; ++h) {
    for (std::int64_t w = 0; w < W; ++w) {
      std::uint64_t* px = out.pixel(h, w);
      const float* p0 = base + h * W + w;
      std::int64_t c = 0, p = 0;
      for (; c + 64 <= C; c += 64, ++p) px[p] = pack64_strided(p0 + c * plane, plane);
      if (c < C) {
        std::uint64_t word = 0;
        for (std::int64_t i = 0; c + i < C; ++i) {
          word |= static_cast<std::uint64_t>(p0[(c + i) * plane] >= 0.0f) << i;
        }
        px[p] = word;
      }
    }
  }
  return out;
}

PackedFilterBank pack_filters(const FilterBank& filters) {
  PackedFilterBank out(filters.num_filters(), filters.kernel_h(), filters.kernel_w(),
                       filters.channels());
  const std::int64_t c = filters.channels();
  const std::int64_t taps = filters.num_filters() * filters.kernel_h() * filters.kernel_w();
  const float* src = filters.data();
  std::uint64_t* dst = out.words();
  const std::int64_t pc = out.words_per_pixel();
  for (std::int64_t t = 0; t < taps; ++t) {
    pack_run(src + t * c, c, dst + t * pc);
  }
  return out;
}

namespace {

/// Core T-way interleave shared by filters and FC weights: permutes `rows`
/// equal-length word rows into TiledBitMatrix order (full tiles word-major,
/// remainder rows as-is).
TiledBitMatrix tile_rows(const std::uint64_t* src, std::int64_t rows, std::int64_t row_words,
                         std::int64_t tile) {
  BF_CHECK(tile >= 1, "tile_rows: tile width ", tile);
  TiledBitMatrix out(rows, row_words, tile);
  const std::int64_t tiled_rows = out.tiled_rows();
  for (std::int64_t t = 0; t < out.full_tiles(); ++t) {
    std::uint64_t* block = out.tile_block(t);
    for (std::int64_t l = 0; l < tile; ++l) {
      const std::uint64_t* row = src + (t * tile + l) * row_words;
      for (std::int64_t w = 0; w < row_words; ++w) {
        block[w * tile + l] = row[w];
      }
    }
  }
  for (std::int64_t r = tiled_rows; r < rows; ++r) {
    const std::uint64_t* row = src + r * row_words;
    std::uint64_t* dst_row = out.remainder_row(r - tiled_rows);
    for (std::int64_t w = 0; w < row_words; ++w) dst_row[w] = row[w];
  }
  return out;
}

}  // namespace

TiledFilterBank tile_filters(const PackedFilterBank& filters, std::int64_t tile) {
  return TiledFilterBank(tile_rows(filters.words(), filters.num_filters(),
                                   filters.words_per_filter(), tile),
                         filters.kernel_h(), filters.kernel_w(), filters.channels());
}

TiledBitMatrix tile_fc_weights(const PackedMatrix& w, std::int64_t tile) {
  return tile_rows(w.words(), w.rows(), w.words_per_row(), tile);
}

PackedMatrix pack_transpose_fc_weights(const float* b, std::int64_t n, std::int64_t k) {
  BF_CHECK(b != nullptr, "pack_transpose_fc_weights: null weight matrix");
  BF_CHECK(n >= 1 && k >= 1, "pack_transpose_fc_weights: extents n=", n, " k=", k);
  PackedMatrix out(k, n);
  for (std::int64_t j = 0; j < k; ++j) {
    std::uint64_t* row = out.row(j);
    std::int64_t i = 0, p = 0;
    for (; i + 64 <= n; i += 64, ++p) {
      // Column j of the row-major n x k matrix, stride k: binarization,
      // packing and transposition in one fused pass (Table III).
      row[p] = pack64_strided(&b[i * k + j], k);
    }
    if (i < n) {
      std::uint64_t word = 0;
      for (std::int64_t r = 0; i + r < n; ++r) {
        word |= static_cast<std::uint64_t>(b[(i + r) * k + j] >= 0.0f) << r;
      }
      row[p] = word;
    }
  }
  return out;
}

PackedMatrix pack_transpose_fc_weights_unfused(const float* b, std::int64_t n, std::int64_t k) {
  // Stage 1: binarize into a full byte matrix (the extra memory traffic the
  // fused version avoids).
  std::vector<std::uint8_t> bin(static_cast<std::size_t>(n * k));
  for (std::int64_t i = 0; i < n * k; ++i) bin[static_cast<std::size_t>(i)] = b[i] >= 0.0f;
  // Stage 2: explicit transpose to k x n.
  std::vector<std::uint8_t> t(static_cast<std::size_t>(n * k));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      t[static_cast<std::size_t>(j * n + i)] = bin[static_cast<std::size_t>(i * k + j)];
    }
  }
  // Stage 3: pack each transposed row.
  PackedMatrix out(k, n);
  for (std::int64_t j = 0; j < k; ++j) {
    std::uint64_t* row = out.row(j);
    for (std::int64_t i = 0; i < n; ++i) {
      if (t[static_cast<std::size_t>(j * n + i)]) row[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
  return out;
}

PackedMatrix pack_rows(const float* x, std::int64_t rows, std::int64_t cols) {
  BF_CHECK(x != nullptr || rows * cols == 0, "pack_rows: null input with ", rows, "x", cols);
  PackedMatrix out(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    pack_run(x + r * cols, cols, out.row(r));
  }
  return out;
}

Tensor unpack_to_signs(const PackedTensor& packed) {
  Tensor out = Tensor::hwc(packed.height(), packed.width(), packed.channels());
  for (std::int64_t h = 0; h < packed.height(); ++h) {
    for (std::int64_t w = 0; w < packed.width(); ++w) {
      for (std::int64_t c = 0; c < packed.channels(); ++c) {
        out.at(h, w, c) = packed.sign_value(h, w, c);
      }
    }
  }
  return out;
}

FilterBank unpack_to_signs(const PackedFilterBank& packed) {
  FilterBank out(packed.num_filters(), packed.kernel_h(), packed.kernel_w(), packed.channels());
  for (std::int64_t k = 0; k < packed.num_filters(); ++k) {
    for (std::int64_t i = 0; i < packed.kernel_h(); ++i) {
      for (std::int64_t j = 0; j < packed.kernel_w(); ++j) {
        for (std::int64_t c = 0; c < packed.channels(); ++c) {
          out.at(k, i, j, c) = packed.sign_value(k, i, j, c);
        }
      }
    }
  }
  return out;
}

}  // namespace bitflow::bitpack
