// Binarization + bit-packing transforms.
//
// Encoding convention (paper Sec. III, Eq. 3):  sign(x) = +1 for x >= 0
// (bit 1), -1 for x < 0 (bit 0).  All packers zero the tail bits of the last
// word so the Eq. 1 identity holds (see packed_tensor.hpp).
//
// Activations are packed along the channel dimension of an HWC tensor
// (PressedConv step 1, Fig. 3); filters likewise (step 2).  Fully connected
// weights use the fused binarize + pack + transpose of Table III.
#pragma once

#include <cstdint>

#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::bitpack {

// --- activations -----------------------------------------------------------

/// Packs an HWC float tensor along its channel dimension, choosing the
/// fastest implementation for the executing CPU.
PackedTensor pack_activations(const Tensor& hwc);

/// Paper-faithful scalar packer built on the Table II bit64_u bit-field
/// union: binarization and packing fused into one pass.
PackedTensor pack_activations_scalar(const Tensor& hwc);

/// AVX2 packer: 8-lane `>= 0` compares folded to bytes via movemask
/// (requires AVX2 at runtime; used automatically by pack_activations).
PackedTensor pack_activations_avx2(const Tensor& hwc);

/// Packs a channel-planar (CHW) tensor.  The strided gathers this forces are
/// the reason BitFlow adopts NHWC; kept for the layout ablation.
PackedTensor pack_activations_from_chw(const Tensor& chw);

/// Writes the packed form of `hwc` into an existing packed tensor of
/// identical extents (no allocation — used by the pre-allocating engine).
void pack_activations_into(const Tensor& hwc, PackedTensor& out);

/// Packs `hwc` into the interior of `out`, leaving a `margin`-pixel border
/// untouched on every side (out extents = hwc extents + 2*margin).  This is
/// how the engine's input stage realizes the first convolution's padding at
/// zero cost.
void pack_activations_into_interior(const Tensor& hwc, PackedTensor& out, std::int64_t margin);

/// Multi-threaded variant: rows are split across the pool's workers (the
/// engine's input stage, so the pack scales with the conv layers).
void pack_activations_into_interior(const Tensor& hwc, PackedTensor& out, std::int64_t margin,
                                    runtime::ThreadPool& pool);

/// Packs `hwc` into the interior of `out` like pack_activations_into_interior,
/// but with a per-channel threshold: bit (h,w,c) = hwc(h,w,c) >= thresholds[c]
/// (null thresholds = zero).  Used by the full-precision first-layer stage to
/// binarize its float convolution outputs straight into the next layer's
/// padded buffer.
void pack_thresholded_into_interior(const Tensor& hwc, const float* thresholds,
                                    PackedTensor& out, std::int64_t margin);

/// Flattens a packed H x W x C tensor into one packed row of H*W*C bits in
/// HWC order (the conv/pool -> fully-connected transition).  When C is a
/// multiple of 64 this is a straight word copy; otherwise the per-pixel tail
/// gaps are squeezed out bit by bit.  `out` must be a 1 x (H*W*C) matrix.
void flatten_packed(const PackedTensor& t, PackedMatrix& out);

/// Same flatten, but into row `row` of a multi-row matrix (the batch-N
/// serving path keeps one max_batch-row activation matrix and flattens each
/// image of a micro-batch into its own row).  `out.cols()` must be H*W*C.
void flatten_packed_row(const PackedTensor& t, PackedMatrix& out, std::int64_t row);

/// Binarizes + packs `count` floats into row `row` of `out` (tail bits
/// zero), without allocating — the multi-row counterpart of pack_rows.
void pack_row_into(const float* x, std::int64_t count, PackedMatrix& out, std::int64_t row);

// --- filters ---------------------------------------------------------------

/// Packs a float filter bank along the channel dimension (one-time,
/// at network initialization).
PackedFilterBank pack_filters(const FilterBank& filters);

/// Re-lays a packed filter bank into the T-way interleaved register-tile
/// layout (finalize-time, daBNN-style): full tiles [K/T][fh*fw*PC][T], then
/// the K%T remainder filters filter-major.  A pure permutation of the bank's
/// words — same total storage, bit-exact contents.
TiledFilterBank tile_filters(const PackedFilterBank& filters, std::int64_t tile);

/// Same interleave for an FC weight matrix (rows = output neurons): the
/// tiled bgemm reads one contiguous line of T neuron words per activation
/// word instead of T strided rows.
TiledBitMatrix tile_fc_weights(const PackedMatrix& w, std::int64_t tile);

// --- fully connected weights ------------------------------------------------

/// Fused binarize + bit-pack + implicit transpose (Table III): input is the
/// row-major n x k float weight matrix B, output row j holds the packed
/// column j of B, i.e. the packed weight vector of output neuron j.
/// `n` must be the number of input neurons, `k` the number of outputs.
PackedMatrix pack_transpose_fc_weights(const float* b, std::int64_t n, std::int64_t k);

/// Staged version of the same transform (binarize to a side buffer, then
/// transpose, then pack) — the fusion ablation's baseline.
PackedMatrix pack_transpose_fc_weights_unfused(const float* b, std::int64_t n, std::int64_t k);

/// Packs `rows` row-major float vectors of length `cols` without transposing
/// (used for FC activations, batch = 1 in practice).
PackedMatrix pack_rows(const float* x, std::int64_t rows, std::int64_t cols);

// --- decoding (tests / debugging) -------------------------------------------

/// Decodes a packed tensor back to a +-1.0f HWC float tensor.
Tensor unpack_to_signs(const PackedTensor& packed);

/// Decodes a packed filter bank back to +-1.0f floats.
FilterBank unpack_to_signs(const PackedFilterBank& packed);

}  // namespace bitflow::bitpack
