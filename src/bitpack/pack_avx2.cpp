// AVX2-accelerated binarize + pack: eight `>= 0` lane compares per
// instruction, folded to a sign byte with movemask.  The sign convention
// must match the scalar packer exactly: x >= 0 -> 1.  A plain
// _mm256_movemask_ps(x) would test the IEEE sign bit, which maps -0.0f and
// NaN-with-sign differently, so we compare against zero explicitly with
// _CMP_GE_OQ... except that unordered (NaN) compares false there while the
// scalar `x >= 0.0f` is also false for NaN — so GE_OQ matches the scalar
// semantics bit-for-bit, including x == -0.0f (>= 0 is true: bit 1).
#include <immintrin.h>

#include <stdexcept>

#include "bitpack/packer.hpp"

namespace bitflow::bitpack {

namespace {

/// Packs 64 consecutive floats into one word with 8 AVX2 compare+movemask.
inline std::uint64_t pack64_avx2(const float* p) {
  const __m256 zero = _mm256_setzero_ps();
  std::uint64_t w = 0;
  for (int g = 0; g < 8; ++g) {
    const __m256 v = _mm256_loadu_ps(p + g * 8);
    const __m256 ge = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
    w |= static_cast<std::uint64_t>(static_cast<unsigned>(_mm256_movemask_ps(ge))) << (g * 8);
  }
  return w;
}

}  // namespace

PackedTensor pack_activations_avx2(const Tensor& hwc) {
  if (hwc.layout() != Layout::kHWC) {
    throw std::invalid_argument("pack_activations_avx2 expects an HWC tensor");
  }
  PackedTensor out(hwc.height(), hwc.width(), hwc.channels());
  const std::int64_t c = hwc.channels();
  const std::int64_t pc = out.words_per_pixel();
  const float* src = hwc.data();
  std::uint64_t* dst = out.words();
  for (std::int64_t px = 0; px < hwc.height() * hwc.width(); ++px) {
    const float* p = src + px * c;
    std::uint64_t* o = dst + px * pc;
    std::int64_t i = 0, word = 0;
    for (; i + 64 <= c; i += 64, ++word) o[word] = pack64_avx2(p + i);
    if (i < c) {
      std::uint64_t w = 0;
      for (std::int64_t r = 0; i + r < c; ++r) {
        w |= static_cast<std::uint64_t>(p[i + r] >= 0.0f) << r;
      }
      o[word] = w;
    }
  }
  return out;
}

}  // namespace bitflow::bitpack
