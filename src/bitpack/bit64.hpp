// The paper's Table II data structures.
//
// `bit64_t` exposes 64 single-bit fields so that binarization can assign the
// comparison result `x >= 0.0f` straight into bit position i, and `bit64_u`
// reinterprets the packed fields as one uint64_t — "bit-packing fused into
// binarization" with no shift/or arithmetic in the source.  The m*_u unions
// give the kernels byte-compatible views between packed word arrays and SIMD
// registers.
#pragma once

#include <immintrin.h>

#include <cstdint>

namespace bitflow::bitpack {

/// 64 single-bit fields; field bN is bit N of the containing word
/// (little-endian bit-field layout on x86).
struct bit64_t {
  // clang-format off
  std::uint64_t b0:1,  b1:1,  b2:1,  b3:1,  b4:1,  b5:1,  b6:1,  b7:1;
  std::uint64_t b8:1,  b9:1,  b10:1, b11:1, b12:1, b13:1, b14:1, b15:1;
  std::uint64_t b16:1, b17:1, b18:1, b19:1, b20:1, b21:1, b22:1, b23:1;
  std::uint64_t b24:1, b25:1, b26:1, b27:1, b28:1, b29:1, b30:1, b31:1;
  std::uint64_t b32:1, b33:1, b34:1, b35:1, b36:1, b37:1, b38:1, b39:1;
  std::uint64_t b40:1, b41:1, b42:1, b43:1, b44:1, b45:1, b46:1, b47:1;
  std::uint64_t b48:1, b49:1, b50:1, b51:1, b52:1, b53:1, b54:1, b55:1;
  std::uint64_t b56:1, b57:1, b58:1, b59:1, b60:1, b61:1, b62:1, b63:1;
  // clang-format on
};

/// Union view: write bits through `b`, read the packed word through `u`.
union bit64_u {
  bit64_t b;
  std::uint64_t u;
};

static_assert(sizeof(bit64_t) == 8, "bit64_t must pack into one 64-bit word");
static_assert(sizeof(bit64_u) == 8, "bit64_u must alias a single word");

/// SSE register / word-array view (Table II m128_u).
union m128_u {
  __m128i m;
  std::int64_t i[2];
  std::uint64_t u[2];
};

/// AVX2 register / word-array view (Table II m256_u).
union m256_u {
  __m256i m;
  std::int64_t i[4];
  std::uint64_t u[4];
};

/// AVX-512 register / word-array view (Table II m512_u — note the paper's
/// listing carries a typo, declaring the member as __m256i; the intended
/// 512-bit register type is used here).
union m512_u {
  __m512i m;
  std::int64_t i[8];
  std::uint64_t u[8];
};

static_assert(sizeof(m128_u) == 16);
static_assert(sizeof(m256_u) == 32);
static_assert(sizeof(m512_u) == 64);

}  // namespace bitflow::bitpack
