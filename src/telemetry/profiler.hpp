// Per-site latency/throughput accumulators and the roofline calibration the
// per-layer profiler reports against.
//
// A SpanStats is a lock-free accumulator for one instrumented site (one
// network layer, one pipeline stage): invocation count, work units (images),
// total/min nanoseconds and a log-bucketed histogram for p50/p99.  Any
// number of threads may record concurrently (replicated serving workers all
// profile into the shared per-layer accumulators of their network).
//
// Profiling is armed per network (NetworkConfig::profile) or process-wide:
// set_profiling(true), or the BITFLOW_PROFILE environment variable.  The
// disarmed cost in the inference path is one relaxed atomic load per layer.
//
// roofline_peak_gops(isa) measures — once, lazily, cached — the throughput
// of the raw xor+popcount primitive at `isa` over an L1-resident buffer, in
// the same "2 ops per binary multiply-accumulate" unit the benches use
// (one 64-bit word = 64 MACs = 128 ops).  That is the compute roof a binary
// conv/fc layer of that ISA can at best reach; the profiler reports each
// layer's achieved GOPS as a fraction of it, next to the layer's
// arithmetic-intensity (core/ait) so memory-bound layers are attributable:
// a low roof fraction with low AIT is bandwidth, not kernel quality.
#pragma once

#include <atomic>
#include <cstdint>

#include "simd/isa.hpp"
#include "telemetry/metrics.hpp"

namespace bitflow::telemetry {

/// Process-wide profiling switch (also armed by BITFLOW_PROFILE=1).
[[nodiscard]] bool profiling_enabled() noexcept;
void set_profiling(bool on) noexcept;

/// Lock-free accumulator for one instrumented site.
class SpanStats {
 public:
  /// Records one invocation of `ns` nanoseconds covering `units` work units
  /// (e.g. images in a fused batch).  Wait-free except the min update, which
  /// is a bounded CAS loop that almost always exits on the first compare.
  void record(std::uint64_t ns, std::uint64_t units = 1) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    units_.fetch_add(units, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (ns < cur &&
           !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
    hist_.record(ns);
  }

  void reset() noexcept {
    // Not atomic with concurrent record(); callers quiesce writers first.
    count_.store(0, std::memory_order_relaxed);
    units_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  }

  struct View {
    std::uint64_t count = 0;
    std::uint64_t units = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;  ///< 0 when no samples
    std::uint64_t p50_ns = 0;  ///< upper bucket bound (log2-coarse)
    std::uint64_t p99_ns = 0;
    [[nodiscard]] double mean_ns() const {
      return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count);
    }
  };
  [[nodiscard]] View view() const {
    View v;
    v.count = count_.load(std::memory_order_relaxed);
    v.units = units_.load(std::memory_order_relaxed);
    v.total_ns = total_ns_.load(std::memory_order_relaxed);
    const std::uint64_t mn = min_ns_.load(std::memory_order_relaxed);
    v.min_ns = mn == UINT64_MAX ? 0 : mn;
    const Histogram::Snapshot h = hist_.snapshot();
    v.p50_ns = h.quantile_upper(0.50);
    v.p99_ns = h.quantile_upper(0.99);
    return v;
  }

 private:
  // Ordering contract: relaxed everywhere — independent tallies read by
  // view() as individually consistent samples; no cross-field cut is
  // promised (same contract as Histogram).  min_ns_'s CAS loop is relaxed
  // too: the comparison only needs the value, not any ordering.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> units_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  Histogram hist_;  // log2 ns buckets; reset() leaves it cumulative
};

/// Measured compute roof for binary kernels at `isa`: xor+popcount GOPS over
/// an L1-resident working set, cached after the first call (which spends a
/// few milliseconds measuring).  Thread-safe.
[[nodiscard]] double roofline_peak_gops(simd::IsaLevel isa);

}  // namespace bitflow::telemetry
