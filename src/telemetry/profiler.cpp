#include "telemetry/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "simd/bitops.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::telemetry {

namespace {

// Ordering contract: relaxed — arming profiling publishes no data; the
// accumulators a newly armed thread records into are individually racy-safe.
std::atomic<bool> g_profiling{false};

const bool g_profile_env_applied = [] {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once at static init.
  const char* v = std::getenv("BITFLOW_PROFILE");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    g_profiling.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}();

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool profiling_enabled() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling(bool on) noexcept {
  g_profiling.store(on, std::memory_order_relaxed);
}

double roofline_peak_gops(simd::IsaLevel isa) {
  // Cache one measurement per ISA level; the measurement itself runs the
  // xor+popcount primitive over an L1-resident pair of buffers long enough
  // to amortize timing overhead and pick the best of a few repetitions
  // (best, not mean: the roof is what the kernel can reach, and anything
  // slower is interference).
  struct Cache {
    core::Mutex mu;
    double gops[4] BF_GUARDED_BY(mu) = {0.0, 0.0, 0.0, 0.0};
  };
  static Cache* c = new Cache();
  const auto idx = static_cast<std::size_t>(isa);

  {
    core::MutexLock lock(c->mu);
    if (c->gops[idx] > 0.0) return c->gops[idx];
  }
  if (!simd::cpu_features().supports(isa)) return 0.0;

  // Two 1024-word (8 KiB) operands: comfortably L1-resident together, long
  // enough that the per-call dispatch overhead is noise.
  constexpr std::int64_t kWords = 1024;
  std::vector<std::uint64_t> a(kWords), b(kWords);
  for (std::int64_t i = 0; i < kWords; ++i) {
    a[i] = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    b[i] = ~a[i] ^ (a[i] >> 31);
  }
  const simd::XorPopcountFn fn = simd::xor_popcount_fn(isa);

  volatile std::uint64_t sink = 0;  // keep the reduction alive
  double best_gops = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    constexpr int kCalls = 2000;
    const std::uint64_t t0 = steady_ns();
    std::uint64_t acc = 0;
    for (int k = 0; k < kCalls; ++k) acc += fn(a.data(), b.data(), kWords);
    const std::uint64_t t1 = steady_ns();
    sink = sink + acc;
    const double ns = static_cast<double>(t1 - t0);
    if (ns <= 0.0) continue;
    // 1 word = 64 binary MACs = 128 ops (the bench convention).
    const double ops = static_cast<double>(kCalls) * static_cast<double>(kWords) * 128.0;
    best_gops = std::max(best_gops, ops / ns);  // ops/ns == GOPS
  }
  (void)sink;

  core::MutexLock lock(c->mu);
  if (c->gops[idx] <= 0.0) c->gops[idx] = best_gops;
  return c->gops[idx];
}

}  // namespace bitflow::telemetry
