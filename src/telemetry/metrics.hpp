// Process-wide metrics registry: lock-free counters, gauges and log-bucketed
// histograms with O(1) hot-path recording, a consistent snapshot API, and
// Prometheus-style text exposition.
//
// Design (the discipline every instrument follows):
//   * Recording is wait-free: a Counter::add / Gauge::set / Histogram::record
//     is a handful of relaxed atomic operations on pre-registered storage —
//     no locks, no allocation, no string handling.  All string work (names,
//     labels) happens once at registration and once per snapshot.
//   * Registration is cold: Registry::counter()/gauge()/histogram() take the
//     registry mutex, intern the (name, labels) pair and return a reference
//     with a stable address for the registry's lifetime.  Looking up an
//     existing pair returns the same instrument, so independent subsystems
//     can share a metric by name.
//   * Snapshots are relaxed reads of the live atomics: values observed while
//     writers are running are each individually consistent and monotone
//     across successive snapshots (counters/histogram buckets never
//     decrease), but one snapshot is not a cross-instrument atomic cut —
//     that is the standard Prometheus scrape contract.
//   * Callback gauges let a subsystem expose derived state (queue depth,
//     pool utilization) evaluated only at snapshot time; owners must remove
//     their callbacks (remove_callbacks) before the captured state dies.
//
// Histograms come in two bucketings:
//   * log2: bucket i counts samples v with std::bit_width(v) == i, i.e.
//     bucket 0 holds v = 0 and bucket i >= 1 holds v in [2^(i-1), 2^i - 1];
//     65 buckets cover the full uint64 range with no overflow bucket.
//   * linear(n): buckets 0..n-1 hold exact values 0..n-1 plus one overflow
//     bucket — the shape a batch-size distribution wants.
//
// The process-wide Registry::instance() additionally exposes the failpoint
// catalog's trip counts as callback gauges, so fault-injection activity
// shows up in the same scrape as the serving counters.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bitflow::telemetry {

/// Monotonically increasing event count.  All operations are relaxed: the
/// counter orders nothing, it only tallies.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  // Ordering contract: relaxed everywhere — a tally orders nothing.
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written signed value (queue depths, live-object counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  // Ordering contract: relaxed everywhere — last-writer-wins sample, no
  // cross-variable ordering promised to readers.
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram with wait-free recording.  See the file comment
/// for the two bucketings.  Usable standalone (profiler accumulators) or
/// owned by the registry.
class Histogram {
 public:
  /// Number of log2 buckets: bit_width of a uint64 is 0..64.
  static constexpr std::size_t kLog2Buckets = 65;

  /// Log-bucketed histogram over the full uint64 range.
  Histogram() : Histogram(Bucketing::kLog2, kLog2Buckets) {}

  /// Linear histogram: values 0..n-1 count exactly, >= n in the overflow
  /// bucket (index n).  `n` must be >= 1.
  [[nodiscard]] static Histogram linear(std::size_t n) {
    return Histogram(Bucketing::kLinear, n + 1);
  }

  Histogram(Histogram&& other) noexcept;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  Histogram& operator=(Histogram&&) = delete;

  /// O(1) wait-free record: one bucket increment plus sum/count updates.
  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t bucket_index(std::uint64_t v) const noexcept {
    if (bucketing_ == Bucketing::kLog2) return static_cast<std::size_t>(std::bit_width(v));
    const std::size_t overflow = n_buckets_ - 1;
    return v < overflow ? static_cast<std::size_t>(v) : overflow;
  }

  /// Inclusive upper bound of bucket `i` (UINT64_MAX for the last log2
  /// bucket and the linear overflow bucket).
  [[nodiscard]] std::uint64_t bucket_upper(std::size_t i) const noexcept;

  [[nodiscard]] std::size_t num_buckets() const noexcept { return n_buckets_; }
  [[nodiscard]] bool is_log2() const noexcept { return bucketing_ == Bucketing::kLog2; }

  /// Point-in-time copy of the histogram state (relaxed reads).
  struct Snapshot {
    std::vector<std::uint64_t> buckets;
    std::vector<std::uint64_t> uppers;  ///< inclusive upper bound per bucket
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Upper bound of the bucket holding the q-quantile sample (0 <= q <= 1);
    /// 0 when empty.
    [[nodiscard]] std::uint64_t quantile_upper(double q) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  enum class Bucketing : std::uint8_t { kLog2, kLinear };
  Histogram(Bucketing b, std::size_t n);

  Bucketing bucketing_;
  std::size_t n_buckets_;
  // Ordering contract: relaxed everywhere.  A record() is three independent
  // relaxed adds; snapshot() reads count_ first so a concurrently recorded
  // sample can only make the snapshot conservative (bucket visible, count
  // not yet), never inconsistent in a way a reader can observe as negative.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// --- snapshot types ---------------------------------------------------------

struct CounterSample {
  std::string name, labels;  ///< labels preformatted, e.g. `engine="3"` (may be empty)
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name, labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name, labels;
  Histogram::Snapshot hist;
};

/// One registry scrape.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Prometheus text exposition format: `# TYPE` comments, sanitized metric
  /// names (dots become underscores), cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count` for histograms.
  [[nodiscard]] std::string to_prometheus() const;
};

// --- registry ---------------------------------------------------------------

/// Instrument registry.  Normally used through the process-wide instance();
/// independently constructible so tests can pin exposition output without
/// cross-test pollution.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem records into.
  static Registry& instance();

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use.  The reference is stable for the registry's lifetime.
  /// Requesting an existing name with a mismatched kind throws
  /// std::invalid_argument.
  Counter& counter(std::string_view name, std::string_view labels = "");
  Gauge& gauge(std::string_view name, std::string_view labels = "");
  /// Log2 histogram by default; `linear_max` >= 0 selects linear(linear_max)
  /// bucketing (values 0..linear_max exact + overflow).  The bucketing of an
  /// existing histogram is not changed by later calls.
  Histogram& histogram(std::string_view name, std::string_view labels = "",
                       std::int64_t linear_max = -1);

  /// Registers a gauge evaluated at snapshot time.  `owner` keys removal:
  /// the callback must be removed (remove_callbacks) before any state it
  /// captures is destroyed.  Callbacks run under the registry mutex and must
  /// not re-enter the registry.
  void add_callback_gauge(const void* owner, std::string name, std::string labels,
                          std::function<double()> fn);
  void remove_callbacks(const void* owner);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string prometheus_text() const { return snapshot().to_prometheus(); }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shorthand for Registry::instance().
[[nodiscard]] Registry& registry();

}  // namespace bitflow::telemetry
