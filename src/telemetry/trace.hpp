// Chrome-tracing / Perfetto trace-event sink with per-thread ring buffers.
//
// When disabled (the default), a TraceSpan costs ONE relaxed atomic load in
// its constructor and a branch on the cached result in its destructor — the
// same discipline as core/failpoint, verified by bench_micro's span-overhead
// rows and CI's telemetry job.  When enabled (programmatically via
// trace_start(), passively via trace_arm_passive() — the flight recorder's
// always-on mode — or for a whole process via BITFLOW_TRACE=<path>), each
// span records a complete event into a fixed-capacity thread-local ring
// buffer: no locks, no allocation on the hot path after the first event of a
// thread.  trace_stop() (or process exit under BITFLOW_TRACE) merges every
// thread's ring and writes Chrome's JSON array format, loadable in
// chrome://tracing and Perfetto:
//
//   BITFLOW_TRACE=trace.json ./examples/serving_engine
//
// Span vocabulary (cat / name):
//   net     : "net.request" — wire frame receipt on the poll thread
//   serve   : "serve.batch" — one micro-batch through a worker;
//             "serve.batch.member" — instant, one request joining a batch
//   graph   : "graph.infer_batch", "pack_input" — one pass through the chain
//   layer   : "layer:<name>" — one network stage
//   kernel  : "<kernel>[<isa>,tN,gN]" — the kernel dispatch inside a stage
//   request : async "serve.request" pairs (enqueue -> resolution); async
//             because a request's lifetime spans threads and overlaps
//             batches, so it must not claim a slot in the nesting stack.
//   lifecycle: instant events for state transitions, sheds, breaker trips.
//
// Request-scoped joining: events carry an optional request id (`rid`,
// emitted as args.rid; for the async request pair it is also the event id),
// so one request's wire-to-kernel timeline — net.request on the poll
// thread, the async serve.request track, the serve.batch.member instant on
// the worker that ran it, and the layer/kernel spans nested in that
// worker's serve.batch window — reconstructs from a single trace.
//
// Ring-buffer overflow drops the *newest* events (never overwrites): a slot,
// once published, is immutable, which is what makes the lock-free flush
// race-free (slot write happens-before the release store of the size the
// flusher acquires).  Dropped counts are reported in the trace metadata and
// surfaced as the `telemetry.trace.dropped` registry gauge.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace bitflow::telemetry {

namespace detail {
// Ordering contract: relaxed loads/stores only.  Arming publishes no data
// through this flag — a span that observes the old value merely skips (or
// clamps into) the session; slot publication orders via the ring's
// release/acquire size protocol instead.
extern std::atomic<bool> g_trace_enabled;
/// Appends a complete event to the calling thread's ring.  `start_ns`/`end_ns`
/// are steady_clock readings.  `name` is copied into the ring slot (truncated
/// to 47 chars) so dynamic names — layer/kernel names owned by a network —
/// stay valid even when the flush runs at process exit; `cat` must be a
/// string literal (the pointer is kept).  `rid` (0 = none) joins the event
/// to a wire request.
void trace_record(const char* name, const char* cat, std::uint64_t start_ns,
                  std::uint64_t end_ns, std::int64_t arg, std::uint64_t rid = 0);
/// Appends an async begin/end pair (rendered as its own track).
void trace_record_async(const char* name, const char* cat, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t id, std::uint64_t rid = 0);
/// Appends a thread-scoped instant event.
void trace_record_instant(const char* name, const char* cat, std::uint64_t ts_ns,
                          std::uint64_t rid);
[[nodiscard]] std::uint64_t now_ns() noexcept;
}  // namespace detail

/// One relaxed load: is the trace sink armed?
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Arms the sink; events recorded from now on are written to `path` by
/// trace_stop().  `ring_capacity` bounds the per-thread event count
/// (overflow drops newest).  Throws std::logic_error if already armed.
void trace_start(const std::string& path, std::size_t ring_capacity = 1 << 16);

/// Arms the sink with NO output path: events accumulate in the rings and are
/// read non-destructively by trace_snapshot_json() — the flight recorder's
/// always-on mode.  trace_stop() on a passive session disarms and resets
/// without writing a file.  No-op when a session (either kind) is already
/// armed — the existing session's rings serve the snapshots.
void trace_arm_passive(std::size_t ring_capacity = 1 << 14);

/// Disarms the sink, merges every thread's ring and writes the JSON file
/// (unless the session was passive).  Returns the number of events written.
/// No-op returning 0 when not armed.
std::size_t trace_stop();

/// Non-destructive snapshot: merges every thread's published ring prefix
/// into a Chrome-trace JSON string WITHOUT disarming or resetting — safe to
/// call while writers keep recording (published slots are immutable).
/// Returns an empty string when not armed.
[[nodiscard]] std::string trace_snapshot_json();

/// Total events dropped to ring overflow since trace_start().
[[nodiscard]] std::uint64_t trace_dropped_events();

/// RAII scoped span.  Disarmed cost: one relaxed atomic load (constructor)
/// plus a predictable branch (destructor).  `rid` (0 = none) joins the span
/// to a wire request (emitted as args.rid).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "span",
                     std::int64_t arg = -1, std::uint64_t rid = 0) noexcept
      : name_(name), cat_(cat), arg_(arg), rid_(rid), armed_(trace_enabled()) {
    if (armed_) [[unlikely]] start_ns_ = detail::now_ns();
  }
  ~TraceSpan() {
    if (armed_) [[unlikely]] {
      detail::trace_record(name_, cat_, start_ns_, detail::now_ns(), arg_, rid_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t arg_;
  std::uint64_t rid_;
  bool armed_;
  std::uint64_t start_ns_ = 0;
};

/// Records an async (cross-thread) interval from explicit steady_clock
/// nanosecond readings; used for request lifetimes.  Call only after
/// checking trace_enabled().
inline void trace_async(const char* name, const char* cat, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t id, std::uint64_t rid = 0) {
  detail::trace_record_async(name, cat, start_ns, end_ns, id, rid);
}

/// Thread-scoped instant event (Chrome ph "i"): a point in time interleaved
/// with the surrounding spans — lifecycle transitions, shed decisions,
/// batch membership.  One relaxed load when disarmed.
inline void trace_instant(const char* name, const char* cat = "lifecycle",
                          std::uint64_t rid = 0) noexcept {
  if (trace_enabled()) [[unlikely]] {
    detail::trace_record_instant(name, cat, detail::now_ns(), rid);
  }
}

/// steady_clock now in nanoseconds (the time base every recorded span uses).
[[nodiscard]] inline std::uint64_t trace_now_ns() noexcept { return detail::now_ns(); }

/// Fresh process-unique id for an async interval.
[[nodiscard]] std::uint64_t trace_next_async_id();

}  // namespace bitflow::telemetry
