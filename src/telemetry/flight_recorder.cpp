#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include <unistd.h>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace bitflow::telemetry {

namespace {

namespace fs = std::filesystem;

constexpr std::size_t kKindCap = 16;
constexpr std::size_t kDetailCap = 96;
constexpr std::size_t kMaxSectionBytes = 64u << 20;  // loader sanity cap

// ---------------------------------------------------------------------------
// Recent-events ring: fixed slots, global ticket, per-slot seqlock.

struct EventSlot {
  // Ordering contract: per-slot seqlock.  The writer owning ticket t CASes
  // seq from 2*round to 2*round+1 (acq_rel; failure means a lapped or slow
  // competitor owns the slot — the event is dropped, never blocked on),
  // stores the payload fields relaxed (every field is atomic, so the race
  // with a concurrent snapshot stays defined), then publishes with a
  // release store of 2*round+2.  The snapshot acquire-loads seq, copies the
  // fields relaxed, fences acquire, and re-reads seq: any overlap with a
  // writer changes seq and the slot is skipped.  ticket doubles as a
  // round-consistency check on the reader side.
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ticket{0};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> rid{0};
  // Ordering contract: payload bytes, relaxed stores/loads under the seq
  // protocol above (atomic chars keep torn-read behavior defined for TSan).
  std::atomic<char> kind_buf[kKindCap];
  std::atomic<char> detail_buf[kDetailCap];
};

struct EventRing {
  explicit EventRing(std::size_t capacity) : slots(capacity), mask(capacity - 1) {}
  std::vector<EventSlot> slots;
  std::size_t mask;
  // Ordering contract: next_ticket is claimed with relaxed fetch_add
  // (uniqueness only); the snapshot acquire-loads it merely as a scan
  // bound — slot contents order through each slot's seqlock.  dropped is a
  // relaxed tally.
  std::atomic<std::uint64_t> next_ticket{0};
  std::atomic<std::uint64_t> dropped{0};
};

/// Everything the lock-free hot paths need, published as one immutable
/// object so arming cannot tear (config snapshot + ring + detector state).
struct Active {
  explicit Active(FlightRecorderConfig c, std::size_t ring_capacity)
      : cfg(std::move(c)), ring(ring_capacity) {}
  const FlightRecorderConfig cfg;  // immutable after publication
  EventRing ring;
  // Ordering contract: detector tallies are relaxed monotonic counters —
  // a trip needs only an approximate window, and the trigger path
  // re-serializes under the flight mutex.
  std::atomic<std::uint64_t> breach_count{0};
  std::atomic<std::uint64_t> window_total{0};
  std::atomic<std::uint64_t> window_errors{0};
};

// Ordering contract: release store when flight_start publishes a fully
// constructed Active; acquire loads on every armed path (event append,
// detectors, trigger).  A replaced Active is leaked deliberately: a
// straggler that loaded the old pointer may still append to its ring, and
// arming is a rare, human-scale operation.
std::atomic<Active*> g_active{nullptr};

struct FlightState {
  // mu guards arming, bundle accounting and the context providers; the
  // event hot path never touches this struct.  Lock order: flight mu may
  // take the registry mutex (counter lookup, prometheus snapshot) and the
  // trace mutex (arm/snapshot); neither ever takes flight mu.
  core::Mutex mu;
  bool armed BF_GUARDED_BY(mu) = false;
  bool owns_trace BF_GUARDED_BY(mu) = false;
  bool signals_installed BF_GUARDED_BY(mu) = false;
  bool have_attempt BF_GUARDED_BY(mu) = false;
  std::chrono::steady_clock::time_point last_attempt BF_GUARDED_BY(mu){};
  std::uint64_t bundle_seq BF_GUARDED_BY(mu) = 0;  // never reset: unique names
  std::uint64_t written BF_GUARDED_BY(mu) = 0;
  std::uint64_t suppressed BF_GUARDED_BY(mu) = 0;
  std::vector<std::tuple<const void*, std::string, std::function<std::string()>>>
      contexts BF_GUARDED_BY(mu);
  // Replaced Actives parked here forever: stragglers that loaded the old
  // pointer may still append to its ring, so it can never be freed — but
  // keeping it reachable makes the deliberate leak invisible to LeakSanitizer.
  std::vector<Active*> retired BF_GUARDED_BY(mu);
};

FlightState& fstate() {
  static FlightState* s = [] {
    auto* st = new FlightState();  // leaked: usable from atexit/signal paths
    // Ring-overflow visibility: reads only the published Active's relaxed
    // drop tally — no flight mutex, so it cannot invert the
    // flight-mu -> registry-mu lock order the bundle writer establishes.
    registry().add_callback_gauge(st, "flight.events.dropped", "", [] {
      Active* a = g_active.load(std::memory_order_acquire);
      return a == nullptr
                 ? 0.0
                 : static_cast<double>(a->ring.dropped.load(std::memory_order_relaxed));
    });
    return st;
  }();
  return *s;
}

void copy_atomic_str(std::atomic<char>* dst, std::size_t cap, const char* src) noexcept {
  std::size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < cap && src[i] != '\0'; ++i) {
      dst[i].store(src[i], std::memory_order_relaxed);
    }
  }
  dst[i].store('\0', std::memory_order_relaxed);
}

std::vector<FlightEvent> snapshot_ring(const EventRing& ring) {
  std::vector<FlightEvent> out;
  const std::uint64_t cap = ring.slots.size();
  const std::uint64_t hi = ring.next_ticket.load(std::memory_order_acquire);
  const std::uint64_t lo = hi > cap ? hi - cap : 0;
  out.reserve(static_cast<std::size_t>(hi - lo));
  char kbuf[kKindCap];
  char dbuf[kDetailCap];
  for (std::uint64_t t = lo; t < hi; ++t) {
    const EventSlot& slot = ring.slots[t & ring.mask];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // never written / mid-write
    FlightEvent ev;
    ev.ticket = slot.ticket.load(std::memory_order_relaxed);
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    ev.rid = slot.rid.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kKindCap; ++i) {
      kbuf[i] = slot.kind_buf[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kDetailCap; ++i) {
      dbuf[i] = slot.detail_buf[i].load(std::memory_order_relaxed);
    }
    kbuf[kKindCap - 1] = '\0';
    dbuf[kDetailCap - 1] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // overlapped
    // Round check: the copied ticket must be the one s1 published.
    if ((ev.ticket / cap) * 2 + 2 != s1) continue;
    ev.kind = kbuf;
    ev.detail = dbuf;
    out.push_back(std::move(ev));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.ticket < b.ticket; });
  return out;
}

std::string render_events_log(const std::vector<FlightEvent>& events,
                              std::uint64_t dropped_total) {
  std::string out;
  char line[kKindCap + kDetailCap + 96];
  for (const FlightEvent& ev : events) {
    std::snprintf(line, sizeof line, "#%llu ts_ns=%llu rid=%llu kind=%s %s\n",
                  static_cast<unsigned long long>(ev.ticket),
                  static_cast<unsigned long long>(ev.ts_ns),
                  static_cast<unsigned long long>(ev.rid), ev.kind.c_str(),
                  ev.detail.c_str());
    out += line;
  }
  out += "# dropped=" + std::to_string(dropped_total) + "\n";
  return out;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v && p < (std::size_t{1} << 30)) p <<= 1;
  return p;
}

bool write_whole_file(const fs::path& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return (std::fclose(f) == 0) && ok;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

/// Writes one bundle directory (tmp + atomic rename).  Caller holds the
/// flight mutex — serializing bundle writes is the point: they are rare,
/// rate-limited, and must see a stable context-provider list.
bool write_bundle_locked(FlightState& st, Active& active, std::uint64_t seq_no,
                         FlightTrigger trigger, const char* reason)
    BF_REQUIRES(st.mu) {
  std::error_code ec;
  const fs::path dir(active.cfg.dir);
  fs::create_directories(dir, ec);
  if (ec) return false;

  char name[32];
  std::snprintf(name, sizeof name, "bundle-%06llu",
                static_cast<unsigned long long>(seq_no));
  const fs::path final_dir = dir / name;
  const fs::path tmp_dir =
      dir / (std::string(".tmp-") + name + "-" + std::to_string(::getpid()));
  fs::remove_all(tmp_dir, ec);
  ec.clear();
  fs::create_directories(tmp_dir, ec);
  if (ec) return false;

  // Render every section.  Context providers run here (under the flight
  // mutex) so flight_remove_contexts() is a hard barrier for owners.
  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back("trace.json", trace_snapshot_json());
  if (sections.back().second.empty()) sections.back().second = "{\"traceEvents\":[]}\n";
  sections.emplace_back("metrics.prom", registry().prometheus_text());
  const std::uint64_t drop_total = active.ring.dropped.load(std::memory_order_relaxed);
  sections.emplace_back("events.log",
                        render_events_log(snapshot_ring(active.ring), drop_total));
  for (const auto& [owner, section, fn] : st.contexts) {
    (void)owner;
    std::string body;
    try {
      body = fn();
    } catch (const std::exception& e) {
      body = std::string("<context provider failed: ") + e.what() + ">\n";
    } catch (...) {
      body = "<context provider failed>\n";
    }
    sections.emplace_back(section + ".txt", std::move(body));
  }

  std::string manifest;
  manifest += "{\n  \"version\": " + std::to_string(kBundleManifestVersion) + ",\n";
  manifest += "  \"seq\": " + std::to_string(seq_no) + ",\n";
  manifest += "  \"trigger\": ";
  append_json_string(manifest, flight_trigger_name(trigger));
  manifest += ",\n  \"reason\": ";
  append_json_string(manifest, reason != nullptr ? reason : "");
  manifest += ",\n  \"sections\": [\n";
  bool wrote_all = true;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& [sec_name, body] = sections[i];
    wrote_all = wrote_all && write_whole_file(tmp_dir / sec_name, body);
    char sum[24];
    std::snprintf(sum, sizeof sum, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(body.data(), body.size())));
    manifest += "    {\"name\": ";
    append_json_string(manifest, sec_name);
    manifest += ", \"size\": " + std::to_string(body.size());
    manifest += ", \"fnv1a\": \"" + std::string(sum) + "\"}";
    manifest += i + 1 < sections.size() ? ",\n" : "\n";
  }
  manifest += "  ]\n}\n";
  wrote_all = wrote_all && write_whole_file(tmp_dir / "MANIFEST.json", manifest);
  if (!wrote_all) {
    fs::remove_all(tmp_dir, ec);
    return false;
  }
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    fs::remove_all(tmp_dir, ec);
    return false;
  }
  return true;
}

extern "C" void bitflow_fatal_signal_handler(int sig) {
  // Best-effort by design (documented in FlightRecorderConfig): bundle
  // writing is not async-signal-safe, but on a fatal signal the process is
  // lost either way and the bundle is the only evidence that survives.
  const char* which = sig == SIGSEGV ? "SIGSEGV" : sig == SIGBUS ? "SIGBUS" : "SIGABRT";
  flight_trigger(FlightTrigger::kFatalSignal, which);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// BITFLOW_FLIGHT_DIR=<dir>: arm the recorder (default thresholds) before
/// main(), mirroring BITFLOW_TRACE.
const bool g_flight_env_applied = [] {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once at static init.
  const char* env_dir = std::getenv("BITFLOW_FLIGHT_DIR");
  if (env_dir == nullptr || env_dir[0] == '\0') return false;
  try {
    FlightRecorderConfig cfg;
    cfg.dir = env_dir;
    flight_start(std::move(cfg));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bitflow] ignoring BITFLOW_FLIGHT_DIR: %s\n", e.what());
  }
  return true;
}();

}  // namespace

namespace detail {

// Ordering contract: relaxed — the fast disarmed gate; armed-path state is
// published through g_active's release/acquire pair, not this flag.
std::atomic<bool> g_flight_armed{false};

void flight_event_armed(const char* kind, const char* detail_str,
                        std::uint64_t req_id) noexcept {
  Active* a = g_active.load(std::memory_order_acquire);
  if (a == nullptr) return;
  EventRing& ring = a->ring;
  const std::uint64_t t = ring.next_ticket.fetch_add(1, std::memory_order_relaxed);
  EventSlot& slot = ring.slots[t & ring.mask];
  const std::uint64_t round = t / ring.slots.size();
  std::uint64_t expected = round * 2;
  if (!slot.seq.compare_exchange_strong(expected, round * 2 + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.ticket.store(t, std::memory_order_relaxed);
  slot.ts_ns.store(trace_now_ns(), std::memory_order_relaxed);
  slot.rid.store(req_id, std::memory_order_relaxed);
  copy_atomic_str(slot.kind_buf, kKindCap, kind);
  copy_atomic_str(slot.detail_buf, kDetailCap, detail_str);
  slot.seq.store(round * 2 + 2, std::memory_order_release);
}

}  // namespace detail

void flight_start(FlightRecorderConfig cfg) {
  if (cfg.dir.empty()) throw std::invalid_argument("flight_start: empty dir");
  if (cfg.rate_window == 0) throw std::invalid_argument("flight_start: rate_window == 0");
  const std::size_t ring_capacity = round_up_pow2(cfg.event_capacity);
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  if (st.armed) throw std::logic_error("flight_start: already armed");
  const bool trace_was_on = trace_enabled();
  trace_arm_passive(cfg.trace_ring_capacity);
  st.owns_trace = !trace_was_on;
  if (cfg.install_signal_handler && !st.signals_installed) {
    for (int sig : {SIGSEGV, SIGBUS, SIGABRT}) {
      struct sigaction sa = {};
      sa.sa_handler = &bitflow_fatal_signal_handler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESETHAND;
      ::sigaction(sig, &sa, nullptr);
    }
    st.signals_installed = true;
  }
  auto* fresh = new Active(std::move(cfg), ring_capacity);
  if (Active* old = g_active.load(std::memory_order_relaxed)) {
    st.retired.push_back(old);  // never freed — see decl and retired's comment
  }
  g_active.store(fresh, std::memory_order_release);
  st.written = 0;
  st.suppressed = 0;
  st.have_attempt = false;
  st.armed = true;
  detail::g_flight_armed.store(true, std::memory_order_relaxed);
}

void flight_stop() {
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  if (!st.armed) return;
  detail::g_flight_armed.store(false, std::memory_order_relaxed);
  st.armed = false;
  if (st.owns_trace) {
    (void)trace_stop();  // passive session: disarms without writing a file
    st.owns_trace = false;
  }
}

bool flight_armed() noexcept {
  return detail::g_flight_armed.load(std::memory_order_relaxed);
}

void flight_observe_outcome(bool ok, bool deadline_breach) noexcept {
  if (!detail::g_flight_armed.load(std::memory_order_relaxed)) [[likely]] return;
  Active* a = g_active.load(std::memory_order_acquire);
  if (a == nullptr) return;
  if (deadline_breach) {
    const std::uint64_t n = a->breach_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= a->cfg.breach_threshold && a->cfg.breach_threshold > 0) {
      a->breach_count.store(0, std::memory_order_relaxed);
      char why[64];
      std::snprintf(why, sizeof why, "%llu deadline breaches",
                    static_cast<unsigned long long>(n));
      (void)flight_trigger(FlightTrigger::kSloBreach, why);
      return;  // a breach already counted as an error for this window
    }
  }
  if (!ok) a->window_errors.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t total = a->window_total.fetch_add(1, std::memory_order_relaxed) + 1;
  if (total >= a->cfg.rate_window) {
    // Window roll: approximate (two relaxed resets), which is fine — the
    // detector needs a trend, not an exact ratio.
    const std::uint64_t errs = a->window_errors.exchange(0, std::memory_order_relaxed);
    a->window_total.store(0, std::memory_order_relaxed);
    if (static_cast<double>(errs) >=
        a->cfg.error_rate_threshold * static_cast<double>(total)) {
      char why[64];
      std::snprintf(why, sizeof why, "%llu/%llu errors in window",
                    static_cast<unsigned long long>(errs),
                    static_cast<unsigned long long>(total));
      (void)flight_trigger(FlightTrigger::kErrorRate, why);
    }
  }
}

bool flight_trigger(FlightTrigger trigger, const char* reason) noexcept {
  if (!detail::g_flight_armed.load(std::memory_order_relaxed)) return false;
  flight_event("trigger", reason != nullptr ? reason : flight_trigger_name(trigger), 0);
  trace_instant(flight_trigger_name(trigger), "flight");
  try {
    FlightState& st = fstate();
    core::MutexLock lock(st.mu);
    if (!st.armed) return false;
    Active* a = g_active.load(std::memory_order_acquire);
    if (a == nullptr) return false;
    const auto now = std::chrono::steady_clock::now();
    if (st.written >= a->cfg.max_bundles ||
        (st.have_attempt && now - st.last_attempt < a->cfg.min_bundle_interval)) {
      st.suppressed += 1;
      registry().counter("flight.bundles.suppressed").add(1);
      return false;
    }
    st.have_attempt = true;
    st.last_attempt = now;
    st.bundle_seq += 1;
    const bool ok = write_bundle_locked(st, *a, st.bundle_seq, trigger, reason);
    if (ok) {
      st.written += 1;
      registry().counter("flight.bundles.written").add(1);
    }
    return ok;
  } catch (...) {
    return false;  // diagnostics must never take the serving path down
  }
}

void flight_add_context(const void* owner, std::string section,
                        std::function<std::string()> fn) {
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  st.contexts.emplace_back(owner, std::move(section), std::move(fn));
}

void flight_remove_contexts(const void* owner) {
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  std::erase_if(st.contexts,
                [owner](const auto& t) { return std::get<0>(t) == owner; });
}

std::vector<FlightEvent> flight_events_snapshot() {
  Active* a = g_active.load(std::memory_order_acquire);
  if (a == nullptr) return {};
  return snapshot_ring(a->ring);
}

std::uint64_t flight_events_dropped() {
  Active* a = g_active.load(std::memory_order_acquire);
  return a == nullptr ? 0 : a->ring.dropped.load(std::memory_order_relaxed);
}

std::uint64_t flight_bundles_written() {
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  return st.written;
}

std::uint64_t flight_bundles_suppressed() {
  FlightState& st = fstate();
  core::MutexLock lock(st.mu);
  return st.suppressed;
}

std::string flight_status_text() {
  FlightState& st = fstate();
  Active* a = g_active.load(std::memory_order_acquire);
  core::MutexLock lock(st.mu);
  std::string out;
  out += "flight.armed " + std::to_string(st.armed ? 1 : 0) + "\n";
  out += "flight.dir " + (a != nullptr ? a->cfg.dir : std::string("-")) + "\n";
  out += "flight.bundles.written " + std::to_string(st.written) + "\n";
  out += "flight.bundles.suppressed " + std::to_string(st.suppressed) + "\n";
  out += "flight.events.dropped " +
         std::to_string(a != nullptr
                            ? a->ring.dropped.load(std::memory_order_relaxed)
                            : 0) +
         "\n";
  out += "flight.events.logged " +
         std::to_string(a != nullptr
                            ? a->ring.next_ticket.load(std::memory_order_relaxed)
                            : 0) +
         "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Bundle loader / validator.

std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

// Minimal defensive JSON scanner for the two formats we emit ourselves
// (MANIFEST.json, trace.json).  Bounded, non-throwing, rejects instead of
// guessing — the fuzz tests feed it truncations and bit flips.
struct Cursor {
  const char* p;
  const char* end;
};

void skip_ws(Cursor& c) {
  while (c.p < c.end &&
         (*c.p == ' ' || *c.p == '\t' || *c.p == '\n' || *c.p == '\r')) {
    ++c.p;
  }
}

bool parse_json_string(Cursor& c, std::string* out) {
  skip_ws(c);
  if (c.p >= c.end || *c.p != '"') return false;
  ++c.p;
  while (c.p < c.end) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.p >= c.end) return false;
      const char esc = *c.p++;
      if (out != nullptr) {
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            if (c.end - c.p < 4) return false;
            c.p += 4;
            out->push_back('?');
            break;
          default: out->push_back(esc); break;
        }
      } else if (esc == 'u') {
        if (c.end - c.p < 4) return false;
        c.p += 4;
      }
    } else if (out != nullptr) {
      out->push_back(ch);
    }
    if (out != nullptr && out->size() > kMaxSectionBytes) return false;
  }
  return false;  // unterminated
}

/// Parses a JSON number token.  Integers that fit u64 are reported exactly
/// (`*u64_out`, is_u64=true) so request ids survive above 2^53.
bool parse_json_number(Cursor& c, double* dbl_out, std::uint64_t* u64_out,
                       bool* is_u64) {
  skip_ws(c);
  const char* start = c.p;
  if (c.p < c.end && (*c.p == '-' || *c.p == '+')) ++c.p;
  bool integral = true;
  while (c.p < c.end &&
         (std::isdigit(static_cast<unsigned char>(*c.p)) != 0 || *c.p == '.' ||
          *c.p == 'e' || *c.p == 'E' || *c.p == '-' || *c.p == '+')) {
    if (*c.p == '.' || *c.p == 'e' || *c.p == 'E') integral = false;
    ++c.p;
  }
  if (c.p == start) return false;
  const std::string tok(start, c.p);
  errno = 0;
  char* parse_end = nullptr;
  if (integral && tok[0] != '-' && tok.size() <= 20) {
    const unsigned long long v = std::strtoull(tok.c_str(), &parse_end, 10);
    if (errno == 0 && parse_end != nullptr && *parse_end == '\0') {
      if (u64_out != nullptr) *u64_out = v;
      if (is_u64 != nullptr) *is_u64 = true;
      if (dbl_out != nullptr) *dbl_out = static_cast<double>(v);
      return true;
    }
  }
  errno = 0;
  const double d = std::strtod(tok.c_str(), &parse_end);
  if (parse_end == nullptr || *parse_end != '\0') return false;
  if (is_u64 != nullptr) *is_u64 = false;
  if (dbl_out != nullptr) *dbl_out = d;
  return true;
}

bool skip_json_value(Cursor& c, int depth);  // forward

bool skip_json_object(Cursor& c, int depth) {
  ++c.p;  // '{'
  skip_ws(c);
  if (c.p < c.end && *c.p == '}') {
    ++c.p;
    return true;
  }
  while (c.p < c.end) {
    if (!parse_json_string(c, nullptr)) return false;
    skip_ws(c);
    if (c.p >= c.end || *c.p != ':') return false;
    ++c.p;
    if (!skip_json_value(c, depth)) return false;
    skip_ws(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      skip_ws(c);
      continue;
    }
    if (c.p < c.end && *c.p == '}') {
      ++c.p;
      return true;
    }
    return false;
  }
  return false;
}

bool skip_json_array(Cursor& c, int depth) {
  ++c.p;  // '['
  skip_ws(c);
  if (c.p < c.end && *c.p == ']') {
    ++c.p;
    return true;
  }
  while (c.p < c.end) {
    if (!skip_json_value(c, depth)) return false;
    skip_ws(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == ']') {
      ++c.p;
      return true;
    }
    return false;
  }
  return false;
}

bool skip_json_value(Cursor& c, int depth) {
  if (depth > 48) return false;
  skip_ws(c);
  if (c.p >= c.end) return false;
  const char ch = *c.p;
  if (ch == '"') return parse_json_string(c, nullptr);
  if (ch == '{') return skip_json_object(c, depth + 1);
  if (ch == '[') return skip_json_array(c, depth + 1);
  if (ch == 't' || ch == 'f' || ch == 'n') {
    while (c.p < c.end && std::isalpha(static_cast<unsigned char>(*c.p)) != 0) ++c.p;
    return true;
  }
  return parse_json_number(c, nullptr, nullptr, nullptr);
}

bool parse_hex_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char ch : s) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') {
      v |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      v |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      v |= static_cast<std::uint64_t>(ch - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

core::Status bad(const std::string& what) {
  return {core::ErrorCode::kBadInput, "bundle: " + what};
}

core::Result<BundleManifest> parse_manifest(const std::string& text) {
  BundleManifest m;
  Cursor c{text.data(), text.data() + text.size()};
  skip_ws(c);
  if (c.p >= c.end || *c.p != '{') return bad("manifest: not a JSON object");
  ++c.p;
  skip_ws(c);
  if (c.p < c.end && *c.p == '}') return m;  // empty object: caller validates
  while (c.p < c.end) {
    std::string key;
    if (!parse_json_string(c, &key)) return bad("manifest: bad key");
    skip_ws(c);
    if (c.p >= c.end || *c.p != ':') return bad("manifest: missing ':'");
    ++c.p;
    if (key == "version" || key == "seq") {
      std::uint64_t v = 0;
      bool is_int = false;
      if (!parse_json_number(c, nullptr, &v, &is_int) || !is_int) {
        return bad("manifest: non-integer " + key);
      }
      if (key == "version") {
        m.version = static_cast<int>(v);
      } else {
        m.seq = v;
      }
    } else if (key == "trigger" || key == "reason") {
      std::string v;
      if (!parse_json_string(c, &v)) return bad("manifest: bad " + key);
      (key == "trigger" ? m.trigger : m.reason) = std::move(v);
    } else if (key == "sections") {
      skip_ws(c);
      if (c.p >= c.end || *c.p != '[') return bad("manifest: sections not an array");
      ++c.p;
      skip_ws(c);
      while (c.p < c.end && *c.p != ']') {
        skip_ws(c);
        if (c.p >= c.end || *c.p != '{') return bad("manifest: section not an object");
        ++c.p;
        BundleSectionInfo info;
        skip_ws(c);
        while (c.p < c.end && *c.p != '}') {
          std::string sk;
          if (!parse_json_string(c, &sk)) return bad("manifest: bad section key");
          skip_ws(c);
          if (c.p >= c.end || *c.p != ':') return bad("manifest: missing ':'");
          ++c.p;
          if (sk == "name") {
            if (!parse_json_string(c, &info.name)) return bad("manifest: bad name");
          } else if (sk == "size") {
            bool is_int = false;
            if (!parse_json_number(c, nullptr, &info.size, &is_int) || !is_int) {
              return bad("manifest: bad size");
            }
          } else if (sk == "fnv1a") {
            std::string hex;
            if (!parse_json_string(c, &hex) || !parse_hex_u64(hex, &info.fnv1a)) {
              return bad("manifest: bad fnv1a");
            }
          } else if (!skip_json_value(c, 0)) {
            return bad("manifest: bad section value");
          }
          skip_ws(c);
          if (c.p < c.end && *c.p == ',') {
            ++c.p;
            skip_ws(c);
          }
        }
        if (c.p >= c.end) return bad("manifest: truncated section");
        ++c.p;  // '}'
        m.sections.push_back(std::move(info));
        skip_ws(c);
        if (c.p < c.end && *c.p == ',') {
          ++c.p;
          skip_ws(c);
        }
      }
      if (c.p >= c.end) return bad("manifest: truncated sections");
      ++c.p;  // ']'
    } else if (!skip_json_value(c, 0)) {
      return bad("manifest: bad value for " + key);
    }
    skip_ws(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == '}') return m;
    return bad("manifest: trailing garbage");
  }
  return bad("manifest: truncated");
}

core::Result<std::string> read_file_capped(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return bad("cannot open " + path.string());
  std::string data;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    data.append(buf, static_cast<std::size_t>(in.gcount()));
    if (data.size() > kMaxSectionBytes) return bad("file too large: " + path.string());
    if (in.eof()) break;
  }
  return data;
}

bool parse_trace_event(Cursor& c, ParsedTraceEvent* out) {
  skip_ws(c);
  if (c.p >= c.end || *c.p != '{') return false;
  ++c.p;
  skip_ws(c);
  if (c.p < c.end && *c.p == '}') {
    ++c.p;
    return true;
  }
  while (c.p < c.end) {
    std::string key;
    if (!parse_json_string(c, &key)) return false;
    skip_ws(c);
    if (c.p >= c.end || *c.p != ':') return false;
    ++c.p;
    if (key == "name") {
      if (!parse_json_string(c, &out->name)) return false;
    } else if (key == "cat") {
      if (!parse_json_string(c, &out->cat)) return false;
    } else if (key == "ph") {
      std::string v;
      if (!parse_json_string(c, &v) || v.empty()) return false;
      out->ph = v[0];
    } else if (key == "tid") {
      double v = 0;
      if (!parse_json_number(c, &v, nullptr, nullptr)) return false;
      out->tid = static_cast<std::uint32_t>(v);
    } else if (key == "ts") {
      if (!parse_json_number(c, &out->ts_us, nullptr, nullptr)) return false;
    } else if (key == "dur") {
      if (!parse_json_number(c, &out->dur_us, nullptr, nullptr)) return false;
    } else if (key == "id") {
      // Emitted as a decimal string; tolerate a bare number too.
      skip_ws(c);
      if (c.p < c.end && *c.p == '"') {
        std::string v;
        if (!parse_json_string(c, &v)) return false;
        char* parse_end = nullptr;
        errno = 0;
        out->id = std::strtoull(v.c_str(), &parse_end, 10);
        if (errno != 0 || parse_end == nullptr || *parse_end != '\0') return false;
      } else {
        if (!parse_json_number(c, nullptr, &out->id, nullptr)) return false;
      }
    } else if (key == "args") {
      skip_ws(c);
      if (c.p >= c.end || *c.p != '{') return false;
      ++c.p;
      skip_ws(c);
      while (c.p < c.end && *c.p != '}') {
        std::string ak;
        if (!parse_json_string(c, &ak)) return false;
        skip_ws(c);
        if (c.p >= c.end || *c.p != ':') return false;
        ++c.p;
        if (ak == "rid") {
          if (!parse_json_number(c, nullptr, &out->rid, nullptr)) return false;
        } else if (!skip_json_value(c, 0)) {
          return false;
        }
        skip_ws(c);
        if (c.p < c.end && *c.p == ',') {
          ++c.p;
          skip_ws(c);
        }
      }
      if (c.p >= c.end) return false;
      ++c.p;
    } else if (!skip_json_value(c, 0)) {
      return false;
    }
    skip_ws(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      skip_ws(c);
      continue;
    }
    if (c.p < c.end && *c.p == '}') {
      ++c.p;
      return true;
    }
    return false;
  }
  return false;
}

}  // namespace

core::Result<Bundle> load_bundle(const std::string& dir) {
  const fs::path root(dir);
  auto manifest_text = read_file_capped(root / "MANIFEST.json");
  if (!manifest_text.is_ok()) return manifest_text.status();
  auto manifest = parse_manifest(manifest_text.value());
  if (!manifest.is_ok()) return manifest.status();

  Bundle bundle;
  bundle.manifest = std::move(manifest).value();
  for (const BundleSectionInfo& info : bundle.manifest.sections) {
    if (info.name.empty() || info.name.find('/') != std::string::npos ||
        info.name.find("..") != std::string::npos) {
      return bad("unsafe section name: '" + info.name + "'");
    }
    if (bundle.sections.count(info.name) != 0) {
      return bad("duplicate section: " + info.name);
    }
    auto body = read_file_capped(root / info.name);
    if (!body.is_ok()) return body.status();
    if (body.value().size() != info.size) {
      return bad("section " + info.name + ": size mismatch (manifest " +
                 std::to_string(info.size) + ", file " +
                 std::to_string(body.value().size()) + ")");
    }
    const std::uint64_t sum = fnv1a64(body.value().data(), body.value().size());
    if (sum != info.fnv1a) return bad("section " + info.name + ": checksum mismatch");
    bundle.sections.emplace(info.name, std::move(body).value());
  }
  return bundle;
}

core::Result<std::vector<ParsedTraceEvent>> parse_bundle_trace(const Bundle& bundle) {
  const auto it = bundle.sections.find("trace.json");
  if (it == bundle.sections.end()) return bad("missing trace.json");
  const std::string& text = it->second;
  Cursor c{text.data(), text.data() + text.size()};
  skip_ws(c);
  if (c.p >= c.end || *c.p != '{') return bad("trace.json: not a JSON object");
  ++c.p;
  std::vector<ParsedTraceEvent> events;
  skip_ws(c);
  if (c.p < c.end && *c.p == '}') return events;
  while (c.p < c.end) {
    std::string key;
    if (!parse_json_string(c, &key)) return bad("trace.json: bad key");
    skip_ws(c);
    if (c.p >= c.end || *c.p != ':') return bad("trace.json: missing ':'");
    ++c.p;
    if (key == "traceEvents") {
      skip_ws(c);
      if (c.p >= c.end || *c.p != '[') return bad("trace.json: events not an array");
      ++c.p;
      skip_ws(c);
      while (c.p < c.end && *c.p != ']') {
        ParsedTraceEvent ev;
        if (!parse_trace_event(c, &ev)) return bad("trace.json: bad event");
        events.push_back(std::move(ev));
        if (events.size() > (kMaxSectionBytes >> 6)) {
          return bad("trace.json: too many events");
        }
        skip_ws(c);
        if (c.p < c.end && *c.p == ',') {
          ++c.p;
          skip_ws(c);
        }
      }
      if (c.p >= c.end) return bad("trace.json: truncated events");
      ++c.p;
    } else if (!skip_json_value(c, 0)) {
      return bad("trace.json: bad value for " + key);
    }
    skip_ws(c);
    if (c.p < c.end && *c.p == ',') {
      ++c.p;
      continue;
    }
    if (c.p < c.end && *c.p == '}') return events;
    return bad("trace.json: trailing garbage");
  }
  return bad("trace.json: truncated");
}

namespace {

core::Status check_trace_nesting(const std::vector<ParsedTraceEvent>& events) {
  // Complete ('X') spans on one thread must nest like a call stack: the
  // trace sink records a span at destructor time, so an inner RAII span
  // always closes before — and inside — its enclosing one.
  constexpr double kEps = 1e-3;  // µs; events print with ns resolution
  struct Ref {
    double ts;
    double end;
    std::uint32_t tid;
    const std::string* name;
  };
  std::vector<Ref> spans;
  for (const ParsedTraceEvent& ev : events) {
    if (ev.ph == 'X') spans.push_back({ev.ts_us, ev.ts_us + ev.dur_us, ev.tid, &ev.name});
  }
  std::sort(spans.begin(), spans.end(), [](const Ref& a, const Ref& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.end > b.end;  // open the enclosing span first on ties
  });
  std::vector<Ref> stack;
  std::uint32_t cur_tid = 0;
  bool have_tid = false;
  for (const Ref& r : spans) {
    if (!have_tid || r.tid != cur_tid) {
      stack.clear();
      cur_tid = r.tid;
      have_tid = true;
    }
    while (!stack.empty() && r.ts >= stack.back().end - kEps) stack.pop_back();
    if (!stack.empty() && r.end > stack.back().end + kEps) {
      return bad("trace: span '" + *r.name + "' (tid " + std::to_string(r.tid) +
                 ") crosses the boundary of '" + *stack.back().name + "'");
    }
    stack.push_back(r);
  }
  return core::Status::ok();
}

core::Status check_metrics_text(const std::string& text) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find_last_of(" \t");
    if (sp == std::string::npos || sp == 0) {
      return bad("metrics.prom:" + std::to_string(line_no) + ": no value field");
    }
    const std::string value = line.substr(sp + 1);
    char* parse_end = nullptr;
    errno = 0;
    (void)std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end == nullptr || *parse_end != '\0') {
      return bad("metrics.prom:" + std::to_string(line_no) + ": bad value '" +
                 value + "'");
    }
  }
  return core::Status::ok();
}

}  // namespace

core::Status validate_bundle(const Bundle& bundle) {
  if (bundle.manifest.version != kBundleManifestVersion) {
    return bad("unsupported manifest version " +
               std::to_string(bundle.manifest.version));
  }
  if (bundle.manifest.trigger.empty()) return bad("manifest: empty trigger");
  for (const char* required : {"trace.json", "metrics.prom", "events.log"}) {
    if (bundle.sections.count(required) == 0) {
      return bad(std::string("missing required section ") + required);
    }
  }
  auto events = parse_bundle_trace(bundle);
  if (!events.is_ok()) return events.status();
  if (auto nest = check_trace_nesting(events.value()); !nest.is_ok()) return nest;
  return check_metrics_text(bundle.sections.at("metrics.prom"));
}

bool bundle_has_request_chain(const Bundle& bundle, std::uint64_t rid) {
  if (rid == 0) return false;
  auto parsed = parse_bundle_trace(bundle);
  if (!parsed.is_ok()) return false;
  const std::vector<ParsedTraceEvent>& events = parsed.value();
  bool wire = false;
  bool lifetime = false;
  std::vector<const ParsedTraceEvent*> members;
  for (const ParsedTraceEvent& ev : events) {
    if (ev.rid != rid) continue;
    if (ev.ph == 'X' && ev.name == "net.request") wire = true;
    if ((ev.ph == 'b' || ev.ph == 'e') && ev.name == "serve.request") lifetime = true;
    if (ev.ph == 'i' && ev.name == "serve.batch.member") members.push_back(&ev);
  }
  if (!wire || !lifetime || members.empty()) return false;
  // Kernel attribution: a kernel-category span on the member's worker
  // thread that ends at or after the member instant (the batch that ran
  // this request).  Bound the forward window to keep an unrelated later
  // batch from vouching for a dropped one.
  constexpr double kWindowUs = 60e6;
  for (const ParsedTraceEvent* member : members) {
    for (const ParsedTraceEvent& ev : events) {
      if (ev.ph != 'X' || ev.cat != "kernel" || ev.tid != member->tid) continue;
      if (ev.ts_us + ev.dur_us + 1e-3 >= member->ts_us &&
          ev.ts_us <= member->ts_us + kWindowUs) {
        return true;
      }
    }
  }
  return false;
}

std::string bundle_summary(const Bundle& bundle) {
  std::string out;
  out += "bundle seq=" + std::to_string(bundle.manifest.seq) +
         " version=" + std::to_string(bundle.manifest.version) + "\n";
  out += "trigger: " + bundle.manifest.trigger + "\n";
  out += "reason:  " + bundle.manifest.reason + "\n";
  out += "sections:\n";
  for (const BundleSectionInfo& info : bundle.manifest.sections) {
    char line[160];
    std::snprintf(line, sizeof line, "  %-24s %10llu bytes  fnv1a=%016llx\n",
                  info.name.c_str(), static_cast<unsigned long long>(info.size),
                  static_cast<unsigned long long>(info.fnv1a));
    out += line;
  }
  auto events = parse_bundle_trace(bundle);
  if (events.is_ok()) {
    std::size_t n_complete = 0;
    std::size_t n_async = 0;
    std::size_t n_instant = 0;
    std::vector<std::uint64_t> rids;
    for (const ParsedTraceEvent& ev : events.value()) {
      if (ev.ph == 'X') ++n_complete;
      if (ev.ph == 'b' || ev.ph == 'e') ++n_async;
      if (ev.ph == 'i') ++n_instant;
      if (ev.rid != 0) rids.push_back(ev.rid);
    }
    std::sort(rids.begin(), rids.end());
    rids.erase(std::unique(rids.begin(), rids.end()), rids.end());
    out += "trace: " + std::to_string(events.value().size()) + " events (" +
           std::to_string(n_complete) + " spans, " + std::to_string(n_async / 2) +
           " async pairs, " + std::to_string(n_instant) + " instants), " +
           std::to_string(rids.size()) + " distinct request ids\n";
  }
  const auto ev_log = bundle.sections.find("events.log");
  if (ev_log != bundle.sections.end()) {
    out += "events.log: " +
           std::to_string(std::count(ev_log->second.begin(), ev_log->second.end(), '\n')) +
           " lines\n";
  }
  return out;
}

}  // namespace bitflow::telemetry
