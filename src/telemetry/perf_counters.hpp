// Hardware performance-counter sampling for the per-layer roofline.
//
// The PR 5 profiler attributes each layer's achieved GOPS against a
// *calibrated* peak (an L1-resident xor+popcount microbenchmark) — a model,
// not a measurement.  PerfSampler turns the same per-layer span hooks into
// measured evidence: one perf_event_open counter group per worker thread
// (cycles leader + instructions + LLC misses, opened with
// PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING so
// multiplexed readings scale honestly), read at layer boundaries so
// profile_report() and /varz can print measured IPC and LLC misses-per-kilo-
// instruction next to AIT.
//
// Graceful degradation is a hard requirement (acceptance criterion): the
// syscall is frequently unavailable — seccomp'd containers, CI runners,
// perf_event_paranoid — so available() probes once and everything else
// no-ops, leaving the calibrated-peak roofline as the explicit
// `source=calibrated` fallback.  BITFLOW_NO_PERF=1 forces the fallback for
// deterministic tests.
//
// Counts are cumulative per sampler: callers snapshot read() before and
// after a region and subtract (operator-).  Reading another thread's group
// fd from the profiling thread is supported by the kernel ABI — fds are
// opened per-tid but readable from anywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "core/status.hpp"

namespace bitflow::telemetry {

/// One multiplex-scaled counter reading (cumulative since open()).
struct PerfCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  bool valid = false;

  [[nodiscard]] double ipc() const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// a - b, clamped at zero per field (multiplex scaling can jitter
/// cumulative readings backwards by a few counts).
[[nodiscard]] inline PerfCounts operator-(const PerfCounts& a, const PerfCounts& b) noexcept {
  PerfCounts d;
  d.valid = a.valid && b.valid;
  d.cycles = a.cycles >= b.cycles ? a.cycles - b.cycles : 0;
  d.instructions = a.instructions >= b.instructions ? a.instructions - b.instructions : 0;
  d.llc_misses = a.llc_misses >= b.llc_misses ? a.llc_misses - b.llc_misses : 0;
  return d;
}

class PerfSampler {
 public:
  /// One-time probe (cached): can this process open a hardware counter
  /// group?  False on non-Linux, restricted perf_event_paranoid, seccomp,
  /// missing PMU (VMs), or BITFLOW_NO_PERF=1.
  [[nodiscard]] static bool available() noexcept;

  PerfSampler() = default;
  ~PerfSampler() { close_all(); }
  PerfSampler(const PerfSampler&) = delete;
  PerfSampler& operator=(const PerfSampler&) = delete;

  /// Opens one enabled counter group per thread id.  `tid` 0 means the
  /// calling thread; non-positive/duplicate ids are skipped.  Threads whose
  /// group fails to open are skipped (their work goes unmeasured rather
  /// than failing the sampler); returns non-OK only when NO group opened.
  core::Status open(const std::vector<int>& tids);

  /// Any group open?
  [[nodiscard]] bool active() const noexcept { return !leaders_.empty(); }

  /// Sums all groups' readings, each scaled by time_enabled/time_running
  /// (counter multiplexing).  `valid` is false when inactive.
  [[nodiscard]] PerfCounts read() const noexcept;

  void close_all() noexcept;

 private:
  std::vector<int> leaders_;  ///< group-leader fds (one read each)
  std::vector<int> fds_;      ///< every fd we own, for close()
};

}  // namespace bitflow::telemetry
