#include "telemetry/perf_counters.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bitflow::telemetry {

#if defined(__linux__)

namespace {

int perf_open(perf_event_attr* attr, int tid, int group_fd) noexcept {
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, attr, tid, /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

perf_event_attr make_attr(std::uint64_t config, bool leader) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  // The leader starts disabled and is enabled once the whole group is
  // attached, so members never measure a partially built group.
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;  // user-space kernels only; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid bar the probe must clear
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// Opens the cycles/instructions/LLC-miss group for one tid.  Returns the
/// leader fd (enabled) or -1; appends every opened fd to `owned`.
int open_group(int tid, std::vector<int>& owned) noexcept {
  perf_event_attr lead = make_attr(PERF_COUNT_HW_CPU_CYCLES, /*leader=*/true);
  const int leader = perf_open(&lead, tid, -1);
  if (leader < 0) return -1;
  owned.push_back(leader);
  for (std::uint64_t config :
       {static_cast<std::uint64_t>(PERF_COUNT_HW_INSTRUCTIONS),
        static_cast<std::uint64_t>(PERF_COUNT_HW_CACHE_MISSES)}) {
    perf_event_attr attr = make_attr(config, /*leader=*/false);
    const int fd = perf_open(&attr, tid, leader);
    if (fd < 0) return -1;  // partial group is useless; caller closes owned fds
    owned.push_back(fd);
  }
  if (::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return -1;
  }
  return leader;
}

}  // namespace

bool PerfSampler::available() noexcept {
  static const bool ok = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): first call races nothing hot.
    const char* no_perf = std::getenv("BITFLOW_NO_PERF");
    if (no_perf != nullptr && no_perf[0] != '\0' && no_perf[0] != '0') return false;
    std::vector<int> probe_fds;
    const int leader = open_group(/*tid=*/0, probe_fds);
    for (int fd : probe_fds) ::close(fd);
    return leader >= 0;
  }();
  return ok;
}

core::Status PerfSampler::open(const std::vector<int>& tids) {
  close_all();
  if (!available()) {
    return {core::ErrorCode::kUnavailable, "perf: perf_event_open unavailable"};
  }
  std::vector<int> seen;
  for (int tid : tids) {
    if (tid < 0) continue;
    bool dup = false;
    for (int s : seen) dup = dup || s == tid;
    if (dup) continue;
    seen.push_back(tid);
    std::vector<int> owned;
    const int leader = open_group(tid, owned);
    if (leader < 0) {
      for (int fd : owned) ::close(fd);
      continue;  // this thread goes unmeasured; keep the rest
    }
    leaders_.push_back(leader);
    fds_.insert(fds_.end(), owned.begin(), owned.end());
  }
  if (leaders_.empty()) {
    return {core::ErrorCode::kUnavailable, "perf: no counter group could be opened"};
  }
  return core::Status::ok();
}

PerfCounts PerfSampler::read() const noexcept {
  PerfCounts total;
  if (leaders_.empty()) return total;
  for (int leader : leaders_) {
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + 3] = {};
    const ssize_t n = ::read(leader, buf, sizeof buf);
    if (n < static_cast<ssize_t>(6 * sizeof(std::uint64_t)) || buf[0] != 3) continue;
    double scale = 1.0;
    if (buf[2] != 0 && buf[2] < buf[1]) {
      scale = static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
    } else if (buf[2] == 0) {
      continue;  // never scheduled: nothing measured
    }
    total.cycles += static_cast<std::uint64_t>(static_cast<double>(buf[3]) * scale);
    total.instructions += static_cast<std::uint64_t>(static_cast<double>(buf[4]) * scale);
    total.llc_misses += static_cast<std::uint64_t>(static_cast<double>(buf[5]) * scale);
    total.valid = true;
  }
  return total;
}

void PerfSampler::close_all() noexcept {
  for (int fd : fds_) ::close(fd);
  fds_.clear();
  leaders_.clear();
}

#else  // !__linux__

bool PerfSampler::available() noexcept { return false; }

core::Status PerfSampler::open(const std::vector<int>&) {
  return {core::ErrorCode::kUnavailable, "perf: not supported on this platform"};
}

PerfCounts PerfSampler::read() const noexcept { return {}; }

void PerfSampler::close_all() noexcept {}

#endif

}  // namespace bitflow::telemetry
