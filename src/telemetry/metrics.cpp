#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/failpoint.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace bitflow::telemetry {

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(Bucketing b, std::size_t n)
    : bucketing_(b),
      n_buckets_(n),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
  if (n < 2) throw std::invalid_argument("Histogram: needs at least two buckets");
  for (std::size_t i = 0; i < n; ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::Histogram(Histogram&& other) noexcept
    : bucketing_(other.bucketing_),
      n_buckets_(other.n_buckets_),
      buckets_(std::move(other.buckets_)),
      sum_(other.sum_.load(std::memory_order_relaxed)),
      count_(other.count_.load(std::memory_order_relaxed)) {}

std::uint64_t Histogram::bucket_upper(std::size_t i) const noexcept {
  if (bucketing_ == Bucketing::kLinear) {
    return i + 1 < n_buckets_ ? static_cast<std::uint64_t>(i) : UINT64_MAX;
  }
  // log2: bucket 0 holds only 0; bucket i holds values up to 2^i - 1; the
  // last bucket (bit_width 64) has no finite power-of-two bound.
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (std::uint64_t{1} << i) - 1;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(n_buckets_);
  s.uppers.resize(n_buckets_);
  // Count first: a concurrent record() that is observed in a bucket but not
  // yet in count_ merely makes this snapshot conservative, never negative.
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.uppers[i] = bucket_upper(i);
  }
  return s;
}

std::uint64_t Histogram::Snapshot::quantile_upper(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t want =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= want) return uppers[i];
  }
  return uppers.empty() ? 0 : uppers.back();
}

// --- Registry ---------------------------------------------------------------

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the dots of
/// our internal names) becomes '_'.
std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string key_of(std::string_view name, std::string_view labels) {
  std::string key(name);
  key.push_back('\x01');
  key.append(labels);
  return key;
}

}  // namespace

struct Registry::Impl {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name, labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct CallbackGauge {
    const void* owner;
    std::string name, labels;
    std::function<double()> fn;
  };

  // mu guards registration and snapshotting (the cold paths).  Recording on
  // an instrument returned by lookup() is lock-free and deliberately NOT
  // guarded: instrument addresses are stable for the registry's lifetime.
  mutable core::Mutex mu;
  // Keyed by name + '\x01' + labels; std::map keeps exposition output in a
  // deterministic order.  Entry instruments are heap-allocated so their
  // addresses survive map rebalancing.
  std::map<std::string, Entry> entries BF_GUARDED_BY(mu);
  std::vector<CallbackGauge> callbacks BF_GUARDED_BY(mu);

  /// Interns (name, labels) and constructs the instrument — both under mu,
  /// so two threads racing to register the same metric observe one fully
  /// constructed instrument (the returned address is stable thereafter).
  /// `linear_max` only applies to histograms (see Registry::histogram).
  Entry& lookup(std::string_view name, std::string_view labels, Kind kind,
                std::int64_t linear_max = -1) BF_EXCLUDES(mu) {
    core::MutexLock lock(mu);
    auto [it, inserted] = entries.try_emplace(key_of(name, labels));
    Entry& e = it->second;
    if (inserted) {
      e.kind = kind;
      e.name = std::string(name);
      e.labels = std::string(labels);
    } else if (e.kind != kind) {
      throw std::invalid_argument("telemetry: metric '" + std::string(name) +
                                  "' re-registered with a different kind");
    }
    switch (kind) {
      case Kind::kCounter:
        if (!e.counter) e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        if (!e.gauge) e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        if (!e.histogram) {
          e.histogram = std::make_unique<Histogram>(
              linear_max >= 0 ? Histogram::linear(static_cast<std::size_t>(linear_max) + 1)
                              : Histogram());
        }
        break;
    }
    return e;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}

Registry::~Registry() = default;

Registry& Registry::instance() {
  // Leaked on purpose: worker threads and static destructors of downstream
  // binaries may record during shutdown, after main() returns.
  static Registry* g = [] {
    auto* r = new Registry();
    // Surface the failpoint catalog's trip counts in every scrape.  The
    // callbacks only run at snapshot time, so the fault-injection hot path
    // keeps its one-relaxed-load cost.
    for (const failpoint::PointInfo& p : failpoint::catalog()) {
      r->add_callback_gauge(r, "failpoint.hits", "point=\"" + std::string(p.name) + "\"",
                            [name = p.name] {
                              return static_cast<double>(failpoint::hit_count(name));
                            });
    }
    return r;
  }();
  return *g;
}

Registry& registry() { return Registry::instance(); }

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  return *impl_->lookup(name, labels, Impl::Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  return *impl_->lookup(name, labels, Impl::Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels,
                               std::int64_t linear_max) {
  return *impl_->lookup(name, labels, Impl::Kind::kHistogram, linear_max).histogram;
}

void Registry::add_callback_gauge(const void* owner, std::string name, std::string labels,
                                  std::function<double()> fn) {
  core::MutexLock lock(impl_->mu);
  impl_->callbacks.push_back({owner, std::move(name), std::move(labels), std::move(fn)});
}

void Registry::remove_callbacks(const void* owner) {
  core::MutexLock lock(impl_->mu);
  std::erase_if(impl_->callbacks,
                [owner](const Impl::CallbackGauge& c) { return c.owner == owner; });
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  core::MutexLock lock(impl_->mu);
  for (const auto& [key, e] : impl_->entries) {
    switch (e.kind) {
      case Impl::Kind::kCounter:
        s.counters.push_back({e.name, e.labels, e.counter->value()});
        break;
      case Impl::Kind::kGauge:
        s.gauges.push_back({e.name, e.labels, static_cast<double>(e.gauge->value())});
        break;
      case Impl::Kind::kHistogram:
        s.histograms.push_back({e.name, e.labels, e.histogram->snapshot()});
        break;
    }
  }
  for (const Impl::CallbackGauge& c : impl_->callbacks) {
    s.gauges.push_back({c.name, c.labels, c.fn()});
  }
  return s;
}

// --- exposition -------------------------------------------------------------

namespace {

void append_series(std::string& out, const std::string& name, const std::string& labels,
                   const char* suffix, const std::string& extra_label, double value) {
  out += sanitize(name);
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  char buf[64];
  // %.17g round-trips doubles; integral values print without a fraction.
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value >= -9.2e18 && value <= 9.2e18) {
    std::snprintf(buf, sizeof buf, " %" PRId64 "\n", static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buf, sizeof buf, " %.17g\n", value);
  }
  out += buf;
}

void append_type(std::string& out, const std::string& name, const char* type,
                 std::string& last_typed) {
  const std::string s = sanitize(name);
  if (s == last_typed) return;  // one TYPE line per metric family
  out += "# TYPE ";
  out += s;
  out += ' ';
  out += type;
  out += '\n';
  last_typed = s;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_typed;
  // Group each family's series behind ONE "# TYPE" line: registration order
  // interleaves same-named instruments from different owners (e.g. one
  // queue-depth gauge per engine shard), so sort by the SANITIZED family
  // name — distinct raw names may collapse to one family after sanitizing.
  const auto family_order = [](const auto& a, const auto& b) {
    const std::string fa = sanitize(a.name), fb = sanitize(b.name);
    return fa != fb ? fa < fb : a.labels < b.labels;
  };
  std::vector<CounterSample> sorted_counters(counters);
  std::sort(sorted_counters.begin(), sorted_counters.end(), family_order);
  std::vector<GaugeSample> sorted_gauges(gauges);
  std::sort(sorted_gauges.begin(), sorted_gauges.end(), family_order);
  std::vector<HistogramSample> sorted_hists(histograms);
  std::sort(sorted_hists.begin(), sorted_hists.end(), family_order);
  for (const CounterSample& c : sorted_counters) {
    append_type(out, c.name, "counter", last_typed);
    append_series(out, c.name, c.labels, "", "", static_cast<double>(c.value));
  }
  for (const GaugeSample& g : sorted_gauges) {
    append_type(out, g.name, "gauge", last_typed);
    append_series(out, g.name, g.labels, "", "", g.value);
  }
  for (const HistogramSample& h : sorted_hists) {
    append_type(out, h.name, "histogram", last_typed);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.hist.buckets.size(); ++i) {
      cum += h.hist.buckets[i];
      // Skip interior empty buckets to keep scrapes compact, but always emit
      // the final +Inf bucket (cum == count by construction).
      const bool last = i + 1 == h.hist.buckets.size();
      if (h.hist.buckets[i] == 0 && !last) continue;
      std::string le;
      if (last || h.hist.uppers[i] == UINT64_MAX) {
        le = "le=\"+Inf\"";
      } else {
        le = "le=\"" + std::to_string(h.hist.uppers[i]) + "\"";
      }
      append_series(out, h.name, h.labels, "_bucket", le, static_cast<double>(cum));
      if (last || h.hist.uppers[i] == UINT64_MAX) break;
    }
    append_series(out, h.name, h.labels, "_sum", "", static_cast<double>(h.hist.sum));
    append_series(out, h.name, h.labels, "_count", "", static_cast<double>(h.hist.count));
  }
  return out;
}

}  // namespace bitflow::telemetry
