#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace bitflow::telemetry {

namespace {

struct TraceEvent {
  /// Span names are COPIED into the slot (truncated to kNameCap-1 chars):
  /// layer/kernel names point into network internals that may be destroyed
  /// before the atexit flush of a BITFLOW_TRACE session.  Categories are
  /// required to be string literals (see trace.hpp), so the pointer is kept.
  static constexpr std::size_t kNameCap = 48;
  char name[kNameCap];
  const char* cat;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::int64_t arg;   // >= 0: recorded as args.n
  std::uint64_t rid;  // != 0: recorded as args.rid (wire request id)
  std::uint64_t id;   // async pair id; kIdNone = synchronous
  char ph;            // 'X' complete span, 'a' async pair, 'i' instant
  static constexpr std::uint64_t kIdNone = UINT64_MAX;
};

/// One thread's event ring.  Single writer (the owning thread); the flusher
/// reads slots below the acquired size, which the writer published with a
/// release store after filling the slot — so every read slot is immutable.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint32_t tid)
      : slots(capacity), tid(tid) {}
  std::vector<TraceEvent> slots;
  // Ordering contract: the writer fills slots[n] then publishes with a
  // release store of size; the flusher's acquire load of size makes every
  // published slot visible (resets and the overflow check are relaxed —
  // they synchronize through the trace mutex or order nothing).  dropped is
  // a relaxed tally.
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid;

  void push(const char* name, const char* cat, std::uint64_t start_ns,
            std::uint64_t end_ns, std::int64_t arg, std::uint64_t rid,
            std::uint64_t id, char ph) noexcept {
    const std::uint32_t n = size.load(std::memory_order_relaxed);
    if (n >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceEvent& ev = slots[n];
    std::strncpy(ev.name, name, TraceEvent::kNameCap - 1);
    ev.name[TraceEvent::kNameCap - 1] = '\0';
    ev.cat = cat;
    ev.start_ns = start_ns;
    ev.end_ns = end_ns;
    ev.arg = arg;
    ev.rid = rid;
    ev.id = id;
    ev.ph = ph;
    size.store(n + 1, std::memory_order_release);
  }
};

struct TraceState {
  // mu guards the session state (arm/flush/ring registration); recording
  // into an already-registered ring is lock-free and goes through the
  // thread_local pointer, never this struct.
  core::Mutex mu;
  bool armed BF_GUARDED_BY(mu) = false;
  bool passive BF_GUARDED_BY(mu) = false;  // armed with no output path
  std::string path BF_GUARDED_BY(mu);
  std::size_t ring_capacity BF_GUARDED_BY(mu) = 1 << 16;
  std::uint64_t t0_ns BF_GUARDED_BY(mu) = 0;
  std::uint32_t next_tid BF_GUARDED_BY(mu) = 1;
  // Ordering contract: relaxed fetch_add — ids only need uniqueness.
  std::atomic<std::uint64_t> next_async_id{1};
  // Rings live for the whole process: a thread that exits keeps its events.
  // The vector is guarded; the pointed-to rings are lock-free (see above).
  std::vector<std::shared_ptr<ThreadRing>> rings BF_GUARDED_BY(mu);
};

TraceState& state() {
  static TraceState* s = [] {
    auto* st = new TraceState();  // leaked: threads record at exit
    // Ring overflow is otherwise silent: surface the cumulative drop count
    // through the registry so dashboards see burst loss.  The registry and
    // this state are both process-lifetime leaks, so the callback never
    // dangles; it takes the trace mutex under the registry mutex (Registry
    // mu -> trace mu, one-way — nothing holding the trace mutex calls the
    // registry's locked API).
    registry().add_callback_gauge(st, "telemetry.trace.dropped", "", [st] {
      core::MutexLock lock(st->mu);
      std::uint64_t total = 0;
      for (const auto& r : st->rings) {
        total += r->dropped.load(std::memory_order_relaxed);
      }
      return static_cast<double>(total);
    });
    return st;
  }();
  return *s;
}

ThreadRing* this_thread_ring() {
  // One registration per (thread, process): the shared_ptr in the global
  // list keeps the ring alive past thread exit, so the flusher never reads
  // freed memory.
  thread_local ThreadRing* ring = [] {
    TraceState& st = state();
    core::MutexLock lock(st.mu);
    auto r = std::make_shared<ThreadRing>(st.ring_capacity, st.next_tid++);
    st.rings.push_back(r);
    return r.get();
  }();
  return ring;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

/// Serializes every published ring prefix into Chrome's JSON array format.
/// Caller holds the trace mutex.  Reads are non-destructive: published
/// slots are immutable and the acquire load of each ring's size bounds the
/// scan, so this is safe against concurrent writers.
std::string render_json_locked(TraceState& st, std::size_t* events_out) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::size_t written = 0;
  std::uint64_t dropped_total = 0;
  auto emit = [&](const TraceEvent& ev, std::uint32_t tid, double ts_us, double dur_us,
                  const char* ph, std::uint64_t id) {
    if (written != 0) out += ",\n";
    out += "{\"name\":\"";
    json_escape_into(out, ev.name);
    out += "\",\"cat\":\"";
    json_escape_into(out, ev.cat);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    char buf[96];
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", ts_us);
    out += buf;
    if (ph[0] == 'X') {
      std::snprintf(buf, sizeof buf, ",\"dur\":%.3f", dur_us);
      out += buf;
    }
    if (ph[0] == 'i') out += ",\"s\":\"t\"";
    if (id != TraceEvent::kIdNone) {
      out += ",\"id\":\"";
      out += std::to_string(id);
      out += '"';
    }
    if (ev.arg >= 0 || ev.rid != 0) {
      out += ",\"args\":{";
      bool first = true;
      if (ev.arg >= 0) {
        out += "\"n\":";
        out += std::to_string(ev.arg);
        first = false;
      }
      if (ev.rid != 0) {
        if (!first) out += ',';
        out += "\"rid\":";
        out += std::to_string(ev.rid);
      }
      out += '}';
    }
    out += '}';
    ++written;
  };

  for (const auto& r : st.rings) {
    const std::uint32_t n = r->size.load(std::memory_order_acquire);
    dropped_total += r->dropped.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n; ++i) {
      const TraceEvent& ev = r->slots[i];
      // Clamp events that straddled trace_start (a span constructed before
      // arming records nothing, but an armed span can begin before t0 if
      // arming raced its constructor — harmless, clamp to 0).
      const double ts_us =
          ev.start_ns >= st.t0_ns
              ? static_cast<double>(ev.start_ns - st.t0_ns) / 1000.0
              : 0.0;
      const double dur_us = ev.end_ns >= ev.start_ns
                                ? static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0
                                : 0.0;
      if (ev.ph == 'i') {
        emit(ev, r->tid, ts_us, 0.0, "i", TraceEvent::kIdNone);
      } else if (ev.id == TraceEvent::kIdNone) {
        emit(ev, r->tid, ts_us, dur_us, "X", TraceEvent::kIdNone);
      } else {
        const double end_us = ts_us + dur_us;
        emit(ev, r->tid, ts_us, 0.0, "b", ev.id);
        emit(ev, r->tid, end_us, 0.0, "e", ev.id);
      }
    }
  }
  // Footer: stamp the cumulative ring-overflow drop count into the trace so
  // a consumer knows how complete the timeline is (also exported live as
  // the telemetry.trace.dropped registry gauge).
  if (written != 0) out += ",\n";
  out += "{\"name\":\"trace_dropped_events\",\"cat\":\"meta\",\"ph\":\"C\",\"pid\":1,"
         "\"tid\":0,\"ts\":0,\"args\":{\"dropped\":";
  out += std::to_string(dropped_total);
  out += "}}";
  ++written;
  out += "\n]}\n";
  if (events_out != nullptr) *events_out = written;
  return out;
}

/// Applies BITFLOW_TRACE before main() and flushes at process exit, so any
/// binary in the tree can be traced without code changes.
const bool g_env_applied = [] {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once at static init.
  const char* path = std::getenv("BITFLOW_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  try {
    trace_start(path);
    std::atexit([] {
      const std::size_t n = trace_stop();
      std::fprintf(stderr, "[bitflow] trace: wrote %zu events to %s\n", n,
                   std::getenv("BITFLOW_TRACE"));  // NOLINT(concurrency-mt-unsafe)
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bitflow] ignoring BITFLOW_TRACE: %s\n", e.what());
  }
  return true;
}();

}  // namespace

namespace detail {

// Ordering contract: relaxed (see trace.hpp — the flag publishes nothing).
std::atomic<bool> g_trace_enabled{false};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void trace_record(const char* name, const char* cat, std::uint64_t start_ns,
                  std::uint64_t end_ns, std::int64_t arg, std::uint64_t rid) {
  this_thread_ring()->push(name, cat, start_ns, end_ns, arg, rid,
                           TraceEvent::kIdNone, 'X');
}

void trace_record_async(const char* name, const char* cat, std::uint64_t start_ns,
                        std::uint64_t end_ns, std::uint64_t id, std::uint64_t rid) {
  if (id == TraceEvent::kIdNone) id -= 1;
  this_thread_ring()->push(name, cat, start_ns, end_ns, -1, rid, id, 'a');
}

void trace_record_instant(const char* name, const char* cat, std::uint64_t ts_ns,
                          std::uint64_t rid) {
  this_thread_ring()->push(name, cat, ts_ns, ts_ns, -1, rid, TraceEvent::kIdNone,
                           'i');
}

}  // namespace detail

void trace_start(const std::string& path, std::size_t ring_capacity) {
  if (path.empty()) throw std::invalid_argument("trace_start: empty path");
  if (ring_capacity < 16) throw std::invalid_argument("trace_start: ring too small");
  TraceState& st = state();
  core::MutexLock lock(st.mu);
  if (st.armed) throw std::logic_error("trace_start: trace already armed");
  st.path = path;
  st.passive = false;
  st.ring_capacity = ring_capacity;
  st.t0_ns = detail::now_ns();
  // Reset rings registered by a previous session; new threads get the new
  // capacity.  Existing threads keep their (already sized) rings — events
  // from before this session are discarded by the size reset.
  for (auto& r : st.rings) {
    r->size.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
    if (r->slots.size() != ring_capacity) r->slots.resize(ring_capacity);
  }
  st.armed = true;
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_arm_passive(std::size_t ring_capacity) {
  if (ring_capacity < 16) {
    throw std::invalid_argument("trace_arm_passive: ring too small");
  }
  TraceState& st = state();
  core::MutexLock lock(st.mu);
  if (st.armed) return;  // existing session (either kind) serves snapshots
  st.path.clear();
  st.passive = true;
  st.ring_capacity = ring_capacity;
  st.t0_ns = detail::now_ns();
  for (auto& r : st.rings) {
    r->size.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
    if (r->slots.size() != ring_capacity) r->slots.resize(ring_capacity);
  }
  st.armed = true;
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_events() {
  TraceState& st = state();
  core::MutexLock lock(st.mu);
  std::uint64_t total = 0;
  for (const auto& r : st.rings) total += r->dropped.load(std::memory_order_relaxed);
  return total;
}

std::string trace_snapshot_json() {
  TraceState& st = state();
  core::MutexLock lock(st.mu);
  if (!st.armed) return {};
  std::size_t written = 0;
  return render_json_locked(st, &written);
}

std::size_t trace_stop() {
  TraceState& st = state();
  core::MutexLock lock(st.mu);
  if (!st.armed) return 0;
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
  st.armed = false;

  std::size_t written = 0;
  const bool passive = st.passive;
  st.passive = false;
  if (!passive) {
    const std::string json = render_json_locked(st, &written);
    std::FILE* f = std::fopen(st.path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bitflow] trace: cannot open '%s'\n", st.path.c_str());
      written = 0;
    } else {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }
  for (const auto& r : st.rings) {
    r->size.store(0, std::memory_order_relaxed);
    r->dropped.store(0, std::memory_order_relaxed);
  }
  return written;
}

/// Fresh id for an async interval (request lifetimes).
std::uint64_t trace_next_async_id() {
  return state().next_async_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace bitflow::telemetry
