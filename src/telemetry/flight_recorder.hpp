// Black-box flight recorder: always-on tracing + anomaly-triggered
// diagnostic bundles.
//
// The serving tier's failure evidence is perishable — by the time a human
// looks at a shed storm or a p99 blowout, the trace that would explain it is
// gone.  The flight recorder keeps the trace sink armed permanently in
// passive mode (per-thread drop-newest rings, see trace.hpp) and adds a
// lock-free recent-events log for discrete facts that deserve to survive a
// ring wrap: sheds, quarantines, reloads, deadline breaches, failpoint hits,
// lifecycle transitions.  When a trigger fires — the SLO-breach detector
// over observed outcomes, a worker quarantine, the serve error-rate
// detector, a fatal signal (opt-in), or a manual request — it snapshots a
// **diagnostic bundle** to disk:
//
//   <dir>/bundle-000001/
//     MANIFEST.json   version, trigger, reason, per-section size + FNV-1a
//     trace.json      non-destructive trace snapshot (request-id joinable)
//     metrics.prom    Prometheus exposition snapshot
//     events.log      the recent-events ring, oldest first
//     <section>.txt   one file per registered context provider (varz,
//                     profile report, tune plans, lifecycle state, ...)
//
// Bundles are written to a temp directory and atomically renamed into
// place, rate-limited (min interval between bundles + max bundle count per
// process) so a flapping trigger cannot fill the disk.
//
// Event-log hot path: `flight_event()` is ONE relaxed atomic load when the
// recorder is disarmed (CI-gated at <= 5 ns, BENCH_telemetry.json).  Armed,
// it claims a slot by ticket and publishes through a per-slot seqlock —
// no mutex, so it is safe from any thread including (best-effort) a fatal
// signal handler.
//
// Environment: BITFLOW_FLIGHT_DIR=<dir> arms the recorder (and passive
// tracing) at static init with default thresholds — no code changes needed.
//
// Layering: telemetry depends only on core/simd, so serving-layer state
// (lifecycle, /varz, profile report, tune plans) enters bundles through
// context providers registered by the owning layer (`flight_add_context`).
//
// This header also hosts the bundle *loader/validator* used by
// `tools/bitflow_bundle_dump` and the tests: manifest + checksum
// verification, trace well-nesting, metrics parse, and the request-id
// span-chain query — defensive against truncated/corrupted input (fuzzed in
// flight_recorder_test).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace bitflow::telemetry {

// ---------------------------------------------------------------------------
// Recording side.

enum class FlightTrigger : std::uint8_t {
  kSloBreach,    ///< deadline-breach detector tripped (flight_observe_outcome)
  kErrorRate,    ///< windowed error-rate detector tripped
  kQuarantine,   ///< a worker circuit breaker quarantined
  kFatalSignal,  ///< SIGSEGV/SIGABRT/SIGBUS (only if installed; best-effort)
  kManual,       ///< explicit flight_trigger() call (tools, tests)
};

[[nodiscard]] constexpr const char* flight_trigger_name(FlightTrigger t) noexcept {
  switch (t) {
    case FlightTrigger::kSloBreach: return "slo_breach";
    case FlightTrigger::kErrorRate: return "error_rate";
    case FlightTrigger::kQuarantine: return "quarantine";
    case FlightTrigger::kFatalSignal: return "fatal_signal";
    case FlightTrigger::kManual: return "manual";
  }
  return "?";
}

struct FlightRecorderConfig {
  /// Directory bundles are written into (created if missing).  Required.
  std::string dir;
  /// Per-thread trace ring capacity handed to trace_arm_passive().
  std::size_t trace_ring_capacity = 1 << 14;
  /// Recent-events ring capacity (power of two enforced by rounding up).
  std::size_t event_capacity = 1024;
  /// Rate limit: minimum wall time between two bundles.
  std::chrono::milliseconds min_bundle_interval{30'000};
  /// Rate limit: hard cap on bundles per armed session.
  std::size_t max_bundles = 8;
  /// SLO detector: this many deadline breaches (since the last trip)
  /// trigger a bundle.
  std::size_t breach_threshold = 8;
  /// Error-rate detector: over each window of `rate_window` observed
  /// outcomes, an error fraction >= `error_rate_threshold` triggers.
  std::size_t rate_window = 64;
  double error_rate_threshold = 0.5;
  /// Install SIGSEGV/SIGABRT/SIGBUS handlers that attempt a bundle before
  /// re-raising.  Best-effort (bundle writing is not async-signal-safe);
  /// default off — opt in for long-lived servers where a crash bundle is
  /// worth more than handler purity.
  bool install_signal_handler = false;
};

/// Arms the recorder: arms passive tracing, resets the event ring and
/// detectors, registers flight.* metrics.  Throws std::invalid_argument on
/// an empty dir, std::logic_error if already armed.
void flight_start(FlightRecorderConfig cfg);

/// Disarms the recorder (stops passive tracing only if the recorder armed
/// it).  Registered context providers are kept.  No-op when disarmed.
void flight_stop();

/// One relaxed load: is the recorder armed?
[[nodiscard]] bool flight_armed() noexcept;

namespace detail {
// Ordering contract: relaxed — arming publishes its state through the
// flight mutex / the event ring's own protocol, never through this flag.
extern std::atomic<bool> g_flight_armed;
void flight_event_armed(const char* kind, const char* detail_str,
                        std::uint64_t rid) noexcept;
}  // namespace detail

/// Appends an event to the recent-events ring.  `kind` is a short stable
/// tag ("shed", "quarantine", "reload", "deadline", "failpoint",
/// "lifecycle", ...), `detail_str` one line of context; both are copied
/// (truncated).  `rid` (0 = none) joins the event to a wire request.
/// Disarmed cost: one relaxed atomic load.  Never throws, never blocks.
inline void flight_event(const char* kind, const char* detail_str,
                         std::uint64_t rid = 0) noexcept {
  if (detail::g_flight_armed.load(std::memory_order_relaxed)) [[unlikely]] {
    detail::flight_event_armed(kind, detail_str, rid);
  }
}

/// Feeds the SLO-breach / error-rate detectors with one request outcome.
/// Call from the serving layer's resolution paths.  May trigger a bundle
/// (rate-limited) on the calling thread.  Disarmed cost: one relaxed load.
void flight_observe_outcome(bool ok, bool deadline_breach) noexcept;

/// Fires a trigger: logs it as an event and, unless rate-limited, writes a
/// bundle.  Returns true when a bundle was written.  No-op (false) when
/// disarmed.
bool flight_trigger(FlightTrigger trigger, const char* reason) noexcept;

/// Registers a named bundle section rendered at snapshot time (e.g. the
/// server's /varz text, profile_report() tables, tune plans).  `owner` keys
/// removal: call flight_remove_contexts(owner) before any state the
/// callback captures is destroyed.  Section names become `<section>.txt`
/// in the bundle.  Callbacks run on the triggering thread and must not
/// call back into the flight recorder.
void flight_add_context(const void* owner, std::string section,
                        std::function<std::string()> fn);
void flight_remove_contexts(const void* owner);

/// One decoded recent-event (snapshot order: oldest first).
struct FlightEvent {
  std::uint64_t ticket = 0;  ///< global sequence number (monotonic)
  std::uint64_t ts_ns = 0;   ///< steady_clock, same base as trace events
  std::uint64_t rid = 0;
  std::string kind;
  std::string detail;
};

/// Consistent snapshot of the recent-events ring (skips slots mid-write).
[[nodiscard]] std::vector<FlightEvent> flight_events_snapshot();

/// Events lost to ring-slot contention since flight_start().
[[nodiscard]] std::uint64_t flight_events_dropped();

/// Bundles written / suppressed by rate limiting since flight_start().
[[nodiscard]] std::uint64_t flight_bundles_written();
[[nodiscard]] std::uint64_t flight_bundles_suppressed();

/// One /varz-style block: armed state, dir, bundle + event counters.
[[nodiscard]] std::string flight_status_text();

// ---------------------------------------------------------------------------
// Bundle loader / validator (bitflow_bundle_dump, tests).

inline constexpr int kBundleManifestVersion = 1;

/// FNV-1a 64-bit over `data` — the bundle section checksum.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept;

struct BundleSectionInfo {
  std::string name;       ///< file name within the bundle directory
  std::uint64_t size = 0;
  std::uint64_t fnv1a = 0;
};

struct BundleManifest {
  int version = 0;
  std::uint64_t seq = 0;
  std::string trigger;
  std::string reason;
  std::vector<BundleSectionInfo> sections;
};

struct Bundle {
  BundleManifest manifest;
  std::map<std::string, std::string> sections;  ///< name -> raw contents
};

/// Minimal view of one trace event re-parsed from a bundle's trace.json.
struct ParsedTraceEvent {
  std::string name;
  std::string cat;
  char ph = '?';
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t id = 0;   ///< async pair id (0 = none)
  std::uint64_t rid = 0;  ///< args.rid (0 = none)
};

/// Reads `<dir>/MANIFEST.json` plus every listed section, verifying sizes
/// and FNV-1a checksums.  Fail-closed: any missing/truncated/corrupt piece
/// is kInvalidModel-style kBadInput, never a crash (fuzzed).
[[nodiscard]] core::Result<Bundle> load_bundle(const std::string& dir);

/// Structural validation of a loaded bundle: manifest version, required
/// sections present, trace.json parses with well-nested 'X' spans per
/// thread, metrics.prom parses as Prometheus text.
[[nodiscard]] core::Status validate_bundle(const Bundle& bundle);

/// Parses the bundle's trace.json into events (empty + error status on
/// malformed input).
[[nodiscard]] core::Result<std::vector<ParsedTraceEvent>> parse_bundle_trace(
    const Bundle& bundle);

/// True when the trace holds request `rid`'s wire-to-kernel chain: a
/// "net.request" span, the async "serve.request" pair, a
/// "serve.batch.member" instant, and a kernel-category span on the member's
/// thread overlapping its timestamp.
[[nodiscard]] bool bundle_has_request_chain(const Bundle& bundle, std::uint64_t rid);

/// Human-readable multi-line description (bitflow_bundle_dump output).
[[nodiscard]] std::string bundle_summary(const Bundle& bundle);

}  // namespace bitflow::telemetry
