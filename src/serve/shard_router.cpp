#include "serve/shard_router.hpp"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "core/status.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "serve/error_map.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

namespace {

/// Distinguishes the instruments of concurrently live routers in one scrape.
std::string next_router_label() {
  // Ordering contract: relaxed fetch_add — labels only need uniqueness.
  static std::atomic<std::uint64_t> seq{0};
  return "router=\"" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + "\"";
}

/// Per-thread xorshift64 stream for the two routing probes.  Quality bar is
/// low (uniform-ish shard picks); what matters is no shared mutable state
/// on the submit path.
std::uint64_t next_rand() {
  // Ordering contract: relaxed fetch_add — each thread only needs a seed
  // distinct from other threads'; no other state is published through it.
  static std::atomic<std::uint64_t> seed{0x9e3779b97f4a7c15ull};
  thread_local std::uint64_t state =
      seed.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed) | 1ull;
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Router lifecycle breadcrumb: one trace instant + one flight event (both
/// sinks copy the name; both are lock-free, safe under mu_).
void note_router_state(const char* state_name) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "lifecycle:router-%s", state_name);
  telemetry::trace_instant(buf, "lifecycle");
  telemetry::flight_event("lifecycle", buf + sizeof("lifecycle:") - 1);
}

}  // namespace

struct ShardRouter::Impl {
  RouterConfig cfg;

  // mu_ guards the router's lifecycle state only.  It is a leaf: nothing
  // holding it calls into a shard or the registry's locked API.  The scrape
  // path takes it inside the registry mutex (Registry mu -> mu_, one-way),
  // the same order every engine's gauges already pin (DESIGN.md §7).
  mutable core::Mutex mu_;
  EngineState state_ BF_GUARDED_BY(mu_) = EngineState::kStarting;

  /// outstanding_[s] = requests routed to shard s and not yet resolved —
  /// the depth signal the two routing probes compare.
  // Ordering contract: relaxed everywhere — a routing probe tolerates a
  // stale count (it only skews one placement decision); no other state is
  // published through these counters.
  std::unique_ptr<std::atomic<std::uint64_t>[]> outstanding_;

  const std::string label = next_router_label();  // before the refs: init order
  telemetry::Counter& routed;
  telemetry::Counter& rejected;

  /// Declared after outstanding_ so engines_ is destroyed FIRST: ~Engine
  /// joins its workers, and a worker's last act on a request is the wrapped
  /// completion callback, which still touches outstanding_.
  std::vector<Engine> engines_;

  explicit Impl(RouterConfig c)
      : cfg(c),
        outstanding_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(c.shards)]),
        routed(telemetry::registry().counter("serve.router.routed", label)),
        rejected(telemetry::registry().counter("serve.router.rejected", label)) {
    for (int s = 0; s < c.shards; ++s) {
      outstanding_[s].store(0, std::memory_order_relaxed);
    }
  }

  ~Impl() { telemetry::registry().remove_callbacks(this); }

  /// Registers the per-shard gauges once the engines exist (the callbacks
  /// dereference engines_).  Callbacks run under the registry mutex and
  /// only read a queue size / an atomic — they never re-enter the registry.
  void register_gauges() {
    for (int s = 0; s < cfg.shards; ++s) {
      const std::string shard_label = label + ",shard=\"" + std::to_string(s) + "\"";
      telemetry::registry().add_callback_gauge(
          this, "serve.shard.queue_depth", shard_label,
          [this, s] { return static_cast<double>(engines_[static_cast<std::size_t>(s)].queue_depth()); });
      telemetry::registry().add_callback_gauge(
          this, "serve.shard.in_flight", shard_label, [this, s] {
            // Ordering contract: relaxed — see outstanding_ declaration.
            return static_cast<double>(
                outstanding_[s].load(std::memory_order_relaxed));
          });
    }
    telemetry::registry().add_callback_gauge(this, "serve.router.state", label, [this] {
      core::MutexLock lock(mu_);
      return static_cast<double>(static_cast<int>(state_));
    });
  }

  /// Two distinct uniform probes; route to the shallower.
  int pick_shard() {
    const int n = cfg.shards;
    if (n == 1) return 0;
    const std::uint64_t r = next_rand();
    const int a = static_cast<int>(r % static_cast<std::uint64_t>(n));
    int b = static_cast<int>((r >> 32) % static_cast<std::uint64_t>(n));
    if (b == a) b = (a + 1) % n;
    // Ordering contract: relaxed — see outstanding_ declaration.
    const std::uint64_t da = outstanding_[a].load(std::memory_order_relaxed);
    const std::uint64_t db = outstanding_[b].load(std::memory_order_relaxed);
    return da <= db ? a : b;
  }

  /// The single routing path behind both public submit forms.  `done` must
  /// already be the request's completion channel; every rejection resolves
  /// it inline before returning.
  void route(Tensor input, std::chrono::milliseconds deadline, Priority priority,
             RequestMeta meta, ResponseCallback done) BF_EXCLUDES(mu_) {
    {
      core::MutexLock lock(mu_);
      if (state_ == EngineState::kDraining || state_ == EngineState::kDrained) {
        rejected.add();
        telemetry::flight_event("shed", "router lifecycle gate rejected a request",
                                meta.rid);
        done(Status{ErrorCode::kUnavailable,
                    "submit: router is " + std::string(engine_state_name(state_)) +
                        " and not accepting new requests"});
        return;
      }
    }
    const int s = pick_shard();
    // Count BEFORE the shard submit: the engine may resolve (reject) the
    // request inline, and the wrapped callback's decrement must never run
    // before its increment.
    // Ordering contract: relaxed — see outstanding_ declaration.
    outstanding_[s].fetch_add(1, std::memory_order_relaxed);
    routed.add();
    engines_[static_cast<std::size_t>(s)].submit(
        std::move(input), deadline, priority, meta,
        [this, s, done = std::move(done)](
            core::Result<std::vector<float>>&& outcome) mutable {
          // Ordering contract: relaxed — see outstanding_ declaration.
          outstanding_[s].fetch_sub(1, std::memory_order_relaxed);
          done(std::move(outcome));
        });
  }
};

ShardRouter::ShardRouter(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
ShardRouter::ShardRouter(ShardRouter&&) noexcept = default;
ShardRouter& ShardRouter::operator=(ShardRouter&&) noexcept = default;

ShardRouter::~ShardRouter() {
  if (impl_) shutdown();
}

core::Result<ShardRouter> ShardRouter::create(
    std::shared_ptr<const graph::BinaryNetwork> net, RouterConfig cfg) {
  if (!net) {
    return Status{ErrorCode::kBadInput, "ShardRouter::create: network must be non-null"};
  }
  if (cfg.shards < 1) {
    return Status{ErrorCode::kBadInput, "RouterConfig: shards must be >= 1"};
  }
  auto impl = std::make_unique<Impl>(cfg);
  impl->engines_.reserve(static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s) {
    core::Result<Engine> e = Engine::create(net, cfg.engine);  // shared, not copied
    if (!e.is_ok()) {
      // Already-started shards are shut down by ~Impl -> ~Engine.
      Status st = e.status();
      return Status{st.code(), "shard " + std::to_string(s) + ": " + st.message()};
    }
    impl->engines_.push_back(std::move(e.value()));
  }
  impl->register_gauges();
  {
    core::MutexLock lock(impl->mu_);
    impl->state_ = EngineState::kServing;
  }
  note_router_state("serving");
  return ShardRouter(std::move(impl));
}

core::Result<ShardRouter> ShardRouter::create(const io::Model& model, RouterConfig cfg) {
  try {
    auto net = std::make_shared<const graph::BinaryNetwork>(
        model.instantiate(cfg.engine.net));
    return create(std::move(net), cfg);
  } catch (...) {
    return map_open_error();
  }
}

std::future<core::Result<std::vector<float>>> ShardRouter::submit(
    Tensor input, std::chrono::milliseconds deadline, Priority priority) {
  // std::function requires copyable callables, so the promise rides in a
  // shared_ptr.  (Engine's own future form keeps the promise inside the
  // Request and pays no extra allocation; the router always completes
  // through a callback because of the outstanding_ bookkeeping.)
  auto p = std::make_shared<std::promise<core::Result<std::vector<float>>>>();
  std::future<core::Result<std::vector<float>>> fut = p->get_future();
  impl_->route(std::move(input), deadline, priority, RequestMeta{},
               [p = std::move(p)](core::Result<std::vector<float>>&& outcome) {
                 p->set_value(std::move(outcome));
               });
  return fut;
}

void ShardRouter::submit(Tensor input, std::chrono::milliseconds deadline,
                         Priority priority, ResponseCallback done) {
  impl_->route(std::move(input), deadline, priority, RequestMeta{}, std::move(done));
}

void ShardRouter::submit(Tensor input, std::chrono::milliseconds deadline,
                         Priority priority, RequestMeta meta, ResponseCallback done) {
  impl_->route(std::move(input), deadline, priority, meta, std::move(done));
}

core::Result<std::vector<float>> ShardRouter::infer(Tensor input) {
  return submit(std::move(input), std::chrono::milliseconds{0}, Priority::kNormal).get();
}

core::Status ShardRouter::drain(std::chrono::milliseconds timeout) {
  Impl& im = *impl_;
  {
    core::MutexLock lock(im.mu_);
    if (im.state_ == EngineState::kDrained) return Status::ok();  // idempotent
    if (im.state_ != EngineState::kServing) {
      return Status{ErrorCode::kUnavailable,
                    "drain: router is " + std::string(engine_state_name(im.state_)) +
                        "; only a serving router can start a drain"};
    }
    im.state_ = EngineState::kDraining;
  }
  note_router_state("draining");
  // Parallel fan-out: each shard's drain blocks up to `timeout` before
  // escalating, so sequential drains would stack timeouts (N x timeout
  // worst case) — concurrent ones bound tier drain by the slowest shard.
  const std::size_t n = im.engines_.size();
  std::vector<Status> shard_status(n, Status::ok());
  std::vector<std::thread> waiters;
  waiters.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    waiters.emplace_back([&im, &shard_status, s, timeout] {
      shard_status[s] = im.engines_[s].drain(timeout);
    });
  }
  for (std::thread& t : waiters) t.join();
  {
    core::MutexLock lock(im.mu_);
    im.state_ = EngineState::kDrained;
  }
  note_router_state("drained");
  for (std::size_t s = 0; s < n; ++s) {
    if (!shard_status[s].is_ok()) {
      return Status{shard_status[s].code(),
                    "shard " + std::to_string(s) + ": " + shard_status[s].message()};
    }
  }
  return Status::ok();
}

core::Status ShardRouter::reload(std::shared_ptr<const graph::BinaryNetwork> net) {
  Impl& im = *impl_;
  if (!net) {
    return Status{ErrorCode::kBadInput, "reload: network must be non-null"};
  }
  {
    core::MutexLock lock(im.mu_);
    if (im.state_ != EngineState::kServing) {
      return Status{ErrorCode::kUnavailable,
                    "reload: router is " + std::string(engine_state_name(im.state_)) +
                        "; only a serving router can reload"};
    }
    im.state_ = EngineState::kReloading;  // admission continues in this state
  }
  note_router_state("reloading");
  // Fail the whole swap up front on a shape mismatch instead of relying on
  // every shard rejecting it individually (they would — identically).
  Status result = Status::ok();
  if (net->input_desc() != im.engines_.front().input_desc() ||
      net->output_size() != im.engines_.front().output_size()) {
    result = Status{ErrorCode::kInvalidModel,
                    "reload: replacement network shape differs from the serving one "
                    "(input/output shapes must be stable across reloads)"};
  } else {
    for (std::size_t s = 0; s < im.engines_.size(); ++s) {
      Status st = im.engines_[s].reload(net);  // shared: no copy per shard
      if (!st.is_ok()) {
        result = Status{st.code(), "shard " + std::to_string(s) + ": " + st.message()};
        break;  // already-swapped shards keep the new generation; retry converges
      }
    }
  }
  {
    core::MutexLock lock(im.mu_);
    im.state_ = EngineState::kServing;
  }
  note_router_state("serving");
  return result;
}

core::Status ShardRouter::reload(const io::Model& model) {
  try {
    // Instantiate ONCE for the whole tier — the per-shard fan-out shares
    // the pointer, preserving zero-copy across reload generations.
    auto net = std::make_shared<const graph::BinaryNetwork>(
        model.instantiate(impl_->cfg.engine.net));
    return reload(std::move(net));
  } catch (...) {
    return map_open_error();
  }
}

void ShardRouter::shutdown() {
  for (Engine& e : impl_->engines_) e.shutdown();
}

RouterStats ShardRouter::stats() const {
  const Impl& im = *impl_;
  RouterStats s;
  s.routed = im.routed.value();
  s.rejected = im.rejected.value();
  {
    core::MutexLock lock(im.mu_);
    s.state = im.state_;
  }
  s.shards.resize(im.engines_.size());
  for (std::size_t i = 0; i < im.engines_.size(); ++i) {
    s.shards[i].queue_depth = im.engines_[i].queue_depth();
    // Ordering contract: relaxed — see outstanding_ declaration.
    s.shards[i].outstanding = static_cast<std::size_t>(
        im.outstanding_[i].load(std::memory_order_relaxed));
    s.shards[i].state = im.engines_[i].state();
  }
  return s;
}

EngineState ShardRouter::state() const {
  core::MutexLock lock(impl_->mu_);
  return impl_->state_;
}

int ShardRouter::shards() const noexcept { return impl_->cfg.shards; }

Engine& ShardRouter::shard(int i) { return impl_->engines_[static_cast<std::size_t>(i)]; }

std::shared_ptr<const graph::BinaryNetwork> ShardRouter::network() const {
  return impl_->engines_.front().network();
}

graph::TensorDesc ShardRouter::input_desc() const {
  return impl_->engines_.front().input_desc();
}

std::int64_t ShardRouter::output_size() const {
  return impl_->engines_.front().output_size();
}

std::string plan_varz_text(const ShardRouter& router) {
  const std::shared_ptr<const graph::BinaryNetwork> net = router.network();
  if (net == nullptr) return {};
  std::string out;
  for (const auto& l : net->layers()) {
    if (l.kind != graph::LayerKind::kConv && l.kind != graph::LayerKind::kFc) continue;
    out += "layer." + l.name + ".plan isa=" + std::string(simd::isa_name(l.isa)) +
           " tile=" + std::to_string(l.tile) + " grain=" + std::to_string(l.par_grain) +
           " source=" + l.tune_source + "\n";
  }
  return out;
}

std::string profile_varz_text(const ShardRouter& router) {
  const std::shared_ptr<const graph::BinaryNetwork> net = router.network();
  if (net == nullptr) return {};
  std::string out;
  char buf[192];
  for (const auto& r : net->profile_report().rows) {
    if (r.calls == 0) continue;  // never profiled: nothing to attribute
    std::snprintf(buf, sizeof buf,
                  "layer.%s.perf gops=%.1f roof_gops=%.1f ait=%.1f ipc=%.2f "
                  "llc_mpki=%.2f source=%s\n",
                  r.name.c_str(), r.gops, r.roof_gops, r.ait, r.ipc, r.llc_mpki,
                  r.perf_source.c_str());
    out += buf;
  }
  return out;
}

}  // namespace bitflow::serve
