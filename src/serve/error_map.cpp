#include "serve/error_map.hpp"

#include <new>
#include <stdexcept>

#include "core/cancel.hpp"
#include "core/failpoint.hpp"
#include "runtime/thread_pool.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

ErrorCode code_for_failpoint(std::string_view point) {
  if (point.starts_with("io.")) return ErrorCode::kInvalidModel;
  if (point.starts_with("alloc.")) return ErrorCode::kResourceExhausted;
  if (point.starts_with("runtime.")) return ErrorCode::kWorkerFailure;
  // serve.queue_admit and serve.shed model admission rejection, not an
  // internal bug; serve.cancel_checkpoint models a cooperative cancellation;
  // serve.drain models a lifecycle refusal.
  if (point == "serve.queue_admit" || point == "serve.shed") {
    return ErrorCode::kResourceExhausted;
  }
  if (point == "serve.cancel_checkpoint") return ErrorCode::kCancelled;
  if (point == "serve.drain") return ErrorCode::kUnavailable;
  // net.accept models the front-end refusing a connection (the peer sees a
  // closed socket, an orchestrator sees kUnavailable); net.frame_decode
  // models a malformed frame — the same fail-closed kBadInput a real codec
  // violation produces.
  if (point == "net.accept") return ErrorCode::kUnavailable;
  if (point == "net.frame_decode") return ErrorCode::kBadInput;
  return ErrorCode::kInternal;
}

Status map_open_error() {
  try {
    throw;
  } catch (const failpoint::FaultInjected& e) {
    return {code_for_failpoint(e.point()), e.what()};
  } catch (const std::bad_alloc&) {
    return {ErrorCode::kResourceExhausted, "allocation failed while loading the model"};
  } catch (const runtime::WorkerFailure& e) {
    return {ErrorCode::kWorkerFailure, e.what()};
  } catch (const std::exception& e) {
    // Loader errors are runtime_error; graph validation rejects a
    // malformed layer chain with invalid_argument/logic_error.  Either
    // way the model, not the caller's request, is at fault.
    return {ErrorCode::kInvalidModel, e.what()};
  } catch (...) {
    return {ErrorCode::kInternal, "unknown exception while loading the model"};
  }
}

Status map_infer_error() {
  try {
    throw;
  } catch (const core::CancelledError& e) {
    // Cooperative checkpoint fired mid-inference: a lapsed deadline keeps
    // the deadline vocabulary; an explicit cancel (drain) maps to kCancelled.
    return {e.reason() == core::CancelReason::kDeadline ? ErrorCode::kDeadlineExceeded
                                                        : ErrorCode::kCancelled,
            e.what()};
  } catch (const failpoint::FaultInjected& e) {
    return {code_for_failpoint(e.point()), e.what()};
  } catch (const runtime::WorkerFailure& e) {
    return {ErrorCode::kWorkerFailure, e.what()};
  } catch (const std::bad_alloc&) {
    return {ErrorCode::kResourceExhausted, "allocation failed during inference"};
  } catch (const std::invalid_argument& e) {
    return {ErrorCode::kBadInput, e.what()};
  } catch (const std::exception& e) {
    return {ErrorCode::kInternal, e.what()};
  } catch (...) {
    return {ErrorCode::kInternal, "unknown exception during inference"};
  }
}

}  // namespace bitflow::serve
