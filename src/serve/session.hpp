// Recoverable serving boundary around Model::load + BinaryNetwork.
//
// Everything inside the engine reports failure by exception (and contract
// violations abort via BF_CHECK); everything outside this facade sees a
// core::Status instead.  An InferenceSession owns one finalized network and
// guarantees:
//
//   * open()/from_model() never throw for malformed files, overlong
//     payloads, allocation failure or unsupported ISA caps — they return a
//     Result carrying the mapped error code;
//   * infer() never throws for bad inputs, worker failures, allocation
//     failure or injected faults — it returns a Status, and a failed
//     request leaves the session fully usable for the next one (the
//     pre-allocated buffers are written before they are read, so a request
//     abandoned mid-flight cannot poison its successor);
//   * with a deadline configured, a slow or wedged inference degrades to
//     kDeadlineExceeded through *cooperative cancellation* (core/cancel.hpp):
//     the request runs inline under a CancelToken armed with the end-to-end
//     deadline, and the network aborts at its next layer-boundary checkpoint
//     once the deadline lapses — no watchdog thread, no straggler, and the
//     session is immediately ready for the next request.  The bound is
//     cooperative: a worker wedged *inside* one kernel chunk delays the
//     abort until that chunk returns (the serve::Engine shares exactly the
//     same semantics).
//
// Exception → Status mapping (see session.cpp): std::bad_alloc →
// kResourceExhausted; runtime::WorkerFailure → kWorkerFailure;
// failpoint::FaultInjected → by subsystem prefix of the failpoint name;
// std::invalid_argument → kBadInput (infer) / kInvalidModel (open);
// any other std::exception → kInternal.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "graph/network.hpp"
#include "io/model.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// Configuration of one serving session.
struct SessionConfig {
  graph::NetworkConfig net{};
  /// End-to-end wall-clock budget for one infer() call; zero = no deadline.
  /// Enforced by cooperative cancellation checkpoints (same vocabulary as
  /// serve::EngineConfig::default_deadline — one deadline means one thing
  /// everywhere: the whole request, not a single phase of it).
  std::chrono::milliseconds deadline{0};
};

/// One loaded, finalized network behind a Status-returning API.
/// Move-only; not thread-safe (one session per serving thread — sessions
/// share nothing mutable, so scaling out is one session per core).
class InferenceSession {
 public:
  /// Loads a .bflow file and builds the inference network.
  [[nodiscard]] static core::Result<InferenceSession> open(const std::string& path,
                                                           SessionConfig cfg = {});
  /// Same, from an already-open stream.
  [[nodiscard]] static core::Result<InferenceSession> open(std::istream& is,
                                                           SessionConfig cfg = {});
  /// Builds the network from an in-memory model description.
  [[nodiscard]] static core::Result<InferenceSession> from_model(const io::Model& model,
                                                                 SessionConfig cfg = {});

  InferenceSession(InferenceSession&&) noexcept;
  InferenceSession& operator=(InferenceSession&&) noexcept;
  ~InferenceSession();

  /// Runs one batch-1 inference.  On success, `scores` holds the last
  /// layer's float outputs.  On failure, `scores` is untouched and the
  /// session remains usable.
  [[nodiscard]] core::Status infer(const Tensor& input_hwc, std::vector<float>& scores);

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] graph::TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;
  [[nodiscard]] const std::vector<graph::LayerInfo>& layers() const;
  /// Requests that returned OK / non-OK since the session was opened.
  [[nodiscard]] std::uint64_t ok_count() const noexcept;
  [[nodiscard]] std::uint64_t error_count() const noexcept;

 private:
  struct Impl;
  explicit InferenceSession(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::serve
