#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace bitflow::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("RequestQueue: capacity must be >= 1");
}

bool RequestQueue::try_push(Request& r) {
  {
    core::MutexLock lock(mu_);
    std::deque<Request>& lane = r.priority == Priority::kHigh ? hq_ : q_;
    if (closed_ || lane.size() >= capacity_) return false;
    lane.push_back(std::move(r));
  }
  ready_.notify_one();
  return true;
}

Request RequestQueue::pop_front_locked() {
  std::deque<Request>& lane = hq_.empty() ? q_ : hq_;
  Request r = std::move(lane.front());
  lane.pop_front();
  return r;
}

std::optional<Request> RequestQueue::pop() {
  core::MutexLock lock(mu_);
  while (!closed_ && hq_.empty() && q_.empty()) ready_.wait(lock);
  if (hq_.empty() && q_.empty()) return std::nullopt;  // closed and drained
  return pop_front_locked();
}

std::optional<Request> RequestQueue::pop_until(std::chrono::steady_clock::time_point tp) {
  core::MutexLock lock(mu_);
  while (!closed_ && hq_.empty() && q_.empty()) {
    if (ready_.wait_until(lock, tp) == std::cv_status::timeout) break;
  }
  // Timeout with nothing queued, or closed and drained.
  if (hq_.empty() && q_.empty()) return std::nullopt;
  return pop_front_locked();
}

std::optional<Request> RequestQueue::try_pop() {
  core::MutexLock lock(mu_);
  if (hq_.empty() && q_.empty()) return std::nullopt;
  return pop_front_locked();
}

void RequestQueue::close() {
  {
    core::MutexLock lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool RequestQueue::closed() const {
  core::MutexLock lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  core::MutexLock lock(mu_);
  return hq_.size() + q_.size();
}

std::size_t RequestQueue::normal_size() const {
  core::MutexLock lock(mu_);
  return q_.size();
}

}  // namespace bitflow::serve
