#include "serve/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/failpoint.hpp"
#include "serve/batcher.hpp"
#include "serve/error_map.hpp"
#include "serve/request_queue.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

namespace {

/// Log-bucketed latency histogram: bucket i counts samples whose
/// microsecond value has bit width i, i.e. us in [2^(i-1), 2^i).  Quantiles
/// report the upper bucket bound — coarse but allocation-free and
/// mergeable, which is what a per-engine counter needs.
constexpr std::size_t kLatBuckets = 40;  // 2^39 us ≈ 6.4 days

std::size_t bucket_for_us(std::uint64_t us) {
  return std::min<std::size_t>(std::bit_width(us), kLatBuckets - 1);
}

double bucket_upper_ms(std::size_t bucket) {
  return static_cast<double>(std::uint64_t{1} << bucket) / 1000.0;
}

double quantile_ms(const std::array<std::uint64_t, kLatBuckets>& hist, std::uint64_t total,
                   double q) {
  if (total == 0) return 0.0;
  const std::uint64_t want = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    cum += hist[i];
    if (cum >= want) return bucket_upper_ms(i);
  }
  return bucket_upper_ms(kLatBuckets - 1);
}

}  // namespace

struct Engine::Impl {
  EngineConfig cfg;
  graph::BinaryNetwork net;
  RequestQueue queue;
  std::vector<std::thread> threads;
  std::atomic<bool> stopping{false};
  std::once_flag shutdown_once;

  // Counters: monotonically increasing, relaxed — they order nothing.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> batches{0};

  // Histograms share one mutex; they are touched once per batch / request
  // completion, far off the kernel hot path.
  mutable std::mutex hist_mu;
  std::vector<std::uint64_t> batch_hist;  // size max_batch + 1
  std::array<std::uint64_t, kLatBuckets> lat_hist{};
  std::uint64_t lat_count = 0;

  Impl(EngineConfig c, graph::BinaryNetwork n)
      : cfg(c),
        net(std::move(n)),
        queue(c.queue_capacity),
        batch_hist(static_cast<std::size_t>(c.max_batch) + 1, 0) {}

  void resolve_ok(Request& r, const float* scores, std::int64_t count) {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - r.enqueue_time).count());
    // Count before fulfilling the promise: a caller that has observed its
    // result must find the request reflected in stats().
    completed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(hist_mu);
      lat_hist[bucket_for_us(us)] += 1;
      lat_count += 1;
    }
    r.promise.set_value(std::vector<float>(scores, scores + count));
  }

  void resolve_error(Request& r, Status st) {
    failed.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(std::move(st));
  }

  void resolve_expired(Request& r) {
    expired.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(Status{
        ErrorCode::kDeadlineExceeded,
        "request expired after waiting in queue beyond its deadline"});
  }

  /// Worker thread body: replicated context + batcher loop.  Exits when the
  /// queue is closed and drained; every popped request's promise resolves.
  void worker_main() {
    graph::InferenceContext ctx = net.make_context(cfg.max_batch, cfg.net.num_threads);
    Batcher batcher(queue, BatcherConfig{cfg.max_batch, cfg.batch_timeout});
    const std::int64_t out_size = net.output_size();
    std::vector<Request> batch, lapsed;
    std::vector<const Tensor*> inputs;
    inputs.reserve(static_cast<std::size_t>(cfg.max_batch));

    while (batcher.next_batch(batch, lapsed)) {
      for (Request& r : lapsed) resolve_expired(r);
      if (batch.empty()) continue;

      const std::int64_t n = static_cast<std::int64_t>(batch.size());
      inputs.clear();
      for (const Request& r : batch) inputs.push_back(&r.input);
      batches.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(hist_mu);
        batch_hist[static_cast<std::size_t>(n)] += 1;
      }

      try {
        BF_FAILPOINT("serve.infer");
        const std::span<const float> scores = net.infer_batch(inputs, ctx);
        for (std::int64_t b = 0; b < n; ++b) {
          resolve_ok(batch[static_cast<std::size_t>(b)], scores.data() + b * out_size,
                     out_size);
        }
      } catch (...) {
        // Exception firewall: the batch is poisoned, but which member is at
        // fault?  Rerun each alone so only the faulty request fails and the
        // rest still get scores; the worker keeps serving either way.
        for (Request& r : batch) {
          try {
            BF_FAILPOINT("serve.infer");
            const Tensor* one = &r.input;
            const std::span<const float> scores = net.infer_batch({&one, 1}, ctx);
            resolve_ok(r, scores.data(), out_size);
          } catch (...) {
            resolve_error(r, map_infer_error());
          }
        }
      }
    }
  }
};

Engine::Engine(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Engine::~Engine() {
  if (impl_) shutdown();
}

core::Result<Engine> Engine::create(const io::Model& model, EngineConfig cfg) {
  if (cfg.workers < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: workers must be >= 1"};
  }
  if (cfg.max_batch < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: max_batch must be >= 1"};
  }
  if (cfg.queue_capacity < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: queue_capacity must be >= 1"};
  }
  if (cfg.net.num_threads < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: net.num_threads must be >= 1"};
  }
  if (cfg.net.max_isa.has_value() && !simd::cpu_features().supports(*cfg.net.max_isa)) {
    return Status{ErrorCode::kUnsupportedIsa,
                  "requested max_isa " + std::string(simd::isa_name(*cfg.net.max_isa)) +
                      " is not executable on this CPU"};
  }
  try {
    graph::BinaryNetwork net = model.instantiate(cfg.net);
    auto impl = std::make_unique<Impl>(cfg, std::move(net));
    // Contexts are created inside each worker thread (first thing it does),
    // so their allocation cost is paid off the caller's critical path.
    impl->threads.reserve(static_cast<std::size_t>(cfg.workers));
    Impl* ip = impl.get();  // Impl address is stable across Engine moves
    for (int w = 0; w < cfg.workers; ++w) {
      impl->threads.emplace_back([ip] { ip->worker_main(); });
    }
    return Engine(std::move(impl));
  } catch (...) {
    return map_open_error();
  }
}

core::Result<Engine> Engine::open(const std::string& path, EngineConfig cfg) {
  try {
    const io::Model model = io::Model::load(path);
    return create(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

std::future<core::Result<std::vector<float>>> Engine::submit(Tensor input) {
  return submit(std::move(input), impl_->cfg.default_deadline);
}

std::future<core::Result<std::vector<float>>> Engine::submit(
    Tensor input, std::chrono::milliseconds deadline) {
  Impl& im = *impl_;
  Request r;
  r.input = std::move(input);
  std::future<core::Result<std::vector<float>>> fut = r.promise.get_future();

  // Validate before admission: a shape mismatch is the caller's fault and
  // must not consume queue capacity.
  const graph::TensorDesc want = im.net.input_desc();
  if (r.input.height() != want.h || r.input.width() != want.w ||
      r.input.channels() != want.c) {
    im.rejected.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(Status{
        ErrorCode::kBadInput,
        "submit: input is " + std::to_string(r.input.height()) + "x" +
            std::to_string(r.input.width()) + "x" + std::to_string(r.input.channels()) +
            ", network wants " + std::to_string(want.h) + "x" + std::to_string(want.w) + "x" +
            std::to_string(want.c)});
    return fut;
  }

  // Admission-control failpoint: an injected fault here models the queue
  // refusing the request (kResourceExhausted via the serve.queue_admit
  // mapping), exercising callers' rejection handling.
  try {
    BF_FAILPOINT("serve.queue_admit");
  } catch (...) {
    im.rejected.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(map_infer_error());
    return fut;
  }

  r.enqueue_time = std::chrono::steady_clock::now();
  if (deadline.count() > 0) r.deadline = r.enqueue_time + deadline;

  if (!im.queue.try_push(r)) {
    im.rejected.fetch_add(1, std::memory_order_relaxed);
    r.promise.set_value(Status{
        ErrorCode::kResourceExhausted,
        im.queue.closed()
            ? std::string("submit: engine is shut down")
            : "submit: queue full (capacity " + std::to_string(im.queue.capacity()) + ")"});
    return fut;
  }
  im.accepted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

core::Result<std::vector<float>> Engine::infer(Tensor input) {
  return submit(std::move(input)).get();
}

void Engine::shutdown() {
  Impl& im = *impl_;
  std::call_once(im.shutdown_once, [&im] {
    im.stopping.store(true, std::memory_order_relaxed);
    im.queue.close();
    for (std::thread& t : im.threads) {
      if (t.joinable()) t.join();
    }
  });
}

EngineStats Engine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.rejected = im.rejected.load(std::memory_order_relaxed);
  s.expired = im.expired.load(std::memory_order_relaxed);
  s.completed = im.completed.load(std::memory_order_relaxed);
  s.failed = im.failed.load(std::memory_order_relaxed);
  s.batches = im.batches.load(std::memory_order_relaxed);
  s.queue_depth = im.queue.size();
  std::lock_guard<std::mutex> lock(im.hist_mu);
  s.batch_size_hist = im.batch_hist;
  s.latency_p50_ms = quantile_ms(im.lat_hist, im.lat_count, 0.50);
  s.latency_p99_ms = quantile_ms(im.lat_hist, im.lat_count, 0.99);
  return s;
}

graph::TensorDesc Engine::input_desc() const { return impl_->net.input_desc(); }
std::int64_t Engine::output_size() const { return impl_->net.output_size(); }
const std::vector<graph::LayerInfo>& Engine::layers() const { return impl_->net.layers(); }
int Engine::workers() const noexcept { return impl_->cfg.workers; }
std::int64_t Engine::max_batch() const noexcept { return impl_->cfg.max_batch; }

}  // namespace bitflow::serve
