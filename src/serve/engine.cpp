#include "serve/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/cancel.hpp"
#include "core/failpoint.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "serve/batcher.hpp"
#include "serve/error_map.hpp"
#include "serve/request_queue.hpp"
#include "simd/cpu_features.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

const char* engine_state_name(EngineState s) noexcept {
  switch (s) {
    case EngineState::kStarting: return "starting";
    case EngineState::kServing: return "serving";
    case EngineState::kReloading: return "reloading";
    case EngineState::kDraining: return "draining";
    case EngineState::kDrained: return "drained";
  }
  return "unknown";
}

namespace {

/// Latency quantile with the engine's historical convention: the registry
/// histogram buckets microsecond latencies by bit width, and the reported
/// quantile is the *power-of-two* upper bound of the quantile bucket
/// (2^i us), converted to ms.  Keeping this convention makes the registry
/// migration invisible to stats() consumers (sub-us samples still report a
/// strictly positive p50).
double quantile_ms(const telemetry::Histogram::Snapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const std::uint64_t want =
      static_cast<std::uint64_t>(q * static_cast<double>(h.count - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cum += h.buckets[i];
    if (cum >= want) return std::ldexp(1.0, static_cast<int>(i)) / 1000.0;
  }
  return std::ldexp(1.0, static_cast<int>(h.buckets.size()) - 1) / 1000.0;
}

/// Distinguishes the instruments of concurrently live engines in one scrape.
std::string next_engine_label() {
  // Ordering contract: relaxed fetch_add — labels only need uniqueness.
  static std::atomic<std::uint64_t> seq{0};
  return "engine=\"" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + "\"";
}

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

/// Lifecycle transition breadcrumb: one trace instant + one flight event.
/// Both sinks copy the name, and both are lock-free, so this is safe from
/// any engine path (including under mu_).
void note_state(const char* state_name) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "lifecycle:%s", state_name);
  telemetry::trace_instant(buf, "lifecycle");
  telemetry::flight_event("lifecycle", state_name);
}

}  // namespace

struct Engine::Impl {
  EngineConfig cfg;
  RequestQueue queue;
  std::vector<std::thread> threads;
  std::once_flag shutdown_once;

  // --- lifecycle state -------------------------------------------------------
  // mu_ guards the lifecycle: state machine, generation pointer, in-flight
  // accounting, per-worker batch tokens, and the breaker census.  It is never
  // held across inference, a context (re)build, or a queue operation —
  // RequestQueue's internal mutex and mu_ stay independent leaves.  Lock
  // order with telemetry: the callback gauges below take mu_ inside the
  // registry mutex at scrape time (Registry mu -> mu_, one-way); nothing
  // holding mu_ may call the registry's locked API (DESIGN.md §7).
  mutable core::Mutex mu_;
  EngineState state_ BF_GUARDED_BY(mu_) = EngineState::kStarting;
  bool closing_ BF_GUARDED_BY(mu_) = false;     // shutdown() entered
  bool drain_hard_ BF_GUARDED_BY(mu_) = false;  // drain timeout: cancel the rest
  /// Admitted-but-unresolved requests; idle_cv_ signals the drop to zero.
  std::size_t in_flight_ BF_GUARDED_BY(mu_) = 0;
  core::CondVar idle_cv_;
  /// Wakes quarantined workers early (shutdown or drain escalation).
  core::CondVar state_cv_;
  /// The served network generation.  Workers hold their own shared_ptr while
  /// executing, so retiring a generation never invalidates a running batch.
  std::shared_ptr<const graph::BinaryNetwork> net_ BF_GUARDED_BY(mu_);
  std::uint64_t net_gen_ BF_GUARDED_BY(mu_) = 1;
  /// batch_tokens_[w] = cancel token of worker w's in-progress batch (inert
  /// when the worker is between batches); drain() escalation cancels them.
  std::vector<core::CancelToken> batch_tokens_ BF_GUARDED_BY(mu_);
  int quarantined_ BF_GUARDED_BY(mu_) = 0;

  /// Reload keeps these invariant (validated), so admission reads them
  /// without touching the generation pointer.
  const graph::TensorDesc in_desc_;
  const std::int64_t out_size_;

  /// EWMA of per-request service time (batch wall clock / batch size), the
  /// numerator of the admission-time queue-delay estimate.
  // Ordering contract: relaxed loads/stores everywhere — this is a heuristic
  // shared between workers (writers) and submitters (readers); a lost
  // racing update merely delays convergence by one batch, and no other
  // state is published through it.
  std::atomic<std::uint64_t> ewma_request_ns_{0};

  // All counters and histograms live in the process-wide telemetry registry,
  // labeled per engine: stats() reconstructs this engine's view from its own
  // instruments while one Prometheus scrape sees every engine at once.
  const std::string label = next_engine_label();  // before the refs: init order
  telemetry::Counter& accepted;
  telemetry::Counter& rejected;
  telemetry::Counter& shed;
  telemetry::Counter& expired;
  telemetry::Counter& completed;
  telemetry::Counter& failed;
  telemetry::Counter& cancelled;
  telemetry::Counter& batches;
  telemetry::Counter& batch_images;    // occupancy numerator
  telemetry::Counter& queue_overflow;  // full-queue rejections specifically
  telemetry::Counter& drains;
  telemetry::Counter& reloads;
  telemetry::Counter& quarantines;
  telemetry::Histogram& batch_size_hist;  // linear: exact counts for 0..max_batch
  telemetry::Histogram& latency_us_hist;  // log2 microseconds

  Impl(EngineConfig c, std::shared_ptr<const graph::BinaryNetwork> n)
      : cfg(c),
        queue(c.queue_capacity),
        net_(std::move(n)),
        in_desc_(net_->input_desc()),
        out_size_(net_->output_size()),
        accepted(telemetry::registry().counter("serve.requests.accepted", label)),
        rejected(telemetry::registry().counter("serve.requests.rejected", label)),
        shed(telemetry::registry().counter("serve.requests.shed", label)),
        expired(telemetry::registry().counter("serve.requests.expired", label)),
        completed(telemetry::registry().counter("serve.requests.completed", label)),
        failed(telemetry::registry().counter("serve.requests.failed", label)),
        cancelled(telemetry::registry().counter("serve.requests.cancelled", label)),
        batches(telemetry::registry().counter("serve.batches", label)),
        batch_images(telemetry::registry().counter("serve.batch.images", label)),
        queue_overflow(telemetry::registry().counter("serve.queue.overflow", label)),
        drains(telemetry::registry().counter("serve.drains", label)),
        reloads(telemetry::registry().counter("serve.reloads", label)),
        quarantines(telemetry::registry().counter("serve.worker.quarantines", label)),
        batch_size_hist(
            telemetry::registry().histogram("serve.batch.size", label, c.max_batch)),
        latency_us_hist(telemetry::registry().histogram("serve.request.latency_us", label)) {
    batch_tokens_.resize(static_cast<std::size_t>(c.workers));
    // Derived state evaluated only at scrape time.  The Impl address is
    // stable across Engine moves, so `this` capture is safe; ~Impl removes
    // the callbacks before the captured members die.
    telemetry::registry().add_callback_gauge(
        this, "serve.queue.depth", label,
        [this] { return static_cast<double>(queue.size()); });
    telemetry::registry().add_callback_gauge(
        this, "serve.batcher.occupancy", label, [this] {
          const double b = static_cast<double>(batches.value());
          if (b == 0.0) return 0.0;
          return static_cast<double>(batch_images.value()) /
                 (b * static_cast<double>(cfg.max_batch));
        });
    telemetry::registry().add_callback_gauge(this, "serve.state", label, [this] {
      core::MutexLock lock(mu_);
      return static_cast<double>(static_cast<int>(state_));
    });
    telemetry::registry().add_callback_gauge(
        this, "serve.requests.in_flight", label, [this] {
          core::MutexLock lock(mu_);
          return static_cast<double>(in_flight_);
        });
    telemetry::registry().add_callback_gauge(
        this, "serve.workers.quarantined", label, [this] {
          core::MutexLock lock(mu_);
          return static_cast<double>(quarantined_);
        });
  }

  ~Impl() { telemetry::registry().remove_callbacks(this); }

  /// Emits the request's cross-thread lifetime (enqueue -> resolution) as an
  /// async trace pair; a "X" span would break well-nesting on the worker's
  /// thread because requests overlap batches.
  void trace_request(const Request& r) {
    if (telemetry::trace_enabled()) [[unlikely]] {
      const std::uint64_t start_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              r.enqueue_time.time_since_epoch())
              .count());
      // The wire request id doubles as the async-pair id so the request's
      // track carries the client's id space; engine-local submits (no rid)
      // get a fresh process-unique id instead.
      const std::uint64_t id =
          r.meta.rid != 0 ? r.meta.rid : telemetry::trace_next_async_id();
      telemetry::trace_async("serve.request", "request", start_ns,
                             telemetry::trace_now_ns(), id, r.meta.rid);
    }
  }

  /// One admitted request fully resolved: drops the in-flight count and, at
  /// zero, wakes drain()/shutdown() waiters.
  void finish_one() BF_EXCLUDES(mu_) {
    core::MutexLock lock(mu_);
    if (in_flight_ > 0 && --in_flight_ == 0) idle_cv_.notify_all();
  }

  /// The single completion point: every outcome flows through here exactly
  /// once, on whichever channel the submitter chose (callback or future).
  /// Callbacks run on the resolving thread and must not throw (contract in
  /// request_queue.hpp); a violation here would unwind a worker, so it is
  /// deliberately not firewalled — it is a caller bug, not an engine fault.
  static void deliver(Request& r, core::Result<std::vector<float>>&& outcome) {
    if (r.done) {
      r.done(std::move(outcome));
    } else {
      r.promise.set_value(std::move(outcome));
    }
  }

  /// Shared admission path behind every public submit overload (future- and
  /// callback-form).  `r` must carry its completion channel already; every
  /// rejection resolves it inline via deliver() before returning.
  void do_submit(Request r, std::chrono::milliseconds deadline) BF_EXCLUDES(mu_);

  /// Shared reload state machine: enter kReloading, obtain the replacement
  /// generation from `build` (which runs off every serving path — workers
  /// keep batching on the old generation meanwhile), validate its shape
  /// against the serving contract, swap under mu_, return to kServing.  On
  /// any failure the old generation keeps serving untouched.
  core::Status reload_with(
      const std::function<
          core::Result<std::shared_ptr<const graph::BinaryNetwork>>()>& build)
      BF_EXCLUDES(mu_) {
    telemetry::TraceSpan span("serve.reload", "serve");
    {
      core::MutexLock lock(mu_);
      if (closing_ || state_ != EngineState::kServing) {
        return Status{ErrorCode::kUnavailable,
                      "reload: engine is " + std::string(engine_state_name(state_)) +
                          (closing_ ? " (shutting down)" : "") +
                          "; only a serving engine can reload"};
      }
      state_ = EngineState::kReloading;  // admission continues in this state
    }
    note_state("reloading");
    Status result = Status::ok();
    core::Result<std::shared_ptr<const graph::BinaryNetwork>> fresh = build();
    if (!fresh.is_ok()) {
      result = fresh.status();
    } else if (fresh.value()->input_desc() != in_desc_ ||
               fresh.value()->output_size() != out_size_) {
      result = Status{
          ErrorCode::kInvalidModel,
          "reload: replacement network shape differs from the serving one "
          "(input/output shapes must be stable across reloads; drain and "
          "start a new engine instead)"};
    } else {
      core::MutexLock lock(mu_);
      net_ = std::move(fresh.value());
      ++net_gen_;
    }
    if (result.is_ok()) {
      reloads.add();
      telemetry::flight_event("reload", "network generation swapped");
    } else {
      telemetry::flight_event("reload", result.message().c_str());
    }
    {
      core::MutexLock lock(mu_);
      state_ = EngineState::kServing;
    }
    note_state("serving");
    return result;
  }

  void resolve_ok(Request& r, const float* scores, std::int64_t count) {
    const auto now = std::chrono::steady_clock::now();
    // The deadline is a contract on the WHOLE request: a member that rode a
    // mixed batch past its own budget (the batch token only trips once
    // every member is over) has scores, but delivering them late would
    // stretch the completed-latency tail unboundedly under overload.  It
    // counts as expired, and the latency histogram only ever sees requests
    // that met their contract.
    if (now > r.deadline) {
      expired.add();
      trace_request(r);
      telemetry::flight_event("deadline", "request completed past its deadline",
                              r.meta.rid);
      telemetry::flight_observe_outcome(/*ok=*/false, /*deadline_breach=*/true);
      deliver(r, Status{ErrorCode::kDeadlineExceeded,
                        "request completed past its deadline"});
      finish_one();
      return;
    }
    const std::uint64_t us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - r.enqueue_time).count());
    // Count before fulfilling the promise: a caller that has observed its
    // result must find the request reflected in stats().
    completed.add();
    latency_us_hist.record(us);
    trace_request(r);
    telemetry::flight_observe_outcome(/*ok=*/true, /*deadline_breach=*/false);
    deliver(r, std::vector<float>(scores, scores + count));
    finish_one();
  }

  void resolve_error(Request& r, Status st) {
    failed.add();
    trace_request(r);
    telemetry::flight_event("error", st.message().c_str(), r.meta.rid);
    telemetry::flight_observe_outcome(/*ok=*/false, /*deadline_breach=*/false);
    deliver(r, std::move(st));
    finish_one();
  }

  void resolve_expired(Request& r) {
    expired.add();
    trace_request(r);
    telemetry::flight_event("deadline", "request expired waiting in queue", r.meta.rid);
    telemetry::flight_observe_outcome(/*ok=*/false, /*deadline_breach=*/true);
    deliver(r, Status{ErrorCode::kDeadlineExceeded,
                      "request expired after waiting in queue beyond its deadline"});
    finish_one();
  }

  void resolve_cancelled(Request& r, const char* why) {
    cancelled.add();
    trace_request(r);
    telemetry::flight_event("cancel", why, r.meta.rid);
    telemetry::flight_observe_outcome(/*ok=*/false, /*deadline_breach=*/false);
    deliver(r, Status{ErrorCode::kCancelled, why});
    finish_one();
  }

  /// A batch abandoned at a cooperative checkpoint: members whose own
  /// deadline has lapsed keep the deadline vocabulary; the rest were
  /// cancelled outright (drain escalation).
  void resolve_abandoned(Request& r) {
    if (r.deadline <= std::chrono::steady_clock::now()) {
      expired.add();
      trace_request(r);
      telemetry::flight_event("deadline", "expired at a mid-inference checkpoint",
                              r.meta.rid);
      telemetry::flight_observe_outcome(/*ok=*/false, /*deadline_breach=*/true);
      deliver(r, Status{ErrorCode::kDeadlineExceeded,
                        "deadline expired at a mid-inference cancellation checkpoint"});
      finish_one();
    } else {
      resolve_cancelled(r, "request cancelled at a cooperative checkpoint (drain)");
    }
  }

  /// Circuit breaker: this worker sits out for breaker_backoff (or until
  /// shutdown/drain escalation), then returns to the batcher loop to
  /// re-probe with real traffic.
  void quarantine() BF_EXCLUDES(mu_) {
    quarantines.add();
    telemetry::trace_instant("quarantine", "lifecycle");
    telemetry::flight_event("quarantine", "worker circuit breaker tripped");
    // Trigger BEFORE taking mu_: bundle context providers may re-enter the
    // engine (stats() under a /varz section takes mu_).
    telemetry::flight_trigger(telemetry::FlightTrigger::kQuarantine,
                              "worker circuit breaker quarantined");
    core::MutexLock lock(mu_);
    ++quarantined_;
    const auto until = std::chrono::steady_clock::now() + cfg.breaker_backoff;
    while (!closing_ && !drain_hard_) {
      if (state_cv_.wait_until(lock, until) == std::cv_status::timeout) break;
    }
    --quarantined_;
  }

  /// Worker thread body: replicated per-generation context + batcher loop.
  /// Exits when the queue is closed and drained; every popped request's
  /// promise resolves.
  void worker_main(int widx) {
    std::shared_ptr<const graph::BinaryNetwork> my_net;
    std::uint64_t my_gen = 0;
    {
      core::MutexLock lock(mu_);
      my_net = net_;
      my_gen = net_gen_;
    }
    // A context build can fail (allocation fault injection, genuine memory
    // pressure): retry — such faults are transient — and bail out only once
    // the engine is shutting down with nothing left to drain.
    std::optional<graph::InferenceContext> ctx;
    while (!ctx.has_value()) {
      try {
        ctx.emplace(my_net->make_context(cfg.max_batch, cfg.net.num_threads));
      } catch (...) {
        // Retrying is right for transient pressure, but a drain escalation
        // must not wait on a worker that cannot build a context: under
        // drain_hard_ this worker could not run anything anyway, so
        // fast-fail whatever is queued (covering requests that slipped in
        // after the drain thread's own queue sweep) so in_flight_ reaches
        // zero and drain() completes.
        bool hard = false;
        {
          core::MutexLock lock(mu_);
          hard = drain_hard_;
        }
        if (hard) {
          while (std::optional<Request> r = queue.try_pop()) {
            if (r->deadline <= std::chrono::steady_clock::now()) {
              resolve_expired(*r);
            } else {
              resolve_cancelled(*r, "request cancelled: engine drained before it could run");
            }
          }
        }
        if (queue.closed() && queue.size() == 0) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    Batcher batcher(queue, BatcherConfig{cfg.max_batch, cfg.batch_timeout});
    std::vector<Request> batch, lapsed;
    std::vector<const Tensor*> inputs;
    inputs.reserve(static_cast<std::size_t>(cfg.max_batch));
    int consecutive_failures = 0;

    while (batcher.next_batch(batch, lapsed)) {
      for (Request& r : lapsed) resolve_expired(r);

      // Generation + drain checks at the batch boundary: one short lock.
      bool hard = false;
      std::shared_ptr<const graph::BinaryNetwork> fresh;
      std::uint64_t fresh_gen = 0;
      {
        core::MutexLock lock(mu_);
        hard = drain_hard_;
        if (net_gen_ != my_gen) {
          fresh = net_;
          fresh_gen = net_gen_;
        }
      }
      if (fresh) {
        try {
          // Build the new generation's context BEFORE retiring the old one:
          // if the build fails (allocation fault), this worker keeps serving
          // the previous generation and retries at the next batch boundary.
          graph::InferenceContext next_ctx =
              fresh->make_context(cfg.max_batch, cfg.net.num_threads);
          ctx.reset();  // old context must not outlive its network below
          ctx.emplace(std::move(next_ctx));
          my_net = std::move(fresh);
          my_gen = fresh_gen;
        } catch (...) {
          // Transient: stay on the old generation, retry next batch.
        }
      }
      if (batch.empty()) continue;
      if (hard) {
        for (Request& r : batch) {
          resolve_cancelled(r, "request cancelled: engine drained before it could run");
        }
        continue;
      }

      // The batch runs under one token armed with the LATEST member
      // deadline: the batch aborts only once every member's budget is gone
      // (any member without a deadline keeps the token deadline-free; drain
      // escalation can still cancel it explicitly).
      auto latest = std::chrono::steady_clock::time_point::min();
      bool unbounded = false;
      for (const Request& r : batch) {
        if (r.deadline == kNoDeadline) {
          unbounded = true;
        } else {
          latest = std::max(latest, r.deadline);
        }
      }
      const core::CancelToken token =
          unbounded ? core::CancelToken::cancellable()
                    : core::CancelToken::with_deadline(latest);
      {
        core::MutexLock lock(mu_);
        batch_tokens_[static_cast<std::size_t>(widx)] = token;
        // Drain may have escalated between the pop and this registration;
        // cancelling here (instead of re-classifying) keeps one code path.
        if (drain_hard_) token.cancel();
      }

      const std::int64_t n = static_cast<std::int64_t>(batch.size());
      inputs.clear();
      for (const Request& r : batch) inputs.push_back(&r.input);
      batches.add();
      batch_images.add(static_cast<std::uint64_t>(n));
      batch_size_hist.record(static_cast<std::uint64_t>(n));
      const auto t0 = std::chrono::steady_clock::now();
      bool worker_failed = false;
      {
        telemetry::TraceSpan batch_span("serve.batch", "serve", n);
        // Batch membership instants inside the batch span: each carries the
        // member's rid, joining the wire request to THIS worker's layer and
        // kernel spans below it.
        if (telemetry::trace_enabled()) [[unlikely]] {
          for (const Request& r : batch) {
            telemetry::trace_instant("serve.batch.member", "serve", r.meta.rid);
          }
        }
        try {
          BF_FAILPOINT("serve.infer");
          const std::span<const float> scores = my_net->infer_batch(inputs, *ctx, token);
          for (std::int64_t b = 0; b < n; ++b) {
            resolve_ok(batch[static_cast<std::size_t>(b)], scores.data() + b * out_size_,
                       out_size_);
          }
        } catch (const core::CancelledError&) {
          // The whole batch stopped at a checkpoint; no rerun — the members
          // are expired or cancelled, not poisoned.
          for (Request& r : batch) resolve_abandoned(r);
        } catch (...) {
          // Exception firewall: the batch is poisoned, but which member is
          // at fault?  Rerun each alone so only the faulty request fails and
          // the rest still get scores; the worker keeps serving either way.
          for (Request& r : batch) {
            try {
              BF_FAILPOINT("serve.infer");
              const Tensor* one = &r.input;
              const std::span<const float> scores =
                  my_net->infer_batch({&one, 1}, *ctx, token);
              resolve_ok(r, scores.data(), out_size_);
            } catch (const core::CancelledError&) {
              resolve_abandoned(r);
            } catch (...) {
              Status st = map_infer_error();
              if (st.code() == ErrorCode::kWorkerFailure) worker_failed = true;
              resolve_error(r, std::move(st));
            }
          }
        }
      }
      {
        core::MutexLock lock(mu_);
        batch_tokens_[static_cast<std::size_t>(widx)] = core::CancelToken{};
      }

      // Feed the admission-control estimate: per-request service time EWMA
      // (alpha = 1/4) over this batch.
      const std::int64_t wall_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const std::int64_t sample = wall_ns / n;
      // Ordering contract: relaxed — see ewma_request_ns_ declaration.
      const std::int64_t prev = static_cast<std::int64_t>(
          ewma_request_ns_.load(std::memory_order_relaxed));
      const std::int64_t next = prev == 0 ? sample : prev + (sample - prev) / 4;
      // Ordering contract: relaxed — see ewma_request_ns_ declaration.
      ewma_request_ns_.store(static_cast<std::uint64_t>(std::max<std::int64_t>(next, 1)),
                             std::memory_order_relaxed);

      // Circuit breaker: only genuine worker-pool failures count (an
      // injected kInternal or a bad request is not a sick worker).
      bool trip = false;
      if (cfg.breaker_threshold > 0) {
        if (worker_failed) {
          trip = ++consecutive_failures >= cfg.breaker_threshold;
        } else {
          consecutive_failures = 0;
        }
      }
      try {
        if (BF_FAILPOINT_TRIGGERED("serve.worker_quarantine")) trip = true;
      } catch (...) {
        trip = true;  // the failpoint's error action also forces a trip
      }
      if (trip) {
        consecutive_failures = 0;
        quarantine();
      }
    }
  }
};

Engine::Engine(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Engine::~Engine() {
  if (impl_) shutdown();
}

namespace {

/// Config sanity shared by both create() entry points.  `check_isa` is false
/// when the caller hands in an already-instantiated network: its kernels were
/// chosen when IT was built, so cfg.net.max_isa is not consulted.
Status validate_engine_config(const EngineConfig& cfg, bool check_isa) {
  if (cfg.workers < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: workers must be >= 1"};
  }
  if (cfg.max_batch < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: max_batch must be >= 1"};
  }
  if (cfg.queue_capacity < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: queue_capacity must be >= 1"};
  }
  if (cfg.net.num_threads < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: net.num_threads must be >= 1"};
  }
  if (cfg.breaker_threshold < 0) {
    return Status{ErrorCode::kBadInput, "EngineConfig: breaker_threshold must be >= 0"};
  }
  if (cfg.breaker_backoff.count() < 0) {
    return Status{ErrorCode::kBadInput, "EngineConfig: breaker_backoff must be >= 0"};
  }
  if (check_isa && cfg.net.max_isa.has_value() &&
      !simd::cpu_features().supports(*cfg.net.max_isa)) {
    return Status{ErrorCode::kUnsupportedIsa,
                  "requested max_isa " + std::string(simd::isa_name(*cfg.net.max_isa)) +
                      " is not executable on this CPU"};
  }
  return Status::ok();
}

}  // namespace

core::Result<Engine> Engine::create(std::shared_ptr<const graph::BinaryNetwork> net,
                                    EngineConfig cfg) {
  if (!net) {
    return Status{ErrorCode::kBadInput, "Engine::create: network must be non-null"};
  }
  if (Status st = validate_engine_config(cfg, /*check_isa=*/false); !st.is_ok()) return st;
  try {
    auto impl = std::make_unique<Impl>(cfg, std::move(net));
    // Contexts are created inside each worker thread (first thing it does),
    // so their allocation cost is paid off the caller's critical path.
    impl->threads.reserve(static_cast<std::size_t>(cfg.workers));
    Impl* ip = impl.get();  // Impl address is stable across Engine moves
    for (int w = 0; w < cfg.workers; ++w) {
      impl->threads.emplace_back([ip, w] { ip->worker_main(w); });
    }
    {
      core::MutexLock lock(ip->mu_);
      ip->state_ = EngineState::kServing;
    }
    note_state("serving");
    return Engine(std::move(impl));
  } catch (...) {
    return map_open_error();
  }
}

core::Result<Engine> Engine::create(const io::Model& model, EngineConfig cfg) {
  if (Status st = validate_engine_config(cfg, /*check_isa=*/true); !st.is_ok()) return st;
  try {
    auto net = std::make_shared<const graph::BinaryNetwork>(model.instantiate(cfg.net));
    return create(std::move(net), cfg);
  } catch (...) {
    return map_open_error();
  }
}

core::Result<Engine> Engine::open(const std::string& path, EngineConfig cfg) {
  try {
    const io::Model model = io::Model::load(path);
    return create(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

std::future<core::Result<std::vector<float>>> Engine::submit(Tensor input) {
  return submit(std::move(input), impl_->cfg.default_deadline, Priority::kNormal);
}

std::future<core::Result<std::vector<float>>> Engine::submit(Tensor input,
                                                             Priority priority) {
  return submit(std::move(input), impl_->cfg.default_deadline, priority);
}

std::future<core::Result<std::vector<float>>> Engine::submit(
    Tensor input, std::chrono::milliseconds deadline, Priority priority) {
  Request r;
  r.input = std::move(input);
  r.priority = priority;
  std::future<core::Result<std::vector<float>>> fut = r.promise.get_future();
  impl_->do_submit(std::move(r), deadline);
  return fut;
}

void Engine::submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
                    ResponseCallback done) {
  submit(std::move(input), deadline, priority, RequestMeta{}, std::move(done));
}

void Engine::submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
                    RequestMeta meta, ResponseCallback done) {
  Request r;
  r.input = std::move(input);
  r.priority = priority;
  r.meta = meta;
  r.done = std::move(done);
  impl_->do_submit(std::move(r), deadline);
}

void Engine::Impl::do_submit(Request r, std::chrono::milliseconds deadline) {
  Impl& im = *this;
  // Validate before admission: a shape mismatch is the caller's fault and
  // must not consume queue capacity.
  if (r.input.height() != im.in_desc_.h || r.input.width() != im.in_desc_.w ||
      r.input.channels() != im.in_desc_.c) {
    im.rejected.add();
    deliver(r, Status{
        ErrorCode::kBadInput,
        "submit: input is " + std::to_string(r.input.height()) + "x" +
            std::to_string(r.input.width()) + "x" + std::to_string(r.input.channels()) +
            ", network wants " + std::to_string(im.in_desc_.h) + "x" +
            std::to_string(im.in_desc_.w) + "x" + std::to_string(im.in_desc_.c)});
    return;
  }

  // Admission-control failpoint: an injected fault here models the queue
  // refusing the request (kResourceExhausted via the serve.queue_admit
  // mapping), exercising callers' rejection handling.
  try {
    BF_FAILPOINT("serve.queue_admit");
  } catch (...) {
    im.rejected.add();
    telemetry::flight_event("failpoint", "serve.queue_admit rejected admission",
                            r.meta.rid);
    deliver(r, map_infer_error());
    return;
  }

  // Shed failpoint evaluated outside the lifecycle lock (its stall action
  // must not wedge every submitter); a site action forces the shed branch,
  // an error action maps straight to kResourceExhausted.
  bool force_shed = false;
  try {
    force_shed = BF_FAILPOINT_TRIGGERED("serve.shed");
  } catch (...) {
    im.shed.add();
    im.rejected.add();
    telemetry::flight_event("failpoint", "serve.shed forced a rejection", r.meta.rid);
    deliver(r, map_infer_error());
    return;
  }

  // Lifecycle gate + adaptive shedding + in-flight admission, one lock.
  std::uint64_t est_wait_ns = 0;
  {
    core::MutexLock lock(im.mu_);
    if (im.closing_) {
      im.rejected.add();
      deliver(r, Status{ErrorCode::kResourceExhausted, "submit: engine is shut down"});
      return;
    }
    if (im.state_ == EngineState::kDraining || im.state_ == EngineState::kDrained) {
      im.rejected.add();
      deliver(r, Status{
          ErrorCode::kUnavailable,
          "submit: engine is " + std::string(engine_state_name(im.state_)) +
              " and not accepting new requests"});
      return;
    }
    bool do_shed = force_shed;
    if (!do_shed && im.cfg.adaptive_shedding && r.priority == Priority::kNormal &&
        deadline.count() > 0) {
      // Shed formula: expected wait = in-flight work / drain rate, i.e.
      // in_flight * EWMA(service time per request) / workers.  The request
      // is admitted only while that wait fits in HALF its budget: the other
      // half is headroom for the service time itself and for estimator lag
      // (the EWMA trails the queue by a batch).  Admitting right up to the
      // full budget puts every admitted request at the expiry margin — the
      // classic overload failure where work is accepted, queued for its
      // whole deadline, then thrown away.
      // Ordering contract: relaxed — see ewma_request_ns_ declaration.
      const std::uint64_t ewma = im.ewma_request_ns_.load(std::memory_order_relaxed);
      if (ewma > 0) {
        est_wait_ns = static_cast<std::uint64_t>(im.in_flight_) * ewma /
                      static_cast<std::uint64_t>(im.cfg.workers);
        const std::uint64_t budget_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(deadline).count());
        do_shed = est_wait_ns > budget_ns / 2;
      }
    }
    if (do_shed) {
      im.shed.add();
      im.rejected.add();
      telemetry::trace_instant("shed", "lifecycle", r.meta.rid);
      telemetry::flight_event("shed", "overload control rejected a request",
                              r.meta.rid);
      deliver(r, Status{
          ErrorCode::kResourceExhausted,
          "submit: shed by overload control (estimated queue delay " +
              std::to_string(est_wait_ns / 1000) + " us exceeds the " +
              std::to_string(deadline.count()) + " ms deadline budget)"});
      return;
    }
    // Count the request in flight BEFORE the push: a worker may pop and
    // resolve it before try_push even returns.
    ++im.in_flight_;
  }

  r.enqueue_time = std::chrono::steady_clock::now();
  if (deadline.count() > 0) r.deadline = r.enqueue_time + deadline;

  if (!im.queue.try_push(r)) {
    {
      core::MutexLock lock(im.mu_);
      if (im.in_flight_ > 0 && --im.in_flight_ == 0) im.idle_cv_.notify_all();
    }
    im.rejected.add();
    im.queue_overflow.add();
    deliver(r, Status{
        ErrorCode::kResourceExhausted,
        im.queue.closed()
            ? std::string("submit: engine is shut down")
            : "submit: queue full (capacity " + std::to_string(im.queue.capacity()) + ")"});
    return;
  }
  im.accepted.add();
}

core::Result<std::vector<float>> Engine::infer(Tensor input) {
  return submit(std::move(input)).get();
}

core::Status Engine::drain(std::chrono::milliseconds timeout) {
  Impl& im = *impl_;
  telemetry::TraceSpan span("serve.drain", "serve");
  // Drain error boundary: an injected fault models an orchestrator-visible
  // drain refusal (kUnavailable via the serve.drain mapping).
  try {
    BF_FAILPOINT("serve.drain");
  } catch (...) {
    telemetry::flight_event("failpoint", "serve.drain refused");
    return map_infer_error();
  }
  {
    core::MutexLock lock(im.mu_);
    if (im.state_ == EngineState::kDrained) return Status::ok();  // idempotent
    if (im.closing_ || im.state_ != EngineState::kServing) {
      return Status{ErrorCode::kUnavailable,
                    "drain: engine is " + std::string(engine_state_name(im.state_)) +
                        (im.closing_ ? " (shutting down)" : "") +
                        "; only a serving engine can start a drain"};
    }
    im.state_ = EngineState::kDraining;
  }
  note_state("draining");
  im.drains.add();
  bool escalated = false;
  {
    core::MutexLock lock(im.mu_);
    if (timeout.count() > 0) {
      const auto escalate_at = std::chrono::steady_clock::now() + timeout;
      while (im.in_flight_ != 0) {
        if (im.idle_cv_.wait_until(lock, escalate_at) == std::cv_status::timeout) break;
      }
      if (im.in_flight_ != 0) {
        // Timeout: cancel running batches at their next cooperative
        // checkpoint; everything still queued is fast-failed below.
        im.drain_hard_ = true;
        for (core::CancelToken& t : im.batch_tokens_) t.cancel();
        im.state_cv_.notify_all();  // quarantined workers: wake and drain
        escalated = true;
      }
    }
  }
  if (escalated) {
    // Fast-fail queued requests from THIS thread instead of waiting for a
    // worker to pop them: a worker can be wedged outside the batcher loop
    // (e.g. retrying a persistently failing context build), so the wait
    // below must be bounded by one layer of inference per running batch,
    // never by worker recovery.  Races with concurrent batcher pops are
    // benign — whoever pops a request under drain_hard_ cancels it.  A
    // member whose own deadline already lapsed keeps the deadline
    // vocabulary, exactly as the batcher's lapsed-request path would.
    while (std::optional<Request> r = im.queue.try_pop()) {
      if (r->deadline <= std::chrono::steady_clock::now()) {
        im.resolve_expired(*r);
      } else {
        im.resolve_cancelled(*r, "request cancelled: engine drained before it could run");
      }
    }
  }
  {
    core::MutexLock lock(im.mu_);
    while (im.in_flight_ != 0) im.idle_cv_.wait(lock);
    im.state_ = EngineState::kDrained;
  }
  note_state("drained");
  if (escalated) {
    telemetry::flight_event("drain", "drain escalated: in-flight batches cancelled");
  }
  return Status::ok();
}

core::Status Engine::reload(const io::Model& model) {
  Impl& im = *impl_;
  return im.reload_with([&im, &model]()
                            -> core::Result<std::shared_ptr<const graph::BinaryNetwork>> {
    try {
      // The expensive part — instantiate + finalize — happens off every
      // serving path.
      return std::make_shared<const graph::BinaryNetwork>(model.instantiate(im.cfg.net));
    } catch (...) {
      return map_open_error();
    }
  });
}

core::Status Engine::reload(std::shared_ptr<const graph::BinaryNetwork> net) {
  if (!net) {
    return Status{ErrorCode::kBadInput, "reload: network must be non-null"};
  }
  return impl_->reload_with(
      [&net]() -> core::Result<std::shared_ptr<const graph::BinaryNetwork>> {
        return std::move(net);
      });
}

void Engine::shutdown() {
  Impl& im = *impl_;
  std::call_once(im.shutdown_once, [&im] {
    {
      core::MutexLock lock(im.mu_);
      im.closing_ = true;
    }
    note_state("shutdown");
    im.state_cv_.notify_all();  // quarantined workers exit their backoff
    // Workers observe shutdown through the closed queue: close() wakes
    // every blocked pop, next_batch() drains and returns false.
    im.queue.close();
    for (std::thread& t : im.threads) {
      if (t.joinable()) t.join();
    }
  });
}

EngineStats Engine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  s.accepted = im.accepted.value();
  s.rejected = im.rejected.value();
  s.shed = im.shed.value();
  s.expired = im.expired.value();
  s.completed = im.completed.value();
  s.failed = im.failed.value();
  s.cancelled = im.cancelled.value();
  s.batches = im.batches.value();
  s.reloads = im.reloads.value();
  s.drains = im.drains.value();
  s.quarantines = im.quarantines.value();
  s.queue_depth = im.queue.size();
  {
    core::MutexLock lock(im.mu_);
    s.state = im.state_;
    s.in_flight = im.in_flight_;
    s.quarantined_workers = static_cast<std::size_t>(im.quarantined_);
  }
  s.degraded = s.quarantined_workers * 2 > static_cast<std::size_t>(im.cfg.workers);
  // Ordering contract: relaxed — see ewma_request_ns_ declaration.
  s.ewma_service_ms =
      static_cast<double>(im.ewma_request_ns_.load(std::memory_order_relaxed)) / 1e6;
  // Rebuild the exact per-size counts from the linear registry histogram:
  // buckets 0..max_batch are exact (the overflow bucket is unreachable since
  // no batch exceeds max_batch).
  const telemetry::Histogram::Snapshot bh = im.batch_size_hist.snapshot();
  s.batch_size_hist.assign(bh.buckets.begin(),
                           bh.buckets.begin() + im.cfg.max_batch + 1);
  // One snapshot for both quantiles: two snapshots under concurrent load
  // could report p50 and p99 from inconsistent views of the histogram.
  const telemetry::Histogram::Snapshot lat = im.latency_us_hist.snapshot();
  s.latency_p50_ms = quantile_ms(lat, 0.50);
  s.latency_p99_ms = quantile_ms(lat, 0.99);
  return s;
}

EngineState Engine::state() const {
  core::MutexLock lock(impl_->mu_);
  return impl_->state_;
}

std::size_t Engine::queue_depth() const { return impl_->queue.size(); }

std::shared_ptr<const graph::BinaryNetwork> Engine::network() const {
  core::MutexLock lock(impl_->mu_);
  return impl_->net_;
}

graph::TensorDesc Engine::input_desc() const { return impl_->in_desc_; }
std::int64_t Engine::output_size() const { return impl_->out_size_; }
std::vector<graph::LayerInfo> Engine::layers() const {
  std::shared_ptr<const graph::BinaryNetwork> net;
  {
    core::MutexLock lock(impl_->mu_);
    net = impl_->net_;
  }
  return net->layers();
}
int Engine::workers() const noexcept { return impl_->cfg.workers; }
std::int64_t Engine::max_batch() const noexcept { return impl_->cfg.max_batch; }

}  // namespace bitflow::serve
