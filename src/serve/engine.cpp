#include "serve/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/failpoint.hpp"
#include "serve/batcher.hpp"
#include "serve/error_map.hpp"
#include "serve/request_queue.hpp"
#include "simd/cpu_features.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

namespace {

/// Latency quantile with the engine's historical convention: the registry
/// histogram buckets microsecond latencies by bit width, and the reported
/// quantile is the *power-of-two* upper bound of the quantile bucket
/// (2^i us), converted to ms.  Keeping this convention makes the registry
/// migration invisible to stats() consumers (sub-us samples still report a
/// strictly positive p50).
double quantile_ms(const telemetry::Histogram::Snapshot& h, double q) {
  if (h.count == 0) return 0.0;
  const std::uint64_t want =
      static_cast<std::uint64_t>(q * static_cast<double>(h.count - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cum += h.buckets[i];
    if (cum >= want) return std::ldexp(1.0, static_cast<int>(i)) / 1000.0;
  }
  return std::ldexp(1.0, static_cast<int>(h.buckets.size()) - 1) / 1000.0;
}

/// Distinguishes the instruments of concurrently live engines in one scrape.
std::string next_engine_label() {
  // Ordering contract: relaxed fetch_add — labels only need uniqueness.
  static std::atomic<std::uint64_t> seq{0};
  return "engine=\"" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + "\"";
}

}  // namespace

struct Engine::Impl {
  EngineConfig cfg;
  graph::BinaryNetwork net;
  RequestQueue queue;
  std::vector<std::thread> threads;
  std::once_flag shutdown_once;

  // All counters and histograms live in the process-wide telemetry registry,
  // labeled per engine: stats() reconstructs this engine's view from its own
  // instruments while one Prometheus scrape sees every engine at once.
  // Recording stays what it was with the hand-rolled atomics — relaxed adds
  // on pre-registered storage — but the batch/latency histograms lose their
  // mutex (registry histograms are wait-free).
  const std::string label = next_engine_label();  // before the refs: init order
  telemetry::Counter& accepted;
  telemetry::Counter& rejected;
  telemetry::Counter& expired;
  telemetry::Counter& completed;
  telemetry::Counter& failed;
  telemetry::Counter& batches;
  telemetry::Counter& batch_images;    // occupancy numerator
  telemetry::Counter& queue_overflow;  // full-queue rejections specifically
  telemetry::Histogram& batch_size_hist;  // linear: exact counts for 0..max_batch
  telemetry::Histogram& latency_us_hist;  // log2 microseconds

  Impl(EngineConfig c, graph::BinaryNetwork n)
      : cfg(c),
        net(std::move(n)),
        queue(c.queue_capacity),
        accepted(telemetry::registry().counter("serve.requests.accepted", label)),
        rejected(telemetry::registry().counter("serve.requests.rejected", label)),
        expired(telemetry::registry().counter("serve.requests.expired", label)),
        completed(telemetry::registry().counter("serve.requests.completed", label)),
        failed(telemetry::registry().counter("serve.requests.failed", label)),
        batches(telemetry::registry().counter("serve.batches", label)),
        batch_images(telemetry::registry().counter("serve.batch.images", label)),
        queue_overflow(telemetry::registry().counter("serve.queue.overflow", label)),
        batch_size_hist(
            telemetry::registry().histogram("serve.batch.size", label, c.max_batch)),
        latency_us_hist(telemetry::registry().histogram("serve.request.latency_us", label)) {
    // Derived state evaluated only at scrape time.  The Impl address is
    // stable across Engine moves, so `this` capture is safe; ~Impl removes
    // the callbacks before the captured members die.
    telemetry::registry().add_callback_gauge(
        this, "serve.queue.depth", label,
        [this] { return static_cast<double>(queue.size()); });
    telemetry::registry().add_callback_gauge(
        this, "serve.batcher.occupancy", label, [this] {
          const double b = static_cast<double>(batches.value());
          if (b == 0.0) return 0.0;
          return static_cast<double>(batch_images.value()) /
                 (b * static_cast<double>(cfg.max_batch));
        });
  }

  ~Impl() { telemetry::registry().remove_callbacks(this); }

  /// Emits the request's cross-thread lifetime (enqueue -> resolution) as an
  /// async trace pair; a "X" span would break well-nesting on the worker's
  /// thread because requests overlap batches.
  void trace_request(const Request& r) {
    if (telemetry::trace_enabled()) [[unlikely]] {
      const std::uint64_t start_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              r.enqueue_time.time_since_epoch())
              .count());
      telemetry::trace_async("serve.request", "request", start_ns,
                             telemetry::trace_now_ns(), telemetry::trace_next_async_id());
    }
  }

  void resolve_ok(Request& r, const float* scores, std::int64_t count) {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - r.enqueue_time).count());
    // Count before fulfilling the promise: a caller that has observed its
    // result must find the request reflected in stats().
    completed.add();
    latency_us_hist.record(us);
    trace_request(r);
    r.promise.set_value(std::vector<float>(scores, scores + count));
  }

  void resolve_error(Request& r, Status st) {
    failed.add();
    trace_request(r);
    r.promise.set_value(std::move(st));
  }

  void resolve_expired(Request& r) {
    expired.add();
    trace_request(r);
    r.promise.set_value(Status{
        ErrorCode::kDeadlineExceeded,
        "request expired after waiting in queue beyond its deadline"});
  }

  /// Worker thread body: replicated context + batcher loop.  Exits when the
  /// queue is closed and drained; every popped request's promise resolves.
  void worker_main() {
    graph::InferenceContext ctx = net.make_context(cfg.max_batch, cfg.net.num_threads);
    Batcher batcher(queue, BatcherConfig{cfg.max_batch, cfg.batch_timeout});
    const std::int64_t out_size = net.output_size();
    std::vector<Request> batch, lapsed;
    std::vector<const Tensor*> inputs;
    inputs.reserve(static_cast<std::size_t>(cfg.max_batch));

    while (batcher.next_batch(batch, lapsed)) {
      for (Request& r : lapsed) resolve_expired(r);
      if (batch.empty()) continue;

      const std::int64_t n = static_cast<std::int64_t>(batch.size());
      inputs.clear();
      for (const Request& r : batch) inputs.push_back(&r.input);
      batches.add();
      batch_images.add(static_cast<std::uint64_t>(n));
      batch_size_hist.record(static_cast<std::uint64_t>(n));
      telemetry::TraceSpan batch_span("serve.batch", "serve", n);

      try {
        BF_FAILPOINT("serve.infer");
        const std::span<const float> scores = net.infer_batch(inputs, ctx);
        for (std::int64_t b = 0; b < n; ++b) {
          resolve_ok(batch[static_cast<std::size_t>(b)], scores.data() + b * out_size,
                     out_size);
        }
      } catch (...) {
        // Exception firewall: the batch is poisoned, but which member is at
        // fault?  Rerun each alone so only the faulty request fails and the
        // rest still get scores; the worker keeps serving either way.
        for (Request& r : batch) {
          try {
            BF_FAILPOINT("serve.infer");
            const Tensor* one = &r.input;
            const std::span<const float> scores = net.infer_batch({&one, 1}, ctx);
            resolve_ok(r, scores.data(), out_size);
          } catch (...) {
            resolve_error(r, map_infer_error());
          }
        }
      }
    }
  }
};

Engine::Engine(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Engine::~Engine() {
  if (impl_) shutdown();
}

core::Result<Engine> Engine::create(const io::Model& model, EngineConfig cfg) {
  if (cfg.workers < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: workers must be >= 1"};
  }
  if (cfg.max_batch < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: max_batch must be >= 1"};
  }
  if (cfg.queue_capacity < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: queue_capacity must be >= 1"};
  }
  if (cfg.net.num_threads < 1) {
    return Status{ErrorCode::kBadInput, "EngineConfig: net.num_threads must be >= 1"};
  }
  if (cfg.net.max_isa.has_value() && !simd::cpu_features().supports(*cfg.net.max_isa)) {
    return Status{ErrorCode::kUnsupportedIsa,
                  "requested max_isa " + std::string(simd::isa_name(*cfg.net.max_isa)) +
                      " is not executable on this CPU"};
  }
  try {
    graph::BinaryNetwork net = model.instantiate(cfg.net);
    auto impl = std::make_unique<Impl>(cfg, std::move(net));
    // Contexts are created inside each worker thread (first thing it does),
    // so their allocation cost is paid off the caller's critical path.
    impl->threads.reserve(static_cast<std::size_t>(cfg.workers));
    Impl* ip = impl.get();  // Impl address is stable across Engine moves
    for (int w = 0; w < cfg.workers; ++w) {
      impl->threads.emplace_back([ip] { ip->worker_main(); });
    }
    return Engine(std::move(impl));
  } catch (...) {
    return map_open_error();
  }
}

core::Result<Engine> Engine::open(const std::string& path, EngineConfig cfg) {
  try {
    const io::Model model = io::Model::load(path);
    return create(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

std::future<core::Result<std::vector<float>>> Engine::submit(Tensor input) {
  return submit(std::move(input), impl_->cfg.default_deadline);
}

std::future<core::Result<std::vector<float>>> Engine::submit(
    Tensor input, std::chrono::milliseconds deadline) {
  Impl& im = *impl_;
  Request r;
  r.input = std::move(input);
  std::future<core::Result<std::vector<float>>> fut = r.promise.get_future();

  // Validate before admission: a shape mismatch is the caller's fault and
  // must not consume queue capacity.
  const graph::TensorDesc want = im.net.input_desc();
  if (r.input.height() != want.h || r.input.width() != want.w ||
      r.input.channels() != want.c) {
    im.rejected.add();
    r.promise.set_value(Status{
        ErrorCode::kBadInput,
        "submit: input is " + std::to_string(r.input.height()) + "x" +
            std::to_string(r.input.width()) + "x" + std::to_string(r.input.channels()) +
            ", network wants " + std::to_string(want.h) + "x" + std::to_string(want.w) + "x" +
            std::to_string(want.c)});
    return fut;
  }

  // Admission-control failpoint: an injected fault here models the queue
  // refusing the request (kResourceExhausted via the serve.queue_admit
  // mapping), exercising callers' rejection handling.
  try {
    BF_FAILPOINT("serve.queue_admit");
  } catch (...) {
    im.rejected.add();
    r.promise.set_value(map_infer_error());
    return fut;
  }

  r.enqueue_time = std::chrono::steady_clock::now();
  if (deadline.count() > 0) r.deadline = r.enqueue_time + deadline;

  if (!im.queue.try_push(r)) {
    im.rejected.add();
    im.queue_overflow.add();
    r.promise.set_value(Status{
        ErrorCode::kResourceExhausted,
        im.queue.closed()
            ? std::string("submit: engine is shut down")
            : "submit: queue full (capacity " + std::to_string(im.queue.capacity()) + ")"});
    return fut;
  }
  im.accepted.add();
  return fut;
}

core::Result<std::vector<float>> Engine::infer(Tensor input) {
  return submit(std::move(input)).get();
}

void Engine::shutdown() {
  Impl& im = *impl_;
  std::call_once(im.shutdown_once, [&im] {
    // Workers observe shutdown through the closed queue alone: close() wakes
    // every blocked pop, next_batch() drains and returns false.  No separate
    // stop flag — one fewer thing to keep coherent.
    im.queue.close();
    for (std::thread& t : im.threads) {
      if (t.joinable()) t.join();
    }
  });
}

EngineStats Engine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  s.accepted = im.accepted.value();
  s.rejected = im.rejected.value();
  s.expired = im.expired.value();
  s.completed = im.completed.value();
  s.failed = im.failed.value();
  s.batches = im.batches.value();
  s.queue_depth = im.queue.size();
  // Rebuild the exact per-size counts from the linear registry histogram:
  // buckets 0..max_batch are exact (the overflow bucket is unreachable since
  // no batch exceeds max_batch).
  const telemetry::Histogram::Snapshot bh = im.batch_size_hist.snapshot();
  s.batch_size_hist.assign(bh.buckets.begin(),
                           bh.buckets.begin() + im.cfg.max_batch + 1);
  s.latency_p50_ms = quantile_ms(im.latency_us_hist.snapshot(), 0.50);
  s.latency_p99_ms = quantile_ms(im.latency_us_hist.snapshot(), 0.99);
  return s;
}

graph::TensorDesc Engine::input_desc() const { return impl_->net.input_desc(); }
std::int64_t Engine::output_size() const { return impl_->net.output_size(); }
const std::vector<graph::LayerInfo>& Engine::layers() const { return impl_->net.layers(); }
int Engine::workers() const noexcept { return impl_->cfg.workers; }
std::int64_t Engine::max_batch() const noexcept { return impl_->cfg.max_batch; }

}  // namespace bitflow::serve
