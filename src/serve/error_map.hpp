// Shared exception -> core::Status mapping for the serving boundary.
//
// Both error boundaries (serve::InferenceSession and serve::Engine) translate
// the exceptions thrown below them — loader failures, allocation exhaustion,
// worker-pool aggregates, injected faults — into the same machine-readable
// Status vocabulary, so callers see one contract regardless of which front
// door they used.  Each function must be called from inside a catch block
// (they rethrow the in-flight exception to classify it).
#pragma once

#include <string_view>

#include "core/status.hpp"

namespace bitflow::serve {

/// Classifies an injected fault by the subsystem prefix of its failpoint
/// name, so the fault matrix sees the same code a real fault of that
/// subsystem would produce.
[[nodiscard]] core::ErrorCode code_for_failpoint(std::string_view point);

/// Exception -> Status mapping for the model-building phase.
[[nodiscard]] core::Status map_open_error();

/// Exception -> Status mapping for the inference phase.
[[nodiscard]] core::Status map_infer_error();

}  // namespace bitflow::serve
