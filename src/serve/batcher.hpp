// Micro-batching scheduler: coalesces queued requests into batches for the
// fused batch-N inference path.
//
// Policy: block for the first request (no busy-wait when idle), then keep
// coalescing until either `max_batch` requests are in hand or
// `batch_timeout` has elapsed since the first pop.  The timeout bounds how
// long an early request waits for company, trading a little latency at low
// load for the per-layer fork/join amortization batch-N buys at high load —
// under saturation the window never expires because the queue always has a
// next request ready.
//
// Deadline handling: a request whose queue-wait deadline has already passed
// when the batcher picks it up is separated into `expired` instead of
// wasting a batch slot; the engine fails it with kDeadlineExceeded.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "serve/request_queue.hpp"

namespace bitflow::serve {

struct BatcherConfig {
  std::int64_t max_batch = 8;
  std::chrono::microseconds batch_timeout{2000};
};

class Batcher {
 public:
  Batcher(RequestQueue& queue, BatcherConfig cfg);

  /// Collects the next micro-batch.  On return, `batch` holds 0..max_batch
  /// live requests and `expired` the requests whose deadline lapsed in
  /// queue (both cleared first).  Returns false when the queue is closed
  /// and fully drained — the worker's signal to exit.  A true return with
  /// an empty `batch` is possible when every popped request had expired.
  [[nodiscard]] bool next_batch(std::vector<Request>& batch, std::vector<Request>& expired);

 private:
  RequestQueue& queue_;
  BatcherConfig cfg_;
};

}  // namespace bitflow::serve
