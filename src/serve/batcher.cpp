#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>

namespace bitflow::serve {

Batcher::Batcher(RequestQueue& queue, BatcherConfig cfg) : queue_(queue), cfg_(cfg) {
  if (cfg.max_batch < 1) throw std::invalid_argument("Batcher: max_batch must be >= 1");
  if (cfg.batch_timeout.count() < 0) {
    throw std::invalid_argument("Batcher: batch_timeout must be >= 0");
  }
}

bool Batcher::next_batch(std::vector<Request>& batch, std::vector<Request>& expired) {
  batch.clear();
  expired.clear();

  auto classify = [&](Request&& r) {
    if (r.deadline <= std::chrono::steady_clock::now()) {
      expired.push_back(std::move(r));
    } else {
      batch.push_back(std::move(r));
    }
  };

  // Anchor: wait (indefinitely) for the first request of the window.
  std::optional<Request> first = queue_.pop();
  if (!first.has_value()) return false;  // closed and drained
  const auto window_end = std::chrono::steady_clock::now() + cfg_.batch_timeout;
  classify(*std::move(first));

  // Coalesce: expired requests do not consume batch slots, so keep pulling
  // until max_batch *live* requests or the window closes.
  while (static_cast<std::int64_t>(batch.size()) < cfg_.max_batch) {
    std::optional<Request> r = queue_.pop_until(window_end);
    if (!r.has_value()) {
      if (queue_.closed() && queue_.size() == 0) break;  // drain fast on shutdown
      break;  // window elapsed
    }
    classify(*std::move(r));
  }
  return true;
}

}  // namespace bitflow::serve
