// Bounded MPMC request queue: the admission-control stage of serve::Engine.
//
// Producers are caller threads in Engine::submit(); consumers are the
// engine's worker threads (through serve::Batcher).  The queue enforces
// backpressure by capacity — try_push() refuses instead of blocking, so an
// overloaded engine rejects with kResourceExhausted rather than building an
// unbounded latency backlog.  close() starts shutdown: no new requests are
// admitted, but pops keep draining whatever is queued so every accepted
// request's promise resolves before the workers exit.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <optional>
#include <vector>

#include "core/status.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// One queued inference request.  The promise is the single point of
/// resolution: exactly one of {scores, Status} is set, by whichever stage
/// finishes the request (admission rejection, in-queue expiry, or a worker).
struct Request {
  Tensor input;
  std::promise<core::Result<std::vector<float>>> promise;
  std::chrono::steady_clock::time_point enqueue_time{};
  /// Absolute queue-wait deadline; time_point::max() = no deadline.  The
  /// deadline covers time *in queue* only — once a worker starts the batch,
  /// the request runs to completion (no mid-inference preemption).
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
};

/// Bounded multi-producer/multi-consumer FIFO of Requests.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admits `r` unless the queue is full or closed; returns whether the
  /// request was admitted (on false the caller still owns `r`).
  [[nodiscard]] bool try_push(Request& r);

  /// Blocks until a request is available and pops it, or returns nullopt
  /// once the queue is closed *and* drained.
  [[nodiscard]] std::optional<Request> pop();

  /// Like pop(), but gives up at `tp`; nullopt on timeout or closed+empty.
  [[nodiscard]] std::optional<Request> pop_until(std::chrono::steady_clock::time_point tp);

  /// Non-blocking pop; nullopt when nothing is immediately available.
  [[nodiscard]] std::optional<Request> try_pop();

  /// Stops admission and wakes every blocked consumer.  Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  // mu_ guards the FIFO and the closed flag; ready_ signals "q_ non-empty or
  // closed".  Consumers re-check both conditions in explicit wait loops.
  const std::size_t capacity_;
  mutable core::Mutex mu_;
  core::CondVar ready_;
  std::deque<Request> q_ BF_GUARDED_BY(mu_);
  bool closed_ BF_GUARDED_BY(mu_) = false;
};

}  // namespace bitflow::serve
