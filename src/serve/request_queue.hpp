// Bounded two-lane MPMC request queue: the admission-control stage of
// serve::Engine.
//
// Producers are caller threads in Engine::submit(); consumers are the
// engine's worker threads (through serve::Batcher).  The queue enforces
// backpressure by capacity — try_push() refuses instead of blocking, so an
// overloaded engine rejects with kResourceExhausted rather than building an
// unbounded latency backlog.  Two lanes implement the engine's overload
// policy: the high-priority lane is always drained first, so latency-critical
// traffic keeps its queue-wait bounded by the depth of its own lane even
// when the normal lane is saturated.  Each lane is bounded by the same
// capacity independently — a flood of either class cannot starve admission
// of the other.  close() starts shutdown: no new requests are admitted, but
// pops keep draining whatever is queued so every accepted request's promise
// resolves before the workers exit.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <vector>

#include "core/status.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// Scheduling class of a request.  kHigh requests are popped before any
/// kNormal request and bypass *adaptive* load shedding (they remain subject
/// to the hard per-lane capacity bound — nothing is unbounded).
enum class Priority : std::uint8_t { kNormal = 0, kHigh = 1 };

/// Completion callback alternative to the future channel: invoked exactly
/// once with the request's outcome, on whichever thread resolves it (an
/// engine worker, or the submitter itself for admission rejections).  Must
/// not throw and must not re-enter the engine that invoked it.
using ResponseCallback = std::function<void(core::Result<std::vector<float>>&&)>;

/// Observability identity of a request, threaded from the wire frame down
/// to the kernel spans so one trace joins a request's whole timeline.  Both
/// ids are optional (0 = none): `rid` is the wire frame's u64 request id,
/// `trace_id` the client-supplied trace id from the frame's flag extension
/// (net::kFlagTraceId).  Identity only — never used for routing decisions.
struct RequestMeta {
  std::uint64_t rid = 0;
  std::uint64_t trace_id = 0;
};

/// One queued inference request.  Resolution happens exactly once, by
/// whichever stage finishes the request (admission rejection, in-queue
/// expiry, a worker, or drain-timeout cancellation): through `done` when
/// set (the wire front-end's completion path — no future churn on the
/// poll loop), through `promise` otherwise.
struct Request {
  Tensor input;
  std::promise<core::Result<std::vector<float>>> promise;
  ResponseCallback done;  ///< when set, `promise` is never touched
  std::chrono::steady_clock::time_point enqueue_time{};
  /// Absolute end-to-end deadline; time_point::max() = no deadline.  Covers
  /// the whole request: queue wait (the batcher fails lapsed requests with
  /// kDeadlineExceeded before they consume a batch slot) *and* execution
  /// (the batch runs under a CancelToken armed with the batch's latest
  /// member deadline; the network aborts at its next layer-boundary
  /// checkpoint once every member has lapsed).
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
  Priority priority = Priority::kNormal;
  /// Trace identity (rid/trace_id; 0 = none) carried through every span and
  /// flight-recorder event this request generates.
  RequestMeta meta;
};

/// Bounded multi-producer/multi-consumer two-lane FIFO of Requests.
/// FIFO order holds within a lane; the high lane is drained first.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admits `r` into its priority lane unless that lane is full or the
  /// queue is closed; returns whether the request was admitted (on false
  /// the caller still owns `r`).
  [[nodiscard]] bool try_push(Request& r);

  /// Blocks until a request is available and pops it (high lane first), or
  /// returns nullopt once the queue is closed *and* both lanes are drained.
  [[nodiscard]] std::optional<Request> pop();

  /// Like pop(), but gives up at `tp`; nullopt on timeout or closed+empty.
  [[nodiscard]] std::optional<Request> pop_until(std::chrono::steady_clock::time_point tp);

  /// Non-blocking pop; nullopt when nothing is immediately available.
  [[nodiscard]] std::optional<Request> try_pop();

  /// Stops admission and wakes every blocked consumer.  Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  /// Total queued requests across both lanes.
  [[nodiscard]] std::size_t size() const;
  /// Queued requests in the normal lane only (the lane adaptive shedding
  /// reasons about: high-lane traffic is drained first, so it does not add
  /// to a normal request's expected wait the way lane-mates do).
  [[nodiscard]] std::size_t normal_size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Pops the front of the highest non-empty lane.  REQUIRES: at least one
  /// lane is non-empty and mu_ is held.
  [[nodiscard]] Request pop_front_locked() BF_REQUIRES(mu_);

  // mu_ guards both lanes and the closed flag; ready_ signals "some lane
  // non-empty or closed".  Consumers re-check both conditions in explicit
  // wait loops.
  const std::size_t capacity_;
  mutable core::Mutex mu_;
  core::CondVar ready_;
  std::deque<Request> hq_ BF_GUARDED_BY(mu_);  // high lane: popped first
  std::deque<Request> q_ BF_GUARDED_BY(mu_);   // normal lane
  bool closed_ BF_GUARDED_BY(mu_) = false;
};

}  // namespace bitflow::serve
