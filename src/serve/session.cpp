#include "serve/session.hpp"

#include <future>
#include <istream>
#include <new>
#include <stdexcept>
#include <utility>

#include "core/failpoint.hpp"
#include "serve/error_map.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

struct InferenceSession::Impl {
  SessionConfig cfg;
  graph::BinaryNetwork net;

  // Watchdog state (deadline mode only).  The task owns nothing: it reads
  // task_input and writes task_scores, both Impl members, so a straggler
  // stays valid for as long as the Impl lives — and the Impl address is
  // stable across session moves.
  std::future<Status> straggler;
  Tensor task_input;
  std::vector<float> task_scores;

  std::uint64_t ok_count = 0;
  std::uint64_t error_count = 0;

  Impl(SessionConfig c, graph::BinaryNetwork n) : cfg(c), net(std::move(n)) {}

  ~Impl() {
    if (straggler.valid()) straggler.wait();
  }

  /// One guarded inference: every failure becomes a Status, `out` is only
  /// written on success.
  Status run_once(const Tensor& input, std::vector<float>& out) {
    try {
      BF_FAILPOINT("serve.infer");
      const std::span<const float> s = net.infer(input);
      out.assign(s.begin(), s.end());
      return Status::ok();
    } catch (...) {
      return map_infer_error();
    }
  }
};

InferenceSession::InferenceSession(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
InferenceSession::InferenceSession(InferenceSession&&) noexcept = default;
InferenceSession& InferenceSession::operator=(InferenceSession&&) noexcept = default;
InferenceSession::~InferenceSession() = default;

core::Result<InferenceSession> InferenceSession::from_model(const io::Model& model,
                                                            SessionConfig cfg) {
  if (cfg.net.max_isa.has_value() && !simd::cpu_features().supports(*cfg.net.max_isa)) {
    return Status{ErrorCode::kUnsupportedIsa,
                  "requested max_isa " + std::string(simd::isa_name(*cfg.net.max_isa)) +
                      " is not executable on this CPU"};
  }
  if (cfg.net.num_threads < 1) {
    return Status{ErrorCode::kBadInput, "SessionConfig: num_threads must be >= 1"};
  }
  try {
    graph::BinaryNetwork net = model.instantiate(cfg.net);
    return InferenceSession(std::make_unique<Impl>(cfg, std::move(net)));
  } catch (...) {
    return map_open_error();
  }
}

core::Result<InferenceSession> InferenceSession::open(std::istream& is, SessionConfig cfg) {
  try {
    const io::Model model = io::Model::load(is);
    return from_model(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

core::Result<InferenceSession> InferenceSession::open(const std::string& path,
                                                      SessionConfig cfg) {
  try {
    const io::Model model = io::Model::load(path);
    return from_model(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

core::Status InferenceSession::infer(const Tensor& input_hwc, std::vector<float>& scores) {
  Impl& im = *impl_;

  // A previous request missed its deadline and is still draining: await it
  // before touching the shared buffers.  Its (late) result is discarded —
  // the caller was already told kDeadlineExceeded.
  if (im.straggler.valid()) {
    im.straggler.wait();
    (void)im.straggler.get();
  }

  // Validate the request before any work; a shape mismatch must not count
  // against the network or reach the watchdog.
  const graph::TensorDesc want = im.net.input_desc();
  if (input_hwc.height() != want.h || input_hwc.width() != want.w ||
      input_hwc.channels() != want.c) {
    ++im.error_count;
    return {ErrorCode::kBadInput,
            "infer: input is " + std::to_string(input_hwc.height()) + "x" +
                std::to_string(input_hwc.width()) + "x" +
                std::to_string(input_hwc.channels()) + ", network wants " +
                std::to_string(want.h) + "x" + std::to_string(want.w) + "x" +
                std::to_string(want.c)};
  }

  Status st;
  if (im.cfg.deadline.count() <= 0) {
    st = im.run_once(input_hwc, scores);
  } else {
    // Watchdog: run on a separate thread and wait up to the deadline.  The
    // task reads an Impl-owned copy of the input (the caller's tensor may
    // die the moment we time out) and writes an Impl-owned score buffer.
    im.task_input = input_hwc;
    Impl* impl = &im;
    std::future<Status> fut = std::async(std::launch::async, [impl] {
      return impl->run_once(impl->task_input, impl->task_scores);
    });
    if (fut.wait_for(im.cfg.deadline) == std::future_status::timeout) {
      im.straggler = std::move(fut);
      ++im.error_count;
      return {ErrorCode::kDeadlineExceeded,
              "infer: deadline of " + std::to_string(im.cfg.deadline.count()) +
                  " ms exceeded; the request keeps draining in the background"};
    }
    st = fut.get();
    if (st.is_ok()) scores = im.task_scores;
  }

  if (st.is_ok()) {
    ++im.ok_count;
  } else {
    ++im.error_count;
  }
  return st;
}

graph::TensorDesc InferenceSession::input_desc() const { return impl_->net.input_desc(); }
std::int64_t InferenceSession::output_size() const { return impl_->net.output_size(); }
const std::vector<graph::LayerInfo>& InferenceSession::layers() const {
  return impl_->net.layers();
}
std::uint64_t InferenceSession::ok_count() const noexcept { return impl_->ok_count; }
std::uint64_t InferenceSession::error_count() const noexcept { return impl_->error_count; }

}  // namespace bitflow::serve
