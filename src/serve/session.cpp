#include "serve/session.hpp"

#include <istream>
#include <new>
#include <stdexcept>
#include <utility>

#include "core/cancel.hpp"
#include "core/failpoint.hpp"
#include "serve/error_map.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::serve {

using core::ErrorCode;
using core::Status;

struct InferenceSession::Impl {
  SessionConfig cfg;
  graph::BinaryNetwork net;
  // The session's private inference stream (batch 1).  Owning a context —
  // instead of the network's shared default one — keeps every piece of
  // mutable state inside the Impl, which is what lets a cancelled request
  // leave the session immediately reusable.
  graph::InferenceContext ctx;

  std::uint64_t ok_count = 0;
  std::uint64_t error_count = 0;

  Impl(SessionConfig c, graph::BinaryNetwork n)
      : cfg(c), net(std::move(n)), ctx(net.make_context(1)) {}

  /// One guarded inference under `cancel`: every failure becomes a Status,
  /// `out` is only written on success.  A deadline armed on the token makes
  /// the network abort at its next cooperative checkpoint once it lapses
  /// (mapped to kDeadlineExceeded by map_infer_error).
  Status run_once(const Tensor& input, std::vector<float>& out,
                  const core::CancelToken& cancel) {
    try {
      BF_FAILPOINT("serve.infer");
      const Tensor* in = &input;
      const std::span<const float> s = net.infer_batch({&in, 1}, ctx, cancel);
      out.assign(s.begin(), s.end());
      return Status::ok();
    } catch (...) {
      return map_infer_error();
    }
  }
};

InferenceSession::InferenceSession(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
InferenceSession::InferenceSession(InferenceSession&&) noexcept = default;
InferenceSession& InferenceSession::operator=(InferenceSession&&) noexcept = default;
InferenceSession::~InferenceSession() = default;

core::Result<InferenceSession> InferenceSession::from_model(const io::Model& model,
                                                            SessionConfig cfg) {
  if (cfg.net.max_isa.has_value() && !simd::cpu_features().supports(*cfg.net.max_isa)) {
    return Status{ErrorCode::kUnsupportedIsa,
                  "requested max_isa " + std::string(simd::isa_name(*cfg.net.max_isa)) +
                      " is not executable on this CPU"};
  }
  if (cfg.net.num_threads < 1) {
    return Status{ErrorCode::kBadInput, "SessionConfig: num_threads must be >= 1"};
  }
  try {
    graph::BinaryNetwork net = model.instantiate(cfg.net);
    return InferenceSession(std::make_unique<Impl>(cfg, std::move(net)));
  } catch (...) {
    return map_open_error();
  }
}

core::Result<InferenceSession> InferenceSession::open(std::istream& is, SessionConfig cfg) {
  try {
    const io::Model model = io::Model::load(is);
    return from_model(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

core::Result<InferenceSession> InferenceSession::open(const std::string& path,
                                                      SessionConfig cfg) {
  try {
    const io::Model model = io::Model::load(path);
    return from_model(model, cfg);
  } catch (...) {
    return map_open_error();
  }
}

core::Status InferenceSession::infer(const Tensor& input_hwc, std::vector<float>& scores) {
  Impl& im = *impl_;

  // Validate the request before any work; a shape mismatch must not count
  // against the network.
  const graph::TensorDesc want = im.net.input_desc();
  if (input_hwc.height() != want.h || input_hwc.width() != want.w ||
      input_hwc.channels() != want.c) {
    ++im.error_count;
    return {ErrorCode::kBadInput,
            "infer: input is " + std::to_string(input_hwc.height()) + "x" +
                std::to_string(input_hwc.width()) + "x" +
                std::to_string(input_hwc.channels()) + ", network wants " +
                std::to_string(want.h) + "x" + std::to_string(want.w) + "x" +
                std::to_string(want.c)};
  }

  // End-to-end deadline via cooperative cancellation: the request runs
  // inline, and a lapsed deadline aborts it at the network's next
  // layer-boundary checkpoint (kDeadlineExceeded).  No watchdog thread —
  // when run_once returns, nothing is still running, so the session is
  // immediately ready for the next request.
  const core::CancelToken cancel =
      im.cfg.deadline.count() > 0
          ? core::CancelToken::with_deadline(std::chrono::steady_clock::now() +
                                             im.cfg.deadline)
          : core::CancelToken{};
  const Status st = im.run_once(input_hwc, scores, cancel);

  if (st.is_ok()) {
    ++im.ok_count;
  } else {
    ++im.error_count;
  }
  return st;
}

graph::TensorDesc InferenceSession::input_desc() const { return impl_->net.input_desc(); }
std::int64_t InferenceSession::output_size() const { return impl_->net.output_size(); }
const std::vector<graph::LayerInfo>& InferenceSession::layers() const {
  return impl_->net.layers();
}
std::uint64_t InferenceSession::ok_count() const noexcept { return impl_->ok_count; }
std::uint64_t InferenceSession::error_count() const noexcept { return impl_->error_count; }

}  // namespace bitflow::serve
