// serve::Engine — the concurrent serving layer: bounded admission queue,
// micro-batching scheduler, and a pool of worker threads each owning a
// replicated inference context.
//
//   callers ── submit() ──► RequestQueue ──► Batcher ──► worker 0 (ctx 0)
//                 (bounded, admission       (coalesce ≤ ├─► worker 1 (ctx 1)
//                  control, deadline)        max_batch)  └─► ...
//
// Concurrency model: the network is finalized once and immutable; each
// worker owns a private graph::InferenceContext (buffers + thread pool), so
// workers never alias mutable state (see the contract in graph/network.hpp).
// Batches run through the fused batch-N kernels — N requests cost one
// fork/join per layer and are bit-exact with N separate batch-1 runs.
//
// Error contract (the exception firewall of serve/session.hpp, extended):
//   * admission: a full queue (or armed serve.queue_admit failpoint) fails
//     the request with kResourceExhausted — callers never block or throw;
//   * deadline: a request whose queue wait exceeds its deadline fails with
//     kDeadlineExceeded.  The deadline covers queue time only; once a batch
//     starts, it runs to completion (no mid-inference preemption);
//   * poisoned batch: if a batch throws, the worker reruns each member
//     individually so only the faulty request fails; the worker and engine
//     keep serving;
//   * shutdown: the queue closes, workers drain every admitted request
//     (every future resolves — no broken_promise), then exit.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "graph/network.hpp"
#include "io/model.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// Configuration of one serving engine.
struct EngineConfig {
  /// Network execution config; net.num_threads is the *per-worker* pool
  /// size (each replicated context gets its own pool of this many threads).
  graph::NetworkConfig net{};
  /// Number of worker threads, each with a replicated inference context.
  int workers = 1;
  /// Largest micro-batch a worker runs in one fused pass.
  std::int64_t max_batch = 8;
  /// How long a worker waits for a batch to fill after its first request.
  std::chrono::microseconds batch_timeout{2000};
  /// Admission-queue capacity; submissions beyond it are rejected.
  std::size_t queue_capacity = 64;
  /// Default per-request queue-wait budget; zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
};

/// Counter snapshot for benchmarking and monitoring.  All request counters
/// are cumulative since create(); accepted = completed + failed + expired +
/// the requests currently in flight.
///
/// This is a compatibility view: the engine's instruments live in the
/// process-wide telemetry registry (telemetry::registry()) under
/// `serve.*{engine="<seq>"}` names, and stats() reconstructs this struct
/// from them.  Prefer the registry (and its Prometheus exposition) for new
/// monitoring consumers.
struct EngineStats {
  std::uint64_t accepted = 0;   ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< refused at admission (backpressure/fault)
  std::uint64_t expired = 0;    ///< deadline lapsed while queued
  std::uint64_t completed = 0;  ///< finished with OK scores
  std::uint64_t failed = 0;     ///< finished with a non-OK Status
  std::size_t queue_depth = 0;  ///< requests queued at snapshot time
  std::uint64_t batches = 0;    ///< micro-batches executed
  /// batch_size_hist[n] = number of micro-batches that ran with n requests
  /// (index 0 unused; size max_batch + 1).
  std::vector<std::uint64_t> batch_size_hist;
  /// End-to-end (enqueue -> scores ready) latency quantiles over completed
  /// requests, from a log-bucketed histogram: upper bucket bounds, ms.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Mean batch size over executed batches (the fusion the engine achieved).
  [[nodiscard]] double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(completed + failed) /
                                    static_cast<double>(batches);
  }
};

/// A running serving engine.  Move-only; all public methods are thread-safe
/// (submit/infer may be called from any number of caller threads).
class Engine {
 public:
  /// Builds the network from an in-memory model and starts the workers.
  [[nodiscard]] static core::Result<Engine> create(const io::Model& model,
                                                   EngineConfig cfg = {});
  /// Same, loading a .bflow file first.
  [[nodiscard]] static core::Result<Engine> open(const std::string& path,
                                                 EngineConfig cfg = {});

  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  ~Engine();  ///< shuts down: drains admitted requests, joins workers

  /// Submits one request with the config's default deadline.  Never throws
  /// and never blocks on inference: the future resolves to the scores or a
  /// Status (kResourceExhausted on rejection, kDeadlineExceeded on expiry,
  /// the mapped error on a worker fault).
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(Tensor input);
  /// Same with an explicit queue-wait deadline (<= 0 disables it).
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(
      Tensor input, std::chrono::milliseconds deadline);

  /// Blocking convenience: submit + wait.
  [[nodiscard]] core::Result<std::vector<float>> infer(Tensor input);

  /// Stops admission, drains queued requests, joins the workers.
  /// Idempotent; called by the destructor.  submit() after shutdown is
  /// rejected with kResourceExhausted.
  void shutdown();

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] graph::TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;
  [[nodiscard]] const std::vector<graph::LayerInfo>& layers() const;
  [[nodiscard]] int workers() const noexcept;
  [[nodiscard]] std::int64_t max_batch() const noexcept;

 private:
  struct Impl;
  explicit Engine(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::serve
