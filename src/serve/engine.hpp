// serve::Engine — the concurrent serving layer: bounded admission queue,
// micro-batching scheduler, and a pool of worker threads each owning a
// replicated inference context.
//
//   callers ── submit() ──► RequestQueue ──► Batcher ──► worker 0 (ctx 0)
//                 (two-lane, admission      (coalesce ≤ ├─► worker 1 (ctx 1)
//                  control, shedding)        max_batch)  └─► ...
//
// Concurrency model: the network is finalized once and immutable; each
// worker owns a private graph::InferenceContext (buffers + thread pool), so
// workers never alias mutable state (see the contract in graph/network.hpp).
// Batches run through the fused batch-N kernels — N requests cost one
// fork/join per layer and are bit-exact with N separate batch-1 runs.
// reload() swaps the network between *generations*: each request runs
// entirely on the generation that was current when its batch started, so a
// reload under load is linearizable (no request sees two networks).
//
// Lifecycle state machine (see DESIGN.md §"Request lifecycle"):
//
//   Starting ──► Serving ◄──► Reloading
//                  │
//                drain()
//                  ▼
//               Draining ──► Drained ──(shutdown)──► joined
//
// Error contract (the exception firewall of serve/session.hpp, extended):
//   * admission: a full lane (or armed serve.queue_admit failpoint) fails
//     the request with kResourceExhausted — callers never block or throw;
//     adaptive load shedding additionally rejects (kResourceExhausted) a
//     normal-priority deadline request whose estimated queue delay already
//     exceeds its budget, so doomed work is refused instead of admitted;
//   * deadline: the deadline covers the WHOLE request.  A request whose
//     deadline lapses in queue fails with kDeadlineExceeded before wasting
//     a batch slot; a batch whose every member has lapsed aborts at the
//     network's next layer-boundary cancellation checkpoint and each member
//     fails with kDeadlineExceeded (core/cancel.hpp);
//   * poisoned batch: if a batch throws, the worker reruns each member
//     individually so only the faulty request fails; the worker and engine
//     keep serving.  A worker whose batches keep failing with
//     kWorkerFailure trips a circuit breaker and self-quarantines for a
//     backoff before re-probing (stats().degraded reports quorum loss);
//   * drain: stops admission (kUnavailable) and waits for in-flight work;
//     past the timeout it cancels the remainder (kCancelled) — every
//     admitted future still resolves;
//   * shutdown: the queue closes, workers drain every admitted request
//     (every future resolves — no broken_promise), then exit.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "graph/network.hpp"
#include "io/model.hpp"
#include "serve/request_queue.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// Configuration of one serving engine.
struct EngineConfig {
  /// Network execution config; net.num_threads is the *per-worker* pool
  /// size (each replicated context gets its own pool of this many threads).
  graph::NetworkConfig net{};
  /// Number of worker threads, each with a replicated inference context.
  int workers = 1;
  /// Largest micro-batch a worker runs in one fused pass.
  std::int64_t max_batch = 8;
  /// How long a worker waits for a batch to fill after its first request.
  std::chrono::microseconds batch_timeout{2000};
  /// Admission capacity *per priority lane*; submissions beyond it are
  /// rejected (the hard backpressure bound behind adaptive shedding).
  std::size_t queue_capacity = 64;
  /// Default per-request end-to-end budget; zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Adaptive load shedding: reject a normal-priority deadline request at
  /// admission when its estimated queue delay (EWMA of per-request service
  /// time x requests in flight / workers) already exceeds its budget.
  /// High-priority requests bypass this (hard capacity still applies).
  bool adaptive_shedding = true;
  /// Consecutive kWorkerFailure batches that trip a worker's circuit
  /// breaker (self-quarantine); 0 disables the breaker.
  int breaker_threshold = 3;
  /// How long a tripped worker sits out before re-probing.
  std::chrono::milliseconds breaker_backoff{100};
};

/// Lifecycle state of an Engine (guarded internally; stats().state snapshots
/// it).  Serving <-> Reloading admit requests; Draining/Drained refuse with
/// kUnavailable.
enum class EngineState : std::uint8_t {
  kStarting = 0,
  kServing = 1,
  kReloading = 2,
  kDraining = 3,
  kDrained = 4,
};

[[nodiscard]] const char* engine_state_name(EngineState s) noexcept;

/// Counter snapshot for benchmarking and monitoring.  All request counters
/// are cumulative since create(); accepted = completed + failed + expired +
/// cancelled + the requests currently in flight.
///
/// This is a compatibility view: the engine's instruments live in the
/// process-wide telemetry registry (telemetry::registry()) under
/// `serve.*{engine="<seq>"}` names, and stats() reconstructs this struct
/// from them.  Prefer the registry (and its Prometheus exposition) for new
/// monitoring consumers.
struct EngineStats {
  std::uint64_t accepted = 0;   ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< refused at admission (backpressure/shed/fault)
  std::uint64_t shed = 0;       ///< subset of rejected: adaptive overload shedding
  std::uint64_t expired = 0;    ///< deadline lapsed (in queue or mid-inference)
  std::uint64_t completed = 0;  ///< finished with OK scores
  std::uint64_t failed = 0;     ///< finished with a non-OK Status
  std::uint64_t cancelled = 0;  ///< abandoned at a cancellation checkpoint (drain)
  std::size_t queue_depth = 0;  ///< requests queued at snapshot time
  std::size_t in_flight = 0;    ///< admitted but not yet resolved
  std::uint64_t batches = 0;    ///< micro-batches executed
  std::uint64_t reloads = 0;    ///< successful reload() generation swaps
  std::uint64_t drains = 0;     ///< drain() calls that entered Draining
  /// Per-request service-time EWMA feeding the shed estimate (ms); 0 until
  /// the first batch completes.
  double ewma_service_ms = 0.0;
  std::uint64_t quarantines = 0;     ///< circuit-breaker trips (cumulative)
  std::size_t quarantined_workers = 0;  ///< workers sitting out right now
  /// True when quarantined workers outnumber live ones (quorum lost): the
  /// engine still serves, but capacity is at least halved.
  bool degraded = false;
  EngineState state = EngineState::kStarting;
  /// batch_size_hist[n] = number of micro-batches that ran with n requests
  /// (index 0 unused; size max_batch + 1).
  std::vector<std::uint64_t> batch_size_hist;
  /// End-to-end (enqueue -> scores ready) latency quantiles over completed
  /// requests, from a log-bucketed histogram: upper bucket bounds, ms.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Mean batch size over executed batches (the fusion the engine achieved).
  [[nodiscard]] double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(completed + failed) /
                                    static_cast<double>(batches);
  }
};

/// A running serving engine.  Move-only; all public methods are thread-safe
/// (submit/infer may be called from any number of caller threads, and
/// drain/reload/shutdown may race with submitters).
class Engine {
 public:
  /// Builds the network from an in-memory model and starts the workers.
  [[nodiscard]] static core::Result<Engine> create(const io::Model& model,
                                                   EngineConfig cfg = {});
  /// Same, loading a .bflow file first.
  [[nodiscard]] static core::Result<Engine> open(const std::string& path,
                                                 EngineConfig cfg = {});
  /// Starts the workers over an ALREADY-finalized network owned elsewhere.
  /// This is the zero-copy sharding entry point (serve::ShardRouter): N
  /// engines created from the same shared_ptr serve one set of packed
  /// weights — only the per-worker scratch contexts are replicated.  The
  /// network must be finalized and must outlive nothing (the shared_ptr
  /// keeps it alive past reload()/shutdown() as long as any batch runs).
  /// cfg.net.num_threads still sizes the per-worker context pools;
  /// cfg.net's graph-construction fields are ignored (the network exists).
  [[nodiscard]] static core::Result<Engine> create(
      std::shared_ptr<const graph::BinaryNetwork> net, EngineConfig cfg = {});

  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  ~Engine();  ///< shuts down: drains admitted requests, joins workers

  /// Submits one request with the config's default deadline.  Never throws
  /// and never blocks on inference: the future resolves to the scores or a
  /// Status (kResourceExhausted on rejection/shed, kDeadlineExceeded on
  /// expiry, kCancelled on drain cancellation, kUnavailable while
  /// draining/drained, the mapped error on a worker fault).
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(Tensor input);
  /// Same with an explicit scheduling class.
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(Tensor input,
                                                                     Priority priority);
  /// Same with an explicit end-to-end deadline (<= 0 disables it).
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(
      Tensor input, std::chrono::milliseconds deadline,
      Priority priority = Priority::kNormal);

  /// Callback-completion submit: `done` is invoked exactly once with the
  /// outcome, on whichever thread resolves the request — an engine worker
  /// for served requests, the CALLING thread (inline, before this returns)
  /// for admission rejections.  The callback must not throw and must not
  /// re-enter this engine (submit/drain/reload from inside it deadlocks by
  /// design, like re-entering the registry from a callback gauge).  This is
  /// the wire front-end's path: the poll loop hands the socket response
  /// directly to the worker that produced the scores, with no future churn.
  void submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
              ResponseCallback done);

  /// Wire-path submit carrying the request's observability identity
  /// (RequestMeta): the frame's request id and optional client trace id
  /// ride every span and flight-recorder event this request generates, so
  /// its wire-to-kernel timeline joins up in one trace.  Identity only —
  /// scheduling is unaffected.
  void submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
              RequestMeta meta, ResponseCallback done);

  /// Blocking convenience: submit + wait.
  [[nodiscard]] core::Result<std::vector<float>> infer(Tensor input);

  /// Graceful drain: stops admission (subsequent submits fail with
  /// kUnavailable), then waits until every already-admitted request has
  /// resolved.  If they are not done within `timeout` (<= 0 waits
  /// unboundedly), the remainder is cancelled through the cooperative
  /// checkpoints (kCancelled / kDeadlineExceeded) and drain() returns once
  /// every future has still resolved.  Terminal: a drained engine only
  /// accepts shutdown().  Returns kUnavailable when the engine is not in a
  /// drainable state (already draining elsewhere, reloading, or shut
  /// down); ok() once drained (idempotent on an already-drained engine).
  [[nodiscard]] core::Status drain(std::chrono::milliseconds timeout);

  /// Hot-swaps the served network to `model` without dropping admitted
  /// requests: builds and finalizes the replacement off the serving path,
  /// then atomically publishes it as a new generation — workers pick it up
  /// at their next batch boundary, and every request runs entirely on one
  /// generation.  Admission continues throughout.  The replacement must
  /// keep the same input shape and output size (kInvalidModel otherwise —
  /// the old generation keeps serving).  Returns kUnavailable unless the
  /// engine is Serving.
  [[nodiscard]] core::Status reload(const io::Model& model);

  /// Same, but publishing an ALREADY-finalized network built elsewhere: the
  /// router's fan-out path, where one replacement is instantiated once and
  /// every shard swaps to the same shared weights (zero copies, N pointer
  /// swaps).  Same shape contract and state rules as reload(model).
  [[nodiscard]] core::Status reload(std::shared_ptr<const graph::BinaryNetwork> net);

  /// Stops admission, drains queued requests, joins the workers.
  /// Idempotent; called by the destructor.  submit() after shutdown is
  /// rejected with kResourceExhausted.
  void shutdown();

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] EngineState state() const;
  /// Queued-but-unpopped requests right now (both lanes).  Cheap — one queue
  /// lock, no histogram snapshots — so routing layers may poll it per
  /// request; stats() is the full (heavier) snapshot.
  [[nodiscard]] std::size_t queue_depth() const;
  /// The CURRENT network generation (shared: reload() may retire it while
  /// the caller holds the pointer; the weights stay valid regardless).
  [[nodiscard]] std::shared_ptr<const graph::BinaryNetwork> network() const;
  [[nodiscard]] graph::TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;
  /// Layer descriptors of the CURRENT generation (a snapshot by value:
  /// reload() may retire the generation while the caller is still reading).
  [[nodiscard]] std::vector<graph::LayerInfo> layers() const;
  [[nodiscard]] int workers() const noexcept;
  [[nodiscard]] std::int64_t max_batch() const noexcept;

 private:
  struct Impl;
  explicit Engine(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::serve
