// serve::ShardRouter — N serve::Engine shards behind one routing front.
//
//   submit() ── pick 2 random shards, route to the shallower ──► Engine 0
//                 (power-of-two-choices over per-shard                │
//                  outstanding-request counters)          ──► Engine 1
//                                                          ──► ...
//
// Why shards instead of one big engine: each Engine serializes admission
// through one queue and one lifecycle mutex, and its workers share one
// batcher.  Sharding multiplies those serialization points and — with
// micro-batching — lets one shard's batch_timeout fill-wait overlap another
// shard's compute, so the tier's sustained QPS scales past a single queue's
// even on few cores.
//
// Zero-copy weight sharing: every shard serves the SAME immutable finalized
// graph::BinaryNetwork through a shared_ptr — N shards cost N inference
// contexts (activation buffers), not N copies of the packed weights.
// reload() instantiates the replacement generation once and fans the same
// shared_ptr out to every shard through the PR 7 per-engine Reloading state
// machine, so a model swap under live traffic drops nothing.
//
// Routing policy: power of two choices.  Each request probes two distinct
// uniformly-random shards and joins the one with fewer outstanding
// (admitted-but-unresolved) requests — the classic balls-in-bins result
// bounds the expected max/min depth gap exponentially better than plain
// random placement, with no shared hot counter like round-robin's.
//
// Lifecycle: the router reuses the engine's state vocabulary
// (EngineState).  drain() fans out Engine::drain on parallel threads —
// shards drain concurrently, so tier drain latency is the slowest shard,
// not the sum.  The router gates admission itself in Draining/Drained;
// whichever gate (router or shard) loses the race with a concurrent drain
// rejects with the same kUnavailable contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/status.hpp"
#include "graph/network.hpp"
#include "io/model.hpp"
#include "serve/engine.hpp"
#include "serve/request_queue.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::serve {

/// Configuration of a sharded serving tier.
struct RouterConfig {
  /// Number of engine shards; each runs `engine.workers` worker threads.
  int shards = 2;
  /// Per-shard engine configuration (applied identically to every shard).
  EngineConfig engine{};
};

/// Per-shard snapshot inside RouterStats.
struct RouterShardStats {
  std::size_t queue_depth = 0;   ///< requests queued in the shard's lanes
  std::size_t outstanding = 0;   ///< routed to the shard, not yet resolved
  EngineState state = EngineState::kStarting;
};

/// Router-level counter snapshot.  Like EngineStats this is a compatibility
/// view over registry instruments (`serve.router.*{router=}` and
/// `serve.shard.*{router=,shard=}`).
struct RouterStats {
  EngineState state = EngineState::kStarting;  ///< router lifecycle state
  std::uint64_t routed = 0;    ///< requests handed to a shard
  std::uint64_t rejected = 0;  ///< refused at the router's lifecycle gate
  std::vector<RouterShardStats> shards;
};

/// N-shard serving tier over one shared immutable network.  Movable,
/// non-copyable; thread-safe like Engine (any thread may submit/drain/
/// reload concurrently).
class ShardRouter {
 public:
  /// Builds the network once (instantiate + finalize) and shares it across
  /// `cfg.shards` engines.  Validation mirrors Engine::create.
  [[nodiscard]] static core::Result<ShardRouter> create(const io::Model& model,
                                                        RouterConfig cfg = {});

  /// Shares an already-finalized network across the shards (zero-copy: the
  /// caller's pointer IS the served generation).
  [[nodiscard]] static core::Result<ShardRouter> create(
      std::shared_ptr<const graph::BinaryNetwork> net, RouterConfig cfg = {});

  ShardRouter(ShardRouter&&) noexcept;
  ShardRouter& operator=(ShardRouter&&) noexcept;
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;
  ~ShardRouter();  ///< drains nothing extra: shuts every shard down (joins)

  /// Future-form submit: routes to a shard and resolves exactly once with
  /// the same error contract as Engine::submit.
  [[nodiscard]] std::future<core::Result<std::vector<float>>> submit(
      Tensor input, std::chrono::milliseconds deadline, Priority priority);

  /// Callback-form submit (the wire front-end's path): `done` is invoked
  /// exactly once, on whichever thread resolves the request — inline on the
  /// calling thread for routing/admission rejections.  Same contract as
  /// Engine's callback submit: must not throw, must not re-enter the tier.
  void submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
              ResponseCallback done);

  /// Wire-path submit carrying the request's observability identity
  /// (RequestMeta) down to the shard engine — see Engine's RequestMeta
  /// overload.  Routing decisions never consult the meta.
  void submit(Tensor input, std::chrono::milliseconds deadline, Priority priority,
              RequestMeta meta, ResponseCallback done);

  /// Blocking convenience: submit + wait (no deadline, normal priority).
  [[nodiscard]] core::Result<std::vector<float>> infer(Tensor input);

  /// Fans Engine::drain(timeout) out to every shard on parallel threads and
  /// waits for all of them; every admitted request resolves (completed
  /// within the timeout, or cancelled/expired past it).  The router ends in
  /// kDrained regardless; the returned status is the first shard failure.
  [[nodiscard]] core::Status drain(std::chrono::milliseconds timeout);

  /// Builds the replacement generation ONCE, then fans the shared_ptr out
  /// to every shard (Engine::reload).  On a shard failure the fan-out
  /// stops and the error is returned: shards already swapped keep the new
  /// generation, the rest keep the old (both satisfy the same shape
  /// contract; retry to converge).
  [[nodiscard]] core::Status reload(const io::Model& model);
  [[nodiscard]] core::Status reload(std::shared_ptr<const graph::BinaryNetwork> net);

  /// Stops every shard: closes queues, resolves all admitted requests,
  /// joins all workers.  Idempotent.
  void shutdown();

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] EngineState state() const;
  [[nodiscard]] int shards() const noexcept;
  /// Direct shard access for tests and diagnostics.  REQUIRES: 0 <= i <
  /// shards().
  [[nodiscard]] Engine& shard(int i);
  /// The served generation (shard 0's; all shards converge on it outside a
  /// failed-reload window).
  [[nodiscard]] std::shared_ptr<const graph::BinaryNetwork> network() const;
  [[nodiscard]] graph::TensorDesc input_desc() const;
  [[nodiscard]] std::int64_t output_size() const;

 private:
  struct Impl;
  explicit ShardRouter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// One "/varz" line per weight layer of the served generation, exposing the
/// committed execution plan:
///   layer.<name>.plan isa=<isa> tile=<T> grain=<G> source=<provenance>
/// tile 0 means the filter-major kernels; source is "default" (static
/// heuristic), "search" (tuned at finalize) or "cache" (tuning cache hit).
/// Lives here, not in net/, so the wire front-end reads the plan through the
/// router instead of reaching into graph.
[[nodiscard]] std::string plan_varz_text(const ShardRouter& router);

/// One "/varz" line per profiled layer of the served generation, exposing
/// the roofline attribution next to the plan:
///   layer.<name>.perf gops=<G> roof_gops=<R> ait=<A> ipc=<I> llc_mpki=<M>
///   source=<measured|calibrated>
/// `source` is "measured" when hardware counters (perf_event_open) backed
/// the row, "calibrated" when only the calibrated-peak model applies.
/// Empty until a profiled inference has run.
[[nodiscard]] std::string profile_varz_text(const ShardRouter& router);

}  // namespace bitflow::serve
