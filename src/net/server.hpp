// net::Server — the TCP front-end of the serving tier.
//
//   clients ──► poll loop ──► FrameReader ──► ShardRouter::submit(callback)
//                  ▲                               │ (engine worker thread)
//                  │ self-pipe wake                ▼
//                  └──────────── per-connection Outbox ◄── encoded response
//
// Threading model: ONE poll thread owns every socket, every FrameReader,
// and every connection's read/write buffers — no locking on the byte-
// shuffling paths.  The only cross-thread surface is the per-connection
// Outbox: engine workers complete requests by locking the outbox, queuing
// the encoded response frame, and writing one byte to the self-pipe; the
// poll thread wakes, drains outboxes into kernel buffers, and re-polls.
// A connection that dies with requests in flight marks its outbox dead
// under the same lock, so late completions drop their frame harmlessly —
// completion callbacks never touch a socket.
//
// Protocol sniffing: the first bytes of each connection select the binary
// frame codec (magic "BF01") or the minimal HTTP/1.1 parser (GET /healthz,
// /varz, /metrics) — one port serves both the data plane and observability.
//
// Fail-closed: any codec violation (see net/frame.hpp) or armed
// net.frame_decode failpoint sends ONE machine-readable Error frame
// (id 0 — the offending frame's id is untrusted) and closes after flush.
// Backpressure: a connection may have at most cfg.max_inflight_per_conn
// requests outstanding; excess requests are answered with a
// kResourceExhausted Error frame without touching the router.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.hpp"
#include "serve/shard_router.hpp"

namespace bitflow::net {

struct ServerConfig {
  /// Listen address; tests and the bench bind loopback.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (kernel-assigned; read it back with port()).
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 256;
  /// Per-connection outstanding-request bound (wire-level backpressure,
  /// in front of the router's own admission control).
  std::size_t max_inflight_per_conn = 64;
};

/// The front-end.  start() spawns the poll thread; stop() (or the
/// destructor) closes every socket and joins, after every in-flight
/// request's completion callback has run.  The router must outlive the
/// server.
class Server {
 public:
  [[nodiscard]] static core::Result<Server> start(serve::ShardRouter& router,
                                                  ServerConfig cfg = {});

  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// The bound port (the kernel's choice when cfg.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stops accepting, closes every connection, joins the poll thread, and
  /// waits for every in-flight completion callback.  Idempotent.
  void stop();

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace bitflow::net
