#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace bitflow::net {

using core::ErrorCode;
using core::Status;

namespace {

core::Result<int> connect_fd(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status{ErrorCode::kInternal, std::string("socket: ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status{ErrorCode::kBadInput, "invalid host " + host};
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status st{ErrorCode::kUnavailable, "connect " + host + ":" +
                                                 std::to_string(port) + ": " +
                                                 std::strerror(errno)};
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Status send_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t rc = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status{ErrorCode::kUnavailable,
                    std::string("send: ") + std::strerror(errno)};
    }
    off += static_cast<std::size_t>(rc);
  }
  return Status::ok();
}

}  // namespace

Client::Client(int fd) : fd_(fd) {}
Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}
Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}
Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

core::Result<Client> Client::connect(const std::string& host, std::uint16_t port) {
  core::Result<int> fd = connect_fd(host, port);
  if (!fd.is_ok()) return fd.status();
  return Client(fd.value());
}

core::Status Client::send(const RequestFrame& req) {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "send: client is closed"};
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderSize + 12 + req.data.size() * 4);
  append_request(bytes, req);
  return send_all(fd_, bytes.data(), bytes.size());
}

core::Result<DecodedFrame> Client::recv(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status{ErrorCode::kUnavailable, "recv: client is closed"};
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (std::optional<DecodedFrame> f = reader_.next()) return std::move(*f);
    const auto now = std::chrono::steady_clock::now();
    if (now >= give_up) {
      return Status{ErrorCode::kDeadlineExceeded, "recv: timed out"};
    }
    pollfd pfd{fd_, POLLIN, 0};
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             give_up - now).count();
    const int rc = ::poll(&pfd, 1, static_cast<int>(wait_ms) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status{ErrorCode::kInternal, std::string("poll: ") + std::strerror(errno)};
    }
    if (rc == 0) continue;  // timeout re-checked above
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n == 0) {
      return Status{ErrorCode::kUnavailable, "recv: connection closed by server"};
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{ErrorCode::kUnavailable,
                    std::string("recv: ") + std::strerror(errno)};
    }
    if (Status st = reader_.feed(buf, static_cast<std::size_t>(n)); !st.is_ok()) {
      return st;  // fail closed: the stream is poisoned
    }
  }
}

core::Result<std::vector<float>> Client::infer(const RequestFrame& req,
                                               std::chrono::milliseconds timeout) {
  if (Status st = send(req); !st.is_ok()) return st;
  core::Result<DecodedFrame> f = recv(timeout);
  if (!f.is_ok()) return f.status();
  if (auto* resp = std::get_if<ResponseFrame>(&f.value())) {
    if (resp->id != req.id) {
      return Status{ErrorCode::kInternal,
                    "response id " + std::to_string(resp->id) +
                        " does not echo request id " + std::to_string(req.id)};
    }
    return std::move(resp->scores);
  }
  if (auto* err = std::get_if<ErrorFrame>(&f.value())) {
    return Status{err->code, err->message};
  }
  return Status{ErrorCode::kBadInput, "infer: unexpected frame type from server"};
}

core::Result<std::string> Client::http_get(const std::string& host, std::uint16_t port,
                                           const std::string& target) {
  core::Result<int> fd = connect_fd(host, port);
  if (!fd.is_ok()) return fd.status();
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (Status st = send_all(fd.value(),
                           reinterpret_cast<const std::uint8_t*>(req.data()),
                           req.size());
      !st.is_ok()) {
    ::close(fd.value());
    return st;
  }
  std::string raw;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd.value(), buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd.value());
      return Status{ErrorCode::kUnavailable,
                    std::string("read: ") + std::strerror(errno)};
    }
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd.value());
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.substr(0, 9) != "HTTP/1.1 ") {
    return Status{ErrorCode::kBadInput, "http_get: malformed response"};
  }
  if (raw.substr(9, 3) != "200") {
    return Status{ErrorCode::kUnavailable,
                  "http_get " + target + ": HTTP " + raw.substr(9, 3)};
  }
  return raw.substr(head_end + 4);
}

}  // namespace bitflow::net
