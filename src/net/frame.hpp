// BitFlow wire framing: the length-prefixed binary protocol the serving
// front-end speaks (net::Server) and the fuzz surface the codec tests
// attack.
//
// Every frame is a fixed 24-byte header followed by `length` payload bytes,
// all little-endian:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic "BF01" (0x31304642 LE)
//        4     1  type      (1=InferRequest, 2=InferResponse, 3=Error)
//        5     1  priority  (0=normal, 1=high; requests only, else 0)
//        6     1  flags     (bit 0 = trace-id extension; requests only,
//                            unknown bits rejected — was reserved, so
//                            pre-extension frames decode unchanged)
//        7     1  reserved  (must be 0)
//        8     8  request id (u64, chosen by the client, echoed back)
//       16     4  deadline_ms (u32; 0 = no deadline; requests only, else 0)
//       20     4  length    (u32 payload byte count; <= kMaxPayload)
//       24   ...  payload
//
// Payloads:
//   InferRequest : u32 h, u32 w, u32 c, then h*w*c float32 (HWC logical
//                  order, i.e. Tensor::hwc index order by (c,h,w) planes is
//                  the TENSOR's concern — the wire carries the tensor's
//                  linear buffer verbatim, so client and server agree by
//                  construction).  With the trace-id flag set, a trailing
//                  u64 client trace id follows the floats (length covers
//                  it) — the flight recorder joins it to the server-side
//                  request spans.
//   InferResponse: n float32 scores (n = length / 4).
//   Error        : u32 code (core::ErrorCode), then a UTF-8 message.
//
// Fail-closed contract: decode_frame() accepts a byte range claiming to be
// ONE complete frame and returns kBadInput for ANY violation — bad magic,
// unknown type, nonzero reserved bits, oversized or self-inconsistent
// length, truncated input.  FrameReader applies the same checks
// incrementally: header-level violations are detected as soon as the header
// is buffered (before waiting for a possibly-bogus `length` worth of
// bytes), and a reader that has returned an error stays failed — the
// connection must close after sending one Error frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/status.hpp"

namespace bitflow::net {

inline constexpr std::uint32_t kMagic = 0x31304642u;  // "BF01" in LE byte order
inline constexpr std::size_t kHeaderSize = 24;
/// Hard payload bound: a 256x256x256 float tensor is ~64 MiB; anything
/// larger is a protocol violation, not a big request.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kError = 3,
};

/// Header flag bit 0: the request payload carries a trailing u64 client
/// trace id (backward-compatible extension of the old reserved byte).
inline constexpr std::uint8_t kFlagTraceId = 0x01;

/// Decoded InferRequest frame.
struct RequestFrame {
  std::uint64_t id = 0;
  std::uint8_t priority = 0;  ///< 0=normal, 1=high
  std::uint32_t deadline_ms = 0;
  std::uint32_t h = 0, w = 0, c = 0;
  std::vector<float> data;  ///< h*w*c values, tensor linear-buffer order
  /// Optional client trace id (0 = absent).  Encoded via kFlagTraceId.
  std::uint64_t trace_id = 0;
};

/// Decoded InferResponse frame.
struct ResponseFrame {
  std::uint64_t id = 0;
  std::vector<float> scores;
};

/// Decoded Error frame (machine-readable: code is a core::ErrorCode).
struct ErrorFrame {
  std::uint64_t id = 0;
  core::ErrorCode code = core::ErrorCode::kInternal;
  std::string message;
};

using DecodedFrame = std::variant<RequestFrame, ResponseFrame, ErrorFrame>;

// --- encoding (append to a byte buffer; never fails) -------------------------

void append_request(std::vector<std::uint8_t>& out, const RequestFrame& req);
void append_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                     const float* scores, std::size_t n);
void append_error(std::vector<std::uint8_t>& out, std::uint64_t id,
                  core::ErrorCode code, std::string_view message);

// --- decoding ---------------------------------------------------------------

/// Decodes exactly one complete frame from [data, data+size).  Any
/// violation — including size != header+payload exactly — is kBadInput
/// with a reason; this is the pure function the fuzz tests hammer.
[[nodiscard]] core::Result<DecodedFrame> decode_frame(const std::uint8_t* data,
                                                      std::size_t size);

/// Incremental frame parser for one connection's byte stream.
///
/// feed() buffers bytes and decodes every complete frame into the ready
/// queue; next() pops them in arrival order.  The first protocol violation
/// fails the reader permanently (feed() keeps returning the same error and
/// consumes nothing further) — the fail-closed contract above.
class FrameReader {
 public:
  /// Appends bytes and decodes as far as possible.  Returns the sticky
  /// protocol error, or OK (which only means "no violation YET" — frames
  /// may still be incomplete).
  [[nodiscard]] core::Status feed(const std::uint8_t* data, std::size_t n);

  /// Pops the next fully-decoded frame, if any.
  [[nodiscard]] std::optional<DecodedFrame> next();

  /// Bytes buffered but not yet decoded (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - consumed_; }
  [[nodiscard]] bool failed() const noexcept { return !error_.is_ok(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< decoded prefix of buf_ (compacted lazily)
  std::deque<DecodedFrame> ready_;
  core::Status error_ = core::Status::ok();
};

}  // namespace bitflow::net
