// net::Client — a small blocking client for the BitFlow wire protocol,
// used by the loopback tests and the SLO load harness.  One socket, one
// thread at a time per direction: send() and recv() may run on two
// different threads concurrently (the load generator pipelines that way),
// but neither is reentrant.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/status.hpp"
#include "net/frame.hpp"

namespace bitflow::net {

class Client {
 public:
  [[nodiscard]] static core::Result<Client> connect(const std::string& host,
                                                    std::uint16_t port);

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Writes one request frame (blocking until the kernel accepted it all).
  [[nodiscard]] core::Status send(const RequestFrame& req);

  /// Blocks for the next frame from the server, up to `timeout`
  /// (kDeadlineExceeded), connection close (kUnavailable), or a protocol
  /// violation (kBadInput, fail closed).
  [[nodiscard]] core::Result<DecodedFrame> recv(std::chrono::milliseconds timeout);

  /// send + recv for callers that don't pipeline.  The response id must
  /// echo the request's.
  [[nodiscard]] core::Result<std::vector<float>> infer(const RequestFrame& req,
                                                       std::chrono::milliseconds timeout);

  void close();

  /// One-shot HTTP GET against the same front-end (separate connection):
  /// returns the response body on HTTP 200, an error otherwise.
  [[nodiscard]] static core::Result<std::string> http_get(const std::string& host,
                                                          std::uint16_t port,
                                                          const std::string& target);

 private:
  explicit Client(int fd);
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace bitflow::net
