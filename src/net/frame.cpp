#include "net/frame.hpp"

#include <cstring>

namespace bitflow::net {

using core::ErrorCode;
using core::Status;

namespace {

// Serialization is explicit byte shuffling, not struct casts: the wire is
// little-endian by definition, the host may not be, and memcpy through
// uint8_t stays strict-aliasing clean.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return get_u32(p) | (std::uint64_t{get_u32(p + 4)} << 32);
}

void put_f32(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, 4);
  put_u32(out, bits);
}

float get_f32(const std::uint8_t* p) {
  const std::uint32_t bits = get_u32(p);
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

void put_header(std::vector<std::uint8_t>& out, FrameType type, std::uint8_t priority,
                std::uint64_t id, std::uint32_t deadline_ms, std::uint32_t length,
                std::uint8_t flags = 0) {
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(priority);
  out.push_back(flags);
  out.push_back(0);  // reserved
  put_u64(out, id);
  put_u32(out, deadline_ms);
  put_u32(out, length);
}

/// Header-only validation: everything checkable from the first 24 bytes.
/// Split out so FrameReader can fail closed BEFORE trusting `length` and
/// waiting for up to 4 GiB of payload that will never legitimately arrive.
Status validate_header(const std::uint8_t* h) {
  if (get_u32(h) != kMagic) {
    return Status{ErrorCode::kBadInput, "frame: bad magic (expected \"BF01\")"};
  }
  const std::uint8_t type = h[4];
  if (type < static_cast<std::uint8_t>(FrameType::kInferRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    return Status{ErrorCode::kBadInput,
                  "frame: unknown type " + std::to_string(type)};
  }
  if (h[5] > 1) {
    return Status{ErrorCode::kBadInput,
                  "frame: invalid priority " + std::to_string(h[5])};
  }
  // Byte 6 was reserved-must-be-0 before the flags extension, so rejecting
  // unknown bits (and flags on non-request frames) keeps old decoders and
  // new encoders mutually safe.
  const std::uint8_t flags = h[6];
  if ((flags & static_cast<std::uint8_t>(~kFlagTraceId)) != 0) {
    return Status{ErrorCode::kBadInput,
                  "frame: unknown flag bits " + std::to_string(flags)};
  }
  if (flags != 0 && type != static_cast<std::uint8_t>(FrameType::kInferRequest)) {
    return Status{ErrorCode::kBadInput, "frame: flags on a non-request frame"};
  }
  if (h[7] != 0) {
    return Status{ErrorCode::kBadInput, "frame: reserved bits set"};
  }
  const std::uint32_t length = get_u32(h + 20);
  if (length > kMaxPayload) {
    return Status{ErrorCode::kBadInput,
                  "frame: payload length " + std::to_string(length) +
                      " exceeds the " + std::to_string(kMaxPayload) + "-byte bound"};
  }
  return Status::ok();
}

/// Payload decode for a header-validated frame; `p` has exactly `length`
/// bytes.
core::Result<DecodedFrame> decode_payload(const std::uint8_t* h, const std::uint8_t* p,
                                          std::uint32_t length) {
  const auto type = static_cast<FrameType>(h[4]);
  const std::uint64_t id = get_u64(h + 8);
  switch (type) {
    case FrameType::kInferRequest: {
      if (length < 12) {
        return Status{ErrorCode::kBadInput, "frame: request payload shorter than dims"};
      }
      RequestFrame req;
      req.id = id;
      req.priority = h[5];
      req.deadline_ms = get_u32(h + 16);
      req.h = get_u32(p);
      req.w = get_u32(p + 4);
      req.c = get_u32(p + 8);
      const std::uint32_t trailer = (h[6] & kFlagTraceId) != 0 ? 8 : 0;
      // Element count re-derives the length: the two must agree exactly, and
      // the product is bounded by kMaxPayload (checked via the length), so
      // the multiplication cannot overflow past the u64 intermediate.
      const std::uint64_t elems =
          std::uint64_t{req.h} * std::uint64_t{req.w} * std::uint64_t{req.c};
      if (req.h == 0 || req.w == 0 || req.c == 0 ||
          elems > (kMaxPayload - 12 - trailer) / 4 ||
          12 + elems * 4 + trailer != length) {
        return Status{ErrorCode::kBadInput,
                      "frame: request dims " + std::to_string(req.h) + "x" +
                          std::to_string(req.w) + "x" + std::to_string(req.c) +
                          " disagree with payload length " + std::to_string(length)};
      }
      req.data.resize(static_cast<std::size_t>(elems));
      for (std::uint64_t i = 0; i < elems; ++i) {
        req.data[static_cast<std::size_t>(i)] = get_f32(p + 12 + i * 4);
      }
      if (trailer != 0) req.trace_id = get_u64(p + 12 + elems * 4);
      return DecodedFrame{std::move(req)};
    }
    case FrameType::kInferResponse: {
      if (length % 4 != 0) {
        return Status{ErrorCode::kBadInput,
                      "frame: response payload is not a whole number of floats"};
      }
      ResponseFrame resp;
      resp.id = id;
      resp.scores.resize(length / 4);
      for (std::uint32_t i = 0; i < length / 4; ++i) {
        resp.scores[i] = get_f32(p + std::size_t{i} * 4);
      }
      return DecodedFrame{std::move(resp)};
    }
    case FrameType::kError: {
      if (length < 4) {
        return Status{ErrorCode::kBadInput, "frame: error payload shorter than its code"};
      }
      ErrorFrame err;
      err.id = id;
      const std::uint32_t code = get_u32(p);
      if (code > static_cast<std::uint32_t>(ErrorCode::kUnavailable)) {
        return Status{ErrorCode::kBadInput,
                      "frame: unknown error code " + std::to_string(code)};
      }
      err.code = static_cast<ErrorCode>(code);
      err.message.assign(reinterpret_cast<const char*>(p) + 4, length - 4);
      return DecodedFrame{std::move(err)};
    }
  }
  return Status{ErrorCode::kBadInput, "frame: unknown type"};  // unreachable
}

}  // namespace

void append_request(std::vector<std::uint8_t>& out, const RequestFrame& req) {
  const std::uint8_t flags = req.trace_id != 0 ? kFlagTraceId : 0;
  const std::uint32_t length = 12 +
                               4 * static_cast<std::uint32_t>(req.data.size()) +
                               (flags != 0 ? 8 : 0);
  put_header(out, FrameType::kInferRequest, req.priority, req.id, req.deadline_ms,
             length, flags);
  put_u32(out, req.h);
  put_u32(out, req.w);
  put_u32(out, req.c);
  for (float f : req.data) put_f32(out, f);
  if (flags != 0) put_u64(out, req.trace_id);
}

void append_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                     const float* scores, std::size_t n) {
  put_header(out, FrameType::kInferResponse, 0, id, 0,
             static_cast<std::uint32_t>(n * 4));
  for (std::size_t i = 0; i < n; ++i) put_f32(out, scores[i]);
}

void append_error(std::vector<std::uint8_t>& out, std::uint64_t id,
                  core::ErrorCode code, std::string_view message) {
  put_header(out, FrameType::kError, 0, id, 0,
             static_cast<std::uint32_t>(4 + message.size()));
  put_u32(out, static_cast<std::uint32_t>(code));
  out.insert(out.end(), message.begin(), message.end());
}

core::Result<DecodedFrame> decode_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderSize) {
    return Status{ErrorCode::kBadInput,
                  "frame: truncated header (" + std::to_string(size) + " of " +
                      std::to_string(kHeaderSize) + " bytes)"};
  }
  if (Status st = validate_header(data); !st.is_ok()) return st;
  const std::uint32_t length = get_u32(data + 20);
  if (size != kHeaderSize + length) {
    return Status{ErrorCode::kBadInput,
                  "frame: size " + std::to_string(size) + " disagrees with header+" +
                      std::to_string(length)};
  }
  return decode_payload(data, data + kHeaderSize, length);
}

core::Status FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (!error_.is_ok()) return error_;  // sticky: a failed stream stays failed
  buf_.insert(buf_.end(), data, data + n);
  for (;;) {
    const std::size_t avail = buf_.size() - consumed_;
    // Reject a bad magic as soon as it CAN be seen: a garbage stream fails
    // within 4 bytes instead of dribbling toward a full header.
    if (avail >= 4 && get_u32(buf_.data() + consumed_) != kMagic) {
      error_ = Status{ErrorCode::kBadInput, "frame: bad magic"};
      return error_;
    }
    if (avail < kHeaderSize) break;
    const std::uint8_t* h = buf_.data() + consumed_;
    // Validate the header BEFORE waiting on its claimed payload: a bogus
    // length must not make the reader buffer the peer's garbage forever.
    if (Status st = validate_header(h); !st.is_ok()) {
      error_ = st;
      return error_;
    }
    const std::uint32_t length = get_u32(h + 20);
    if (avail < kHeaderSize + length) break;  // incomplete: wait for more bytes
    core::Result<DecodedFrame> frame = decode_frame(h, kHeaderSize + length);
    if (!frame.is_ok()) {
      error_ = frame.status();
      return error_;
    }
    ready_.push_back(std::move(frame.value()));
    consumed_ += kHeaderSize + length;
  }
  // Compact once the decoded prefix dominates the buffer, amortizing the
  // move so a fast sender cannot make this quadratic.
  if (consumed_ > 0 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::ok();
}

std::optional<DecodedFrame> FrameReader::next() {
  if (ready_.empty()) return std::nullopt;
  DecodedFrame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

}  // namespace bitflow::net
