// Minimal HTTP/1.1 surface for the serving front-end's observability
// endpoints (GET /healthz, /varz, /metrics).
//
// This is deliberately NOT an HTTP server: one request per connection,
// GET only, headers ignored, response always `Connection: close`.  The
// front-end sniffs the first bytes of each connection — the binary magic
// selects the frame codec, an HTTP method token selects this parser — so
// curl and a BitFlow client can share one port.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/status.hpp"

namespace bitflow::net {

/// A parsed request line.  Headers are consumed but not retained (none of
/// the served endpoints need them).
struct HttpRequest {
  std::string method;  ///< e.g. "GET"
  std::string target;  ///< e.g. "/metrics"
};

/// True when the first buffered bytes can only be an HTTP request (an
/// upper-case method token).  Callers need at most 4 bytes to distinguish
/// this from the binary magic.
[[nodiscard]] bool looks_like_http(std::string_view prefix);

/// Parses one request once the terminating blank line ("\r\n\r\n") has
/// arrived.  Returns nullopt while incomplete (buffer more), the request
/// when complete, or kBadInput for a malformed/oversized head (fail
/// closed — the connection must be dropped).
[[nodiscard]] core::Result<std::optional<HttpRequest>> parse_http_request(
    std::string_view in);

/// Serializes a complete response with Content-Length and
/// `Connection: close`.
[[nodiscard]] std::string http_response(int status, std::string_view reason,
                                        std::string_view content_type,
                                        std::string_view body);

}  // namespace bitflow::net
