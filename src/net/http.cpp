#include "net/http.hpp"

namespace bitflow::net {

using core::ErrorCode;
using core::Status;

namespace {

/// Bound on the request head (request line + headers): observability GETs
/// are tiny; anything bigger is a client bug or an attack, not a request.
constexpr std::size_t kMaxHead = 8 * 1024;

}  // namespace

bool looks_like_http(std::string_view prefix) {
  // Every method we could ever meet starts with 2+ upper-case letters; the
  // binary magic starts "BF01" — 'B','F' are upper-case too, so check
  // against the magic explicitly before the letter test.
  if (prefix.size() >= 4 && prefix.substr(0, 4) == "BF01") return false;
  std::size_t letters = 0;
  for (char ch : prefix) {
    if (ch >= 'A' && ch <= 'Z') {
      ++letters;
      continue;
    }
    return ch == ' ' && letters >= 2;  // "GET /…", "HEAD …", "POST …"
  }
  return false;  // all letters so far: undecidable, wait for more bytes
}

core::Result<std::optional<HttpRequest>> parse_http_request(std::string_view in) {
  const std::size_t end = in.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    if (in.size() > kMaxHead) {
      return Status{ErrorCode::kBadInput, "http: request head exceeds 8 KiB"};
    }
    return std::optional<HttpRequest>{};  // incomplete: buffer more
  }
  const std::size_t line_end = in.find("\r\n");
  std::string_view line = in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.substr(sp2 + 1).substr(0, 5) != "HTTP/") {
    return Status{ErrorCode::kBadInput, "http: malformed request line"};
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    return Status{ErrorCode::kBadInput, "http: malformed request line"};
  }
  return std::optional<HttpRequest>{std::move(req)};
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type, std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace bitflow::net
