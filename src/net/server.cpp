#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/failpoint.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "net/frame.hpp"
#include "net/http.hpp"
#include "serve/error_map.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace bitflow::net {

using core::ErrorCode;
using core::Status;

namespace {

/// Distinguishes the instruments of concurrently live servers in one scrape.
std::string next_server_label() {
  // Ordering contract: relaxed fetch_add — labels only need uniqueness.
  static std::atomic<std::uint64_t> seq{0};
  return "server=\"" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) + "\"";
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status{ErrorCode::kInternal,
                  std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno)};
  }
  return Status::ok();
}

/// Router/plan/roofline stats WITHOUT the flight-recorder status block —
/// this is also the server's "varz" bundle section, and bundle context
/// providers run under the flight mutex, so they must not call back into
/// the recorder (flight_status_text would self-deadlock).
std::string varz_body(const serve::ShardRouter& router) {
  const serve::RouterStats rs = router.stats();
  std::string out;
  out += "router.state " + std::string(serve::engine_state_name(rs.state)) + "\n";
  out += "router.routed " + std::to_string(rs.routed) + "\n";
  out += "router.rejected " + std::to_string(rs.rejected) + "\n";
  out += "router.shards " + std::to_string(rs.shards.size()) + "\n";
  for (std::size_t i = 0; i < rs.shards.size(); ++i) {
    const std::string p = "shard." + std::to_string(i) + ".";
    out += p + "state " + std::string(serve::engine_state_name(rs.shards[i].state)) + "\n";
    out += p + "queue_depth " + std::to_string(rs.shards[i].queue_depth) + "\n";
    out += p + "outstanding " + std::to_string(rs.shards[i].outstanding) + "\n";
  }
  // The served generation's committed per-layer execution plan (kernel
  // family, tile, grain, tuning provenance) — rendered by the serve layer so
  // the wire front-end never reaches around the router into graph.
  out += serve::plan_varz_text(router);
  // Roofline attribution per layer (measured IPC / LLC miss rate when
  // perf_event_open ran, calibrated-peak fallback otherwise).
  out += serve::profile_varz_text(router);
  // The trace sink's drop count: how much span evidence the rings lost.
  out += "telemetry.trace.dropped " +
         std::to_string(telemetry::trace_dropped_events()) + "\n";
  return out;
}

/// Plain-text engine/router stats for GET /varz.
std::string varz_text(const serve::ShardRouter& router) {
  // Flight-recorder status (armed state, bundle/event counters) so an
  // operator sees at a glance whether the black box is recording and how
  // much evidence it has lost.
  return varz_body(router) + telemetry::flight_status_text();
}

}  // namespace

/// Cross-thread mailbox of one connection: the ONLY state both the poll
/// thread and engine-worker completion callbacks touch.
struct Outbox {
  core::Mutex mu;
  /// Encoded frames awaiting the poll thread (drained into the write
  /// buffer on the next wake).
  std::deque<std::vector<std::uint8_t>> pending BF_GUARDED_BY(mu);
  /// Requests routed on behalf of this connection, not yet resolved — the
  /// wire-level backpressure count.
  std::size_t inflight BF_GUARDED_BY(mu) = 0;
  /// Set by the poll thread when the connection dies: late completions
  /// drop their frame instead of queueing for a socket that is gone.
  bool dead BF_GUARDED_BY(mu) = false;
};

namespace {

/// Per-connection state, owned exclusively by the poll thread (except the
/// shared Outbox).
struct Conn {
  int fd = -1;
  enum class Mode : std::uint8_t { kUnknown, kBinary, kHttp } mode = Mode::kUnknown;
  FrameReader reader;
  std::vector<std::uint8_t> sniff;  ///< first bytes, until the mode is decided
  std::string http_buf;
  std::vector<std::uint8_t> wbuf;  ///< partially-written output
  std::size_t woff = 0;
  bool read_closed = false;       ///< peer EOF or fail-closed: stop reading
  bool close_after_flush = false; ///< close once wbuf + outbox + inflight drain
  bool closed = false;            ///< fd closed; erase from the list
  std::shared_ptr<Outbox> outbox = std::make_shared<Outbox>();
};

}  // namespace

struct Server::Impl {
  serve::ShardRouter& router;
  ServerConfig cfg;
  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;  ///< self-pipe: completions nudge the poll loop
  std::uint16_t port = 0;
  std::thread poll_thread;
  std::once_flag stop_once;

  // Ordering contract: stopping_ is release-stored by stop() after the wake
  // write and acquire-loaded by the poll loop; acquire/release keeps the
  // flag ordered with the pipe write it announces.
  std::atomic<bool> stopping_{false};

  /// Server-wide in-flight completion count: stop() must not tear the pipe
  /// down while a callback that may still write to it is running.
  /// inflight_zero_ signals the drop to zero.
  core::Mutex inflight_mu_;
  std::size_t inflight_ BF_GUARDED_BY(inflight_mu_) = 0;
  core::CondVar inflight_zero_;

  std::list<Conn> conns;  ///< poll thread only

  const std::string label = next_server_label();  // before the refs: init order
  telemetry::Counter& conns_accepted;
  telemetry::Counter& conns_dropped;
  telemetry::Counter& rx_bytes;
  telemetry::Counter& tx_bytes;
  telemetry::Counter& frames_requests;
  telemetry::Counter& frames_responses;
  telemetry::Counter& frames_errors;
  telemetry::Counter& decode_errors;
  telemetry::Counter& http_requests;
  telemetry::Gauge& conns_open;

  Impl(serve::ShardRouter& r, ServerConfig c)
      : router(r),
        cfg(c),
        conns_accepted(telemetry::registry().counter("net.connections.accepted", label)),
        conns_dropped(telemetry::registry().counter("net.connections.dropped", label)),
        rx_bytes(telemetry::registry().counter("net.bytes.rx", label)),
        tx_bytes(telemetry::registry().counter("net.bytes.tx", label)),
        frames_requests(telemetry::registry().counter("net.frames.requests", label)),
        frames_responses(telemetry::registry().counter("net.frames.responses", label)),
        frames_errors(telemetry::registry().counter("net.frames.errors", label)),
        decode_errors(telemetry::registry().counter("net.decode.errors", label)),
        http_requests(telemetry::registry().counter("net.http.requests", label)),
        conns_open(telemetry::registry().gauge("net.connections.open", label)) {
    // Bundle context providers: a triggered diagnostic bundle snapshots the
    // tier's /varz block and the served generation's profile report next to
    // the trace.  Callbacks run on the triggering thread and only read
    // router state (stats/layers) — they never re-enter the recorder.
    telemetry::flight_add_context(this, "varz", [this] { return varz_body(router); });
    telemetry::flight_add_context(this, "profile", [this] {
      const auto net = router.network();
      return net ? net->profile_report().to_table() : std::string{};
    });
  }

  ~Impl() { telemetry::flight_remove_contexts(this); }

  /// Nudges the poll loop out of poll().  A full pipe means a wake is
  /// already pending — dropping the byte is correct, not lossy.
  void wake() const {
    const std::uint8_t b = 1;
    ssize_t rc;
    do {
      rc = ::write(wake_w, &b, 1);
    } while (rc < 0 && errno == EINTR);
  }

  // --- poll-thread helpers ---------------------------------------------------

  void queue_bytes(Conn& conn, std::vector<std::uint8_t> bytes) {
    if (conn.wbuf.empty()) {
      conn.wbuf = std::move(bytes);
      conn.woff = 0;
    } else {
      conn.wbuf.insert(conn.wbuf.end(), bytes.begin(), bytes.end());
    }
  }

  void queue_error_frame(Conn& conn, std::uint64_t id, ErrorCode code,
                         std::string_view message) {
    std::vector<std::uint8_t> frame;
    append_error(frame, id, code, message);
    frames_errors.add();
    queue_bytes(conn, std::move(frame));
  }

  /// Protocol violation: one Error frame, then fail closed.
  void fail_closed(Conn& conn, const Status& st) {
    decode_errors.add();
    telemetry::flight_event("decode_error", st.message().c_str());
    queue_error_frame(conn, 0, st.code(), st.message());
    conn.read_closed = true;
    conn.close_after_flush = true;
  }

  void close_conn(Conn& conn) {
    if (conn.closed) return;
    {
      core::MutexLock l(conn.outbox->mu);
      conn.outbox->dead = true;
      conn.outbox->pending.clear();
    }
    ::close(conn.fd);
    conn.closed = true;
  }

  void handle_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient error: re-poll
      }
      // Injected accept fault: the tier refuses the connection the way an
      // exhausted front-end would (the peer sees an immediate close).
      try {
        BF_FAILPOINT("net.accept");
      } catch (const failpoint::FaultInjected&) {
        conns_dropped.add();
        ::close(fd);
        continue;
      }
      if (static_cast<int>(conns.size()) >= cfg.max_connections ||
          !set_nonblocking(fd).is_ok()) {
        conns_dropped.add();
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Conn& conn = conns.emplace_back();
      conn.fd = fd;
      conns_accepted.add();
    }
    conns_open.set(static_cast<std::int64_t>(conns.size()));
  }

  void handle_request_frame(Conn& conn, RequestFrame&& req) {
    // The wire-side span of this request: frame receipt through routing (an
    // inline rejection resolves inside it).  Carries the frame's request id
    // so the trace joins it to the async serve.request track, the batch
    // membership instant, and the kernel spans under that worker's batch.
    telemetry::TraceSpan span("net.request", "net",
                              static_cast<std::int64_t>(req.data.size()), req.id);
    frames_requests.add();
    {
      core::MutexLock l(conn.outbox->mu);
      if (conn.outbox->inflight >= cfg.max_inflight_per_conn) {
        // Wire-level backpressure, in front of the router's own admission
        // control: answered inline, the router never sees the request.
        telemetry::flight_event("shed", "wire backpressure: per-connection "
                                        "in-flight limit reached", req.id);
        queue_error_frame(conn, req.id, ErrorCode::kResourceExhausted,
                          "connection has " + std::to_string(conn.outbox->inflight) +
                              " requests in flight (limit " +
                              std::to_string(cfg.max_inflight_per_conn) + ")");
        return;
      }
      ++conn.outbox->inflight;
    }
    {
      core::MutexLock l(inflight_mu_);
      ++inflight_;
    }
    Tensor t = Tensor::hwc(req.h, req.w, req.c);
    std::memcpy(t.data(), req.data.data(), req.data.size() * sizeof(float));
    std::shared_ptr<Outbox> ob = conn.outbox;
    const std::uint64_t id = req.id;
    router.submit(
        std::move(t), std::chrono::milliseconds{req.deadline_ms},
        req.priority == 1 ? serve::Priority::kHigh : serve::Priority::kNormal,
        serve::RequestMeta{req.id, req.trace_id},
        [this, ob = std::move(ob), id](core::Result<std::vector<float>>&& outcome) {
          // Runs on whichever thread resolves the request (an engine
          // worker, or the poll thread itself for inline rejections).
          // Encode outside the outbox lock; never touch a socket here.
          std::vector<std::uint8_t> frame;
          if (outcome.is_ok()) {
            append_response(frame, id, outcome.value().data(), outcome.value().size());
            frames_responses.add();
          } else {
            const Status st = outcome.status();
            append_error(frame, id, st.code(), st.message());
            frames_errors.add();
          }
          bool enqueued = false;
          {
            core::MutexLock l(ob->mu);
            if (ob->inflight > 0) --ob->inflight;
            if (!ob->dead) {
              ob->pending.push_back(std::move(frame));
              enqueued = true;
            }
          }
          if (enqueued) wake();
          // Last: stop() waits for this count, and the pipe write above
          // must precede the release of the waiter.
          {
            core::MutexLock l(inflight_mu_);
            if (inflight_ > 0 && --inflight_ == 0) inflight_zero_.notify_all();
          }
        });
  }

  void handle_http(Conn& conn, const HttpRequest& req) {
    http_requests.add();
    std::string resp;
    if (req.method != "GET") {
      resp = http_response(405, "Method Not Allowed", "text/plain", "GET only\n");
    } else if (req.target == "/healthz") {
      const serve::EngineState st = router.state();
      const bool healthy = st == serve::EngineState::kServing ||
                           st == serve::EngineState::kReloading;
      resp = healthy ? http_response(200, "OK", "text/plain", "ok\n")
                     : http_response(503, "Service Unavailable", "text/plain",
                                     std::string(serve::engine_state_name(st)) + "\n");
    } else if (req.target == "/varz") {
      resp = http_response(200, "OK", "text/plain", varz_text(router));
    } else if (req.target == "/metrics") {
      resp = http_response(200, "OK", "text/plain; version=0.0.4",
                           telemetry::registry().prometheus_text());
    } else {
      resp = http_response(404, "Not Found", "text/plain", "unknown endpoint\n");
    }
    queue_bytes(conn, std::vector<std::uint8_t>(resp.begin(), resp.end()));
    conn.read_closed = true;  // one request per connection
    conn.close_after_flush = true;
  }

  void process_binary(Conn& conn, const std::uint8_t* data, std::size_t n) {
    // Decode error boundary: an injected fault here models a malformed
    // frame and takes the same fail-closed path a real one would.
    try {
      BF_FAILPOINT("net.frame_decode");
    } catch (const failpoint::FaultInjected& e) {
      fail_closed(conn, Status{serve::code_for_failpoint(e.point()), e.what()});
      return;
    }
    if (Status st = conn.reader.feed(data, n); !st.is_ok()) {
      fail_closed(conn, st);
      // Fall through: frames decoded before the violation still serve.
    }
    while (std::optional<DecodedFrame> f = conn.reader.next()) {
      if (auto* req = std::get_if<RequestFrame>(&*f)) {
        handle_request_frame(conn, std::move(*req));
      } else {
        // Clients speak requests; a response/error frame inbound is a
        // protocol violation even though it decodes.
        fail_closed(conn, Status{ErrorCode::kBadInput,
                                 "frame: unexpected non-request frame from client"});
        break;
      }
    }
  }

  void process_input(Conn& conn, const std::uint8_t* data, std::size_t n) {
    if (conn.mode == Conn::Mode::kBinary) {
      process_binary(conn, data, n);
      return;
    }
    if (conn.mode == Conn::Mode::kHttp) {
      conn.http_buf.append(reinterpret_cast<const char*>(data), n);
      dispatch_http(conn);
      return;
    }
    // Mode still unknown: buffer until the first 4 bytes decide (see
    // looks_like_http — both verdicts are reachable by then).
    conn.sniff.insert(conn.sniff.end(), data, data + n);
    const std::string_view sv(reinterpret_cast<const char*>(conn.sniff.data()),
                              conn.sniff.size());
    if (looks_like_http(sv)) {
      conn.mode = Conn::Mode::kHttp;
      conn.http_buf.assign(sv);
      conn.sniff.clear();
      conn.sniff.shrink_to_fit();
      dispatch_http(conn);
      return;
    }
    if (conn.sniff.size() < 4) return;  // undecidable: wait
    std::vector<std::uint8_t> first = std::move(conn.sniff);
    conn.sniff.clear();
    conn.mode = Conn::Mode::kBinary;  // magic is validated by the reader
    process_binary(conn, first.data(), first.size());
  }

  void dispatch_http(Conn& conn) {
    core::Result<std::optional<HttpRequest>> r = parse_http_request(conn.http_buf);
    if (!r.is_ok()) {
      // Malformed HTTP gets an HTTP error, not a binary frame.
      decode_errors.add();
      const std::string resp =
          http_response(400, "Bad Request", "text/plain", r.status().message() + "\n");
      queue_bytes(conn, std::vector<std::uint8_t>(resp.begin(), resp.end()));
      conn.read_closed = true;
      conn.close_after_flush = true;
      return;
    }
    if (r.value().has_value()) handle_http(conn, *r.value());
  }

  void handle_read(Conn& conn) {
    std::uint8_t buf[64 * 1024];
    while (!conn.read_closed && !conn.closed) {
      const ssize_t n = ::read(conn.fd, buf, sizeof buf);
      if (n == 0) {
        // Peer EOF: responses for requests already in flight still go out;
        // the connection dies once everything has flushed.
        conn.read_closed = true;
        conn.close_after_flush = true;
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn);
        break;
      }
      rx_bytes.add(static_cast<std::uint64_t>(n));
      process_input(conn, buf, static_cast<std::size_t>(n));
    }
  }

  /// Moves completed responses from the outbox into the write buffer, then
  /// writes as much as the kernel will take.
  void flush_conn(Conn& conn) {
    if (conn.closed) return;
    {
      core::MutexLock l(conn.outbox->mu);
      while (!conn.outbox->pending.empty()) {
        queue_bytes(conn, std::move(conn.outbox->pending.front()));
        conn.outbox->pending.pop_front();
      }
    }
    while (conn.woff < conn.wbuf.size()) {
      const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                               conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // re-poll POLLOUT
        close_conn(conn);
        return;
      }
      tx_bytes.add(static_cast<std::uint64_t>(n));
      conn.woff += static_cast<std::size_t>(n);
    }
    conn.wbuf.clear();
    conn.woff = 0;
    if (conn.close_after_flush) {
      bool idle;
      {
        core::MutexLock l(conn.outbox->mu);
        idle = conn.outbox->pending.empty() && conn.outbox->inflight == 0;
      }
      if (idle) close_conn(conn);
    }
  }

  void poll_main() {
    std::vector<pollfd> pfds;
    std::vector<Conn*> pconns;
    // Ordering contract: see stopping_ declaration.
    while (!stopping_.load(std::memory_order_acquire)) {
      // Pick up completions queued since the last pass so POLLOUT interest
      // reflects reality before blocking.
      for (Conn& c : conns) flush_conn(c);
      conns.remove_if([](const Conn& c) { return c.closed; });
      conns_open.set(static_cast<std::int64_t>(conns.size()));

      pfds.clear();
      pconns.clear();
      pfds.push_back({wake_r, POLLIN, 0});
      pfds.push_back({listen_fd, POLLIN, 0});
      for (Conn& c : conns) {
        short ev = 0;
        if (!c.read_closed) ev |= POLLIN;
        if (c.woff < c.wbuf.size()) ev |= POLLOUT;
        if (ev == 0) ev = POLLIN;  // still watch for HUP/ERR
        pfds.push_back({c.fd, ev, 0});
        pconns.push_back(&c);
      }
      int rc;
      do {
        rc = ::poll(pfds.data(), pfds.size(), -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) break;  // unrecoverable poll failure

      if (pfds[0].revents & POLLIN) {
        std::uint8_t drain[256];
        while (::read(wake_r, drain, sizeof drain) > 0) {
        }
      }
      if (pfds[1].revents & POLLIN) handle_accept();
      for (std::size_t i = 0; i < pconns.size(); ++i) {
        Conn& c = *pconns[i];
        const short re = pfds[i + 2].revents;
        if (re & (POLLIN | POLLHUP | POLLERR)) handle_read(c);
        if (!c.closed && (re & POLLOUT)) flush_conn(c);
      }
    }
    // Teardown (still the poll thread, so no lock is needed on conns):
    // every outbox dies before the fds close, so completion callbacks
    // racing this shutdown drop their frames instead of queueing.
    for (Conn& c : conns) close_conn(c);
    conns.clear();
    conns_open.set(0);
  }
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;

Server::~Server() {
  if (impl_) stop();
}

std::uint16_t Server::port() const noexcept { return impl_->port; }

core::Result<Server> Server::start(serve::ShardRouter& router, ServerConfig cfg) {
  if (cfg.max_connections < 1) {
    return Status{ErrorCode::kBadInput, "ServerConfig: max_connections must be >= 1"};
  }
  if (cfg.max_inflight_per_conn < 1) {
    return Status{ErrorCode::kBadInput,
                  "ServerConfig: max_inflight_per_conn must be >= 1"};
  }
  auto impl = std::make_unique<Impl>(router, cfg);

  impl->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) {
    return Status{ErrorCode::kInternal, std::string("socket: ") + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl->listen_fd);
    return Status{ErrorCode::kBadInput, "ServerConfig: invalid host " + cfg.host};
  }
  if (::bind(impl->listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(impl->listen_fd, 128) < 0) {
    const Status st{ErrorCode::kUnavailable,
                    "bind/listen " + cfg.host + ":" + std::to_string(cfg.port) + ": " +
                        std::strerror(errno)};
    ::close(impl->listen_fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen) < 0) {
    ::close(impl->listen_fd);
    return Status{ErrorCode::kInternal,
                  std::string("getsockname: ") + std::strerror(errno)};
  }
  impl->port = ntohs(bound.sin_port);
  if (Status st = set_nonblocking(impl->listen_fd); !st.is_ok()) {
    ::close(impl->listen_fd);
    return st;
  }

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    ::close(impl->listen_fd);
    return Status{ErrorCode::kInternal, std::string("pipe: ") + std::strerror(errno)};
  }
  impl->wake_r = pipefd[0];
  impl->wake_w = pipefd[1];
  if (Status st = set_nonblocking(impl->wake_r); !st.is_ok()) {
    ::close(impl->listen_fd);
    ::close(impl->wake_r);
    ::close(impl->wake_w);
    return st;
  }
  // The write end stays blocking-safe too: wake() tolerates a full pipe.
  (void)set_nonblocking(impl->wake_w);

  Impl* ip = impl.get();  // Impl address is stable across Server moves
  impl->poll_thread = std::thread([ip] { ip->poll_main(); });
  return Server(std::move(impl));
}

void Server::stop() {
  Impl& im = *impl_;
  std::call_once(im.stop_once, [&im] {
    // Ordering contract: see stopping_ declaration — the release store
    // precedes the wake that makes the poll loop re-check it.
    im.stopping_.store(true, std::memory_order_release);
    im.wake();
    if (im.poll_thread.joinable()) im.poll_thread.join();
    ::close(im.listen_fd);
    // The poll thread is gone and every outbox is dead, but completion
    // callbacks for requests still inside the router may yet run — and
    // they write to the wake pipe.  Hold the pipe open until the last one
    // has finished, then reclaim the fds.
    {
      core::MutexLock lock(im.inflight_mu_);
      while (im.inflight_ != 0) im.inflight_zero_.wait(lock);
    }
    ::close(im.wake_r);
    ::close(im.wake_w);
  });
}

}  // namespace bitflow::net
