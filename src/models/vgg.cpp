#include "models/vgg.hpp"

#include <random>

namespace bitflow::models {

std::vector<OperatorBenchmark> table4_benchmarks() {
  using graph::LayerKind;
  // VGG-16 at 224x224: the input extents of each benchmarked operator.
  return {
      {"conv2.1", LayerKind::kConv, 112, 112, 64, 128, 3, 1, 1},
      {"conv3.1", LayerKind::kConv, 56, 56, 128, 256, 3, 1, 1},
      {"conv4.1", LayerKind::kConv, 28, 28, 256, 512, 3, 1, 1},
      {"conv5.1", LayerKind::kConv, 14, 14, 512, 512, 3, 1, 1},
      {"fc6", LayerKind::kFc, 1, 1, 25088, 4096, 0, 1, 0},
      {"fc7", LayerKind::kFc, 1, 1, 4096, 4096, 0, 1, 0},
      {"pool4", LayerKind::kPool, 28, 28, 512, 0, 2, 2, 0},
      {"pool5", LayerKind::kPool, 14, 14, 512, 0, 2, 2, 0},
  };
}

VggConfig vgg16() {
  VggConfig c;
  c.name = "VGG16";
  c.conv_blocks = {{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}};
  return c;
}

VggConfig vgg19() {
  VggConfig c;
  c.name = "VGG19";
  c.conv_blocks = {
      {64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512}, {512, 512, 512, 512}};
  return c;
}

FilterBank random_filters(std::int64_t k, std::int64_t kh, std::int64_t kw, std::int64_t c,
                          std::uint64_t seed) {
  FilterBank f(k, kh, kw, c);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (float& v : f.elements()) v = dist(rng);
  return f;
}

std::vector<float> random_fc_weights(std::int64_t n, std::int64_t k, std::uint64_t seed) {
  std::vector<float> w(static_cast<std::size_t>(n * k));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (float& v : w) v = dist(rng);
  return w;
}

graph::BinaryNetwork build_binary_vgg(const VggConfig& cfg, graph::NetworkConfig net_cfg,
                                      std::uint64_t seed) {
  graph::BinaryNetwork net(net_cfg);
  std::int64_t c = cfg.input_channels;
  std::int64_t hw = cfg.input_size;
  std::uint64_t layer_seed = seed;
  for (std::size_t block = 0; block < cfg.conv_blocks.size(); ++block) {
    for (std::size_t i = 0; i < cfg.conv_blocks[block].size(); ++i) {
      const std::int64_t k = cfg.conv_blocks[block][i];
      const std::string name =
          "conv" + std::to_string(block + 1) + "." + std::to_string(i + 1);
      net.add_conv(name, random_filters(k, 3, 3, c, ++layer_seed), /*stride=*/1, /*pad=*/1);
      c = k;
    }
    net.add_maxpool("pool" + std::to_string(block + 1), kernels::PoolSpec{2, 2, 2});
    hw /= 2;
  }
  std::int64_t n = hw * hw * c;
  for (std::size_t i = 0; i < cfg.fc_sizes.size(); ++i) {
    const std::int64_t k = cfg.fc_sizes[i];
    net.add_fc("fc" + std::to_string(i + 6), random_fc_weights(n, k, ++layer_seed), n, k);
    n = k;
  }
  net.finalize(graph::TensorDesc{cfg.input_size, cfg.input_size, cfg.input_channels});
  return net;
}

}  // namespace bitflow::models
