// VGG model builders and the paper's Table IV benchmark operator set.
//
// VGG (Simonyan & Zisserman) is the evaluation workload of the paper: 3x3
// convolutions exclusively, five conv blocks separated by 2x2/stride-2 max
// pools, then three fully connected layers.  Weights here are synthetically
// generated (seeded) — the timing experiments are weight-agnostic, and the
// accuracy experiment (Table V) uses the training substrate instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "tensor/filter_bank.hpp"

namespace bitflow::models {

/// One operator of the Table IV benchmark set.
struct OperatorBenchmark {
  std::string name;        ///< paper's operator name, e.g. "conv4.1"
  graph::LayerKind kind;
  std::int64_t h = 1;      ///< input height (fc: 1)
  std::int64_t w = 1;      ///< input width (fc: 1)
  std::int64_t c = 0;      ///< input channels (fc: input neuron count)
  std::int64_t k = 0;      ///< filters / fc outputs (pool: 0)
  std::int64_t kernel = 3; ///< conv kernel or pool window extent
  std::int64_t stride = 1;
  std::int64_t pad = 1;    ///< conv input padding (pool: 0)
};

/// The 8 operators of Table IV: conv2.1, conv3.1, conv4.1, conv5.1, fc6,
/// fc7, pool4, pool5 — with VGG-16 extents at 224x224 input.
[[nodiscard]] std::vector<OperatorBenchmark> table4_benchmarks();

/// Architecture description of a VGG variant.
struct VggConfig {
  std::string name;
  /// Output channel count of each conv in each block (pool after a block).
  std::vector<std::vector<std::int64_t>> conv_blocks;
  std::int64_t input_size = 224;  ///< square input extent
  std::int64_t input_channels = 3;
  std::vector<std::int64_t> fc_sizes = {4096, 4096, 1000};
};

[[nodiscard]] VggConfig vgg16();
[[nodiscard]] VggConfig vgg19();

/// Deterministic synthetic weights (uniform in [-1, 1)).
[[nodiscard]] FilterBank random_filters(std::int64_t k, std::int64_t kh, std::int64_t kw,
                                        std::int64_t c, std::uint64_t seed);
[[nodiscard]] std::vector<float> random_fc_weights(std::int64_t n, std::int64_t k,
                                                   std::uint64_t seed);

/// Builds and finalizes a binarized VGG with seeded random weights.
[[nodiscard]] graph::BinaryNetwork build_binary_vgg(const VggConfig& cfg,
                                                    graph::NetworkConfig net_cfg,
                                                    std::uint64_t seed = 42);

}  // namespace bitflow::models
