#include "tune/tuner.hpp"

#include <random>
#include <vector>

#include "bitpack/packer.hpp"
#include "core/ait.hpp"
#include "core/failpoint.hpp"
#include "kernels/bgemm.hpp"
#include "kernels/conv_spec.hpp"
#include "kernels/pressedconv.hpp"
#include "runtime/timer.hpp"
#include "telemetry/metrics.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::tune {

namespace {

/// Below this direct-conv arithmetic intensity the layer is memory-bound and
/// register-tile choice barely moves the needle: the search drops T = 16 and
/// grain candidates and measures with a smaller repetition budget.
constexpr double kShallowAit = 24.0;

/// A non-default candidate must beat the static heuristic's plan by more
/// than this fraction to win the search.  The quick per-candidate budget has
/// a few percent of timing noise (shared hosts drift further); without
/// hysteresis a phantom win could flip the plan run-to-run (and persist the
/// flip in the cache) for no real gain.  The margin is applied on a
/// confirmation re-measurement of the two finalists at a 3x budget.
constexpr double kSwitchMargin = 0.08;

struct Counters {
  telemetry::Counter& hit = telemetry::registry().counter("tune.cache_hit");
  telemetry::Counter& miss = telemetry::registry().counter("tune.cache_miss");
  telemetry::Counter& searches = telemetry::registry().counter("tune.searches");
  telemetry::Counter& candidates = telemetry::registry().counter("tune.candidates");
  telemetry::Counter& fallback = telemetry::registry().counter("tune.search_fallback");
  telemetry::Histogram& search_ms = telemetry::registry().histogram("tune.search_ms");
};

Counters& counters() {
  static Counters c;
  return c;
}

/// One point of the search space.  par_grain only varies for conv layers.
struct Candidate {
  bool tiled = false;
  std::int64_t tile = 0;
  std::int64_t par_grain = 1;
};

bool same_plan(const Decision& a, const Candidate& b) {
  return a.tiled == b.tiled && a.tile == b.tile && a.par_grain == b.par_grain;
}

void fill_random(std::uint64_t* words, std::int64_t n, std::mt19937_64& rng) {
  for (std::int64_t i = 0; i < n; ++i) words[i] = rng();
}

/// Zeroes the tail bits of every packed group so the synthetic operands obey
/// the library-wide invariant (Eq. 1 needs zero tails; the kernels assume
/// it, and ASan-clean candidates must not differ from production data).
void mask_tails(std::uint64_t* words, std::int64_t groups, std::int64_t words_per_group,
                std::int64_t valid_bits) {
  const std::int64_t rem = valid_bits % 64;
  if (rem == 0) return;
  const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
  for (std::int64_t g = 0; g < groups; ++g) {
    words[g * words_per_group + words_per_group - 1] &= mask;
  }
}

double ait_of(const LayerWorkload& wl) {
  return core::analyze_binary_conv({wl.in_h, wl.in_w, wl.c, wl.k, wl.kh, wl.kw}).ait_direct;
}

std::vector<Candidate> enumerate(const LayerWorkload& wl, bool shallow) {
  std::vector<std::int64_t> grains{1};
  if (!shallow && wl.kind == 0 && wl.threads > 1) {
    // Row-granular split of the fused n*H*W range: each worker owns whole
    // output rows, trading balance for streak locality.  Pointless on one
    // thread — the single block covers the range either way.
    const kernels::ConvSpec spec{wl.kh, wl.kw, wl.stride};
    const std::int64_t out_w = spec.out_w(wl.in_w);
    if (out_w > 1) grains.push_back(out_w);
  }
  std::vector<Candidate> out;
  for (const std::int64_t g : grains) out.push_back({false, 0, g});
  const kernels::TileWidthSet widths = kernels::supported_tile_widths(wl.isa);
  for (std::int64_t i = 0; i < widths.count; ++i) {
    const std::int64_t t = widths.widths[static_cast<std::size_t>(i)];
    if (wl.k < t) continue;          // tiling needs at least one full tile
    if (shallow && t == 16) continue;  // widest tile only pays when compute-bound
    for (const std::int64_t g : grains) out.push_back({true, t, g});
  }
  return out;
}

/// Measures one conv candidate on synthetic operands of the layer's exact
/// padded shapes, running the variant (dot vs fused binarize) the network
/// will actually dispatch.  Returns best-of-N seconds.
double measure_conv(const LayerWorkload& wl, const Candidate& cand, const PackedTensor& in,
                    const PackedFilterBank& bank, const TiledFilterBank* tiled_bank,
                    runtime::ThreadPool& pool, int min_iters, double min_total) {
  kernels::ConvSpec spec{wl.kh, wl.kw, wl.stride};
  spec.par_grain = cand.par_grain;
  const std::int64_t out_h = spec.out_h(wl.in_h);
  const std::int64_t out_w = spec.out_w(wl.in_w);
  const PackedTensor* in_ptrs[1] = {&in};
  if (wl.fused_binarize) {
    PackedTensor out(out_h, out_w, wl.k);
    PackedTensor* out_ptrs[1] = {&out};
    if (cand.tiled) {
      const auto fn =
          kernels::conv_binarize_tiled_batch_kernel(wl.isa, wl.vpopcnt, cand.tile);
      return runtime::measure_best_seconds(
          [&] { fn(in_ptrs, 1, *tiled_bank, spec, nullptr, pool, out_ptrs, 0); }, min_iters,
          min_total);
    }
    const auto fn = kernels::conv_binarize_batch_kernel(wl.isa, wl.vpopcnt);
    return runtime::measure_best_seconds(
        [&] { fn(in_ptrs, 1, bank, spec, nullptr, pool, out_ptrs, 0); }, min_iters, min_total);
  }
  Tensor out = Tensor::hwc(out_h, out_w, wl.k);
  Tensor* out_ptrs[1] = {&out};
  if (cand.tiled) {
    const auto fn = kernels::conv_dot_tiled_batch_kernel(wl.isa, wl.vpopcnt, cand.tile);
    return runtime::measure_best_seconds(
        [&] { fn(in_ptrs, 1, *tiled_bank, spec, pool, out_ptrs); }, min_iters, min_total);
  }
  const auto fn = kernels::conv_dot_batch_kernel(wl.isa, wl.vpopcnt);
  return runtime::measure_best_seconds([&] { fn(in_ptrs, 1, bank, spec, pool, out_ptrs); },
                                       min_iters, min_total);
}

double measure_fc(const LayerWorkload& wl, const Candidate& cand, const PackedMatrix& a,
                  const PackedMatrix& w, const TiledBitMatrix* tiled_w,
                  runtime::ThreadPool& pool, int min_iters, double min_total) {
  if (wl.fused_binarize) {
    PackedMatrix out(1, wl.k);
    if (cand.tiled) {
      const auto fn = kernels::bgemm_binarize_rows_tiled_kernel(wl.isa, wl.vpopcnt, cand.tile);
      return runtime::measure_best_seconds(
          [&] { fn(a, 1, *tiled_w, nullptr, pool, out); }, min_iters, min_total);
    }
    const auto fn = kernels::bgemm_binarize_rows_kernel(wl.isa, wl.vpopcnt);
    return runtime::measure_best_seconds([&] { fn(a, 1, w, nullptr, pool, out); }, min_iters,
                                         min_total);
  }
  std::vector<float> y(static_cast<std::size_t>(wl.k));
  if (cand.tiled) {
    const auto fn = kernels::bgemm_rows_tiled_kernel(wl.isa, wl.vpopcnt, cand.tile);
    return runtime::measure_best_seconds([&] { fn(a, 1, *tiled_w, pool, y.data()); }, min_iters,
                                         min_total);
  }
  const auto fn = kernels::bgemm_rows_kernel(wl.isa, wl.vpopcnt);
  return runtime::measure_best_seconds([&] { fn(a, 1, w, pool, y.data()); }, min_iters,
                                       min_total);
}

}  // namespace

Key key_for(const LayerWorkload& wl) {
  Key key;
  key.kind = wl.kind;
  key.isa = static_cast<std::uint8_t>(wl.isa);
  key.vpopcnt = wl.vpopcnt ? 1 : 0;
  key.threads = wl.threads;
  key.in_h = wl.in_h;
  key.in_w = wl.in_w;
  key.c = wl.c;
  key.k = wl.k;
  key.kh = wl.kh;
  key.kw = wl.kw;
  key.stride = wl.stride;
  return key;
}

Decision default_decision(const LayerWorkload& wl, bool tile_weights) {
  Decision d;
  const std::int64_t tile = kernels::weight_tile_width(wl.isa);
  if (tile_weights && wl.k >= tile) {
    d.tiled = true;
    d.tile = tile;
  }
  return d;
}

bool decision_valid(const Decision& d, const LayerWorkload& wl) {
  if (d.par_grain < 1) return false;
  if (!d.tiled) return d.tile == 0;
  return kernels::supported_tile_widths(wl.isa).contains(d.tile) && wl.k >= d.tile;
}

Decision search(const LayerWorkload& wl, runtime::ThreadPool& pool, bool tile_weights) {
  Counters& c = counters();
  c.searches.add();
  try {
    const runtime::Timer search_timer;
    const bool shallow = ait_of(wl) < kShallowAit;
    const int min_iters = shallow ? 3 : 5;
    const double min_total = shallow ? 0.004 : 0.012;
    const std::vector<Candidate> cands = enumerate(wl, shallow);
    c.candidates.add(static_cast<std::uint64_t>(cands.size()));

    Decision best;
    best.source = DecisionSource::kSearch;
    best.candidates = static_cast<std::int32_t>(cands.size());
    if (cands.size() == 1) {
      // One executable plan (e.g. K < every tile width): nothing to measure.
      best.tiled = cands[0].tiled;
      best.tile = cands[0].tile;
      best.par_grain = cands[0].par_grain;
      return best;
    }

    // Synthetic operands at the layer's exact shapes, deterministic so two
    // finalizes of the same network search identical data.
    std::mt19937_64 rng(0x42u);
    const Decision def = default_decision(wl, tile_weights);
    double best_s = -1.0, def_s = -1.0;
    Candidate best_cand;
    if (wl.kind == 0) {
      PackedTensor in(wl.in_h, wl.in_w, wl.c);
      fill_random(in.words(), in.num_words(), rng);
      mask_tails(in.words(), wl.in_h * wl.in_w, in.words_per_pixel(), wl.c);
      PackedFilterBank bank(wl.k, wl.kh, wl.kw, wl.c);
      fill_random(bank.words(), wl.k * bank.words_per_filter(), rng);
      mask_tails(bank.words(), wl.k * wl.kh * wl.kw, bank.words_per_pixel(), wl.c);
      std::int64_t tiled_width = 0;  // the interleave is rebuilt per tile width
      TiledFilterBank tiled_bank;
      const auto measure_cand = [&](const Candidate& cand, int iters, double total) {
        if (cand.tiled && cand.tile != tiled_width) {
          tiled_bank = bitpack::tile_filters(bank, cand.tile);
          tiled_width = cand.tile;
        }
        return measure_conv(wl, cand, in, bank, &tiled_bank, pool, iters, total);
      };
      for (const Candidate& cand : cands) {
        BF_FAILPOINT("tune.search");
        const double s = measure_cand(cand, min_iters, min_total);
        if (same_plan(def, cand)) def_s = s;
        if (best_s < 0.0 || s < best_s) {
          best_s = s;
          best_cand = cand;
        }
      }
      // Confirmation pass: leaving the static heuristic's plan takes a win
      // over it on a 3x repetition budget, beyond the noise margin.  A
      // phantom quick-pass win must not flip the plan (and persist the flip).
      if (def_s >= 0.0 && !same_plan(def, best_cand)) {
        const Candidate def_cand{def.tiled, def.tile, def.par_grain};
        const double cb = measure_cand(best_cand, 2 * min_iters, 3.0 * min_total);
        const double cd = measure_cand(def_cand, 2 * min_iters, 3.0 * min_total);
        if (cb > cd * (1.0 - kSwitchMargin)) {
          best_cand = def_cand;
          best_s = cd;
        } else {
          best_s = cb;
        }
      }
    } else {
      PackedMatrix a(1, wl.c);
      fill_random(a.words(), a.num_words(), rng);
      mask_tails(a.words(), 1, a.words_per_row(), wl.c);
      PackedMatrix w(wl.k, wl.c);
      fill_random(w.words(), w.num_words(), rng);
      mask_tails(w.words(), wl.k, w.words_per_row(), wl.c);
      std::int64_t tiled_width = 0;
      TiledBitMatrix tiled_w;
      const auto measure_cand = [&](const Candidate& cand, int iters, double total) {
        if (cand.tiled && cand.tile != tiled_width) {
          tiled_w = bitpack::tile_fc_weights(w, cand.tile);
          tiled_width = cand.tile;
        }
        return measure_fc(wl, cand, a, w, &tiled_w, pool, iters, total);
      };
      for (const Candidate& cand : cands) {
        BF_FAILPOINT("tune.search");
        const double s = measure_cand(cand, min_iters, min_total);
        if (same_plan(def, cand)) def_s = s;
        if (best_s < 0.0 || s < best_s) {
          best_s = s;
          best_cand = cand;
        }
      }
      // Same confirmation-pass hysteresis as the conv branch above.
      if (def_s >= 0.0 && !same_plan(def, best_cand)) {
        const Candidate def_cand{def.tiled, def.tile, def.par_grain};
        const double cb = measure_cand(best_cand, 2 * min_iters, 3.0 * min_total);
        const double cd = measure_cand(def_cand, 2 * min_iters, 3.0 * min_total);
        if (cb > cd * (1.0 - kSwitchMargin)) {
          best_cand = def_cand;
          best_s = cd;
        } else {
          best_s = cb;
        }
      }
    }
    best.tiled = best_cand.tiled;
    best.tile = best_cand.tile;
    best.par_grain = best_cand.par_grain;
    best.best_ms = best_s * 1e3;
    c.search_ms.record(static_cast<std::int64_t>(search_timer.elapsed_ms()));
    return best;
  } catch (...) {
    // A fault mid-search (injected or real) must leave the layer on a valid
    // plan: the static default, exactly what an untuned finalize commits.
    c.fallback.add();
    return default_decision(wl, tile_weights);
  }
}

Decision decide(const LayerWorkload& wl, TuneCache& cache, runtime::ThreadPool& pool,
                bool tile_weights, bool* searched) {
  Counters& c = counters();
  if (searched != nullptr) *searched = false;
  const Key key = key_for(wl);
  if (const Decision* hit = cache.lookup(key)) {
    if (decision_valid(*hit, wl)) {
      c.hit.add();
      Decision d = *hit;
      d.source = DecisionSource::kCache;
      return d;
    }
  }
  c.miss.add();
  if (searched != nullptr) *searched = true;
  Decision d = search(wl, pool, tile_weights);
  // Fallback decisions are not persisted: the next finalize should re-try
  // the search rather than inherit a fault's shadow.
  if (d.source == DecisionSource::kSearch) cache.put(key, d);
  return d;
}

}  // namespace bitflow::tune
