#include "tune/tune_cache.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "core/failpoint.hpp"
#include "telemetry/metrics.hpp"

namespace bitflow::tune {

namespace {

constexpr char kMagic[4] = {'B', 'F', 'T', 'C'};
constexpr std::uint32_t kFormatVersion = 1;

// Plausibility caps, in the io::Model spirit: any field outside these is
// corruption (or an attack), and parsing stops there.
constexpr std::int64_t kMaxExtent = std::int64_t{1} << 24;
constexpr std::int32_t kMaxThreads = 1 << 16;

telemetry::Counter& io_error_counter() {
  static telemetry::Counter& c = telemetry::registry().counter("tune.cache_io_error");
  return c;
}

std::uint32_t host_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// --- little-endian pod helpers on a byte string ----------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Bounded cursor over the input image; every read checks remaining bytes.
struct Reader {
  const unsigned char* p;
  std::size_t left;

  bool u8(std::uint8_t& v) {
    if (left < 1) return false;
    v = p[0];
    ++p;
    --left;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }
  bool i32(std::int32_t& v) {
    std::uint32_t u = 0;
    if (!u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
};

bool extent_ok(std::int64_t v) { return v >= 1 && v <= kMaxExtent; }

/// Full per-entry semantic validation.  Anything a later consumer would have
/// to double-check is rejected here, so a surviving entry is always a
/// *well-formed* plan (decision_valid() still re-checks it against the live
/// layer, because the shape key could legitimately collide across schemas).
bool entry_ok(const Entry& e) {
  const Key& k = e.key;
  if (k.kind > 1 || k.isa > 3 || k.vpopcnt > 1) return false;
  if (k.threads < 1 || k.threads > kMaxThreads) return false;
  if (!extent_ok(k.in_h) || !extent_ok(k.in_w) || !extent_ok(k.c) || !extent_ok(k.k) ||
      !extent_ok(k.kh) || !extent_ok(k.kw)) {
    return false;
  }
  if (k.stride < 1 || k.stride > kMaxExtent) return false;
  const Decision& d = e.decision;
  if (d.tiled) {
    if (d.tile != 4 && d.tile != 8 && d.tile != 16) return false;
  } else if (d.tile != 0) {
    return false;
  }
  if (d.par_grain < 1 || d.par_grain > kMaxExtent) return false;
  if (d.source != DecisionSource::kSearch && d.source != DecisionSource::kCache) return false;
  if (d.candidates < 0 || d.candidates > (1 << 20)) return false;
  if (!std::isfinite(d.best_ms) || d.best_ms < 0.0) return false;
  return true;
}

}  // namespace

const Decision* TuneCache::lookup(const Key& key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return &e.decision;
  }
  return nullptr;
}

void TuneCache::put(const Key& key, const Decision& decision) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.decision = decision;
      return;
    }
  }
  if (entries_.size() >= kCacheMaxEntries) return;
  entries_.push_back(Entry{key, decision});
}

std::string TuneCache::serialize() const {
  std::string out;
  out.reserve(20 + entries_.size() * 96);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kFormatVersion);
  put_u32(out, kCacheSchemaVersion);
  put_u32(out, host_cores());
  put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    put_u8(out, e.key.kind);
    put_u8(out, e.key.isa);
    put_u8(out, e.key.vpopcnt);
    put_u8(out, 0);  // reserved
    put_i32(out, e.key.threads);
    put_i64(out, e.key.in_h);
    put_i64(out, e.key.in_w);
    put_i64(out, e.key.c);
    put_i64(out, e.key.k);
    put_i64(out, e.key.kh);
    put_i64(out, e.key.kw);
    put_i64(out, e.key.stride);
    put_u8(out, e.decision.tiled ? 1 : 0);
    put_u8(out, static_cast<std::uint8_t>(e.decision.source));
    put_u8(out, 0);  // reserved
    put_u8(out, 0);  // reserved
    put_i32(out, e.decision.candidates);
    put_i64(out, e.decision.tile);
    put_i64(out, e.decision.par_grain);
    put_f64(out, e.decision.best_ms);
  }
  return out;
}

void TuneCache::deserialize(const char* data, std::size_t size) {
  entries_.clear();
  if (data == nullptr || size > kCacheMaxBytes) return;
  Reader r{reinterpret_cast<const unsigned char*>(data), size};
  if (r.left < sizeof kMagic || std::memcmp(r.p, kMagic, sizeof kMagic) != 0) return;
  r.p += sizeof kMagic;
  r.left -= sizeof kMagic;
  std::uint32_t format = 0, schema = 0, cores = 0, count = 0;
  if (!r.u32(format) || !r.u32(schema) || !r.u32(cores) || !r.u32(count)) return;
  // Any header mismatch makes every entry stale: written by a different
  // code version or measured on a different machine.
  if (format != kFormatVersion || schema != kCacheSchemaVersion || cores != host_cores()) {
    return;
  }
  if (count > kCacheMaxEntries) return;
  entries_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    std::uint8_t reserved = 0, tiled = 0, source = 0, res2 = 0, res3 = 0;
    const bool ok = r.u8(e.key.kind) && r.u8(e.key.isa) && r.u8(e.key.vpopcnt) &&
                    r.u8(reserved) && r.i32(e.key.threads) && r.i64(e.key.in_h) &&
                    r.i64(e.key.in_w) && r.i64(e.key.c) && r.i64(e.key.k) && r.i64(e.key.kh) &&
                    r.i64(e.key.kw) && r.i64(e.key.stride) && r.u8(tiled) && r.u8(source) &&
                    r.u8(res2) && r.u8(res3) && r.i32(e.decision.candidates) &&
                    r.i64(e.decision.tile) && r.i64(e.decision.par_grain) &&
                    r.f64(e.decision.best_ms);
    if (!ok) return;  // truncated mid-entry: keep the validated prefix
    if (tiled > 1 || source > 2) return;
    e.decision.tiled = tiled == 1;
    e.decision.source = static_cast<DecisionSource>(source);
    if (!entry_ok(e)) return;  // implausible fields: stop at the anomaly
    put(e.key, e.decision);    // put() dedups colliding keys in the file
  }
}

void TuneCache::load(const std::string& path) {
  entries_.clear();
  if (path.empty()) return;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return;  // a cold start, not an error
    BF_FAILPOINT("tune.cache_io");
    std::string bytes;
    bytes.resize(kCacheMaxBytes + 1);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    const std::streamsize got = in.gcount();
    if (in.bad() || got <= 0 || static_cast<std::size_t>(got) > kCacheMaxBytes) {
      io_error_counter().add();
      return;
    }
    deserialize(bytes.data(), static_cast<std::size_t>(got));
  } catch (...) {
    // Injected faults, allocation failure, anything: a broken cache read
    // must only ever cost a re-search.
    entries_.clear();
    io_error_counter().add();
  }
}

bool TuneCache::save(const std::string& path) const {
  if (path.empty()) return false;
  try {
    const std::string bytes = serialize();
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        io_error_counter().add();
        return false;
      }
      BF_FAILPOINT("tune.cache_io");
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out) {
        io_error_counter().add();
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      io_error_counter().add();
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  } catch (...) {
    io_error_counter().add();
    return false;
  }
}

std::string default_cache_path() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env access.
  const char* p = std::getenv("BITFLOW_TUNE_CACHE");
  return p == nullptr ? std::string() : std::string(p);
}

}  // namespace bitflow::tune
