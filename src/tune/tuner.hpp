// Finalize-time kernel auto-tuner (the "empirical scheduler" companion to
// graph/scheduler.hpp's analytical rules).
//
// The scheduler's channel-multiple rules pick the ISA; within an ISA the
// repository still has real choices — filter-major vs register-tiled
// kernels, the tile width T (supported_tile_widths), and the parallel-axis
// grain of the fused H*W range — whose best setting depends on the layer's
// shape in ways no closed-form rule captures (K < T makes tiling impossible,
// small-C shapes hit the hoisted 3x3 specializations only in some variants,
// T = 16 needs enough independent work to cover its register pressure).
//
// search() measures every valid candidate on synthetic data of the layer's
// exact shapes with the layer's real kernel entry points and commits the
// fastest; decide() consults a persistent TuneCache first so warm starts
// skip the measurement pass entirely.  The search only ever chooses *which*
// bit-exact kernel runs — every candidate computes the identical output
// bits, so a tuning decision can cost time but never correctness (the
// parity tests assert this across ISA variants).
//
// Search effort is budgeted by the paper's AIT model (core/ait.hpp): a
// memory-bound layer (low ait_direct) gains little from register-tile
// tweaks, so it gets a shallow search — fewer repetitions, no T = 16 and no
// grain candidates — keeping cold finalize time proportional to where the
// tuning can actually pay.
#pragma once

#include <cstdint>

#include "runtime/thread_pool.hpp"
#include "simd/isa.hpp"
#include "tune/tune_cache.hpp"

namespace bitflow::tune {

/// Everything the tuner needs to know about one layer.  For conv layers the
/// extents are the *padded* input the kernel actually reads (the zero-cost
/// padding buffer); for fc layers c = input neurons, k = output neurons and
/// the spatial/filter fields stay 1.
struct LayerWorkload {
  std::uint8_t kind = 0;  ///< 0 = conv, 1 = fc
  simd::IsaLevel isa = simd::IsaLevel::kU64;
  bool vpopcnt = false;  ///< AVX-512 popcount flavour actually dispatched
  int threads = 1;       ///< pool width the plan will run under
  std::int64_t in_h = 1, in_w = 1, c = 0, k = 0, kh = 1, kw = 1, stride = 1;
  /// True for hidden layers (fused binarize kernel); false for the network's
  /// last layer (raw-dot kernel).  The tuner measures the variant that will
  /// actually run.
  bool fused_binarize = true;
};

/// The cache key identifying `wl` (kind, ISA variant, threads, full shape).
[[nodiscard]] Key key_for(const LayerWorkload& wl);

/// The static heuristic finalize() commits with tuning off — register-tiled
/// at weight_tile_width(isa) when `tile_weights` allows and K is wide
/// enough, filter-major otherwise.  Also the fallback when a search faults.
[[nodiscard]] Decision default_decision(const LayerWorkload& wl, bool tile_weights);

/// True when `d` is executable for `wl` as-is: the tile width has a kernel
/// instantiation for wl.isa and K covers it.  Cached decisions must pass
/// this before being committed — a stale entry falls back to re-search,
/// never to a wrong plan.
[[nodiscard]] bool decision_valid(const Decision& d, const LayerWorkload& wl);

/// Measures every valid candidate for `wl` on `pool` and returns the
/// fastest (source = kSearch).  Never throws: any fault mid-search (see the
/// tune.search failpoint) returns default_decision(wl, tile_weights) with
/// source = kDefault instead.
[[nodiscard]] Decision search(const LayerWorkload& wl, runtime::ThreadPool& pool,
                              bool tile_weights);

/// The finalize() entry point: cache lookup -> validation -> hit, else
/// search + cache insert.  `searched` (optional) reports whether a live
/// search ran — the caller persists the cache only if one did.  Telemetry:
/// tune.cache_hit / tune.cache_miss count the outcomes.
[[nodiscard]] Decision decide(const LayerWorkload& wl, TuneCache& cache,
                              runtime::ThreadPool& pool, bool tile_weights,
                              bool* searched = nullptr);

}  // namespace bitflow::tune
