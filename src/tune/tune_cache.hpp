// Persistent auto-tuning cache: the on-disk memory of finalize-time kernel
// search (tune/tuner.hpp).
//
// A cache entry maps one layer workload key — kind, ISA variant, thread
// count and full shape — to the execution-plan decision the search committed
// (kernel variant, register-tile width, parallel grain).  Warm starts look
// decisions up instead of re-measuring, so a server restart skips the
// microbenchmark pass entirely.
//
// Trust model: the cache is an *accelerator*, never an authority.  Every
// failure mode — missing file, truncation, bit flips, a schema or host
// mismatch — degrades to an empty (or shorter) cache and therefore to
// re-search; load() never throws and a cached decision is re-validated
// against the live layer before it is committed (tune::decision_valid).  A
// corrupt cache can cost time, never correctness.
//
// File format (all integers little-endian, following the io::Model
// discipline of bounded, validated reads):
//   magic "BFTC" | u32 format | u32 schema | u32 host_cores | u32 count
//   then `count` fixed-size entries (key fields, then decision fields).
// `schema` is kCacheSchemaVersion and changes whenever the search space or
// decision semantics change; `host_cores` pins the file to the machine that
// measured it.  Either mismatching means every entry is stale: the whole
// file is ignored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitflow::tune {

/// Bump whenever the candidate space, measurement method or Decision
/// semantics change: entries written under any other schema are ignored
/// wholesale (silent re-search, never a stale plan).
inline constexpr std::uint32_t kCacheSchemaVersion = 1;

/// Hard ceiling on a cache file's size; anything larger is treated as
/// corrupt.  At 96 bytes per entry this bounds the cache to ~10k layers,
/// far beyond any real network.
inline constexpr std::size_t kCacheMaxBytes = std::size_t{1} << 20;

/// Maximum entries accepted from one file (also the in-memory put() cap).
inline constexpr std::uint32_t kCacheMaxEntries = 4096;

/// Where a layer's committed execution plan came from.
enum class DecisionSource : std::uint8_t {
  kDefault = 0,  ///< static heuristic (tuning off, or search fell back)
  kSearch = 1,   ///< measured this finalize
  kCache = 2,    ///< measured by an earlier finalize, loaded from disk
};

[[nodiscard]] constexpr const char* decision_source_name(DecisionSource s) noexcept {
  switch (s) {
    case DecisionSource::kDefault: return "default";
    case DecisionSource::kSearch: return "search";
    case DecisionSource::kCache: return "cache";
  }
  return "?";
}

/// One committed execution-plan choice for a layer.
struct Decision {
  bool tiled = false;          ///< register-tiled kernel vs filter-major
  std::int64_t tile = 0;       ///< tile width T when tiled, 0 otherwise
  std::int64_t par_grain = 1;  ///< ConvSpec::par_grain (conv only; 1 = pixel split)
  DecisionSource source = DecisionSource::kDefault;
  double best_ms = 0.0;        ///< winning candidate's measured time (search/cache)
  std::int32_t candidates = 0; ///< how many candidates the search measured
};

/// Workload identity of one layer.  `kind` 0 = conv (extents are the padded
/// input the kernel actually reads), 1 = fc (c = input neurons, k = output
/// neurons, spatial/filter fields 1).  `threads` is the pool width the plan
/// was measured with — a different serving configuration re-searches.
struct Key {
  std::uint8_t kind = 0;
  std::uint8_t isa = 0;     ///< static_cast<uint8_t>(simd::IsaLevel)
  std::uint8_t vpopcnt = 0; ///< AVX-512 popcount flavour (LUT vs native)
  std::int32_t threads = 1;
  std::int64_t in_h = 1, in_w = 1, c = 0, k = 0, kh = 1, kw = 1, stride = 1;

  [[nodiscard]] bool operator==(const Key&) const = default;
};

struct Entry {
  Key key;
  Decision decision;
};

/// In-memory tuning cache with corruption-tolerant (de)serialization.
/// Linear-scan lookup: networks have tens of layers, not thousands.
class TuneCache {
 public:
  /// Replaces the contents with the entries of `path`.  A missing,
  /// unreadable, oversized, corrupt or mismatching file yields an empty (or
  /// truncated-at-first-anomaly) cache; this NEVER throws.
  void load(const std::string& path);

  /// Serializes the current entries to `path` (write-then-rename so readers
  /// never observe a half-written file).  Returns false on any failure;
  /// never throws.
  [[nodiscard]] bool save(const std::string& path) const;

  /// The decision stored for `key`, or nullptr.
  [[nodiscard]] const Decision* lookup(const Key& key) const;

  /// Inserts or replaces the entry for `key`.  Silently drops the insert
  /// once kCacheMaxEntries distinct keys are held.
  void put(const Key& key, const Decision& decision);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
  void clear() noexcept { entries_.clear(); }

  /// The exact byte image save() writes — exposed so the fuzz harness can
  /// mutate real images without touching the filesystem.
  [[nodiscard]] std::string serialize() const;

  /// Parses `size` bytes into the cache, replacing its contents.  Tolerant:
  /// parsing stops at the first anomaly (bad magic/header, short read,
  /// implausible field) keeping the entries validated so far; never throws.
  void deserialize(const char* data, std::size_t size);

 private:
  std::vector<Entry> entries_;
};

/// The cache path from $BITFLOW_TUNE_CACHE, or "" when unset (no
/// persistence; the search still runs and its decisions live for the
/// lifetime of the network).
[[nodiscard]] std::string default_cache_path();

}  // namespace bitflow::tune
