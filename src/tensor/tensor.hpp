// Dense float tensor with explicit memory layout (HWC vs CHW).
//
// BitFlow adopts the NHWC layout (paper Sec. III-B, "Locality-aware Layout"):
// with batch fixed at 1, an activation tensor is H x W x C stored row-major
// with interleaved channels, so element (h, w, c) lives at linear index
// (h*W + w)*C + c.  The CHW layout is kept alongside it for the layout
// ablation (bench_layout_ablation) and for interop with NCHW-first
// frameworks.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>

#include "core/check.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/shape.hpp"

namespace bitflow {

/// Memory layout of a rank-3 activation tensor (batch dimension is implicit
/// and always 1 in BitFlow: the engine targets inference latency).
enum class Layout : std::uint8_t {
  kHWC,  ///< row-major with interleaved channels (BitFlow's native layout)
  kCHW,  ///< channel-planar (the default of Caffe/MXNet/PyTorch)
};

/// Owning dense tensor of `float` with a rank-3 (H, W, C) shape and an
/// explicit layout.  Rank-1 / rank-2 tensors (fully connected activations and
/// weights) are represented with H=1 (and C=1) so a single type serves the
/// whole engine.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a zero-initialized tensor.
  Tensor(Shape shape, Layout layout = Layout::kHWC)
      : shape_(shape),
        layout_(layout),
        buffer_(static_cast<std::size_t>(shape.num_elements()) * sizeof(float)) {
    if (shape.rank() != 3 && shape.rank() != 2 && shape.rank() != 1) {
      throw std::invalid_argument("Tensor supports rank 1..3, got " + shape.to_string());
    }
  }

  /// Convenience factory for an H x W x C activation tensor.
  static Tensor hwc(std::int64_t h, std::int64_t w, std::int64_t c) {
    return Tensor(Shape{h, w, c}, Layout::kHWC);
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }
  [[nodiscard]] std::int64_t num_elements() const noexcept { return shape_.num_elements(); }

  [[nodiscard]] std::int64_t height() const noexcept { return shape_.rank() == 3 ? shape_[0] : 1; }
  [[nodiscard]] std::int64_t width() const noexcept {
    return shape_.rank() == 3 ? shape_[1] : (shape_.rank() == 2 ? shape_[0] : 1);
  }
  [[nodiscard]] std::int64_t channels() const noexcept {
    return shape_.rank() == 3 ? shape_[2] : (shape_.rank() == 2 ? shape_[1] : shape_[0]);
  }

  [[nodiscard]] float* data() noexcept { return reinterpret_cast<float*>(buffer_.data()); }
  [[nodiscard]] const float* data() const noexcept {
    return reinterpret_cast<const float*>(buffer_.data());
  }

  [[nodiscard]] std::span<float> elements() noexcept {
    return {data(), static_cast<std::size_t>(num_elements())};
  }
  [[nodiscard]] std::span<const float> elements() const noexcept {
    return {data(), static_cast<std::size_t>(num_elements())};
  }

  /// Linear index of (h, w, c) under the tensor's layout.
  [[nodiscard]] std::int64_t index(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    const std::int64_t H = height(), W = width(), C = channels();
    BF_DCHECK(h >= 0 && h < H && w >= 0 && w < W && c >= 0 && c < C, "element (", h, ", ", w,
              ", ", c, ") outside ", H, "x", W, "x", C);
    (void)H;
    if (layout_ == Layout::kHWC) return (h * W + w) * C + c;
    return (c * height() + h) * W + w;
  }

  [[nodiscard]] float at(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    return data()[index(h, w, c)];
  }
  float& at(std::int64_t h, std::int64_t w, std::int64_t c) noexcept {
    return data()[index(h, w, c)];
  }

  void zero() noexcept { buffer_.zero(); }

  /// Returns a copy of this tensor converted to the other layout
  /// (element-wise transpose; used by the layout ablation and by interop).
  [[nodiscard]] Tensor to_layout(Layout target) const {
    if (target == layout_) return *this;
    Tensor out(shape_, target);
    if (shape_.rank() != 3) {  // layouts coincide below rank 3
      out.buffer_ = buffer_;
      return out;
    }
    for (std::int64_t h = 0; h < height(); ++h) {
      for (std::int64_t w = 0; w < width(); ++w) {
        for (std::int64_t c = 0; c < channels(); ++c) {
          out.at(h, w, c) = at(h, w, c);
        }
      }
    }
    return out;
  }

 private:
  Shape shape_;
  Layout layout_ = Layout::kHWC;
  AlignedBuffer buffer_;
};

}  // namespace bitflow
