// Dense float filter bank: K filters of kh x kw x C, stored [k][i][j][c]
// (i.e. each filter is itself HWC).  This is the weight format produced by
// training and consumed by the float baselines; the binary engine packs it
// once at network initialization (network-level optimization).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/check.hpp"

namespace bitflow {

class FilterBank {
 public:
  FilterBank() = default;

  FilterBank(std::int64_t k, std::int64_t kh, std::int64_t kw, std::int64_t c)
      : k_(k), kh_(kh), kw_(kw), c_(c), data_(static_cast<std::size_t>(k * kh * kw * c), 0.0f) {
    BF_CHECK(k >= 0 && kh >= 0 && kw >= 0 && c >= 0, "FilterBank extents ", k, "x", kh, "x", kw,
             "x", c);
  }

  [[nodiscard]] std::int64_t num_filters() const noexcept { return k_; }
  [[nodiscard]] std::int64_t kernel_h() const noexcept { return kh_; }
  [[nodiscard]] std::int64_t kernel_w() const noexcept { return kw_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  [[nodiscard]] std::int64_t num_elements() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }

  [[nodiscard]] std::int64_t index(std::int64_t k, std::int64_t i, std::int64_t j,
                                   std::int64_t c) const noexcept {
    BF_DCHECK(k >= 0 && k < k_ && i >= 0 && i < kh_ && j >= 0 && j < kw_ && c >= 0 && c < c_,
              "tap (", k, ", ", i, ", ", j, ", ", c, ") outside ", k_, "x", kh_, "x", kw_, "x",
              c_);
    return ((k * kh_ + i) * kw_ + j) * c_ + c;
  }

  [[nodiscard]] float at(std::int64_t k, std::int64_t i, std::int64_t j,
                         std::int64_t c) const noexcept {
    return data_[static_cast<std::size_t>(index(k, i, j, c))];
  }
  float& at(std::int64_t k, std::int64_t i, std::int64_t j, std::int64_t c) noexcept {
    return data_[static_cast<std::size_t>(index(k, i, j, c))];
  }

  [[nodiscard]] std::span<float> elements() noexcept { return data_; }
  [[nodiscard]] std::span<const float> elements() const noexcept { return data_; }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

 private:
  std::int64_t k_ = 0, kh_ = 0, kw_ = 0, c_ = 0;
  std::vector<float> data_;
};

}  // namespace bitflow
