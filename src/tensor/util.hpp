// Deterministic fill / comparison helpers shared by tests, benches and
// examples.  All randomness in the repository flows through explicitly
// seeded generators so every experiment is reproducible run-to-run.
#pragma once

#include <cstdint>

#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow {

/// Fills a float tensor with uniform values in [lo, hi) from a seeded
/// Mersenne Twister.
void fill_uniform(Tensor& t, std::uint64_t seed, float lo = -1.0f, float hi = 1.0f);

/// Fills a packed tensor with uniformly random bits (tail bits of each pixel
/// word kept zero, preserving the packing invariant).
void fill_random_bits(PackedTensor& t, std::uint64_t seed);

/// Fills a packed filter bank with uniformly random bits (zero tails).
void fill_random_bits(PackedFilterBank& f, std::uint64_t seed);

/// Fills a packed matrix with uniformly random bits (zero tails).
void fill_random_bits(PackedMatrix& m, std::uint64_t seed);

/// Max absolute element-wise difference between two tensors of equal shape.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace bitflow
