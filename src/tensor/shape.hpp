// Small fixed-capacity shape type shared by every tensor in BitFlow.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>

#include "core/check.hpp"

namespace bitflow {

/// Shape of a dense tensor: up to 4 dimensions (BitFlow targets batch-1
/// inference, so the largest rank in practice is HWC = 3 plus an occasional
/// leading batch dimension).
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::int64_t> dims) : rank_(static_cast<int>(dims.size())) {
    BF_CHECK(rank_ <= kMaxRank, "shape rank ", rank_, " exceeds kMaxRank=", kMaxRank);
    int i = 0;
    for (std::int64_t d : dims) {
      BF_CHECK(d >= 0, "shape dimension ", i, " is negative: ", d);
      dims_[i++] = d;
    }
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }

  [[nodiscard]] std::int64_t operator[](int i) const noexcept {
    BF_DCHECK(i >= 0 && i < rank_, "shape axis ", i, " outside rank ", rank_);
    return dims_[i];
  }

  std::int64_t& operator[](int i) noexcept {
    BF_DCHECK(i >= 0 && i < rank_, "shape axis ", i, " outside rank ", rank_);
    return dims_[i];
  }

  /// Total number of elements (1 for a rank-0 scalar shape).
  [[nodiscard]] std::int64_t num_elements() const noexcept {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  [[nodiscard]] bool operator==(const Shape& other) const noexcept {
    if (rank_ != other.rank_) return false;
    for (int i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] bool operator!=(const Shape& other) const noexcept { return !(*this == other); }

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) { return os << s.to_string(); }

}  // namespace bitflow
