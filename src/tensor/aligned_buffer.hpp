// Cache-line / SIMD aligned owning byte buffer.
//
// All activation and weight storage in BitFlow lives in 64-byte aligned
// allocations so that AVX-512 loads of packed words never split cache lines
// and so the float baselines can use aligned vector loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

#include "core/failpoint.hpp"

namespace bitflow {

/// Allocation alignment used for every tensor buffer (one cache line, and
/// exactly the width of one AVX-512 register).
inline constexpr std::size_t kBufferAlignment = 64;

/// Owning, 64-byte aligned, zero-initialized byte buffer.
///
/// Zero-initialization is load-bearing, not a convenience: the paper's
/// zero-cost padding scheme (Fig. 5) pre-allocates the padded output and
/// relies on the margin staying all-zero bits.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t bytes) : size_(bytes) {
    if (bytes > 0) {
      BF_FAILPOINT("alloc.buffer");  // simulated bad_alloc lands here
      data_ = static_cast<std::byte*>(
          ::operator new[](bytes, std::align_val_t{kBufferAlignment}));
      std::memset(data_, 0, bytes);
    }
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ > 0) std::memcpy(data_, other.data_, size_);
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kBufferAlignment});
    }
  }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reset every byte to zero (used to re-arm padded margins between runs).
  void zero() noexcept {
    if (data_ != nullptr) std::memset(data_, 0, size_);
  }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace bitflow
