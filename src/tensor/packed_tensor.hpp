// Bit-packed binary tensors.
//
// A binary activation tensor holds values in {-1, +1}, encoded at the
// hardware level as {0, 1} (paper Sec. III: -1 -> 0, +1 -> 1).  PressedConv
// packs the bits along the *channel* dimension (Fig. 3): pixel (h, w) owns
// ceil(C/64) consecutive 64-bit words, and the words of neighbouring pixels
// are adjacent in memory (NHWC order).  This is the "locality-aware layout":
// a convolution window touches contiguous word runs, and the result of one
// layer is already in the layout the next layer consumes.
//
// Invariant maintained by every producer in the library: bits beyond the
// logical channel count C in the last word of a pixel are ZERO.  The binary
// dot product (Eq. 1) is computed as  dot = N - 2*popcount(xor)  with N the
// number of *valid* bits; zero tail bits in both operands XOR to zero and
// therefore never perturb the popcount.
#pragma once

#include <cstdint>
#include <span>

#include "core/check.hpp"
#include "tensor/aligned_buffer.hpp"

namespace bitflow {

/// Number of 64-bit words needed for `c` channel bits.
[[nodiscard]] constexpr std::int64_t words_for_channels(std::int64_t c) noexcept {
  return (c + 63) / 64;
}

/// Binary H x W x C activation tensor, bit-packed along the channel
/// dimension into 64-bit words ("pressed" by a factor of 64, paper Fig. 3).
class PackedTensor {
 public:
  PackedTensor() = default;

  PackedTensor(std::int64_t h, std::int64_t w, std::int64_t c)
      : h_(h),
        w_(w),
        c_(c),
        pc_(words_for_channels(c)),
        buffer_(static_cast<std::size_t>(h * w * pc_) * sizeof(std::uint64_t)) {
    BF_CHECK(h >= 0 && w >= 0 && c >= 0, "PackedTensor extents ", h, "x", w, "x", c);
  }

  [[nodiscard]] std::int64_t height() const noexcept { return h_; }
  [[nodiscard]] std::int64_t width() const noexcept { return w_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  /// Words per pixel ("pressed channel" extent).
  [[nodiscard]] std::int64_t words_per_pixel() const noexcept { return pc_; }
  [[nodiscard]] std::int64_t num_words() const noexcept { return h_ * w_ * pc_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  /// Pointer to the first packed word of pixel (h, w).
  [[nodiscard]] const std::uint64_t* pixel(std::int64_t h, std::int64_t w) const noexcept {
    BF_DCHECK(h >= 0 && h < h_ && w >= 0 && w < w_, "pixel (", h, ", ", w, ") outside ", h_, "x",
              w_);
    return words() + (h * w_ + w) * pc_;
  }
  [[nodiscard]] std::uint64_t* pixel(std::int64_t h, std::int64_t w) noexcept {
    BF_DCHECK(h >= 0 && h < h_ && w >= 0 && w < w_, "pixel (", h, ", ", w, ") outside ", h_, "x",
              w_);
    return words() + (h * w_ + w) * pc_;
  }

  [[nodiscard]] bool get_bit(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    return (pixel(h, w)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t h, std::int64_t w, std::int64_t c, bool value) noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    std::uint64_t& word = pixel(h, w)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Decoded {-1, +1} value of element (h, w, c).
  [[nodiscard]] float sign_value(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    return get_bit(h, w, c) ? 1.0f : -1.0f;
  }

  void zero() noexcept { buffer_.zero(); }

 private:
  std::int64_t h_ = 0, w_ = 0, c_ = 0, pc_ = 0;
  AlignedBuffer buffer_;
};

/// Bank of K binary filters, each kh x kw x C, bit-packed along the channel
/// dimension exactly like PackedTensor so that the convolution inner loop is
/// a straight run of XOR + popcount over matching word sequences.
/// Word layout: [k][i][j][p] with p in [0, words_per_pixel).
class PackedFilterBank {
 public:
  PackedFilterBank() = default;

  PackedFilterBank(std::int64_t k, std::int64_t kh, std::int64_t kw, std::int64_t c)
      : k_(k),
        kh_(kh),
        kw_(kw),
        c_(c),
        pc_(words_for_channels(c)),
        buffer_(static_cast<std::size_t>(k * kh * kw * pc_) * sizeof(std::uint64_t)) {
    BF_CHECK(k >= 0 && kh >= 0 && kw >= 0 && c >= 0, "PackedFilterBank extents ", k, "x", kh, "x",
             kw, "x", c);
  }

  [[nodiscard]] std::int64_t num_filters() const noexcept { return k_; }
  [[nodiscard]] std::int64_t kernel_h() const noexcept { return kh_; }
  [[nodiscard]] std::int64_t kernel_w() const noexcept { return kw_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  [[nodiscard]] std::int64_t words_per_pixel() const noexcept { return pc_; }
  [[nodiscard]] std::int64_t words_per_filter() const noexcept { return kh_ * kw_ * pc_; }
  /// Valid bits per filter: the N of Eq. 1.
  [[nodiscard]] std::int64_t bits_per_filter() const noexcept { return kh_ * kw_ * c_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  /// Pointer to the packed words of filter k (kh*kw*pc consecutive words).
  [[nodiscard]] const std::uint64_t* filter(std::int64_t k) const noexcept {
    BF_DCHECK(k >= 0 && k < k_, "filter ", k, " outside K=", k_);
    return words() + k * words_per_filter();
  }
  [[nodiscard]] std::uint64_t* filter(std::int64_t k) noexcept {
    BF_DCHECK(k >= 0 && k < k_, "filter ", k, " outside K=", k_);
    return words() + k * words_per_filter();
  }

  /// Pointer to the packed words of tap (i, j) of filter k.
  [[nodiscard]] const std::uint64_t* tap(std::int64_t k, std::int64_t i,
                                         std::int64_t j) const noexcept {
    return filter(k) + (i * kw_ + j) * pc_;
  }
  [[nodiscard]] std::uint64_t* tap(std::int64_t k, std::int64_t i, std::int64_t j) noexcept {
    return filter(k) + (i * kw_ + j) * pc_;
  }

  [[nodiscard]] bool get_bit(std::int64_t k, std::int64_t i, std::int64_t j,
                             std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    return (tap(k, i, j)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t k, std::int64_t i, std::int64_t j, std::int64_t c,
               bool value) noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    std::uint64_t& word = tap(k, i, j)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  [[nodiscard]] float sign_value(std::int64_t k, std::int64_t i, std::int64_t j,
                                 std::int64_t c) const noexcept {
    return get_bit(k, i, j, c) ? 1.0f : -1.0f;
  }

 private:
  std::int64_t k_ = 0, kh_ = 0, kw_ = 0, c_ = 0, pc_ = 0;
  AlignedBuffer buffer_;
};

/// T-way interleaved bank of equal-length packed bit rows — the finalize-time
/// weight re-layout behind the register-tiled kernels (daBNN-style).
///
/// The first `rows / tile` rows are grouped into tiles of `tile` rows each;
/// inside a tile the words are interleaved word-major:
///   tile t, word position w, lane l  ->  words()[ (t*row_words + w)*tile + l ]
/// so the kernel loads one activation word and finds the matching word of
/// all `tile` rows in `tile` *contiguous* words (exactly one cache line at
/// tile = 8).  The trailing `rows % tile` rows do not fill a tile and stay
/// row-major after the tiled region (the K-remainder fallback path):
///   remainder row r, word w  ->  words()[ full_tiles*row_words*tile + r*row_words + w ]
/// Total storage is exactly rows * row_words words — a permutation of the
/// source layout, never a copy plus padding.
class TiledBitMatrix {
 public:
  TiledBitMatrix() = default;

  TiledBitMatrix(std::int64_t rows, std::int64_t row_words, std::int64_t tile)
      : rows_(rows),
        row_words_(row_words),
        tile_(tile),
        buffer_(static_cast<std::size_t>(rows * row_words) * sizeof(std::uint64_t)) {
    BF_CHECK(rows >= 0 && row_words >= 0 && tile >= 1, "TiledBitMatrix extents ", rows, "x",
             row_words, " tile ", tile);
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t row_words() const noexcept { return row_words_; }
  /// Rows interleaved per tile (the register-tile width T of the kernels).
  [[nodiscard]] std::int64_t tile() const noexcept { return tile_; }
  [[nodiscard]] std::int64_t full_tiles() const noexcept { return rows_ / tile_; }
  [[nodiscard]] std::int64_t remainder_rows() const noexcept { return rows_ % tile_; }
  /// First row index held row-major instead of interleaved.
  [[nodiscard]] std::int64_t tiled_rows() const noexcept { return full_tiles() * tile_; }
  [[nodiscard]] std::int64_t num_words() const noexcept { return rows_ * row_words_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  /// Pointer to tile `t`'s interleaved block: row_words * tile consecutive
  /// words, word-major ([w][lane]).
  [[nodiscard]] const std::uint64_t* tile_block(std::int64_t t) const noexcept {
    BF_DCHECK(t >= 0 && t < full_tiles(), "tile ", t, " outside ", full_tiles());
    return words() + t * row_words_ * tile_;
  }
  [[nodiscard]] std::uint64_t* tile_block(std::int64_t t) noexcept {
    BF_DCHECK(t >= 0 && t < full_tiles(), "tile ", t, " outside ", full_tiles());
    return words() + t * row_words_ * tile_;
  }

  /// Pointer to remainder row `r` (r in [0, remainder_rows())), row-major.
  [[nodiscard]] const std::uint64_t* remainder_row(std::int64_t r) const noexcept {
    BF_DCHECK(r >= 0 && r < remainder_rows(), "remainder row ", r, " outside ",
              remainder_rows());
    return words() + tiled_rows() * row_words_ + r * row_words_;
  }
  [[nodiscard]] std::uint64_t* remainder_row(std::int64_t r) noexcept {
    BF_DCHECK(r >= 0 && r < remainder_rows(), "remainder row ", r, " outside ",
              remainder_rows());
    return words() + tiled_rows() * row_words_ + r * row_words_;
  }

  /// Word `w` of logical row `k`, resolving the interleave — packers and
  /// tests only; kernels walk the tile blocks directly.
  [[nodiscard]] std::uint64_t row_word(std::int64_t k, std::int64_t w) const noexcept {
    BF_DCHECK(k >= 0 && k < rows_ && w >= 0 && w < row_words_, "row word (", k, ", ", w,
              ") outside ", rows_, "x", row_words_);
    if (k < tiled_rows()) {
      return tile_block(k / tile_)[w * tile_ + k % tile_];
    }
    return remainder_row(k - tiled_rows())[w];
  }
  std::uint64_t& row_word(std::int64_t k, std::int64_t w) noexcept {
    BF_DCHECK(k >= 0 && k < rows_ && w >= 0 && w < row_words_, "row word (", k, ", ", w,
              ") outside ", rows_, "x", row_words_);
    if (k < tiled_rows()) {
      return tile_block(k / tile_)[w * tile_ + k % tile_];
    }
    return remainder_row(k - tiled_rows())[w];
  }

 private:
  std::int64_t rows_ = 0, row_words_ = 0, tile_ = 1;
  AlignedBuffer buffer_;
};

/// Interleaved counterpart of PackedFilterBank: each logical row of the
/// underlying TiledBitMatrix is one filter's kh*kw*pc packed words, grouped
/// into tiles of T filters (produced once at finalize by
/// bitpack::tile_filters, consumed by the register-tiled PressedConv).
class TiledFilterBank {
 public:
  TiledFilterBank() = default;

  TiledFilterBank(TiledBitMatrix rows, std::int64_t kh, std::int64_t kw, std::int64_t c)
      : rows_(std::move(rows)), kh_(kh), kw_(kw), c_(c), pc_(words_for_channels(c)) {
    BF_CHECK(rows_.row_words() == kh_ * kw_ * pc_, "TiledFilterBank: ", rows_.row_words(),
             " words per filter for ", kh_, "x", kw_, "x", c_);
  }

  [[nodiscard]] std::int64_t num_filters() const noexcept { return rows_.rows(); }
  [[nodiscard]] std::int64_t kernel_h() const noexcept { return kh_; }
  [[nodiscard]] std::int64_t kernel_w() const noexcept { return kw_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  [[nodiscard]] std::int64_t words_per_pixel() const noexcept { return pc_; }
  [[nodiscard]] std::int64_t words_per_filter() const noexcept { return kh_ * kw_ * pc_; }
  /// Valid bits per filter: the N of Eq. 1.
  [[nodiscard]] std::int64_t bits_per_filter() const noexcept { return kh_ * kw_ * c_; }
  [[nodiscard]] std::int64_t tile() const noexcept { return rows_.tile(); }

  [[nodiscard]] const TiledBitMatrix& rows() const noexcept { return rows_; }
  [[nodiscard]] TiledBitMatrix& rows() noexcept { return rows_; }

 private:
  TiledBitMatrix rows_;
  std::int64_t kh_ = 0, kw_ = 0, c_ = 0, pc_ = 0;
};

/// Bit-packed binary matrix for fully connected layers: `rows` vectors of
/// `cols` bits each, rows padded to whole words with zero tail bits.
/// Row r occupies words [r*words_per_row, (r+1)*words_per_row).
class PackedMatrix {
 public:
  PackedMatrix() = default;

  PackedMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows),
        cols_(cols),
        wpr_(words_for_channels(cols)),
        buffer_(static_cast<std::size_t>(rows * wpr_) * sizeof(std::uint64_t)) {
    BF_CHECK(rows >= 0 && cols >= 0, "PackedMatrix extents ", rows, "x", cols);
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t words_per_row() const noexcept { return wpr_; }
  [[nodiscard]] std::int64_t num_words() const noexcept { return rows_ * wpr_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  [[nodiscard]] const std::uint64_t* row(std::int64_t r) const noexcept {
    BF_DCHECK(r >= 0 && r < rows_, "row ", r, " outside rows=", rows_);
    return words() + r * wpr_;
  }
  [[nodiscard]] std::uint64_t* row(std::int64_t r) noexcept {
    BF_DCHECK(r >= 0 && r < rows_, "row ", r, " outside rows=", rows_);
    return words() + r * wpr_;
  }

  [[nodiscard]] bool get_bit(std::int64_t r, std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < cols_, "column bit ", c, " outside cols=", cols_);
    return (row(r)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t r, std::int64_t c, bool value) noexcept {
    BF_DCHECK(c >= 0 && c < cols_, "column bit ", c, " outside cols=", cols_);
    std::uint64_t& word = row(r)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  [[nodiscard]] float sign_value(std::int64_t r, std::int64_t c) const noexcept {
    return get_bit(r, c) ? 1.0f : -1.0f;
  }

 private:
  std::int64_t rows_ = 0, cols_ = 0, wpr_ = 0;
  AlignedBuffer buffer_;
};

}  // namespace bitflow
