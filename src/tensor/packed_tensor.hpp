// Bit-packed binary tensors.
//
// A binary activation tensor holds values in {-1, +1}, encoded at the
// hardware level as {0, 1} (paper Sec. III: -1 -> 0, +1 -> 1).  PressedConv
// packs the bits along the *channel* dimension (Fig. 3): pixel (h, w) owns
// ceil(C/64) consecutive 64-bit words, and the words of neighbouring pixels
// are adjacent in memory (NHWC order).  This is the "locality-aware layout":
// a convolution window touches contiguous word runs, and the result of one
// layer is already in the layout the next layer consumes.
//
// Invariant maintained by every producer in the library: bits beyond the
// logical channel count C in the last word of a pixel are ZERO.  The binary
// dot product (Eq. 1) is computed as  dot = N - 2*popcount(xor)  with N the
// number of *valid* bits; zero tail bits in both operands XOR to zero and
// therefore never perturb the popcount.
#pragma once

#include <cstdint>
#include <span>

#include "core/check.hpp"
#include "tensor/aligned_buffer.hpp"

namespace bitflow {

/// Number of 64-bit words needed for `c` channel bits.
[[nodiscard]] constexpr std::int64_t words_for_channels(std::int64_t c) noexcept {
  return (c + 63) / 64;
}

/// Binary H x W x C activation tensor, bit-packed along the channel
/// dimension into 64-bit words ("pressed" by a factor of 64, paper Fig. 3).
class PackedTensor {
 public:
  PackedTensor() = default;

  PackedTensor(std::int64_t h, std::int64_t w, std::int64_t c)
      : h_(h),
        w_(w),
        c_(c),
        pc_(words_for_channels(c)),
        buffer_(static_cast<std::size_t>(h * w * pc_) * sizeof(std::uint64_t)) {
    BF_CHECK(h >= 0 && w >= 0 && c >= 0, "PackedTensor extents ", h, "x", w, "x", c);
  }

  [[nodiscard]] std::int64_t height() const noexcept { return h_; }
  [[nodiscard]] std::int64_t width() const noexcept { return w_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  /// Words per pixel ("pressed channel" extent).
  [[nodiscard]] std::int64_t words_per_pixel() const noexcept { return pc_; }
  [[nodiscard]] std::int64_t num_words() const noexcept { return h_ * w_ * pc_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  /// Pointer to the first packed word of pixel (h, w).
  [[nodiscard]] const std::uint64_t* pixel(std::int64_t h, std::int64_t w) const noexcept {
    BF_DCHECK(h >= 0 && h < h_ && w >= 0 && w < w_, "pixel (", h, ", ", w, ") outside ", h_, "x",
              w_);
    return words() + (h * w_ + w) * pc_;
  }
  [[nodiscard]] std::uint64_t* pixel(std::int64_t h, std::int64_t w) noexcept {
    BF_DCHECK(h >= 0 && h < h_ && w >= 0 && w < w_, "pixel (", h, ", ", w, ") outside ", h_, "x",
              w_);
    return words() + (h * w_ + w) * pc_;
  }

  [[nodiscard]] bool get_bit(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    return (pixel(h, w)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t h, std::int64_t w, std::int64_t c, bool value) noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    std::uint64_t& word = pixel(h, w)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Decoded {-1, +1} value of element (h, w, c).
  [[nodiscard]] float sign_value(std::int64_t h, std::int64_t w, std::int64_t c) const noexcept {
    return get_bit(h, w, c) ? 1.0f : -1.0f;
  }

  void zero() noexcept { buffer_.zero(); }

 private:
  std::int64_t h_ = 0, w_ = 0, c_ = 0, pc_ = 0;
  AlignedBuffer buffer_;
};

/// Bank of K binary filters, each kh x kw x C, bit-packed along the channel
/// dimension exactly like PackedTensor so that the convolution inner loop is
/// a straight run of XOR + popcount over matching word sequences.
/// Word layout: [k][i][j][p] with p in [0, words_per_pixel).
class PackedFilterBank {
 public:
  PackedFilterBank() = default;

  PackedFilterBank(std::int64_t k, std::int64_t kh, std::int64_t kw, std::int64_t c)
      : k_(k),
        kh_(kh),
        kw_(kw),
        c_(c),
        pc_(words_for_channels(c)),
        buffer_(static_cast<std::size_t>(k * kh * kw * pc_) * sizeof(std::uint64_t)) {
    BF_CHECK(k >= 0 && kh >= 0 && kw >= 0 && c >= 0, "PackedFilterBank extents ", k, "x", kh, "x",
             kw, "x", c);
  }

  [[nodiscard]] std::int64_t num_filters() const noexcept { return k_; }
  [[nodiscard]] std::int64_t kernel_h() const noexcept { return kh_; }
  [[nodiscard]] std::int64_t kernel_w() const noexcept { return kw_; }
  [[nodiscard]] std::int64_t channels() const noexcept { return c_; }
  [[nodiscard]] std::int64_t words_per_pixel() const noexcept { return pc_; }
  [[nodiscard]] std::int64_t words_per_filter() const noexcept { return kh_ * kw_ * pc_; }
  /// Valid bits per filter: the N of Eq. 1.
  [[nodiscard]] std::int64_t bits_per_filter() const noexcept { return kh_ * kw_ * c_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  /// Pointer to the packed words of filter k (kh*kw*pc consecutive words).
  [[nodiscard]] const std::uint64_t* filter(std::int64_t k) const noexcept {
    BF_DCHECK(k >= 0 && k < k_, "filter ", k, " outside K=", k_);
    return words() + k * words_per_filter();
  }
  [[nodiscard]] std::uint64_t* filter(std::int64_t k) noexcept {
    BF_DCHECK(k >= 0 && k < k_, "filter ", k, " outside K=", k_);
    return words() + k * words_per_filter();
  }

  /// Pointer to the packed words of tap (i, j) of filter k.
  [[nodiscard]] const std::uint64_t* tap(std::int64_t k, std::int64_t i,
                                         std::int64_t j) const noexcept {
    return filter(k) + (i * kw_ + j) * pc_;
  }
  [[nodiscard]] std::uint64_t* tap(std::int64_t k, std::int64_t i, std::int64_t j) noexcept {
    return filter(k) + (i * kw_ + j) * pc_;
  }

  [[nodiscard]] bool get_bit(std::int64_t k, std::int64_t i, std::int64_t j,
                             std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    return (tap(k, i, j)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t k, std::int64_t i, std::int64_t j, std::int64_t c,
               bool value) noexcept {
    BF_DCHECK(c >= 0 && c < c_, "channel bit ", c, " outside C=", c_);
    std::uint64_t& word = tap(k, i, j)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  [[nodiscard]] float sign_value(std::int64_t k, std::int64_t i, std::int64_t j,
                                 std::int64_t c) const noexcept {
    return get_bit(k, i, j, c) ? 1.0f : -1.0f;
  }

 private:
  std::int64_t k_ = 0, kh_ = 0, kw_ = 0, c_ = 0, pc_ = 0;
  AlignedBuffer buffer_;
};

/// Bit-packed binary matrix for fully connected layers: `rows` vectors of
/// `cols` bits each, rows padded to whole words with zero tail bits.
/// Row r occupies words [r*words_per_row, (r+1)*words_per_row).
class PackedMatrix {
 public:
  PackedMatrix() = default;

  PackedMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows),
        cols_(cols),
        wpr_(words_for_channels(cols)),
        buffer_(static_cast<std::size_t>(rows * wpr_) * sizeof(std::uint64_t)) {
    BF_CHECK(rows >= 0 && cols >= 0, "PackedMatrix extents ", rows, "x", cols);
  }

  [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t words_per_row() const noexcept { return wpr_; }
  [[nodiscard]] std::int64_t num_words() const noexcept { return rows_ * wpr_; }

  [[nodiscard]] std::uint64_t* words() noexcept {
    return reinterpret_cast<std::uint64_t*>(buffer_.data());
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return reinterpret_cast<const std::uint64_t*>(buffer_.data());
  }

  [[nodiscard]] const std::uint64_t* row(std::int64_t r) const noexcept {
    BF_DCHECK(r >= 0 && r < rows_, "row ", r, " outside rows=", rows_);
    return words() + r * wpr_;
  }
  [[nodiscard]] std::uint64_t* row(std::int64_t r) noexcept {
    BF_DCHECK(r >= 0 && r < rows_, "row ", r, " outside rows=", rows_);
    return words() + r * wpr_;
  }

  [[nodiscard]] bool get_bit(std::int64_t r, std::int64_t c) const noexcept {
    BF_DCHECK(c >= 0 && c < cols_, "column bit ", c, " outside cols=", cols_);
    return (row(r)[c >> 6] >> (c & 63)) & 1u;
  }

  void set_bit(std::int64_t r, std::int64_t c, bool value) noexcept {
    BF_DCHECK(c >= 0 && c < cols_, "column bit ", c, " outside cols=", cols_);
    std::uint64_t& word = row(r)[c >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (c & 63);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  [[nodiscard]] float sign_value(std::int64_t r, std::int64_t c) const noexcept {
    return get_bit(r, c) ? 1.0f : -1.0f;
  }

 private:
  std::int64_t rows_ = 0, cols_ = 0, wpr_ = 0;
  AlignedBuffer buffer_;
};

}  // namespace bitflow
