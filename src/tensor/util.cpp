#include "tensor/util.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace bitflow {

void fill_uniform(Tensor& t, std::uint64_t seed, float lo, float hi) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& v : t.elements()) v = dist(rng);
}

namespace {

/// Mask with the low `bits` bits set (bits in [1, 64]).
std::uint64_t tail_mask(std::int64_t bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

}  // namespace

void fill_random_bits(PackedTensor& t, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::int64_t pc = t.words_per_pixel();
  const std::int64_t last_bits = t.channels() - (pc - 1) * 64;
  for (std::int64_t h = 0; h < t.height(); ++h) {
    for (std::int64_t w = 0; w < t.width(); ++w) {
      std::uint64_t* px = t.pixel(h, w);
      for (std::int64_t p = 0; p < pc; ++p) {
        px[p] = rng();
        if (p == pc - 1) px[p] &= tail_mask(last_bits);
      }
    }
  }
}

void fill_random_bits(PackedFilterBank& f, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::int64_t pc = f.words_per_pixel();
  const std::int64_t last_bits = f.channels() - (pc - 1) * 64;
  for (std::int64_t k = 0; k < f.num_filters(); ++k) {
    for (std::int64_t i = 0; i < f.kernel_h(); ++i) {
      for (std::int64_t j = 0; j < f.kernel_w(); ++j) {
        std::uint64_t* tap = f.tap(k, i, j);
        for (std::int64_t p = 0; p < pc; ++p) {
          tap[p] = rng();
          if (p == pc - 1) tap[p] &= tail_mask(last_bits);
        }
      }
    }
  }
}

void fill_random_bits(PackedMatrix& m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::int64_t wpr = m.words_per_row();
  const std::int64_t last_bits = m.cols() - (wpr - 1) * 64;
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    std::uint64_t* row = m.row(r);
    for (std::int64_t p = 0; p < wpr; ++p) {
      row[p] = rng();
      if (p == wpr - 1) row[p] &= tail_mask(last_bits);
    }
  }
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch " + a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    // Compare through the canonical (h,w,c) indexing so tensors of different
    // layout compare logically, not byte-wise.
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  if (a.layout() != b.layout()) {
    m = 0.0f;
    for (std::int64_t h = 0; h < a.height(); ++h)
      for (std::int64_t w = 0; w < a.width(); ++w)
        for (std::int64_t c = 0; c < a.channels(); ++c)
          m = std::max(m, std::abs(a.at(h, w, c) - b.at(h, w, c)));
  }
  return m;
}

}  // namespace bitflow
