// bgemm: binary general matrix multiplication (paper Sec. III-C and the
// gemm-level optimizations of Sec. IV).
//
// A fully connected binary operator is a bgemm of the packed activation
// matrix A (M x N bits, M = batch = 1 in inference) against the packed,
// pre-transposed weight matrix W (K x N bits, produced once at network
// initialization by bitpack::pack_transpose_fc_weights).  Output element
// (m, k) is the Eq. 1 inner product of row m of A with row k of W.
//
// Parallelism follows the paper: vector parallelism along the N (bit)
// dimension, multi-core parallelism over the K (output neuron) dimension.
// The K loop is 4-way register-blocked so each loaded activation word feeds
// four weight rows (the "tiling and loop unrolling" borrowed from sgemm).
#pragma once

#include <cstdint>

#include "runtime/thread_pool.hpp"
#include "simd/isa.hpp"
#include "tensor/packed_tensor.hpp"

namespace bitflow::kernels {

/// Raw-dot bgemm: y is row-major M x K floats, y[m*K + k] = Eq.1 dot of
/// A row m and W row k.  A and W must agree on cols().
using BgemmFn = void (*)(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool,
                         float* y);

/// Fused bgemm + binarize: bit k of output row m is dot(m,k) >=
/// thresholds[k] (null thresholds = sign).  `out` must be M x K bits.
using BgemmBinarizeFn = void (*)(const PackedMatrix& a, const PackedMatrix& w,
                                 const float* thresholds, runtime::ThreadPool& pool,
                                 PackedMatrix& out);

/// Row-limited raw-dot bgemm: computes only rows [0, m_rows) of A.  The
/// serving path keeps a max_batch-row activation matrix and fills the first
/// n rows per micro-batch; M and K are fused into one parallel_for so a
/// batch costs one fork/join.  Bit-identical to BgemmFn on the same rows.
using BgemmRowsFn = void (*)(const PackedMatrix& a, std::int64_t m_rows, const PackedMatrix& w,
                             runtime::ThreadPool& pool, float* y);

/// Row-limited fused bgemm + binarize; rows [m_rows, out.rows()) of `out`
/// are left untouched.
using BgemmBinarizeRowsFn = void (*)(const PackedMatrix& a, std::int64_t m_rows,
                                     const PackedMatrix& w, const float* thresholds,
                                     runtime::ThreadPool& pool, PackedMatrix& out);

/// Row-limited raw-dot bgemm over the interleaved weight layout: W is the
/// K x N weight matrix re-laid by bitpack::tile_fc_weights with
/// tile = weight_tile_width(isa), so each activation word feeds T contiguous
/// neuron words instead of T strided rows.  Bit-exact with BgemmRowsFn;
/// throws std::invalid_argument if W's tile width does not match the kernel.
/// The filter-major overloads above remain for ad-hoc callers.
using BgemmRowsTiledFn = void (*)(const PackedMatrix& a, std::int64_t m_rows,
                                  const TiledBitMatrix& w, runtime::ThreadPool& pool, float* y);

/// Row-limited fused bgemm + binarize over the interleaved weight layout.
using BgemmBinarizeRowsTiledFn = void (*)(const PackedMatrix& a, std::int64_t m_rows,
                                          const TiledBitMatrix& w, const float* thresholds,
                                          runtime::ThreadPool& pool, PackedMatrix& out);

/// Returns the raw-dot bgemm compiled for `isa` (hardware support is the
/// caller's responsibility, as with conv_dot_kernel).
[[nodiscard]] BgemmFn bgemm_kernel(simd::IsaLevel isa);

/// Returns the fused binarize bgemm compiled for `isa`.
[[nodiscard]] BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa);

/// Variant-pinned overloads: at kAvx512, `use_vpopcntdq` picks the byte-LUT
/// or native-VPOPCNTDQ translation unit explicitly rather than by CPUID (for
/// the ISA-parity harness); ignored at narrower levels.
[[nodiscard]] BgemmFn bgemm_kernel(simd::IsaLevel isa, bool use_vpopcntdq);
[[nodiscard]] BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa, bool use_vpopcntdq);

/// Row-limited counterparts of the kernel getters.
[[nodiscard]] BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa);
[[nodiscard]] BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa);
[[nodiscard]] BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa, bool use_vpopcntdq);
[[nodiscard]] BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa,
                                                             bool use_vpopcntdq);

/// Register-tiled kernel getters (interleaved weight layout).  Overloads
/// without an explicit `tile` return the weight_tile_width(isa) default.
[[nodiscard]] BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa);
[[nodiscard]] BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa);
[[nodiscard]] BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa, bool use_vpopcntdq);
[[nodiscard]] BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa,
                                                                        bool use_vpopcntdq);

/// Tile-parameterized getters for the auto-tuner: `tile` must be one of
/// supported_tile_widths(isa) (throws std::invalid_argument otherwise).
[[nodiscard]] BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa, bool use_vpopcntdq,
                                                       std::int64_t tile);
[[nodiscard]] BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa,
                                                                        bool use_vpopcntdq,
                                                                        std::int64_t tile);

/// Dispatching wrappers (widest hardware ISA).
void bgemm(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool, float* y);
void bgemm_binarize(const PackedMatrix& a, const PackedMatrix& w, const float* thresholds,
                    runtime::ThreadPool& pool, PackedMatrix& out);

}  // namespace bitflow::kernels
