// Runtime dispatch front for the per-ISA PressedConv kernels.
#include "kernels/pressedconv.hpp"

#include <stdexcept>
#include <string>

#include "core/check.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::kernels {

namespace detail {
// Defined by BITFLOW_INSTANTIATE_PRESSEDCONV in the per-ISA TUs.
#define BITFLOW_DECLARE_PRESSEDCONV(SUFFIX)                                                      \
  void conv_dot_##SUFFIX(const PackedTensor&, const PackedFilterBank&, const ConvSpec&,          \
                         runtime::ThreadPool&, Tensor&);                                         \
  void conv_binarize_##SUFFIX(const PackedTensor&, const PackedFilterBank&, const ConvSpec&,     \
                              const float*, runtime::ThreadPool&, PackedTensor&, std::int64_t);  \
  void conv_dot_batch_##SUFFIX(const PackedTensor* const*, std::int64_t,                         \
                               const PackedFilterBank&, const ConvSpec&, runtime::ThreadPool&,   \
                               Tensor* const*);                                                  \
  void conv_binarize_batch_##SUFFIX(const PackedTensor* const*, std::int64_t,                    \
                                    const PackedFilterBank&, const ConvSpec&, const float*,      \
                                    runtime::ThreadPool&, PackedTensor* const*, std::int64_t);
BITFLOW_DECLARE_PRESSEDCONV(u64)
BITFLOW_DECLARE_PRESSEDCONV(sse)
BITFLOW_DECLARE_PRESSEDCONV(avx2)
BITFLOW_DECLARE_PRESSEDCONV(avx512)
BITFLOW_DECLARE_PRESSEDCONV(avx512vp)
#undef BITFLOW_DECLARE_PRESSEDCONV

// Defined by BITFLOW_INSTANTIATE_PRESSEDCONV_TILED in the per-ISA TUs, one
// suffix per (ISA, tile width) pair the TU stamps.
#define BITFLOW_DECLARE_PRESSEDCONV_TILED(SUFFIX)                                                \
  void conv_dot_tiled_batch_##SUFFIX(const PackedTensor* const*, std::int64_t,                   \
                                     const TiledFilterBank&, const ConvSpec&,                    \
                                     runtime::ThreadPool&, Tensor* const*);                      \
  void conv_binarize_tiled_batch_##SUFFIX(const PackedTensor* const*, std::int64_t,              \
                                          const TiledFilterBank&, const ConvSpec&, const float*, \
                                          runtime::ThreadPool&, PackedTensor* const*,            \
                                          std::int64_t);
BITFLOW_DECLARE_PRESSEDCONV_TILED(u64_t4)
BITFLOW_DECLARE_PRESSEDCONV_TILED(u64_t8)
BITFLOW_DECLARE_PRESSEDCONV_TILED(sse_t4)
BITFLOW_DECLARE_PRESSEDCONV_TILED(sse_t8)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx2_t4)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx2_t8)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx2_t16)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512_t4)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512_t8)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512_t16)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512vp_t4)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512vp_t8)
BITFLOW_DECLARE_PRESSEDCONV_TILED(avx512vp_t16)
#undef BITFLOW_DECLARE_PRESSEDCONV_TILED
}  // namespace detail

ConvDotFn conv_dot_kernel(simd::IsaLevel isa) {
  return conv_dot_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvBinarizeFn conv_binarize_kernel(simd::IsaLevel isa) {
  return conv_binarize_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvDotFn conv_dot_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::conv_dot_u64;
    case simd::IsaLevel::kSse: return &detail::conv_dot_sse;
    case simd::IsaLevel::kAvx2: return &detail::conv_dot_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::conv_dot_avx512vp : &detail::conv_dot_avx512;
  }
  throw std::invalid_argument("conv_dot_kernel: bad ISA level");
}

ConvBinarizeFn conv_binarize_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::conv_binarize_u64;
    case simd::IsaLevel::kSse: return &detail::conv_binarize_sse;
    case simd::IsaLevel::kAvx2: return &detail::conv_binarize_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::conv_binarize_avx512vp : &detail::conv_binarize_avx512;
  }
  throw std::invalid_argument("conv_binarize_kernel: bad ISA level");
}

ConvDotBatchFn conv_dot_batch_kernel(simd::IsaLevel isa) {
  return conv_dot_batch_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvBinarizeBatchFn conv_binarize_batch_kernel(simd::IsaLevel isa) {
  return conv_binarize_batch_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvDotBatchFn conv_dot_batch_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::conv_dot_batch_u64;
    case simd::IsaLevel::kSse: return &detail::conv_dot_batch_sse;
    case simd::IsaLevel::kAvx2: return &detail::conv_dot_batch_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::conv_dot_batch_avx512vp : &detail::conv_dot_batch_avx512;
  }
  throw std::invalid_argument("conv_dot_batch_kernel: bad ISA level");
}

ConvBinarizeBatchFn conv_binarize_batch_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::conv_binarize_batch_u64;
    case simd::IsaLevel::kSse: return &detail::conv_binarize_batch_sse;
    case simd::IsaLevel::kAvx2: return &detail::conv_binarize_batch_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::conv_binarize_batch_avx512vp
                           : &detail::conv_binarize_batch_avx512;
  }
  throw std::invalid_argument("conv_binarize_batch_kernel: bad ISA level");
}

ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa) {
  return conv_dot_tiled_batch_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa) {
  return conv_binarize_tiled_batch_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  return conv_dot_tiled_batch_kernel(isa, use_vpopcntdq, weight_tile_width(isa));
}

ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa,
                                                          bool use_vpopcntdq) {
  return conv_binarize_tiled_batch_kernel(isa, use_vpopcntdq, weight_tile_width(isa));
}

// Nested (ISA, tile width) dispatch shared by the two tile-parameterized
// getters: every stamped suffix appears exactly once; an (isa, tile) pair
// with no instantiation throws rather than silently falling back, so the
// tuner can never commit a plan the kernel layer cannot execute.
#define BITFLOW_TILED_DISPATCH(NAME)                                                            \
  switch (isa) {                                                                                \
    case simd::IsaLevel::kU64:                                                                  \
      if (tile == 4) return &detail::NAME##_u64_t4;                                             \
      if (tile == 8) return &detail::NAME##_u64_t8;                                             \
      break;                                                                                    \
    case simd::IsaLevel::kSse:                                                                  \
      if (tile == 4) return &detail::NAME##_sse_t4;                                             \
      if (tile == 8) return &detail::NAME##_sse_t8;                                             \
      break;                                                                                    \
    case simd::IsaLevel::kAvx2:                                                                 \
      if (tile == 4) return &detail::NAME##_avx2_t4;                                            \
      if (tile == 8) return &detail::NAME##_avx2_t8;                                            \
      if (tile == 16) return &detail::NAME##_avx2_t16;                                          \
      break;                                                                                    \
    case simd::IsaLevel::kAvx512:                                                               \
      if (tile == 4) return use_vpopcntdq ? &detail::NAME##_avx512vp_t4                         \
                                          : &detail::NAME##_avx512_t4;                          \
      if (tile == 8) return use_vpopcntdq ? &detail::NAME##_avx512vp_t8                         \
                                          : &detail::NAME##_avx512_t8;                          \
      if (tile == 16) return use_vpopcntdq ? &detail::NAME##_avx512vp_t16                       \
                                           : &detail::NAME##_avx512_t16;                        \
      break;                                                                                    \
  }                                                                                             \
  throw std::invalid_argument(#NAME "_kernel: no instantiation for (isa, tile " +               \
                              std::to_string(tile) + ")")

ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa, bool use_vpopcntdq,
                                                std::int64_t tile) {
  BITFLOW_TILED_DISPATCH(conv_dot_tiled_batch);
}

ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa,
                                                          bool use_vpopcntdq,
                                                          std::int64_t tile) {
  BITFLOW_TILED_DISPATCH(conv_binarize_tiled_batch);
}

void check_conv_args(const PackedTensor& in, const PackedFilterBank& filters,
                     const ConvSpec& spec) {
  spec.validate();
  BF_CHECK(filters.num_filters() >= 1, "PressedConv: empty filter bank");
  if (in.channels() != filters.channels()) {
    throw std::invalid_argument("PressedConv: input/filter channel mismatch");
  }
  if (spec.kernel_h != filters.kernel_h() || spec.kernel_w != filters.kernel_w()) {
    throw std::invalid_argument("PressedConv: spec/filter kernel extent mismatch");
  }
  if (spec.stride < 1) throw std::invalid_argument("PressedConv: stride must be >= 1");
  (void)spec.out_h(in.height());  // throws if the kernel does not fit
  (void)spec.out_w(in.width());
}

void check_conv_batch_args(const PackedTensor* const* in, std::int64_t n,
                           const PackedFilterBank& filters, const ConvSpec& spec) {
  BF_CHECK(in != nullptr, "PressedConv batch: null input array");
  if (n < 1) throw std::invalid_argument("PressedConv batch: n must be >= 1");
  check_conv_args(*in[0], filters, spec);
  for (std::int64_t b = 1; b < n; ++b) {
    if (in[b]->height() != in[0]->height() || in[b]->width() != in[0]->width() ||
        in[b]->channels() != in[0]->channels()) {
      throw std::invalid_argument("PressedConv batch: image " + std::to_string(b) +
                                  " extents differ from image 0");
    }
  }
}

void pressed_conv_dot(const PackedTensor& in, const PackedFilterBank& filters,
                      const ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out) {
  check_conv_args(in, filters, spec);
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  if (out.height() != oh || out.width() != ow || out.channels() != filters.num_filters() ||
      out.layout() != Layout::kHWC) {
    throw std::invalid_argument("pressed_conv_dot: output tensor mis-shaped");
  }
  conv_dot_kernel(simd::cpu_features().best_isa())(in, filters, spec, pool, out);
}

void pressed_conv_binarize(const PackedTensor& in, const PackedFilterBank& filters,
                           const ConvSpec& spec, const float* thresholds,
                           runtime::ThreadPool& pool, PackedTensor& out, std::int64_t margin) {
  check_conv_args(in, filters, spec);
  BF_CHECK(margin >= 0, "pressed_conv_binarize: negative margin ", margin);
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  if (out.height() != oh + 2 * margin || out.width() != ow + 2 * margin ||
      out.channels() != filters.num_filters()) {
    throw std::invalid_argument("pressed_conv_binarize: output tensor mis-shaped for margin");
  }
  conv_binarize_kernel(simd::cpu_features().best_isa())(in, filters, spec, thresholds, pool, out,
                                                        margin);
}

}  // namespace bitflow::kernels
