// Generic PressedConv inner loops, templated over an ISA policy.
//
// Included only by the per-ISA kernel TUs (pressedconv_<isa>.cpp); each TU
// instantiates the templates with a policy whose xor_popcount resolves to
// the inline primitive of that TU's enabled ISA, so the word loop inlines
// into the spatial loops with no function-call overhead.
//
// Loop structure (paper Alg. 1):
//   multi-core  : fused b*y*x output range, static blocks     (parallel_for)
//   per pixel   : filters k, 2-way unrolled to share the input window loads
//   per filter  : kernel rows i — the kw * words_per_pixel packed words of
//                 one window row are contiguous in both operands (NHWC
//                 channel packing), one xor+popcount run each
//   vector      : inside the run, the policy's ISA
//
// Batch-N: every entry point is implemented over a batch of N images (the
// batch axis is fused with the spatial output range into one n*out_h*out_w
// parallel_for, so deep layers with small H*W still expose enough grains to
// fill the pool, and N requests cost one fork/join instead of N).  Each
// image has its own input/output tensor; a pixel's value depends only on
// its own image's words, so batch-N output b is bit-identical to a batch-1
// run of image b — the single-image entry points are the n = 1 case of the
// same code path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "kernels/conv_spec.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::kernels::impl {

/// Specialized inner body for the dominant BNN case of 3x3 filters over a
/// single packed word per pixel (C <= 64, e.g. VGG conv2.1): the nine
/// window words are hoisted into registers once per output pixel and each
/// filter costs exactly nine xor+popcnt — no word-run loop, no pointer
/// arithmetic in the hot loop.  This is the "loop unrolling" of the paper's
/// gemm-level optimizations applied where it pays the most.
inline void conv_dot_3x3_w1_batch(const PackedTensor* const* in, std::int64_t n,
                                  const PackedFilterBank& filters, const ConvSpec& spec,
                                  runtime::ThreadPool& pool, Tensor* const* out) {
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;
  const std::uint64_t* f_words = filters.words();

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* w0 = in[img]->words() + (y * stride) * in_w + (x * stride);
      const std::uint64_t* w1 = w0 + in_w;
      const std::uint64_t* w2 = w1 + in_w;
      const std::uint64_t a0 = w0[0], a1 = w0[1], a2 = w0[2];
      const std::uint64_t a3 = w1[0], a4 = w1[1], a5 = w1[2];
      const std::uint64_t a6 = w2[0], a7 = w2[1], a8 = w2[2];
      float* out_px = out[img]->data() + pix * num_k;
      const std::uint64_t* f = f_words;
      for (std::int64_t k = 0; k < num_k; ++k, f += 9) {
        std::int64_t pops = __builtin_popcountll(a0 ^ f[0]);
        pops += __builtin_popcountll(a1 ^ f[1]);
        pops += __builtin_popcountll(a2 ^ f[2]);
        pops += __builtin_popcountll(a3 ^ f[3]);
        pops += __builtin_popcountll(a4 ^ f[4]);
        pops += __builtin_popcountll(a5 ^ f[5]);
        pops += __builtin_popcountll(a6 ^ f[6]);
        pops += __builtin_popcountll(a7 ^ f[7]);
        pops += __builtin_popcountll(a8 ^ f[8]);
        out_px[k] = static_cast<float>(bits - 2 * pops);
      }
    }
  });
}

template <typename Ops>
void conv_dot_batch_impl(const PackedTensor* const* in, std::int64_t n,
                         const PackedFilterBank& filters, const ConvSpec& spec,
                         runtime::ThreadPool& pool, Tensor* const* out) {
  if (in[0]->words_per_pixel() == 1 && filters.kernel_h() == 3 && filters.kernel_w() == 3) {
    conv_dot_3x3_w1_batch(in, n, filters, spec, pool, out);
    return;
  }
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t kh = filters.kernel_h();
  const std::int64_t kw = filters.kernel_w();
  const std::int64_t pc = in[0]->words_per_pixel();
  const std::int64_t row_words = kw * pc;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* window =
          in[img]->words() + ((y * stride) * in_w + (x * stride)) * pc;
      float* out_px = out[img]->data() + pix * num_k;
      std::int64_t k = 0;
      // 2-way filter unroll: both filters consume the same window row, so
      // its words are loaded from L1 once per pair.
      for (; k + 2 <= num_k; k += 2) {
        const std::uint64_t* f0 = filters.filter(k);
        const std::uint64_t* f1 = filters.filter(k + 1);
        std::uint64_t pops0 = 0, pops1 = 0;
        for (std::int64_t i = 0; i < kh; ++i) {
          const std::uint64_t* row = window + i * in_w * pc;
          pops0 += Ops::xor_popcount(row, f0 + i * row_words, row_words);
          pops1 += Ops::xor_popcount(row, f1 + i * row_words, row_words);
        }
        out_px[k] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops0));
        out_px[k + 1] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops1));
      }
      for (; k < num_k; ++k) {
        const std::uint64_t* f0 = filters.filter(k);
        std::uint64_t pops = 0;
        for (std::int64_t i = 0; i < kh; ++i) {
          pops += Ops::xor_popcount(window + i * in_w * pc, f0 + i * row_words, row_words);
        }
        out_px[k] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops));
      }
    }
  });
}

template <typename Ops>
void conv_dot_impl(const PackedTensor& in, const PackedFilterBank& filters, const ConvSpec& spec,
                   runtime::ThreadPool& pool, Tensor& out) {
  const PackedTensor* in_ptr = &in;
  Tensor* out_ptr = &out;
  conv_dot_batch_impl<Ops>(&in_ptr, 1, filters, spec, pool, &out_ptr);
}

/// Fused binarize counterpart of conv_dot_3x3_w1_batch.
inline void conv_binarize_3x3_w1_batch(const PackedTensor* const* in, std::int64_t n,
                                       const PackedFilterBank& filters, const ConvSpec& spec,
                                       const float* thresholds, runtime::ThreadPool& pool,
                                       PackedTensor* const* out, std::int64_t margin) {
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;
  const std::uint64_t* f_words = filters.words();

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* w0 = in[img]->words() + (y * stride) * in_w + (x * stride);
      const std::uint64_t* w1 = w0 + in_w;
      const std::uint64_t* w2 = w1 + in_w;
      const std::uint64_t a0 = w0[0], a1 = w0[1], a2 = w0[2];
      const std::uint64_t a3 = w1[0], a4 = w1[1], a5 = w1[2];
      const std::uint64_t a6 = w2[0], a7 = w2[1], a8 = w2[2];
      std::uint64_t* out_px = out[img]->pixel(y + margin, x + margin);
      const std::uint64_t* f = f_words;
      std::int64_t k = 0;
      std::int64_t word_idx = 0;
      while (k < num_k) {
        const std::int64_t block = std::min<std::int64_t>(64, num_k - k);
        std::uint64_t packed = 0;
        for (std::int64_t b = 0; b < block; ++b, ++k, f += 9) {
          std::int64_t pops = __builtin_popcountll(a0 ^ f[0]);
          pops += __builtin_popcountll(a1 ^ f[1]);
          pops += __builtin_popcountll(a2 ^ f[2]);
          pops += __builtin_popcountll(a3 ^ f[3]);
          pops += __builtin_popcountll(a4 ^ f[4]);
          pops += __builtin_popcountll(a5 ^ f[5]);
          pops += __builtin_popcountll(a6 ^ f[6]);
          pops += __builtin_popcountll(a7 ^ f[7]);
          pops += __builtin_popcountll(a8 ^ f[8]);
          const float dot = static_cast<float>(bits - 2 * pops);
          const float th = thresholds != nullptr ? thresholds[k] : 0.0f;
          packed |= static_cast<std::uint64_t>(dot >= th) << b;
        }
        out_px[word_idx++] = packed;
      }
    }
  });
}

template <typename Ops>
void conv_binarize_batch_impl(const PackedTensor* const* in, std::int64_t n,
                              const PackedFilterBank& filters, const ConvSpec& spec,
                              const float* thresholds, runtime::ThreadPool& pool,
                              PackedTensor* const* out, std::int64_t margin) {
  if (in[0]->words_per_pixel() == 1 && filters.kernel_h() == 3 && filters.kernel_w() == 3) {
    conv_binarize_3x3_w1_batch(in, n, filters, spec, thresholds, pool, out, margin);
    return;
  }
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t kh = filters.kernel_h();
  const std::int64_t kw = filters.kernel_w();
  const std::int64_t pc = in[0]->words_per_pixel();
  const std::int64_t row_words = kw * pc;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* window =
          in[img]->words() + ((y * stride) * in_w + (x * stride)) * pc;
      std::uint64_t* out_px = out[img]->pixel(y + margin, x + margin);
      std::int64_t k = 0;
      std::int64_t word_idx = 0;
      while (k < num_k) {
        const std::int64_t block = std::min<std::int64_t>(64, num_k - k);
        std::uint64_t packed = 0;
        for (std::int64_t b = 0; b < block; ++b, ++k) {
          const std::uint64_t* f0 = filters.filter(k);
          std::uint64_t pops = 0;
          for (std::int64_t i = 0; i < kh; ++i) {
            pops += Ops::xor_popcount(window + i * in_w * pc, f0 + i * row_words, row_words);
          }
          const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops));
          const float th = thresholds != nullptr ? thresholds[k] : 0.0f;
          packed |= static_cast<std::uint64_t>(dot >= th) << b;
        }
        out_px[word_idx++] = packed;
      }
    }
  });
}

template <typename Ops>
void conv_binarize_impl(const PackedTensor& in, const PackedFilterBank& filters,
                        const ConvSpec& spec, const float* thresholds, runtime::ThreadPool& pool,
                        PackedTensor& out, std::int64_t margin) {
  const PackedTensor* in_ptr = &in;
  PackedTensor* out_ptr = &out;
  conv_binarize_batch_impl<Ops>(&in_ptr, 1, filters, spec, thresholds, pool, &out_ptr, margin);
}

// --- register-tiled variants over the interleaved weight layout --------------
//
// Activation-stationary dataflow (YFlows): the filter loop is tiled by
// T = Tile::kWidth, and inside a tile the roles invert — each packed
// activation word is loaded once, broadcast, and XOR+popcounted against the T
// matching filter words, which the finalize-time interleave
// (bitpack::tile_filters) made contiguous.  T per-filter counters live in
// registers across the whole kh*kw*pc word walk and spill exactly once per
// tile.  The K % T remainder filters were left filter-major by the repack and
// take the word-run path of the untiled kernel.
//
// Tile is an explicit template parameter (not Ops::Tile) so each per-ISA TU
// can stamp one entry point per supported width — the auto-tuner's T axis.

template <typename Ops, typename Tile>
void conv_dot_tiled_batch_impl(const PackedTensor* const* in, std::int64_t n,
                               const TiledFilterBank& filters, const ConvSpec& spec,
                               runtime::ThreadPool& pool, Tensor* const* out) {
  constexpr std::int64_t kT = Tile::kWidth;
  if (filters.tile() != kT) {
    throw std::invalid_argument("PressedConv tiled: bank tile width does not match kernel");
  }
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t kh = filters.kernel_h();
  const std::int64_t pc = in[0]->words_per_pixel();
  const std::int64_t row_words = filters.kernel_w() * pc;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;
  const TiledBitMatrix& bank = filters.rows();
  const std::int64_t full_tiles = bank.full_tiles();

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* window =
          in[img]->words() + ((y * stride) * in_w + (x * stride)) * pc;
      float* out_px = out[img]->data() + pix * num_k;
      for (std::int64_t t = 0; t < full_tiles; ++t) {
        Tile acc{};
        // The interleaved block walks word-major over the whole filter, so
        // `f` just advances by kT per activation word across kernel rows.
        const std::uint64_t* f = bank.tile_block(t);
        for (std::int64_t i = 0; i < kh; ++i) {
          const std::uint64_t* row = window + i * in_w * pc;
          for (std::int64_t w = 0; w < row_words; ++w, f += kT) {
            acc.accumulate(row[w], f);
          }
        }
        std::uint64_t pops[kT];
        acc.reduce(pops);
        float* out_t = out_px + t * kT;
        for (std::int64_t l = 0; l < kT; ++l) {
          out_t[l] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops[l]));
        }
      }
      for (std::int64_t k = full_tiles * kT; k < num_k; ++k) {
        const std::uint64_t* f0 = bank.remainder_row(k - full_tiles * kT);
        std::uint64_t pops = 0;
        for (std::int64_t i = 0; i < kh; ++i) {
          pops += Ops::xor_popcount(window + i * in_w * pc, f0 + i * row_words, row_words);
        }
        out_px[k] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops));
      }
    }
  });
}

template <typename Ops, typename Tile>
void conv_binarize_tiled_batch_impl(const PackedTensor* const* in, std::int64_t n,
                                    const TiledFilterBank& filters, const ConvSpec& spec,
                                    const float* thresholds, runtime::ThreadPool& pool,
                                    PackedTensor* const* out, std::int64_t margin) {
  constexpr std::int64_t kT = Tile::kWidth;
  static_assert(64 % Tile::kWidth == 0, "filter tiles must not straddle output words");
  if (filters.tile() != kT) {
    throw std::invalid_argument("PressedConv tiled: bank tile width does not match kernel");
  }
  const std::int64_t out_h = spec.out_h(in[0]->height());
  const std::int64_t out_w = spec.out_w(in[0]->width());
  const std::int64_t pixels = out_h * out_w;
  const std::int64_t kh = filters.kernel_h();
  const std::int64_t pc = in[0]->words_per_pixel();
  const std::int64_t row_words = filters.kernel_w() * pc;
  const std::int64_t bits = filters.bits_per_filter();
  const std::int64_t num_k = filters.num_filters();
  const std::int64_t in_w = in[0]->width();
  const std::int64_t stride = spec.stride;
  const TiledBitMatrix& bank = filters.rows();
  const std::int64_t full_tiles = bank.full_tiles();

  pool.parallel_for(n * pixels, spec.par_grain, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t img = idx / pixels;
      const std::int64_t pix = idx - img * pixels;
      const std::int64_t y = pix / out_w;
      const std::int64_t x = pix % out_w;
      const std::uint64_t* window =
          in[img]->words() + ((y * stride) * in_w + (x * stride)) * pc;
      std::uint64_t* out_px = out[img]->pixel(y + margin, x + margin);
      std::uint64_t packed = 0;
      std::int64_t bit = 0, word_idx = 0, k = 0;
      for (std::int64_t t = 0; t < full_tiles; ++t) {
        Tile acc{};
        const std::uint64_t* f = bank.tile_block(t);
        for (std::int64_t i = 0; i < kh; ++i) {
          const std::uint64_t* row = window + i * in_w * pc;
          for (std::int64_t w = 0; w < row_words; ++w, f += kT) {
            acc.accumulate(row[w], f);
          }
        }
        std::uint64_t pops[kT];
        acc.reduce(pops);
        // kT divides 64, so a tile's bits never split across output words
        // and `bit` can only hit 64 between tiles.
        for (std::int64_t l = 0; l < kT; ++l, ++k) {
          const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops[l]));
          const float th = thresholds != nullptr ? thresholds[k] : 0.0f;
          packed |= static_cast<std::uint64_t>(dot >= th) << bit;
          if (++bit == 64) {
            out_px[word_idx++] = packed;
            packed = 0;
            bit = 0;
          }
        }
      }
      for (; k < num_k; ++k) {
        const std::uint64_t* f0 = bank.remainder_row(k - full_tiles * kT);
        std::uint64_t pops = 0;
        for (std::int64_t i = 0; i < kh; ++i) {
          pops += Ops::xor_popcount(window + i * in_w * pc, f0 + i * row_words, row_words);
        }
        const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops));
        const float th = thresholds != nullptr ? thresholds[k] : 0.0f;
        packed |= static_cast<std::uint64_t>(dot >= th) << bit;
        if (++bit == 64) {
          out_px[word_idx++] = packed;
          packed = 0;
          bit = 0;
        }
      }
      if (bit > 0) out_px[word_idx] = packed;
    }
  });
}

}  // namespace bitflow::kernels::impl

/// Stamps out the kernel entry points (single-image and batched) for one ISA
/// policy.  Used by each per-ISA TU after defining `Ops`.
#define BITFLOW_INSTANTIATE_PRESSEDCONV(SUFFIX, OPS)                                            \
  namespace bitflow::kernels::detail {                                                          \
  void conv_dot_##SUFFIX(const PackedTensor& in, const PackedFilterBank& filters,               \
                         const ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out) {        \
    impl::conv_dot_impl<OPS>(in, filters, spec, pool, out);                                     \
  }                                                                                             \
  void conv_binarize_##SUFFIX(const PackedTensor& in, const PackedFilterBank& filters,          \
                              const ConvSpec& spec, const float* thresholds,                    \
                              runtime::ThreadPool& pool, PackedTensor& out,                     \
                              std::int64_t margin) {                                            \
    impl::conv_binarize_impl<OPS>(in, filters, spec, thresholds, pool, out, margin);            \
  }                                                                                             \
  void conv_dot_batch_##SUFFIX(const PackedTensor* const* in, std::int64_t n,                   \
                               const PackedFilterBank& filters, const ConvSpec& spec,           \
                               runtime::ThreadPool& pool, Tensor* const* out) {                 \
    impl::conv_dot_batch_impl<OPS>(in, n, filters, spec, pool, out);                            \
  }                                                                                             \
  void conv_binarize_batch_##SUFFIX(const PackedTensor* const* in, std::int64_t n,              \
                                    const PackedFilterBank& filters, const ConvSpec& spec,      \
                                    const float* thresholds, runtime::ThreadPool& pool,         \
                                    PackedTensor* const* out, std::int64_t margin) {            \
    impl::conv_binarize_batch_impl<OPS>(in, n, filters, spec, thresholds, pool, out, margin);   \
  }                                                                                             \
  }  // namespace bitflow::kernels::detail

/// Stamps out the register-tiled entry points for one (ISA policy, tile
/// accumulator) pair.  A TU invokes this once per tile width it supports;
/// SUFFIX conventionally appends the width, e.g. avx2_t8.
#define BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(SUFFIX, OPS, TILE)                                \
  namespace bitflow::kernels::detail {                                                          \
  void conv_dot_tiled_batch_##SUFFIX(const PackedTensor* const* in, std::int64_t n,             \
                                     const TiledFilterBank& filters, const ConvSpec& spec,      \
                                     runtime::ThreadPool& pool, Tensor* const* out) {           \
    impl::conv_dot_tiled_batch_impl<OPS, TILE>(in, n, filters, spec, pool, out);                \
  }                                                                                             \
  void conv_binarize_tiled_batch_##SUFFIX(                                                      \
      const PackedTensor* const* in, std::int64_t n, const TiledFilterBank& filters,            \
      const ConvSpec& spec, const float* thresholds, runtime::ThreadPool& pool,                 \
      PackedTensor* const* out, std::int64_t margin) {                                          \
    impl::conv_binarize_tiled_batch_impl<OPS, TILE>(in, n, filters, spec, thresholds, pool,     \
                                                    out, margin);                               \
  }                                                                                             \
  }  // namespace bitflow::kernels::detail
