#include "kernels/binary_maxpool.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/check.hpp"
#include "simd/bitops.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::kernels {

void binary_maxpool(const PackedTensor& in, const PoolSpec& spec, simd::IsaLevel isa,
                    runtime::ThreadPool& pool, PackedTensor& out, std::int64_t margin) {
  BF_CHECK(spec.pool_h >= 1 && spec.pool_w >= 1, "binary_maxpool: window ", spec.pool_h, "x",
           spec.pool_w);
  BF_CHECK(spec.stride >= 1, "binary_maxpool: stride ", spec.stride);
  BF_CHECK(margin >= 0, "binary_maxpool: negative margin ", margin);
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("binary_maxpool: window larger than input");
  if (out.height() != oh + 2 * margin || out.width() != ow + 2 * margin ||
      out.channels() != in.channels()) {
    throw std::invalid_argument("binary_maxpool: output mis-shaped for margin");
  }
  const std::int64_t pc = in.words_per_pixel();
  const std::int64_t row_words = in.width() * pc;
  const auto or_acc = simd::or_accumulate_fn(isa);

  // One full-width scratch row per worker.
  std::vector<std::vector<std::uint64_t>> scratch(
      static_cast<std::size_t>(pool.num_threads()),
      std::vector<std::uint64_t>(static_cast<std::size_t>(row_words)));

  pool.parallel_for(oh, [&](runtime::Range r, int worker) {
    std::uint64_t* tmp = scratch[static_cast<std::size_t>(worker)].data();
    for (std::int64_t y = r.begin; y < r.end; ++y) {
      // Vertical OR of the window's input rows (contiguous SIMD runs).
      const std::int64_t iy = y * spec.stride;
      std::memcpy(tmp, in.pixel(iy, 0), static_cast<std::size_t>(row_words) * 8);
      for (std::int64_t i = 1; i < spec.pool_h; ++i) {
        or_acc(tmp, in.pixel(iy + i, 0), row_words);
      }
      // Horizontal combine: OR the pool_w pixel blocks of each window.
      for (std::int64_t x = 0; x < ow; ++x) {
        std::uint64_t* out_px = out.pixel(y + margin, x + margin);
        const std::uint64_t* first = tmp + (x * spec.stride) * pc;
        for (std::int64_t p = 0; p < pc; ++p) out_px[p] = first[p];
        for (std::int64_t j = 1; j < spec.pool_w; ++j) {
          const std::uint64_t* block = tmp + (x * spec.stride + j) * pc;
          for (std::int64_t p = 0; p < pc; ++p) out_px[p] |= block[p];
        }
      }
    }
  });
}

void binary_maxpool(const PackedTensor& in, const PoolSpec& spec, runtime::ThreadPool& pool,
                    PackedTensor& out, std::int64_t margin) {
  binary_maxpool(in, spec, simd::cpu_features().best_isa(), pool, out, margin);
}

}  // namespace bitflow::kernels
