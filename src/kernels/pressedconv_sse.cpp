// PressedConv, SSE kernel (scheduler rule 3: channel dimension a multiple of
// 128 — e.g. VGG conv3.1 with C = 128).
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsSse {
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_sse(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(sse, OpsSse)
BITFLOW_INSTANTIATE_BGEMM(sse, OpsSse)

// 128-bit SSE has no profitable qword popcount fan-out, so both tile-width
// candidates use scalar hardware-popcnt chains (4 or 8 of them).
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(sse_t4, OpsSse, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(sse_t8, OpsSse, bitflow::simd::inl::TileAcc8Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(sse_t4, OpsSse, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(sse_t8, OpsSse, bitflow::simd::inl::TileAcc8Scalar)
