// PressedConv, AVX2 kernel (scheduler rule 2: channel dimension a multiple
// of 256 — e.g. VGG conv4.1 with C = 256).
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsAvx2 {
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_avx2(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(avx2, OpsAvx2)
BITFLOW_INSTANTIATE_BGEMM(avx2, OpsAvx2)

// Auto-tuner tile-width candidates: scalar 4-chain, vector 8 and 16.
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx2_t4, OpsAvx2, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx2_t8, OpsAvx2, bitflow::simd::inl::TileAcc8Avx2)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx2_t16, OpsAvx2, bitflow::simd::inl::TileAcc16Avx2)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx2_t4, OpsAvx2, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx2_t8, OpsAvx2, bitflow::simd::inl::TileAcc8Avx2)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx2_t16, OpsAvx2, bitflow::simd::inl::TileAcc16Avx2)
