// PressedConv: binary convolution over channel-packed tensors (paper
// Algorithm 1, Sec. III-B).
//
// Step 1/2 (bit-packing of input and filters along the channel dimension)
// live in bitpack/packer.hpp; the functions here are step 3: convolution of
// the pressed operands, multiplications as XOR, accumulations as popcount,
// vector parallelism along C, multi-core parallelism over the fused H*W
// output range.
//
// Two output forms are provided:
//  * `_dot`      — raw Eq. 1 inner products as floats (last layer of a
//                  network, or anywhere full-precision outputs are needed);
//  * `_binarize` — fused sign(dot - threshold[k]) re-packed straight into
//                  the (optionally margin-carrying) output of the next
//                  layer.  The per-output-channel threshold is how folded
//                  batch-normalization enters a BNN at inference time.
//
// Each ISA variant is compiled in its own TU with exactly that ISA enabled;
// `conv_dot_kernel(isa)` / `conv_binarize_kernel(isa)` return the variant,
// and the vector execution scheduler (graph/scheduler.hpp) chooses `isa`.
#pragma once

#include <cstdint>

#include "kernels/conv_spec.hpp"
#include "runtime/thread_pool.hpp"
#include "simd/isa.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::kernels {

/// Raw-dot PressedConv: writes Eq. 1 inner products into an HWC float tensor
/// of extents out_h x out_w x K.  `out` must be pre-shaped by the caller.
using ConvDotFn = void (*)(const PackedTensor& in, const PackedFilterBank& filters,
                           const ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out);

/// Fused PressedConv + binarize: bit k of output pixel (y, x) is
/// `dot(y,x,k) >= thresholds[k]` (thresholds may be null for sign(dot)).
/// The result is written into the interior of `out` at offset `margin` on
/// each side; `out` extents must be (out_h + 2*margin, out_w + 2*margin, K)
/// and its margin region is left untouched (zero bits = -1), realizing the
/// next layer's padding at zero cost (paper Fig. 5).
using ConvBinarizeFn = void (*)(const PackedTensor& in, const PackedFilterBank& filters,
                                const ConvSpec& spec, const float* thresholds,
                                runtime::ThreadPool& pool, PackedTensor& out,
                                std::int64_t margin);

/// Batch-N raw-dot PressedConv: `in` and `out` are arrays of `n` tensor
/// pointers with identical extents; the batch axis is fused with the spatial
/// output range into one n*out_h*out_w parallel_for, so N requests cost one
/// fork/join and deep layers with small H*W still fill the pool.  Output b
/// is bit-identical to a single-image run over in[b] (the single-image entry
/// points are the n = 1 case of the same loop).
using ConvDotBatchFn = void (*)(const PackedTensor* const* in, std::int64_t n,
                                const PackedFilterBank& filters, const ConvSpec& spec,
                                runtime::ThreadPool& pool, Tensor* const* out);

/// Batch-N fused PressedConv + binarize; see ConvBinarizeFn for the margin
/// contract, applied to each of the `n` outputs.
using ConvBinarizeBatchFn = void (*)(const PackedTensor* const* in, std::int64_t n,
                                     const PackedFilterBank& filters, const ConvSpec& spec,
                                     const float* thresholds, runtime::ThreadPool& pool,
                                     PackedTensor* const* out, std::int64_t margin);

/// Batch-N raw-dot PressedConv over the interleaved weight layout: same
/// contract as ConvDotBatchFn, but the filters are a register-tile bank
/// produced by bitpack::tile_filters with tile = weight_tile_width(isa).
/// Bit-exact with the filter-major kernels; throws std::invalid_argument if
/// the bank's tile width does not match the kernel's.
using ConvDotTiledBatchFn = void (*)(const PackedTensor* const* in, std::int64_t n,
                                     const TiledFilterBank& filters, const ConvSpec& spec,
                                     runtime::ThreadPool& pool, Tensor* const* out);

/// Batch-N fused PressedConv + binarize over the interleaved weight layout;
/// see ConvBinarizeBatchFn for the margin contract.
using ConvBinarizeTiledBatchFn = void (*)(const PackedTensor* const* in, std::int64_t n,
                                          const TiledFilterBank& filters, const ConvSpec& spec,
                                          const float* thresholds, runtime::ThreadPool& pool,
                                          PackedTensor* const* out, std::int64_t margin);

/// Returns the raw-dot kernel compiled for `isa`.  The caller must have
/// verified hardware support (simd::cpu_features().supports(isa)).
[[nodiscard]] ConvDotFn conv_dot_kernel(simd::IsaLevel isa);

/// Returns the fused binarize kernel compiled for `isa`.
[[nodiscard]] ConvBinarizeFn conv_binarize_kernel(simd::IsaLevel isa);

/// Batch-N counterparts of the kernel getters.
[[nodiscard]] ConvDotBatchFn conv_dot_batch_kernel(simd::IsaLevel isa);
[[nodiscard]] ConvBinarizeBatchFn conv_binarize_batch_kernel(simd::IsaLevel isa);
[[nodiscard]] ConvDotBatchFn conv_dot_batch_kernel(simd::IsaLevel isa, bool use_vpopcntdq);
[[nodiscard]] ConvBinarizeBatchFn conv_binarize_batch_kernel(simd::IsaLevel isa,
                                                             bool use_vpopcntdq);

/// Register-tiled kernel getters (interleaved weight layout).  The bank's
/// tile width must match the kernel's; the overloads without an explicit
/// `tile` return the weight_tile_width(isa) default, and single-image
/// callers pass n = 1 — the batch entry points are the only tiled entry
/// points.
[[nodiscard]] ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa);
[[nodiscard]] ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa);
[[nodiscard]] ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa,
                                                              bool use_vpopcntdq);
[[nodiscard]] ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa,
                                                                        bool use_vpopcntdq);

/// Tile-parameterized getters for the auto-tuner: `tile` must be one of
/// supported_tile_widths(isa) (throws std::invalid_argument otherwise).
[[nodiscard]] ConvDotTiledBatchFn conv_dot_tiled_batch_kernel(simd::IsaLevel isa,
                                                              bool use_vpopcntdq,
                                                              std::int64_t tile);
[[nodiscard]] ConvBinarizeTiledBatchFn conv_binarize_tiled_batch_kernel(simd::IsaLevel isa,
                                                                        bool use_vpopcntdq,
                                                                        std::int64_t tile);

/// Variant-pinned overloads: at kAvx512, `use_vpopcntdq` selects between the
/// byte-LUT TU and the native-VPOPCNTDQ TU instead of deferring to CPUID (the
/// ISA-parity harness exercises both on capable hosts).  At narrower levels
/// the flag is ignored.
[[nodiscard]] ConvDotFn conv_dot_kernel(simd::IsaLevel isa, bool use_vpopcntdq);
[[nodiscard]] ConvBinarizeFn conv_binarize_kernel(simd::IsaLevel isa, bool use_vpopcntdq);

/// Convenience wrappers that dispatch to the widest kernel the executing CPU
/// supports (still honouring the channel-multiple rules is the scheduler's
/// job; these pick purely by hardware).
void pressed_conv_dot(const PackedTensor& in, const PackedFilterBank& filters,
                      const ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out);

void pressed_conv_binarize(const PackedTensor& in, const PackedFilterBank& filters,
                           const ConvSpec& spec, const float* thresholds,
                           runtime::ThreadPool& pool, PackedTensor& out, std::int64_t margin);

/// Validates extents shared by every PressedConv entry point; throws
/// std::invalid_argument on mismatch.  Exposed for reuse by baselines.
void check_conv_args(const PackedTensor& in, const PackedFilterBank& filters,
                     const ConvSpec& spec);

/// Batch variant: additionally requires n >= 1 and every image to share
/// image 0's extents (the fused range divides uniformly by out_h*out_w).
void check_conv_batch_args(const PackedTensor* const* in, std::int64_t n,
                           const PackedFilterBank& filters, const ConvSpec& spec);

}  // namespace bitflow::kernels
