#include "kernels/padding.hpp"

#include <cstring>
#include <stdexcept>

namespace bitflow::kernels {

void copy_into_interior(const PackedTensor& in, PackedTensor& out, std::int64_t margin) {
  if (out.height() != in.height() + 2 * margin || out.width() != in.width() + 2 * margin ||
      out.channels() != in.channels()) {
    throw std::invalid_argument("copy_into_interior: extent mismatch");
  }
  const std::int64_t row_bytes = in.width() * in.words_per_pixel() * 8;
  for (std::int64_t h = 0; h < in.height(); ++h) {
    std::memcpy(out.pixel(h + margin, margin), in.pixel(h, 0),
                static_cast<std::size_t>(row_bytes));
  }
}

PackedTensor pad_packed(const PackedTensor& in, std::int64_t margin) {
  if (margin < 0) throw std::invalid_argument("pad_packed: negative margin");
  PackedTensor out(in.height() + 2 * margin, in.width() + 2 * margin, in.channels());
  copy_into_interior(in, out, margin);
  return out;
}

}  // namespace bitflow::kernels
