// PressedConv, AVX-512 kernel with native VPOPCNTDQ (Table I
// _mm512_popcnt_epi64 / maskz forms) — the paper's Xeon Phi path.
// Scheduler rule 1: channel dimension a multiple of 512 (VGG conv5.1).
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsAvx512Vp {
  // TileAcc8Avx512's popcount_epi64_512 lowers to native VPOPCNTDQ in this
  // TU's -m flags — same struct, different instruction selection.
  using Tile = bitflow::simd::inl::TileAcc8Avx512;
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_avx512(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(avx512vp, OpsAvx512Vp)
BITFLOW_INSTANTIATE_BGEMM(avx512vp, OpsAvx512Vp)
