// PressedConv, AVX-512 kernel with native VPOPCNTDQ (Table I
// _mm512_popcnt_epi64 / maskz forms) — the paper's Xeon Phi path.
// Scheduler rule 1: channel dimension a multiple of 512 (VGG conv5.1).
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsAvx512Vp {
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_avx512(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(avx512vp, OpsAvx512Vp)
BITFLOW_INSTANTIATE_BGEMM(avx512vp, OpsAvx512Vp)

// Auto-tuner tile-width candidates; the TileAcc*Avx512 popcount_epi64_512
// lowers to native VPOPCNTDQ in this TU's -m flags — same structs as the
// LUT TU, different instruction selection.
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512vp_t4, OpsAvx512Vp,
                                      bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512vp_t8, OpsAvx512Vp,
                                      bitflow::simd::inl::TileAcc8Avx512)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512vp_t16, OpsAvx512Vp,
                                      bitflow::simd::inl::TileAcc16Avx512)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512vp_t4, OpsAvx512Vp, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512vp_t8, OpsAvx512Vp, bitflow::simd::inl::TileAcc8Avx512)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512vp_t16, OpsAvx512Vp,
                                bitflow::simd::inl::TileAcc16Avx512)
