// Runtime dispatch front for the per-ISA bgemm kernels.
#include "kernels/bgemm.hpp"

#include <stdexcept>

#include "simd/cpu_features.hpp"

namespace bitflow::kernels {

namespace detail {
#define BITFLOW_DECLARE_BGEMM(SUFFIX)                                                         \
  void bgemm_##SUFFIX(const PackedMatrix&, const PackedMatrix&, runtime::ThreadPool&, float*); \
  void bgemm_binarize_##SUFFIX(const PackedMatrix&, const PackedMatrix&, const float*,         \
                               runtime::ThreadPool&, PackedMatrix&);                           \
  void bgemm_rows_##SUFFIX(const PackedMatrix&, std::int64_t, const PackedMatrix&,             \
                           runtime::ThreadPool&, float*);                                      \
  void bgemm_binarize_rows_##SUFFIX(const PackedMatrix&, std::int64_t, const PackedMatrix&,    \
                                    const float*, runtime::ThreadPool&, PackedMatrix&);        \
  void bgemm_rows_tiled_##SUFFIX(const PackedMatrix&, std::int64_t, const TiledBitMatrix&,     \
                                 runtime::ThreadPool&, float*);                                \
  void bgemm_binarize_rows_tiled_##SUFFIX(const PackedMatrix&, std::int64_t,                   \
                                          const TiledBitMatrix&, const float*,                 \
                                          runtime::ThreadPool&, PackedMatrix&);
BITFLOW_DECLARE_BGEMM(u64)
BITFLOW_DECLARE_BGEMM(sse)
BITFLOW_DECLARE_BGEMM(avx2)
BITFLOW_DECLARE_BGEMM(avx512)
BITFLOW_DECLARE_BGEMM(avx512vp)
#undef BITFLOW_DECLARE_BGEMM
}  // namespace detail

BgemmFn bgemm_kernel(simd::IsaLevel isa) {
  return bgemm_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmFn bgemm_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_avx512vp : &detail::bgemm_avx512;
  }
  throw std::invalid_argument("bgemm_kernel: bad ISA level");
}

BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_binarize_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_binarize_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_binarize_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_binarize_avx512vp : &detail::bgemm_binarize_avx512;
  }
  throw std::invalid_argument("bgemm_binarize_kernel: bad ISA level");
}

BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa) {
  return bgemm_rows_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_rows_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_rows_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_rows_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_rows_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_rows_avx512vp : &detail::bgemm_rows_avx512;
  }
  throw std::invalid_argument("bgemm_rows_kernel: bad ISA level");
}

BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_binarize_rows_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_binarize_rows_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_binarize_rows_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_binarize_rows_avx512vp
                           : &detail::bgemm_binarize_rows_avx512;
  }
  throw std::invalid_argument("bgemm_binarize_rows_kernel: bad ISA level");
}

BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa) {
  return bgemm_rows_tiled_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_rows_tiled_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_rows_tiled_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_rows_tiled_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_rows_tiled_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_rows_tiled_avx512vp
                           : &detail::bgemm_rows_tiled_avx512;
  }
  throw std::invalid_argument("bgemm_rows_tiled_kernel: bad ISA level");
}

BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa,
                                                          bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_binarize_rows_tiled_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_binarize_rows_tiled_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_binarize_rows_tiled_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_binarize_rows_tiled_avx512vp
                           : &detail::bgemm_binarize_rows_tiled_avx512;
  }
  throw std::invalid_argument("bgemm_binarize_rows_tiled_kernel: bad ISA level");
}

void bgemm(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool, float* y) {
  bgemm_kernel(simd::cpu_features().best_isa())(a, w, pool, y);
}

void bgemm_binarize(const PackedMatrix& a, const PackedMatrix& w, const float* thresholds,
                    runtime::ThreadPool& pool, PackedMatrix& out) {
  bgemm_binarize_kernel(simd::cpu_features().best_isa())(a, w, thresholds, pool, out);
}

}  // namespace bitflow::kernels
