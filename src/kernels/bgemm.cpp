// Runtime dispatch front for the per-ISA bgemm kernels.
#include "kernels/bgemm.hpp"

#include <stdexcept>
#include <string>

#include "kernels/conv_spec.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::kernels {

namespace detail {
#define BITFLOW_DECLARE_BGEMM(SUFFIX)                                                         \
  void bgemm_##SUFFIX(const PackedMatrix&, const PackedMatrix&, runtime::ThreadPool&, float*); \
  void bgemm_binarize_##SUFFIX(const PackedMatrix&, const PackedMatrix&, const float*,         \
                               runtime::ThreadPool&, PackedMatrix&);                           \
  void bgemm_rows_##SUFFIX(const PackedMatrix&, std::int64_t, const PackedMatrix&,             \
                           runtime::ThreadPool&, float*);                                      \
  void bgemm_binarize_rows_##SUFFIX(const PackedMatrix&, std::int64_t, const PackedMatrix&,    \
                                    const float*, runtime::ThreadPool&, PackedMatrix&);
BITFLOW_DECLARE_BGEMM(u64)
BITFLOW_DECLARE_BGEMM(sse)
BITFLOW_DECLARE_BGEMM(avx2)
BITFLOW_DECLARE_BGEMM(avx512)
BITFLOW_DECLARE_BGEMM(avx512vp)
#undef BITFLOW_DECLARE_BGEMM

// Defined by BITFLOW_INSTANTIATE_BGEMM_TILED in the per-ISA TUs, one suffix
// per (ISA, tile width) pair the TU stamps.
#define BITFLOW_DECLARE_BGEMM_TILED(SUFFIX)                                                    \
  void bgemm_rows_tiled_##SUFFIX(const PackedMatrix&, std::int64_t, const TiledBitMatrix&,     \
                                 runtime::ThreadPool&, float*);                                \
  void bgemm_binarize_rows_tiled_##SUFFIX(const PackedMatrix&, std::int64_t,                   \
                                          const TiledBitMatrix&, const float*,                 \
                                          runtime::ThreadPool&, PackedMatrix&);
BITFLOW_DECLARE_BGEMM_TILED(u64_t4)
BITFLOW_DECLARE_BGEMM_TILED(u64_t8)
BITFLOW_DECLARE_BGEMM_TILED(sse_t4)
BITFLOW_DECLARE_BGEMM_TILED(sse_t8)
BITFLOW_DECLARE_BGEMM_TILED(avx2_t4)
BITFLOW_DECLARE_BGEMM_TILED(avx2_t8)
BITFLOW_DECLARE_BGEMM_TILED(avx2_t16)
BITFLOW_DECLARE_BGEMM_TILED(avx512_t4)
BITFLOW_DECLARE_BGEMM_TILED(avx512_t8)
BITFLOW_DECLARE_BGEMM_TILED(avx512_t16)
BITFLOW_DECLARE_BGEMM_TILED(avx512vp_t4)
BITFLOW_DECLARE_BGEMM_TILED(avx512vp_t8)
BITFLOW_DECLARE_BGEMM_TILED(avx512vp_t16)
#undef BITFLOW_DECLARE_BGEMM_TILED
}  // namespace detail

BgemmFn bgemm_kernel(simd::IsaLevel isa) {
  return bgemm_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmFn bgemm_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_avx512vp : &detail::bgemm_avx512;
  }
  throw std::invalid_argument("bgemm_kernel: bad ISA level");
}

BgemmBinarizeFn bgemm_binarize_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_binarize_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_binarize_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_binarize_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_binarize_avx512vp : &detail::bgemm_binarize_avx512;
  }
  throw std::invalid_argument("bgemm_binarize_kernel: bad ISA level");
}

BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa) {
  return bgemm_rows_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_rows_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmRowsFn bgemm_rows_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_rows_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_rows_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_rows_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_rows_avx512vp : &detail::bgemm_rows_avx512;
  }
  throw std::invalid_argument("bgemm_rows_kernel: bad ISA level");
}

BgemmBinarizeRowsFn bgemm_binarize_rows_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  switch (isa) {
    case simd::IsaLevel::kU64: return &detail::bgemm_binarize_rows_u64;
    case simd::IsaLevel::kSse: return &detail::bgemm_binarize_rows_sse;
    case simd::IsaLevel::kAvx2: return &detail::bgemm_binarize_rows_avx2;
    case simd::IsaLevel::kAvx512:
      return use_vpopcntdq ? &detail::bgemm_binarize_rows_avx512vp
                           : &detail::bgemm_binarize_rows_avx512;
  }
  throw std::invalid_argument("bgemm_binarize_rows_kernel: bad ISA level");
}

BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa) {
  return bgemm_rows_tiled_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa) {
  return bgemm_binarize_rows_tiled_kernel(isa, simd::cpu_features().avx512vpopcntdq);
}

BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa, bool use_vpopcntdq) {
  return bgemm_rows_tiled_kernel(isa, use_vpopcntdq, weight_tile_width(isa));
}

BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa,
                                                          bool use_vpopcntdq) {
  return bgemm_binarize_rows_tiled_kernel(isa, use_vpopcntdq, weight_tile_width(isa));
}

// Nested (ISA, tile width) dispatch, same scheme as pressedconv.cpp: an
// (isa, tile) pair with no instantiation throws rather than falling back.
#define BITFLOW_TILED_DISPATCH(NAME)                                                          \
  switch (isa) {                                                                              \
    case simd::IsaLevel::kU64:                                                                \
      if (tile == 4) return &detail::NAME##_u64_t4;                                           \
      if (tile == 8) return &detail::NAME##_u64_t8;                                           \
      break;                                                                                  \
    case simd::IsaLevel::kSse:                                                                \
      if (tile == 4) return &detail::NAME##_sse_t4;                                           \
      if (tile == 8) return &detail::NAME##_sse_t8;                                           \
      break;                                                                                  \
    case simd::IsaLevel::kAvx2:                                                               \
      if (tile == 4) return &detail::NAME##_avx2_t4;                                          \
      if (tile == 8) return &detail::NAME##_avx2_t8;                                          \
      if (tile == 16) return &detail::NAME##_avx2_t16;                                        \
      break;                                                                                  \
    case simd::IsaLevel::kAvx512:                                                             \
      if (tile == 4) return use_vpopcntdq ? &detail::NAME##_avx512vp_t4                       \
                                          : &detail::NAME##_avx512_t4;                        \
      if (tile == 8) return use_vpopcntdq ? &detail::NAME##_avx512vp_t8                       \
                                          : &detail::NAME##_avx512_t8;                        \
      if (tile == 16) return use_vpopcntdq ? &detail::NAME##_avx512vp_t16                     \
                                           : &detail::NAME##_avx512_t16;                      \
      break;                                                                                  \
  }                                                                                           \
  throw std::invalid_argument(#NAME "_kernel: no instantiation for (isa, tile " +             \
                              std::to_string(tile) + ")")

BgemmRowsTiledFn bgemm_rows_tiled_kernel(simd::IsaLevel isa, bool use_vpopcntdq,
                                         std::int64_t tile) {
  BITFLOW_TILED_DISPATCH(bgemm_rows_tiled);
}

BgemmBinarizeRowsTiledFn bgemm_binarize_rows_tiled_kernel(simd::IsaLevel isa,
                                                          bool use_vpopcntdq,
                                                          std::int64_t tile) {
  BITFLOW_TILED_DISPATCH(bgemm_binarize_rows_tiled);
}

void bgemm(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool, float* y) {
  bgemm_kernel(simd::cpu_features().best_isa())(a, w, pool, y);
}

void bgemm_binarize(const PackedMatrix& a, const PackedMatrix& w, const float* thresholds,
                    runtime::ThreadPool& pool, PackedMatrix& out) {
  bgemm_binarize_kernel(simd::cpu_features().best_isa())(a, w, thresholds, pool, out);
}

}  // namespace bitflow::kernels
