// PressedConv, AVX-512 kernel without VPOPCNTDQ (byte-LUT popcount): the
// portable AVX-512 path for CPUs like Skylake-SP.
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsAvx512Lut {
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_avx512(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(avx512, OpsAvx512Lut)
BITFLOW_INSTANTIATE_BGEMM(avx512, OpsAvx512Lut)

// Auto-tuner tile-width candidates: scalar 4-chain, one or two 512-bit
// accumulators (popcount lowers to the byte-LUT in this TU's -m flags).
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512_t4, OpsAvx512Lut,
                                      bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512_t8, OpsAvx512Lut,
                                      bitflow::simd::inl::TileAcc8Avx512)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(avx512_t16, OpsAvx512Lut,
                                      bitflow::simd::inl::TileAcc16Avx512)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512_t4, OpsAvx512Lut, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512_t8, OpsAvx512Lut, bitflow::simd::inl::TileAcc8Avx512)
BITFLOW_INSTANTIATE_BGEMM_TILED(avx512_t16, OpsAvx512Lut, bitflow::simd::inl::TileAcc16Avx512)
