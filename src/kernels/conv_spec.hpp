// Convolution geometry shared by every conv kernel in the repository.
//
// BitFlow kernels compute *valid* convolutions: spatial padding is realized
// upstream by writing the producing layer's output into the interior of a
// pre-allocated, zero-initialized buffer (paper Fig. 5, "zero-cost
// padding"), so by the time a kernel runs, its input already carries the
// margin.  Padding bits are 0, which decode to -1 under the BNN encoding.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "core/check.hpp"
#include "simd/isa.hpp"

namespace bitflow::kernels {

/// How a layer's weight words are laid out in memory after finalize().
enum class WeightLayout : std::uint8_t {
  /// One filter's (or FC row's) words are contiguous: [K][fh*fw*PC].
  kFilterMajor = 0,
  /// T-way register-tile interleave: full tiles [K/T][fh*fw*PC][T] followed
  /// by the K%T remainder rows in filter-major order (TiledBitMatrix).
  kInterleaved = 1,
};

[[nodiscard]] constexpr const char* weight_layout_name(WeightLayout layout) noexcept {
  switch (layout) {
    case WeightLayout::kFilterMajor:
      return "filter_major";
    case WeightLayout::kInterleaved:
      return "interleaved";
  }
  return "unknown";
}

/// Register-tile width T for the interleaved layout on a given ISA: how many
/// filters one TileAcc tracks at once.  4 on scalar/SSE (four independent
/// 64-bit popcnt chains), 8 on AVX2/AVX-512 (qword lanes of one or two
/// vector accumulators).  T always divides 64, so filter tiles never
/// straddle a 64-bit output word in the fused-binarize kernels.
///
/// This is the *default* width — what finalize() commits when auto-tuning is
/// off.  The tuner searches over supported_tile_widths() instead.
[[nodiscard]] constexpr std::int64_t weight_tile_width(simd::IsaLevel isa) noexcept {
  return isa >= simd::IsaLevel::kAvx2 ? 8 : 4;
}

/// The register-tile widths an ISA has kernel instantiations for — the
/// auto-tuner's candidate set.  Scalar/SSE stamp T in {4, 8} (independent
/// popcnt chains); AVX2/AVX-512 add T = 16 (two/four vector accumulators).
/// Every width divides 64 (tiles never straddle an output word).
struct TileWidthSet {
  std::array<std::int64_t, 3> widths{};
  std::int64_t count = 0;
  [[nodiscard]] bool contains(std::int64_t t) const noexcept {
    for (std::int64_t i = 0; i < count; ++i) {
      if (widths[static_cast<std::size_t>(i)] == t) return true;
    }
    return false;
  }
};

[[nodiscard]] constexpr TileWidthSet supported_tile_widths(simd::IsaLevel isa) noexcept {
  if (isa >= simd::IsaLevel::kAvx2) return TileWidthSet{{4, 8, 16}, 3};
  return TileWidthSet{{4, 8, 0}, 2};
}

/// Geometry of one convolution: filter extents and stride.  Output extents
/// follow from the (already padded) input extents.
struct ConvSpec {
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride = 1;
  /// Parallel-axis granularity for the fused n*out_h*out_w parallel_for
  /// range: static block boundaries are rounded to multiples of this, so
  /// e.g. par_grain = out_w splits work by whole output rows instead of by
  /// pixels.  1 (the default) reproduces the pixel-level split exactly.  A
  /// tuner knob only — the partition never changes any output bit, just
  /// which worker computes which pixel.
  std::int64_t par_grain = 1;

  /// Contract check on the geometry itself (independent of any input):
  /// positive filter extents and stride.
  void validate() const {
    BF_CHECK(kernel_h >= 1 && kernel_w >= 1, "ConvSpec: filter extents ", kernel_h, "x",
             kernel_w);
    BF_CHECK(stride >= 1, "ConvSpec: stride ", stride);
    BF_CHECK(par_grain >= 1, "ConvSpec: par_grain ", par_grain);
  }

  [[nodiscard]] std::int64_t out_h(std::int64_t in_h) const {
    const std::int64_t o = (in_h - kernel_h) / stride + 1;
    if (o <= 0) throw std::invalid_argument("ConvSpec: kernel taller than input");
    return o;
  }
  [[nodiscard]] std::int64_t out_w(std::int64_t in_w) const {
    const std::int64_t o = (in_w - kernel_w) / stride + 1;
    if (o <= 0) throw std::invalid_argument("ConvSpec: kernel wider than input");
    return o;
  }
};

}  // namespace bitflow::kernels
