// Convolution geometry shared by every conv kernel in the repository.
//
// BitFlow kernels compute *valid* convolutions: spatial padding is realized
// upstream by writing the producing layer's output into the interior of a
// pre-allocated, zero-initialized buffer (paper Fig. 5, "zero-cost
// padding"), so by the time a kernel runs, its input already carries the
// margin.  Padding bits are 0, which decode to -1 under the BNN encoding.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/check.hpp"
#include "simd/isa.hpp"

namespace bitflow::kernels {

/// How a layer's weight words are laid out in memory after finalize().
enum class WeightLayout : std::uint8_t {
  /// One filter's (or FC row's) words are contiguous: [K][fh*fw*PC].
  kFilterMajor = 0,
  /// T-way register-tile interleave: full tiles [K/T][fh*fw*PC][T] followed
  /// by the K%T remainder rows in filter-major order (TiledBitMatrix).
  kInterleaved = 1,
};

[[nodiscard]] constexpr const char* weight_layout_name(WeightLayout layout) noexcept {
  switch (layout) {
    case WeightLayout::kFilterMajor:
      return "filter_major";
    case WeightLayout::kInterleaved:
      return "interleaved";
  }
  return "unknown";
}

/// Register-tile width T for the interleaved layout on a given ISA: how many
/// filters one TileAcc tracks at once.  4 on scalar/SSE (four independent
/// 64-bit popcnt chains), 8 on AVX2/AVX-512 (qword lanes of one or two
/// vector accumulators).  T always divides 64, so filter tiles never
/// straddle a 64-bit output word in the fused-binarize kernels.
[[nodiscard]] constexpr std::int64_t weight_tile_width(simd::IsaLevel isa) noexcept {
  return isa >= simd::IsaLevel::kAvx2 ? 8 : 4;
}

/// Geometry of one convolution: filter extents and stride.  Output extents
/// follow from the (already padded) input extents.
struct ConvSpec {
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride = 1;

  /// Contract check on the geometry itself (independent of any input):
  /// positive filter extents and stride.
  void validate() const {
    BF_CHECK(kernel_h >= 1 && kernel_w >= 1, "ConvSpec: filter extents ", kernel_h, "x",
             kernel_w);
    BF_CHECK(stride >= 1, "ConvSpec: stride ", stride);
  }

  [[nodiscard]] std::int64_t out_h(std::int64_t in_h) const {
    const std::int64_t o = (in_h - kernel_h) / stride + 1;
    if (o <= 0) throw std::invalid_argument("ConvSpec: kernel taller than input");
    return o;
  }
  [[nodiscard]] std::int64_t out_w(std::int64_t in_w) const {
    const std::int64_t o = (in_w - kernel_w) / stride + 1;
    if (o <= 0) throw std::invalid_argument("ConvSpec: kernel wider than input");
    return o;
  }
};

}  // namespace bitflow::kernels
