// Generic bgemm inner loops, templated over an ISA policy (same scheme as
// pressedconv_impl.hpp — included only by the per-ISA kernel TUs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "tensor/packed_tensor.hpp"

namespace bitflow::kernels::impl {

template <typename Ops>
void bgemm_impl(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool,
                float* y) {
  if (a.cols() != w.cols()) throw std::invalid_argument("bgemm: N mismatch");
  const std::int64_t m_rows = a.rows();
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  for (std::int64_t m = 0; m < m_rows; ++m) {
    const std::uint64_t* xa = a.row(m);
    float* ym = y + m * k_rows;
    // Multi-core parallelism over the K dimension (paper Sec. III-C).
    pool.parallel_for(k_rows, [&](runtime::Range r, int) {
      std::int64_t k = r.begin;
      // 4-way K blocking: the activation row streams from L1/L2 once per
      // four weight rows.
      for (; k + 4 <= r.end; k += 4) {
        const std::uint64_t p0 = Ops::xor_popcount(xa, w.row(k + 0), n_words);
        const std::uint64_t p1 = Ops::xor_popcount(xa, w.row(k + 1), n_words);
        const std::uint64_t p2 = Ops::xor_popcount(xa, w.row(k + 2), n_words);
        const std::uint64_t p3 = Ops::xor_popcount(xa, w.row(k + 3), n_words);
        ym[k + 0] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p0));
        ym[k + 1] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p1));
        ym[k + 2] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p2));
        ym[k + 3] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p3));
      }
      for (; k < r.end; ++k) {
        const std::uint64_t p = Ops::xor_popcount(xa, w.row(k), n_words);
        ym[k] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
      }
    });
  }
}

template <typename Ops>
void bgemm_binarize_impl(const PackedMatrix& a, const PackedMatrix& w, const float* thresholds,
                         runtime::ThreadPool& pool, PackedMatrix& out) {
  if (a.cols() != w.cols()) throw std::invalid_argument("bgemm_binarize: N mismatch");
  if (out.rows() != a.rows() || out.cols() != w.rows()) {
    throw std::invalid_argument("bgemm_binarize: output mis-shaped");
  }
  const std::int64_t m_rows = a.rows();
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  const std::int64_t out_words = out.words_per_row();
  for (std::int64_t m = 0; m < m_rows; ++m) {
    const std::uint64_t* xa = a.row(m);
    std::uint64_t* orow = out.row(m);
    // Parallelize over whole output words so no two workers share a word.
    pool.parallel_for(out_words, [&](runtime::Range r, int) {
      for (std::int64_t wi = r.begin; wi < r.end; ++wi) {
        const std::int64_t k0 = wi * 64;
        const std::int64_t block = std::min<std::int64_t>(64, k_rows - k0);
        std::uint64_t packed = 0;
        for (std::int64_t b = 0; b < block; ++b) {
          const std::uint64_t p = Ops::xor_popcount(xa, w.row(k0 + b), n_words);
          const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
          const float th = thresholds != nullptr ? thresholds[k0 + b] : 0.0f;
          packed |= static_cast<std::uint64_t>(dot >= th) << b;
        }
        orow[wi] = packed;
      }
    });
  }
}

}  // namespace bitflow::kernels::impl

/// Stamps out the two bgemm entry points for one ISA policy.
#define BITFLOW_INSTANTIATE_BGEMM(SUFFIX, OPS)                                                  \
  namespace bitflow::kernels::detail {                                                          \
  void bgemm_##SUFFIX(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool,  \
                      float* y) {                                                               \
    impl::bgemm_impl<OPS>(a, w, pool, y);                                                       \
  }                                                                                             \
  void bgemm_binarize_##SUFFIX(const PackedMatrix& a, const PackedMatrix& w,                    \
                               const float* thresholds, runtime::ThreadPool& pool,              \
                               PackedMatrix& out) {                                             \
    impl::bgemm_binarize_impl<OPS>(a, w, thresholds, pool, out);                                \
  }                                                                                             \
  }  // namespace bitflow::kernels::detail
