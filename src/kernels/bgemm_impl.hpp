// Generic bgemm inner loops, templated over an ISA policy (same scheme as
// pressedconv_impl.hpp — included only by the per-ISA kernel TUs).
//
// Batch-N: the row-limited `_rows` variants compute only the first `m_rows`
// rows of A (the serving path keeps a max_batch-row activation matrix and
// fills the first n rows per micro-batch).  The M and K dimensions are fused
// into one m_rows*k_rows parallel_for, so a batch of N requests through a
// small FC layer costs one fork/join instead of N — same fusion the batched
// PressedConv applies to N*H*W.  Each output element depends only on its own
// (m, k) pair, so results are bit-identical for any m_rows and any thread
// count; the classic entry points are the m_rows = rows() case.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "tensor/packed_tensor.hpp"

namespace bitflow::kernels::impl {

template <typename Ops>
void bgemm_rows_impl(const PackedMatrix& a, std::int64_t m_rows, const PackedMatrix& w,
                     runtime::ThreadPool& pool, float* y) {
  if (a.cols() != w.cols()) throw std::invalid_argument("bgemm: N mismatch");
  if (m_rows < 0 || m_rows > a.rows()) {
    throw std::invalid_argument("bgemm: m_rows out of range");
  }
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  // Multi-core parallelism over the fused M*K output range (paper Sec.
  // III-C parallelizes K; fusing M keeps small layers saturated at M > 1).
  pool.parallel_for(m_rows * k_rows, [&](runtime::Range r, int) {
    std::int64_t idx = r.begin;
    while (idx < r.end) {
      const std::int64_t m = idx / k_rows;
      const std::int64_t k_begin = idx - m * k_rows;
      const std::int64_t k_end = std::min(k_rows, k_begin + (r.end - idx));
      const std::uint64_t* xa = a.row(m);
      float* ym = y + m * k_rows;
      std::int64_t k = k_begin;
      // 4-way K blocking: the activation row streams from L1/L2 once per
      // four weight rows.
      for (; k + 4 <= k_end; k += 4) {
        const std::uint64_t p0 = Ops::xor_popcount(xa, w.row(k + 0), n_words);
        const std::uint64_t p1 = Ops::xor_popcount(xa, w.row(k + 1), n_words);
        const std::uint64_t p2 = Ops::xor_popcount(xa, w.row(k + 2), n_words);
        const std::uint64_t p3 = Ops::xor_popcount(xa, w.row(k + 3), n_words);
        ym[k + 0] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p0));
        ym[k + 1] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p1));
        ym[k + 2] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p2));
        ym[k + 3] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p3));
      }
      for (; k < k_end; ++k) {
        const std::uint64_t p = Ops::xor_popcount(xa, w.row(k), n_words);
        ym[k] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
      }
      idx += k_end - k_begin;
    }
  });
}

template <typename Ops>
void bgemm_impl(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool,
                float* y) {
  bgemm_rows_impl<Ops>(a, a.rows(), w, pool, y);
}

template <typename Ops>
void bgemm_binarize_rows_impl(const PackedMatrix& a, std::int64_t m_rows, const PackedMatrix& w,
                              const float* thresholds, runtime::ThreadPool& pool,
                              PackedMatrix& out) {
  if (a.cols() != w.cols()) throw std::invalid_argument("bgemm_binarize: N mismatch");
  if (out.rows() != a.rows() || out.cols() != w.rows()) {
    throw std::invalid_argument("bgemm_binarize: output mis-shaped");
  }
  if (m_rows < 0 || m_rows > a.rows()) {
    throw std::invalid_argument("bgemm_binarize: m_rows out of range");
  }
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  const std::int64_t out_words = out.words_per_row();
  // Parallelize over whole output words (fused across rows) so no two
  // workers share a word.
  pool.parallel_for(m_rows * out_words, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t m = idx / out_words;
      const std::int64_t wi = idx - m * out_words;
      const std::uint64_t* xa = a.row(m);
      const std::int64_t k0 = wi * 64;
      const std::int64_t block = std::min<std::int64_t>(64, k_rows - k0);
      std::uint64_t packed = 0;
      for (std::int64_t b = 0; b < block; ++b) {
        const std::uint64_t p = Ops::xor_popcount(xa, w.row(k0 + b), n_words);
        const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
        const float th = thresholds != nullptr ? thresholds[k0 + b] : 0.0f;
        packed |= static_cast<std::uint64_t>(dot >= th) << b;
      }
      out.row(m)[wi] = packed;
    }
  });
}

template <typename Ops>
void bgemm_binarize_impl(const PackedMatrix& a, const PackedMatrix& w, const float* thresholds,
                         runtime::ThreadPool& pool, PackedMatrix& out) {
  bgemm_binarize_rows_impl<Ops>(a, a.rows(), w, thresholds, pool, out);
}

// --- register-tiled variants over the interleaved weight layout --------------
//
// The untiled kernels' 4-way K blocking reads four strided weight rows per
// activation word; after the finalize-time interleave (bitpack::
// tile_fc_weights) the T = Tile::kWidth matching weight words are one
// contiguous line, and the T neuron counters stay in registers across the
// whole activation row.  Remainder neurons (K % T) stayed row-major in the
// tiled matrix and take the word-run path.
//
// Tile is an explicit template parameter (not Ops::Tile) so each per-ISA TU
// can stamp one entry point per supported width — the auto-tuner's T axis.

template <typename Ops, typename Tile>
void bgemm_rows_tiled_impl(const PackedMatrix& a, std::int64_t m_rows, const TiledBitMatrix& w,
                           runtime::ThreadPool& pool, float* y) {
  constexpr std::int64_t kT = Tile::kWidth;
  if (w.tile() != kT) {
    throw std::invalid_argument("bgemm tiled: matrix tile width does not match kernel");
  }
  if (w.row_words() != a.words_per_row()) throw std::invalid_argument("bgemm tiled: N mismatch");
  if (m_rows < 0 || m_rows > a.rows()) {
    throw std::invalid_argument("bgemm tiled: m_rows out of range");
  }
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  const std::int64_t full_tiles = w.full_tiles();
  const std::int64_t tiled_rows = w.tiled_rows();
  // One grain per (row of A, filter tile or remainder neuron) — the fused
  // range keeps small layers saturated at M > 1, like the untiled kernel.
  const std::int64_t groups = full_tiles + w.remainder_rows();
  pool.parallel_for(m_rows * groups, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t m = idx / groups;
      const std::int64_t g = idx - m * groups;
      const std::uint64_t* xa = a.row(m);
      float* ym = y + m * k_rows;
      if (g < full_tiles) {
        Tile acc{};
        const std::uint64_t* f = w.tile_block(g);
        for (std::int64_t wi = 0; wi < n_words; ++wi, f += kT) {
          acc.accumulate(xa[wi], f);
        }
        std::uint64_t pops[kT];
        acc.reduce(pops);
        float* yk = ym + g * kT;
        for (std::int64_t l = 0; l < kT; ++l) {
          yk[l] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops[l]));
        }
      } else {
        const std::int64_t rr = g - full_tiles;
        const std::uint64_t p = Ops::xor_popcount(xa, w.remainder_row(rr), n_words);
        ym[tiled_rows + rr] = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
      }
    }
  });
}

template <typename Ops, typename Tile>
void bgemm_binarize_rows_tiled_impl(const PackedMatrix& a, std::int64_t m_rows,
                                    const TiledBitMatrix& w, const float* thresholds,
                                    runtime::ThreadPool& pool, PackedMatrix& out) {
  constexpr std::int64_t kT = Tile::kWidth;
  static_assert(64 % Tile::kWidth == 0, "neuron tiles must not straddle output words");
  if (w.tile() != kT) {
    throw std::invalid_argument("bgemm_binarize tiled: matrix tile width does not match kernel");
  }
  if (w.row_words() != a.words_per_row()) {
    throw std::invalid_argument("bgemm_binarize tiled: N mismatch");
  }
  if (out.rows() != a.rows() || out.cols() != w.rows()) {
    throw std::invalid_argument("bgemm_binarize tiled: output mis-shaped");
  }
  if (m_rows < 0 || m_rows > a.rows()) {
    throw std::invalid_argument("bgemm_binarize tiled: m_rows out of range");
  }
  const std::int64_t k_rows = w.rows();
  const std::int64_t n_words = a.words_per_row();
  const std::int64_t bits = a.cols();
  const std::int64_t tiled_rows = w.tiled_rows();
  const std::int64_t out_words = out.words_per_row();
  pool.parallel_for(m_rows * out_words, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t m = idx / out_words;
      const std::int64_t wi = idx - m * out_words;
      const std::uint64_t* xa = a.row(m);
      const std::int64_t k0 = wi * 64;
      const std::int64_t block = std::min<std::int64_t>(64, k_rows - k0);
      std::uint64_t packed = 0;
      std::int64_t b = 0;
      // k0 is a multiple of 64, hence of kT, so tiles align to this word's
      // bit positions; kT divides 64, so no tile straddles the word.
      for (; b < block && k0 + b < tiled_rows; b += kT) {
        Tile acc{};
        const std::uint64_t* f = w.tile_block((k0 + b) / kT);
        for (std::int64_t nw = 0; nw < n_words; ++nw, f += kT) {
          acc.accumulate(xa[nw], f);
        }
        std::uint64_t pops[kT];
        acc.reduce(pops);
        for (std::int64_t l = 0; l < kT; ++l) {
          const std::int64_t k = k0 + b + l;
          const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(pops[l]));
          const float th = thresholds != nullptr ? thresholds[k] : 0.0f;
          packed |= static_cast<std::uint64_t>(dot >= th) << (b + l);
        }
      }
      for (; b < block; ++b) {
        const std::uint64_t p =
            Ops::xor_popcount(xa, w.remainder_row(k0 + b - tiled_rows), n_words);
        const float dot = static_cast<float>(bits - 2 * static_cast<std::int64_t>(p));
        const float th = thresholds != nullptr ? thresholds[k0 + b] : 0.0f;
        packed |= static_cast<std::uint64_t>(dot >= th) << b;
      }
      out.row(m)[wi] = packed;
    }
  });
}

}  // namespace bitflow::kernels::impl

/// Stamps out the bgemm entry points (full and row-limited) for one ISA
/// policy.
#define BITFLOW_INSTANTIATE_BGEMM(SUFFIX, OPS)                                                  \
  namespace bitflow::kernels::detail {                                                          \
  void bgemm_##SUFFIX(const PackedMatrix& a, const PackedMatrix& w, runtime::ThreadPool& pool,  \
                      float* y) {                                                               \
    impl::bgemm_impl<OPS>(a, w, pool, y);                                                       \
  }                                                                                             \
  void bgemm_binarize_##SUFFIX(const PackedMatrix& a, const PackedMatrix& w,                    \
                               const float* thresholds, runtime::ThreadPool& pool,              \
                               PackedMatrix& out) {                                             \
    impl::bgemm_binarize_impl<OPS>(a, w, thresholds, pool, out);                                \
  }                                                                                             \
  void bgemm_rows_##SUFFIX(const PackedMatrix& a, std::int64_t m_rows, const PackedMatrix& w,   \
                           runtime::ThreadPool& pool, float* y) {                               \
    impl::bgemm_rows_impl<OPS>(a, m_rows, w, pool, y);                                          \
  }                                                                                             \
  void bgemm_binarize_rows_##SUFFIX(const PackedMatrix& a, std::int64_t m_rows,                 \
                                    const PackedMatrix& w, const float* thresholds,             \
                                    runtime::ThreadPool& pool, PackedMatrix& out) {             \
    impl::bgemm_binarize_rows_impl<OPS>(a, m_rows, w, thresholds, pool, out);                   \
  }                                                                                             \
  }  // namespace bitflow::kernels::detail

/// Stamps out the register-tiled bgemm entry points for one (ISA policy,
/// tile accumulator) pair — one invocation per supported tile width.
#define BITFLOW_INSTANTIATE_BGEMM_TILED(SUFFIX, OPS, TILE)                                      \
  namespace bitflow::kernels::detail {                                                          \
  void bgemm_rows_tiled_##SUFFIX(const PackedMatrix& a, std::int64_t m_rows,                    \
                                 const TiledBitMatrix& w, runtime::ThreadPool& pool,            \
                                 float* y) {                                                    \
    impl::bgemm_rows_tiled_impl<OPS, TILE>(a, m_rows, w, pool, y);                              \
  }                                                                                             \
  void bgemm_binarize_rows_tiled_##SUFFIX(const PackedMatrix& a, std::int64_t m_rows,           \
                                          const TiledBitMatrix& w, const float* thresholds,     \
                                          runtime::ThreadPool& pool, PackedMatrix& out) {       \
    impl::bgemm_binarize_rows_tiled_impl<OPS, TILE>(a, m_rows, w, thresholds, pool, out);       \
  }                                                                                             \
  }  // namespace bitflow::kernels::detail
