// PressedConv, scalar 64-bit kernel (scheduler rule 4: channel dimension a
// multiple of 32/64 only — e.g. VGG conv2.1 with C = 64).
#include "kernels/bgemm_impl.hpp"
#include "kernels/pressedconv_impl.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/bitops_tile.hpp"

namespace {
struct OpsU64 {
  static std::uint64_t xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                    std::int64_t n) {
    return bitflow::simd::inl::xor_popcount_u64(a, b, n);
  }
};
}  // namespace

BITFLOW_INSTANTIATE_PRESSEDCONV(u64, OpsU64)
BITFLOW_INSTANTIATE_BGEMM(u64, OpsU64)

// Auto-tuner tile-width candidates: 4 and 8 independent popcnt chains.
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(u64_t4, OpsU64, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_PRESSEDCONV_TILED(u64_t8, OpsU64, bitflow::simd::inl::TileAcc8Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(u64_t4, OpsU64, bitflow::simd::inl::TileAcc4Scalar)
BITFLOW_INSTANTIATE_BGEMM_TILED(u64_t8, OpsU64, bitflow::simd::inl::TileAcc8Scalar)
