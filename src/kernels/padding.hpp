// Explicit copy-padding of packed tensors.
//
// The engine never calls this on the hot path: padding is realized at zero
// cost by writing layer outputs into pre-allocated margins (paper Fig. 5).
// Copy-padding exists for (a) the first layer, whose input arrives from the
// outside world unpadded, (b) standalone kernel use and tests, and (c) the
// padding ablation bench, which measures exactly the copy this avoids.
#pragma once

#include <cstdint>

#include "tensor/packed_tensor.hpp"

namespace bitflow::kernels {

/// Returns a copy of `in` with `margin` zero-bit (-1) pixels on every side.
[[nodiscard]] PackedTensor pad_packed(const PackedTensor& in, std::int64_t margin);

/// Copies `in` into the interior of pre-allocated `out` (margin pixels on
/// each side must already be zero).  Out extents must be in + 2*margin.
void copy_into_interior(const PackedTensor& in, PackedTensor& out, std::int64_t margin);

}  // namespace bitflow::kernels
