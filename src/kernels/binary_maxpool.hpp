// Binary max pooling (paper Sec. III-C).
//
// Under the {-1 -> 0, +1 -> 1} encoding, max of a window of binary values is
// the bitwise OR of their packed words: any +1 in the window wins.  The
// kernel keeps the NHWC channel packing, so one output pixel is the OR of
// pool_h * pool_w word runs of words_per_pixel each.
//
// Execution: for each output row, the window's input rows are OR-ed
// vertically into a full-width scratch row (long contiguous runs — this is
// where SIMD pays off), then the horizontal window combine gathers the
// per-pixel words.  Multi-core parallelism is over output rows.
#pragma once

#include <cstdint>

#include "runtime/thread_pool.hpp"
#include "simd/isa.hpp"
#include "tensor/packed_tensor.hpp"

namespace bitflow::kernels {

/// Pooling window geometry.
struct PoolSpec {
  std::int64_t pool_h = 2;
  std::int64_t pool_w = 2;
  std::int64_t stride = 2;

  [[nodiscard]] std::int64_t out_h(std::int64_t in_h) const noexcept {
    return (in_h - pool_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w(std::int64_t in_w) const noexcept {
    return (in_w - pool_w) / stride + 1;
  }
};

/// OR-pools `in` into the interior of `out` at offset `margin` per side
/// (same zero-cost padding contract as pressed_conv_binarize).  `out`
/// extents must be (out_h + 2*margin, out_w + 2*margin, C).  The SIMD level
/// of the vertical OR pass is `isa`.
void binary_maxpool(const PackedTensor& in, const PoolSpec& spec, simd::IsaLevel isa,
                    runtime::ThreadPool& pool, PackedTensor& out, std::int64_t margin);

/// Dispatching wrapper (widest hardware ISA).
void binary_maxpool(const PackedTensor& in, const PoolSpec& spec, runtime::ThreadPool& pool,
                    PackedTensor& out, std::int64_t margin);

}  // namespace bitflow::kernels
