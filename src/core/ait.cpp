#include "core/ait.hpp"

#include <stdexcept>

namespace bitflow::core {

namespace {

AitReport finish(AitReport r) {
  const double direct_mem = r.input_elems + r.weight_elems + r.output_elems;
  const double im2col_mem = 2 * r.unfolded_elems + r.weight_elems + r.output_elems;
  r.ait_direct = r.arithmetic_ops / direct_mem;
  r.ait_im2col = r.arithmetic_ops / im2col_mem;
  r.im2col_fraction = direct_mem / im2col_mem;
  return r;
}

void check(const ConvWorkload& wl) {
  if (wl.H < wl.h || wl.W < wl.w || wl.C <= 0 || wl.K <= 0) {
    throw std::invalid_argument("AIT: degenerate convolution workload");
  }
}

}  // namespace

AitReport analyze_float_conv(const ConvWorkload& wl) {
  check(wl);
  AitReport r;
  r.arithmetic_ops = 2.0 * wl.C * wl.H * wl.W * wl.K * wl.h * wl.w;       // Eq. 4
  r.input_elems = 1.0 * wl.C * wl.H * wl.W;                               // Eq. 5
  r.weight_elems = 1.0 * wl.K * wl.C * wl.h * wl.w;                       // Eq. 6
  r.output_elems = 1.0 * wl.K * (wl.H - wl.h + 1) * (wl.W - wl.w + 1);    // Eq. 7
  r.unfolded_elems = 1.0 * (wl.H - wl.h + 1) * (wl.W - wl.w + 1) * wl.C * wl.h * wl.w;  // Eq. 8
  return finish(r);
}

AitReport analyze_binary_conv(const ConvWorkload& wl, std::int64_t pack_bits) {
  check(wl);
  if (pack_bits <= 0) throw std::invalid_argument("AIT: pack_bits must be positive");
  AitReport r = analyze_float_conv(wl);
  const double f = static_cast<double>(pack_bits);
  // One xor+popcount word op replaces pack_bits multiply-accumulate pairs;
  // packed input and weights shrink by the same factor.  The *unfolded*
  // matrix does not: unfolding operates on unpacked values (packing first
  // would leave the unfolded row length a non-multiple of the word size,
  // the paper's second objection), so the im2col traffic stays O(U) while
  // the arithmetic shrinks — exactly the amplification Sec. III-A describes.
  r.arithmetic_ops /= f;
  r.input_elems /= f;
  r.weight_elems /= f;
  // Output dots remain one accumulator per (k, y, x); unfolded_elems stays.
  return finish(r);
}

}  // namespace bitflow::core
