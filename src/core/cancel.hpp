// Cooperative cancellation for the serving path.
//
// A CancelToken is a copyable handle to shared cancellation state carrying
// an optional absolute deadline and a latched cancel flag.  The serving
// engine derives one token per micro-batch (deadline = the latest member
// deadline, cancellable by drain), plumbs it through
// BinaryNetwork::infer_batch into the context's ThreadPool, and the
// execution layers poll it cooperatively:
//
//   * graph::BinaryNetwork::infer_batch checks at every layer boundary and
//     throws CancelledError — so an abandoned batch stops within one layer
//     instead of burning the full forward pass;
//   * runtime::ThreadPool::parallel_for checks at the start of every range
//     chunk and *skips* the chunk (no exception crosses a pool worker; the
//     next layer-boundary check converts the latched state into the error).
//
// Cost model (the robustness CI job gates this like the disarmed TraceSpan):
//   * a default-constructed token is inert — poll() is one null-pointer
//     check, < 2 ns, so the checkpoints stay compiled into release kernels;
//   * an armed token costs one relaxed atomic load, plus one steady_clock
//     read when a deadline is set.
//
// Once a token reports a reason it stays cancelled forever (latched), so a
// chunk skipped by the pool can never be followed by a layer-boundary check
// that sees "not cancelled" — partial results never escape.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace bitflow::core {

/// Why a token fired.  kDeadline maps to kDeadlineExceeded at the serving
/// boundary, kCancelled to kCancelled (serve/error_map.cpp).
enum class CancelReason : std::uint8_t { kNone = 0, kCancelled = 1, kDeadline = 2 };

/// Thrown by CancelToken::throw_if_cancelled() at cooperative checkpoints.
/// Internal-only, like every other engine exception: the serving boundary
/// maps it to a Status before it reaches a caller.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "cancelled: deadline expired at a cooperative checkpoint"
                               : "cancelled: caller abandoned the work (drain/cancel)"),
        reason_(reason) {}
  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {
struct CancelState {
  // Ordering contract: relaxed everywhere.  `reason` is a latched gate, not
  // a publication channel: observers act on it by *stopping* (skipping work
  // or throwing), never by reading data the canceller wrote.  A stale kNone
  // merely delays the stop by one checkpoint.  compare_exchange keeps the
  // first reason to land (cancel vs deadline races resolve arbitrarily but
  // permanently).
  std::atomic<std::uint8_t> reason{0};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};
}  // namespace detail

/// Copyable, thread-safe cancellation handle.  Default-constructed tokens
/// are inert (never fire, near-zero poll cost); armed tokens come from
/// cancellable() / with_deadline().
class CancelToken {
 public:
  /// Inert token: poll() is a null check and always returns kNone.
  CancelToken() = default;

  /// Armed token with no deadline; fires only via cancel().
  [[nodiscard]] static CancelToken cancellable() {
    return CancelToken(std::make_shared<detail::CancelState>());
  }

  /// Armed token that self-fires (reason kDeadline) once `deadline` passes;
  /// also cancellable.  time_point::max() means "cancellable, no deadline".
  [[nodiscard]] static CancelToken with_deadline(
      std::chrono::steady_clock::time_point deadline) {
    auto s = std::make_shared<detail::CancelState>();
    s->deadline = deadline;
    return CancelToken(std::move(s));
  }

  /// False for default-constructed (inert) tokens.
  [[nodiscard]] bool armed() const noexcept { return s_ != nullptr; }

  /// Requests cancellation (latched; no-op on an inert token or when a
  /// reason already landed).  Safe from any thread.
  void cancel() const noexcept {
    if (s_ == nullptr) return;
    std::uint8_t expected = 0;
    s_->reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kCancelled),
        std::memory_order_relaxed, std::memory_order_relaxed);
  }

  /// Current reason; latches kDeadline on first observation past the
  /// deadline.  Inert tokens always return kNone.
  [[nodiscard]] CancelReason poll() const noexcept {
    if (s_ == nullptr) return CancelReason::kNone;
    const std::uint8_t r = s_->reason.load(std::memory_order_relaxed);
    if (r != 0) return static_cast<CancelReason>(r);
    if (s_->deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= s_->deadline) {
      std::uint8_t expected = 0;
      s_->reason.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
          std::memory_order_relaxed, std::memory_order_relaxed);
      return static_cast<CancelReason>(s_->reason.load(std::memory_order_relaxed));
    }
    return CancelReason::kNone;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return poll() != CancelReason::kNone;
  }

  /// Cooperative checkpoint: throws CancelledError when the token fired.
  void throw_if_cancelled() const {
    const CancelReason r = poll();
    if (r != CancelReason::kNone) throw CancelledError(r);
  }

  /// The armed deadline (time_point::max() when none / inert).
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const noexcept {
    return s_ == nullptr ? std::chrono::steady_clock::time_point::max() : s_->deadline;
  }

 private:
  explicit CancelToken(std::shared_ptr<detail::CancelState> s) : s_(std::move(s)) {}
  std::shared_ptr<detail::CancelState> s_;
};

}  // namespace bitflow::core
