// Named fault-injection points ("failpoints") for robustness testing.
//
// A failpoint is a named hook compiled into a production code path that can
// be armed — programmatically or via the BITFLOW_FAILPOINTS environment
// variable — to inject a fault when execution reaches it:
//
//   BF_FAILPOINT("io.read_weights");        // action decided by the armed config
//   if (BF_FAILPOINT_TRIGGERED("simd.force_fallback")) { /* site-specific fault */ }
//
// Cost model: when no failpoint is armed anywhere in the process, both
// macros are a single relaxed atomic load and a predictable branch — cheap
// enough to leave in the model loader and the thread-pool dispatch path of
// release builds (they are deliberately NOT placed in per-element kernel
// loops).  Only once at least one point is armed does a hit take the
// registry mutex.
//
// Actions (what an armed point does when its trigger fires):
//   * kError    — throw failpoint::FaultInjected (a std::runtime_error);
//   * kBadAlloc — throw std::bad_alloc, simulating allocation failure;
//   * kStall    — sleep for `stall_ms`, simulating a wedged worker/IO;
//   * kSite     — no effect from the framework; BF_FAILPOINT_TRIGGERED
//                 returns true and the call site applies its own fault
//                 (e.g. forcing ISA fallback, truncating a read).
//
// Triggers (when an armed point fires):
//   * kAlways      — every hit;
//   * kOnce        — the first hit, then the point auto-disarms;
//   * kCounted(n)  — the first n hits, then the point auto-disarms;
//   * kEveryNth(n) — hits n, 2n, 3n, ... while armed.
//
// Environment activation, parsed once at process start:
//   BITFLOW_FAILPOINTS="io.open=once:error;runtime.worker_stall=every(3):stall(100)"
// Spec grammar: name=trigger:action with trigger in {always, once,
// count(N), every(N)} and action in {error, badalloc, stall(MS), site}.
//
// The set of valid names is a fixed catalog (failpoint.cpp); arming an
// unknown name throws, so tests iterating the catalog provably cover every
// injection site in the tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bitflow::failpoint {

/// What an armed failpoint does when its trigger fires.
enum class Action : std::uint8_t { kError, kBadAlloc, kStall, kSite };

/// When an armed failpoint fires.
enum class Trigger : std::uint8_t { kAlways, kOnce, kCounted, kEveryNth };

/// Armed configuration of one failpoint.
struct Config {
  Action action = Action::kError;
  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 1;          ///< kCounted: first n hits; kEveryNth: every n-th hit
  std::uint64_t stall_ms = 50;  ///< sleep duration for Action::kStall
};

/// One catalog entry: the failpoint's name and where it is wired.
struct PointInfo {
  std::string_view name;
  std::string_view site;
};

/// Exception thrown by Action::kError.  `point()` names the failpoint so
/// error-mapping layers can classify the fault by subsystem prefix.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(std::string_view point)
      : std::runtime_error("injected fault at failpoint '" + std::string(point) + "'"),
        point_(point) {}
  [[nodiscard]] std::string_view point() const noexcept { return point_; }

 private:
  std::string_view point_;  // refers to the static catalog string
};

/// All failpoints compiled into the library (fixed at build time).
[[nodiscard]] const std::vector<PointInfo>& catalog();

/// Arms `name` with `cfg`; re-arming replaces the previous config and
/// resets the hit/fire counters.  Throws std::invalid_argument for a name
/// not in the catalog.
void arm(std::string_view name, Config cfg);

/// Disarms `name` (no-op if not armed; throws for unknown names).
void disarm(std::string_view name);

/// Disarms every failpoint.
void disarm_all();

/// True when `name` is currently armed.
[[nodiscard]] bool armed(std::string_view name);

/// Number of times execution reached `name` while it was armed (reset by arm()).
[[nodiscard]] std::uint64_t hit_count(std::string_view name);

/// Parses and applies an activation spec (see file comment for the grammar).
/// Throws std::invalid_argument on malformed specs or unknown names.
void arm_from_spec(std::string_view spec);

/// Applies the BITFLOW_FAILPOINTS environment variable if set (malformed
/// specs are reported to stderr and ignored — a bad env var must not take
/// the process down).  Called automatically before main(); idempotent only
/// in the sense that re-calling re-applies the spec.
void arm_from_env();

namespace detail {

/// Count of currently armed failpoints; both macros gate on this so that a
/// fully disarmed process pays one relaxed load per hit.
/// Ordering contract: relaxed loads/stores only.  The gate publishes no
/// data: a hit that observes a stale zero merely skips one evaluation, and
/// the per-point state it would have read synchronizes through the failpoint
/// mutex inside detail::hit().
extern std::atomic<int> g_armed_points;

/// Slow path: looks up `name`, evaluates the trigger, performs the armed
/// action.  Returns true when an Action::kSite trigger fired.
bool hit(const char* name);

}  // namespace detail

}  // namespace bitflow::failpoint

#define BF_FAILPOINT(name)                                                                 \
  do {                                                                                     \
    if (::bitflow::failpoint::detail::g_armed_points.load(std::memory_order_relaxed) != 0) \
      (void)::bitflow::failpoint::detail::hit(name);                                       \
  } while (0)

#define BF_FAILPOINT_TRIGGERED(name)                                                      \
  (::bitflow::failpoint::detail::g_armed_points.load(std::memory_order_relaxed) != 0 &&   \
   ::bitflow::failpoint::detail::hit(name))
