// Arithmetic-intensity model of convolution algorithms (paper Sec. III-A,
// Eqs. 4-8).
//
// AIT = arithmetic operations / memory accesses.  The image-to-column method
// stores the unfolded input (size U, Eq. 8) and reads it back for the gemm,
// so its achievable fraction of the intrinsic convolution AIT is at most
// (I + W + O) / (2U + W + O).  Bit-packing shrinks I and W by the pack
// factor while shrinking the arithmetic by the word width, which makes the
// unfolding overhead *relatively* larger — the quantitative core of the
// paper's argument for abandoning image-to-column in binary convolution.
// bench_ait_analysis prints this model for the VGG layers next to measured
// memory traffic.
#pragma once

#include <cstdint>

namespace bitflow::core {

/// One convolution workload (paper Sec. II-B notation: input H x W x C,
/// K filters of h x w x C, unit stride).
struct ConvWorkload {
  std::int64_t H = 0, W = 0, C = 0;  ///< input extents
  std::int64_t K = 0;                ///< number of filters
  std::int64_t h = 3, w = 3;         ///< filter extents
};

/// Element/operation counts and derived intensities for one algorithm mix.
struct AitReport {
  // Eq. 4: A = 2 * C * H * W * K * h * w  (arithmetic operations)
  double arithmetic_ops = 0;
  // Eq. 5-7 (memory elements)
  double input_elems = 0;
  double weight_elems = 0;
  double output_elems = 0;
  // Eq. 8: U = (H-h+1) * (W-w+1) * C * h * w
  double unfolded_elems = 0;

  double ait_direct = 0;       ///< A / (I + W + O)
  double ait_im2col = 0;       ///< A / (2U + W + O)
  double im2col_fraction = 0;  ///< (I + W + O) / (2U + W + O), <= 1
};

/// Full-precision convolution (elements are 4-byte floats; counts are in
/// elements, matching the paper's unit-free treatment).
[[nodiscard]] AitReport analyze_float_conv(const ConvWorkload& wl);

/// Binary convolution: input/weight shrink by `pack_bits` (the paper uses
/// 32; BitFlow packs 64-bit words), arithmetic ops shrink by the same factor
/// (one xor+popcount handles pack_bits multiply-accumulates), output dots
/// stay full-size.
[[nodiscard]] AitReport analyze_binary_conv(const ConvWorkload& wl, std::int64_t pack_bits = 64);

}  // namespace bitflow::core
