// Contract-check macros for BitFlow: BF_CHECK / BF_DCHECK / BF_UNREACHABLE.
//
// A failed check is a *programmer error* (a violated precondition or
// invariant), not a recoverable runtime condition, so a failure prints the
// expression, location and optional context to stderr and calls
// std::abort().  Aborting (rather than throwing) keeps the macros usable
// inside noexcept hot paths, produces a faultable stack for debuggers and
// sanitizers, and is testable with gtest death tests.
//
// Gating:
//   * BF_CHECK      — active when NDEBUG is not defined (any Debug build) or
//                     when the build sets -DBITFLOW_ENABLE_CHECKS (CMake
//                     option BITFLOW_ENABLE_CHECKS=ON; sanitizer builds turn
//                     it on automatically).  Intended for cold contract
//                     boundaries: constructors, kernel entry validation,
//                     partition preconditions.
//   * BF_DCHECK     — active in Debug builds, or when the build additionally
//                     sets -DBITFLOW_ENABLE_DCHECKS.  Intended for per-element
//                     hot paths (tensor indexing) where even a predictable
//                     branch is measurable in Release.
//   * BF_UNREACHABLE — aborts loudly when checks are on, lowers to
//                     __builtin_unreachable() when they are off.
//
// Compiled-out checks still parse their condition (inside an `if (false)`),
// so a check cannot silently rot when its gate is off; the optimizer removes
// the dead branch entirely.
//
// Extra macro arguments are streamed into the failure message lazily —
// they are never evaluated unless the check fires:
//   BF_CHECK(h >= 0 && h < h_, "pixel row ", h, " outside [0, ", h_, ")");
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bitflow::detail {

/// Builds the optional context suffix of a failure message.
template <typename... Args>
[[nodiscard]] inline std::string check_message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

/// Prints the failure report and aborts.  Never returns.
[[noreturn]] inline void check_failed(const char* kind, const char* expr, const char* file,
                                      int line, const std::string& message) noexcept {
  std::fprintf(stderr, "[bitflow] %s failed: %s\n[bitflow]   at %s:%d\n", kind, expr, file, line);
  if (!message.empty()) {
    std::fprintf(stderr, "[bitflow]   %s\n", message.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace bitflow::detail

#if defined(BITFLOW_ENABLE_CHECKS) || !defined(NDEBUG)
#define BITFLOW_CHECKS_ENABLED 1
#else
#define BITFLOW_CHECKS_ENABLED 0
#endif

#if defined(BITFLOW_ENABLE_DCHECKS) || !defined(NDEBUG)
#define BITFLOW_DCHECKS_ENABLED 1
#else
#define BITFLOW_DCHECKS_ENABLED 0
#endif

// Shared expansion: evaluate `cond` once; on failure, build the message and
// abort.  `kind` is the macro name shown in the report.
#define BF_DETAIL_CHECK_IMPL(kind, cond, ...)                                             \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      ::bitflow::detail::check_failed(kind, #cond, __FILE__, __LINE__,                    \
                                      ::bitflow::detail::check_message(__VA_ARGS__));     \
    }                                                                                     \
  } while (0)

// Compiled-out form: the condition still typechecks but is never evaluated.
#define BF_DETAIL_CHECK_NOP(cond, ...)            \
  do {                                            \
    if (false && static_cast<bool>(cond)) {       \
    }                                             \
  } while (0)

#if BITFLOW_CHECKS_ENABLED
#define BF_CHECK(cond, ...) BF_DETAIL_CHECK_IMPL("BF_CHECK", cond, __VA_ARGS__)
#else
#define BF_CHECK(cond, ...) BF_DETAIL_CHECK_NOP(cond, __VA_ARGS__)
#endif

#if BITFLOW_DCHECKS_ENABLED
#define BF_DCHECK(cond, ...) BF_DETAIL_CHECK_IMPL("BF_DCHECK", cond, __VA_ARGS__)
#else
#define BF_DCHECK(cond, ...) BF_DETAIL_CHECK_NOP(cond, __VA_ARGS__)
#endif

#if BITFLOW_CHECKS_ENABLED
#define BF_UNREACHABLE(...)                                                                 \
  ::bitflow::detail::check_failed("BF_UNREACHABLE", "reached supposedly unreachable code",  \
                                  __FILE__, __LINE__,                                       \
                                  ::bitflow::detail::check_message(__VA_ARGS__))
#else
#define BF_UNREACHABLE(...) __builtin_unreachable()
#endif
