// Clang Thread Safety Analysis annotation macros.
//
// These macros attach lock-discipline contracts to types, data members and
// functions so that a Clang build with -Wthread-safety proves — at compile
// time, on every build — that every access to a guarded member happens with
// the right mutex held.  On compilers without the attributes (GCC builds,
// which this repo's default CI matrix uses) every macro expands to nothing,
// so annotated code is identical to unannotated code off-Clang; see
// tests/sync_annotations_test.cpp for the expansion contract.
//
// Usage vocabulary (mirrors the upstream Clang documentation, BF_-prefixed):
//
//   * BF_GUARDED_BY(mu)    — data member readable/writable only with mu held;
//   * BF_PT_GUARDED_BY(mu) — the pointee of a pointer member is guarded;
//   * BF_REQUIRES(mu)      — function callable only with mu already held;
//   * BF_ACQUIRE(mu) / BF_RELEASE(mu) — function acquires / releases mu;
//   * BF_TRY_ACQUIRE(b, mu) — try-lock returning `b` on success;
//   * BF_EXCLUDES(mu)      — function callable only with mu NOT held
//                            (deadlock documentation for self-locking APIs);
//   * BF_CAPABILITY / BF_SCOPED_CAPABILITY — mark a type as a lockable
//     capability / a scoped RAII lock (core/sync.hpp applies both);
//   * BF_NO_THREAD_SAFETY_ANALYSIS — opt a function body out (init/teardown
//     code that is single-threaded by construction).
//
// The analysis is intraprocedural over these contracts: keep condition-
// variable predicates as explicit while-loops around CondVar::wait (see
// core/sync.hpp) rather than captured lambdas, because a lambda body is
// analyzed as a separate function that does not inherit the caller's lock
// set.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BF_THREAD_ANNOTATION
#define BF_THREAD_ANNOTATION(x)  // expands to nothing off-Clang
#endif

#define BF_CAPABILITY(name) BF_THREAD_ANNOTATION(capability(name))
#define BF_SCOPED_CAPABILITY BF_THREAD_ANNOTATION(scoped_lockable)

#define BF_GUARDED_BY(mu) BF_THREAD_ANNOTATION(guarded_by(mu))
#define BF_PT_GUARDED_BY(mu) BF_THREAD_ANNOTATION(pt_guarded_by(mu))

#define BF_ACQUIRED_BEFORE(...) BF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BF_ACQUIRED_AFTER(...) BF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define BF_REQUIRES(...) BF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BF_REQUIRES_SHARED(...) BF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define BF_ACQUIRE(...) BF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BF_ACQUIRE_SHARED(...) BF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BF_RELEASE(...) BF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BF_RELEASE_SHARED(...) BF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define BF_TRY_ACQUIRE(...) BF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BF_TRY_ACQUIRE_SHARED(...) \
  BF_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define BF_EXCLUDES(...) BF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define BF_ASSERT_CAPABILITY(x) BF_THREAD_ANNOTATION(assert_capability(x))
#define BF_RETURN_CAPABILITY(x) BF_THREAD_ANNOTATION(lock_returned(x))

#define BF_NO_THREAD_SAFETY_ANALYSIS BF_THREAD_ANNOTATION(no_thread_safety_analysis)
