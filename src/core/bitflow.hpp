// BitFlow public umbrella header.
//
// A downstream user normally needs only this include:
//
//   #include "core/bitflow.hpp"
//
//   bitflow::graph::NetworkConfig cfg{.num_threads = 4};
//   auto net = bitflow::models::build_binary_vgg(bitflow::models::vgg16(), cfg);
//   auto scores = net.infer(image);              // image: HWC float Tensor
//
// Layer cake (see DESIGN.md):
//   core   : this facade, AIT model, version/system report, Status/failpoints
//   telemetry: metrics registry, per-layer profiler, trace-event sink
//   serve  : recoverable serving boundary (InferenceSession, see serve/session.hpp)
//   graph  : static network, memory planner, vector execution scheduler
//   ops    : standalone operator-level API
//   kernels: PressedConv / bgemm / OR-pool per-ISA kernels
//   bitpack, simd, tensor, runtime: substrates
//   baseline, train, data, gpuref : evaluation support
#pragma once

#include <string>

#include "baseline/float_ops.hpp"
#include "baseline/unopt_binary.hpp"
#include "bitpack/packer.hpp"
#include "core/ait.hpp"
#include "core/failpoint.hpp"
#include "core/status.hpp"
#include "graph/network.hpp"
#include "graph/scheduler.hpp"
#include "kernels/bgemm.hpp"
#include "kernels/binary_maxpool.hpp"
#include "kernels/pressedconv.hpp"
#include "models/vgg.hpp"
#include "ops/operators.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "serve/engine.hpp"
#include "serve/session.hpp"
#include "simd/cpu_features.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "tensor/tensor.hpp"
#include "tensor/util.hpp"

namespace bitflow {

/// Library version string.
[[nodiscard]] const char* version();

/// One-paragraph report of the executing hardware and the kernels the
/// vector execution scheduler would select for the VGG channel counts —
/// the runtime rendition of the paper's Fig. 6.
[[nodiscard]] std::string system_report();

}  // namespace bitflow
