#include "core/bitflow.hpp"

#include <sstream>

namespace bitflow {

const char* version() { return "1.0.0"; }

std::string system_report() {
  const simd::CpuFeatures& f = simd::cpu_features();
  std::ostringstream os;
  os << "BitFlow " << version() << "\n";
  os << "CPU features: " << f.to_string() << "\n";
  os << "Widest binary kernel ISA: " << simd::isa_name(f.best_isa()) << "\n";
  os << "Operator -> kernel mapping (paper Fig. 6 rules):\n";
  for (std::int64_t c : {3, 64, 128, 256, 512, 4096, 25088}) {
    os << "  " << graph::explain_isa_selection(c, f, graph::SchedulerPolicy::kPaperRules)
       << "\n";
  }
  return os.str();
}

}  // namespace bitflow
