// Recoverable-error vocabulary for BitFlow's serving boundary.
//
// The library distinguishes three failure classes (see DESIGN.md §"Error
// handling policy"):
//
//   * programmer errors  — violated invariants; BF_CHECK aborts (check.hpp);
//   * internal failures  — exceptions thrown deep inside the engine
//     (malformed model bytes, bad_alloc, worker exceptions).  These may
//     cross *internal* layers as exceptions but must never escape the
//     serving API;
//   * recoverable conditions — what a caller of serve::InferenceSession
//     sees: a Status with a machine-readable code plus a human-readable
//     message, or a Result<T> carrying either a value or such a Status.
//
// Status is cheap to pass by value (code + message string) and never
// throws; Result<T> is a thin value-or-status sum type.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "core/check.hpp"

namespace bitflow::core {

/// Machine-readable failure classification of the serving boundary.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidModel,        ///< malformed/truncated/corrupt model file or graph
  kBadInput,            ///< request input does not match the loaded network
  kResourceExhausted,   ///< allocation failure or a load exceeding its byte budget
  kWorkerFailure,       ///< exception(s) escaped thread-pool workers
  kDeadlineExceeded,    ///< inference did not finish within the configured deadline
  kUnsupportedIsa,      ///< requested ISA level is not executable on this CPU
  kInternal,            ///< any other exception caught at the boundary
  kCancelled,           ///< work abandoned at a cooperative cancellation checkpoint
  kUnavailable,         ///< engine is draining/drained and not accepting work
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kInvalidModel: return "kInvalidModel";
    case ErrorCode::kBadInput: return "kBadInput";
    case ErrorCode::kResourceExhausted: return "kResourceExhausted";
    case ErrorCode::kWorkerFailure: return "kWorkerFailure";
    case ErrorCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case ErrorCode::kUnsupportedIsa: return "kUnsupportedIsa";
    case ErrorCode::kInternal: return "kInternal";
    case ErrorCode::kCancelled: return "kCancelled";
    case ErrorCode::kUnavailable: return "kUnavailable";
  }
  return "?";
}

/// Success-or-error outcome.  Default-constructed Status is OK; non-OK
/// statuses carry a code and a message describing what failed.
class Status {
 public:
  Status() = default;

  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    BF_CHECK(code != ErrorCode::kOk, "non-default Status must carry an error code");
  }

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "kInvalidModel: model load: bad magic ..." (or "kOk").
  [[nodiscard]] std::string to_string() const {
    std::string s = error_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Value-or-Status sum type returned by fallible constructors of the
/// serving boundary (e.g. InferenceSession::open).  Accessing value() on an
/// error Result is a contract violation (BF_CHECK).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, mirrors absl::StatusOr
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : v_(std::in_place_index<1>, std::move(status)) {
    BF_CHECK(std::get<1>(v_).code() != ErrorCode::kOk,
             "Result constructed from an OK Status carries no value");
  }

  [[nodiscard]] bool is_ok() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return is_ok(); }

  /// OK status when holding a value, the error otherwise.
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<1>(v_);
  }

  [[nodiscard]] T& value() & {
    BF_CHECK(is_ok(), "Result::value() on error: ", std::get<1>(v_).to_string());
    return std::get<0>(v_);
  }
  [[nodiscard]] const T& value() const& {
    BF_CHECK(is_ok(), "Result::value() on error: ", std::get<1>(v_).to_string());
    return std::get<0>(v_);
  }
  [[nodiscard]] T&& value() && {
    BF_CHECK(is_ok(), "Result::value() on error: ", std::get<1>(v_).to_string());
    return std::get<0>(std::move(v_));
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace bitflow::core
