#include "core/failpoint.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace bitflow::failpoint {

namespace {

// Fixed catalog of every injection site compiled into the library.  Names
// are namespaced by subsystem; the serving boundary maps a FaultInjected
// back to a Status code by this prefix (serve/session.cpp).
constexpr std::array<PointInfo, 17> kCatalog{{
    {"io.open", "Model::load(path) after the file was opened"},
    {"io.read_header", "Model::load(istream) after magic/version were read"},
    {"io.read_weights", "Model::load(istream) before each layer weight payload"},
    {"alloc.buffer", "AlignedBuffer allocation (every tensor/weight buffer)"},
    {"runtime.worker", "ThreadPool job execution, every worker incl. the caller"},
    {"runtime.worker_stall", "ThreadPool job execution (stall flavour, same site)"},
    {"serve.infer", "InferenceSession/Engine inference entry, inside the error boundary"},
    {"serve.queue_admit", "Engine::submit admission path, before the request is enqueued"},
    {"serve.shed", "Engine::submit load-shedding decision: site-fault forces a shed"},
    {"serve.cancel_checkpoint",
     "infer_batch layer-boundary checkpoint: site-fault forces a cancellation"},
    {"serve.drain", "Engine::drain entry, inside the drain error boundary"},
    {"serve.worker_quarantine",
     "Engine worker breaker evaluation: site-fault forces a quarantine trip"},
    {"simd.force_fallback", "finalize() ISA clamp: site-fault lowers every layer to u64"},
    {"net.accept", "Server poll loop, accepting a new connection"},
    {"net.frame_decode", "Server binary input path, before buffered frames are decoded"},
    {"tune.cache_io", "TuneCache load/save file I/O, after open and before each read/write"},
    {"tune.search", "auto-tuner candidate search, before each candidate measurement"},
}};

struct PointState {
  bool armed = false;
  Config cfg;
  std::uint64_t hits = 0;   // hits while armed (reset by arm)
  std::uint64_t fired = 0;  // how many of those hits fired
};

// Lock ordering: g_mutex is a leaf — no other lock is ever taken while it
// is held (detail::hit() performs its action after releasing it).
core::Mutex g_mutex;
std::array<PointState, kCatalog.size()> g_state BF_GUARDED_BY(g_mutex);

/// Index of `name` in the catalog, or -1.
int find(std::string_view name) {
  for (std::size_t i = 0; i < kCatalog.size(); ++i) {
    if (kCatalog[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int find_or_throw(std::string_view name) {
  const int i = find(name);
  if (i < 0) {
    throw std::invalid_argument("failpoint: unknown name '" + std::string(name) + "'");
  }
  return i;
}

/// Parses "count(12)" / "stall(250)"-style parameterized tokens.
bool parse_paren(std::string_view token, std::string_view keyword, std::uint64_t& out) {
  if (token.size() < keyword.size() + 3 || token.substr(0, keyword.size()) != keyword ||
      token[keyword.size()] != '(' || token.back() != ')') {
    return false;
  }
  const std::string_view digits =
      token.substr(keyword.size() + 1, token.size() - keyword.size() - 2);
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (char ch : digits) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = v;
  return true;
}

/// Parses one "name=trigger:action" clause.
void arm_one_clause(std::string_view clause) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string_view::npos) {
    throw std::invalid_argument("failpoint spec: missing '=' in '" + std::string(clause) + "'");
  }
  const std::string_view name = clause.substr(0, eq);
  const std::string_view rest = clause.substr(eq + 1);
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument("failpoint spec: missing ':' in '" + std::string(clause) + "'");
  }
  const std::string_view trig = rest.substr(0, colon);
  const std::string_view act = rest.substr(colon + 1);

  Config cfg;
  std::uint64_t n = 0;
  if (trig == "always") {
    cfg.trigger = Trigger::kAlways;
  } else if (trig == "once") {
    cfg.trigger = Trigger::kOnce;
  } else if (parse_paren(trig, "count", n) && n > 0) {
    cfg.trigger = Trigger::kCounted;
    cfg.n = n;
  } else if (parse_paren(trig, "every", n) && n > 0) {
    cfg.trigger = Trigger::kEveryNth;
    cfg.n = n;
  } else {
    throw std::invalid_argument("failpoint spec: bad trigger '" + std::string(trig) + "'");
  }

  if (act == "error") {
    cfg.action = Action::kError;
  } else if (act == "badalloc") {
    cfg.action = Action::kBadAlloc;
  } else if (act == "site") {
    cfg.action = Action::kSite;
  } else if (parse_paren(act, "stall", n)) {
    cfg.action = Action::kStall;
    cfg.stall_ms = n;
  } else {
    throw std::invalid_argument("failpoint spec: bad action '" + std::string(act) + "'");
  }

  arm(name, cfg);
}

// Environment activation runs before main() so env-armed failpoints cover
// code executed from static initializers of downstream binaries too.
const bool g_env_applied = [] {
  arm_from_env();
  return true;
}();

}  // namespace

const std::vector<PointInfo>& catalog() {
  static const std::vector<PointInfo> v(kCatalog.begin(), kCatalog.end());
  return v;
}

void arm(std::string_view name, Config cfg) {
  if ((cfg.trigger == Trigger::kCounted || cfg.trigger == Trigger::kEveryNth) && cfg.n == 0) {
    throw std::invalid_argument("failpoint: trigger parameter n must be >= 1");
  }
  const int i = find_or_throw(name);
  core::MutexLock lock(g_mutex);
  PointState& st = g_state[static_cast<std::size_t>(i)];
  if (!st.armed) detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.cfg = cfg;
  st.hits = 0;
  st.fired = 0;
}

void disarm(std::string_view name) {
  const int i = find_or_throw(name);
  core::MutexLock lock(g_mutex);
  PointState& st = g_state[static_cast<std::size_t>(i)];
  if (st.armed) detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  st.armed = false;
}

void disarm_all() {
  core::MutexLock lock(g_mutex);
  for (PointState& st : g_state) {
    if (st.armed) detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    st.armed = false;
  }
}

bool armed(std::string_view name) {
  const int i = find_or_throw(name);
  core::MutexLock lock(g_mutex);
  return g_state[static_cast<std::size_t>(i)].armed;
}

std::uint64_t hit_count(std::string_view name) {
  const int i = find_or_throw(name);
  core::MutexLock lock(g_mutex);
  return g_state[static_cast<std::size_t>(i)].hits;
}

void arm_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view clause = spec.substr(pos, end - pos);
    if (!clause.empty()) arm_one_clause(clause);
    pos = end + 1;
  }
}

void arm_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before main() normally.
  const char* spec = std::getenv("BITFLOW_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return;
  try {
    arm_from_spec(spec);
  } catch (const std::exception& e) {
    // A malformed env var must not abort the process that inherited it.
    std::fprintf(stderr, "[bitflow] ignoring BITFLOW_FAILPOINTS: %s\n", e.what());
  }
}

namespace detail {

// Ordering contract: relaxed (see failpoint.hpp — it is only a fast-path
// gate; point state synchronizes through g_mutex).
std::atomic<int> g_armed_points{0};

bool hit(const char* name) {
  Action action{};
  std::uint64_t stall_ms = 0;
  {
    core::MutexLock lock(g_mutex);
    const int i = find(name);
    // An unknown name in a BF_FAILPOINT macro is a wiring bug, but hit()
    // runs inside production paths — degrade to a no-op rather than abort.
    if (i < 0) return false;
    PointState& st = g_state[static_cast<std::size_t>(i)];
    if (!st.armed) return false;
    ++st.hits;
    bool fire = false;
    switch (st.cfg.trigger) {
      case Trigger::kAlways: fire = true; break;
      case Trigger::kOnce: fire = st.fired == 0; break;
      case Trigger::kCounted: fire = st.fired < st.cfg.n; break;
      case Trigger::kEveryNth: fire = st.hits % st.cfg.n == 0; break;
    }
    if (!fire) return false;
    ++st.fired;
    const bool exhausted = (st.cfg.trigger == Trigger::kOnce && st.fired >= 1) ||
                           (st.cfg.trigger == Trigger::kCounted && st.fired >= st.cfg.n);
    if (exhausted) {
      st.armed = false;
      g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
    action = st.cfg.action;
    stall_ms = st.cfg.stall_ms;
  }
  // Perform the action outside the registry lock: a stalled worker must not
  // block other threads' failpoint evaluation, and throwing with a lock
  // held would be an obvious self-inflicted wound.
  switch (action) {
    case Action::kError: throw FaultInjected(name);
    case Action::kBadAlloc: throw std::bad_alloc();
    case Action::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      return false;
    case Action::kSite: return true;
  }
  return false;
}

}  // namespace detail

}  // namespace bitflow::failpoint
