// Annotated synchronization primitives: the lockable vocabulary the Clang
// Thread Safety Analysis (-Wthread-safety) verifies against.
//
// Every mutex-protected structure in the tree uses these wrappers instead of
// raw std::mutex/std::condition_variable so that BF_GUARDED_BY contracts on
// the protected members are checkable: the analysis only tracks capabilities
// it can see, and these are the types that carry the BF_CAPABILITY /
// BF_SCOPED_CAPABILITY attributes.  On GCC the attributes vanish and the
// wrappers compile down to exactly the std primitives they hold (all methods
// are inline forwarding calls).
//
// Waiting discipline: CondVar deliberately has NO predicate overload.  A
// predicate lambda is analyzed as a separate function that does not inherit
// the caller's lock set, so `cv.wait(lock, [&]{ return guarded_; })` would
// produce a false -Wthread-safety positive on every guarded read inside the
// lambda.  Write the loop explicitly instead — it is the same code the
// predicate overload expands to, with the guarded reads visibly under the
// lock:
//
//   core::MutexLock lock(mu_);
//   while (!ready_condition_goes_here) cv_.wait(lock);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace bitflow::core {

class CondVar;
class MutexLock;

/// Exclusive mutex (std::mutex with the `capability` attribute).  Prefer the
/// scoped MutexLock over manual lock()/unlock() pairs.
class BF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BF_ACQUIRE() { mu_.lock(); }
  void unlock() BF_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() BF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a core::Mutex (RAII, non-movable).  The scoped-capability
/// attribute tells the analysis the mutex is held from construction to the
/// end of the enclosing scope.
class BF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BF_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() BF_RELEASE() {}  // NOLINT(modernize-use-equals-default): the
  // attribute must annotate a user-provided destructor to parse on Clang.

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a core::Mutex via its MutexLock.  wait()
/// atomically releases and re-acquires the underlying std::mutex, so from
/// the analysis' view the capability is held across the call — which is the
/// correct contract for callers (the lock IS held again when wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible: always re-check the
  /// guarded condition in a while-loop, see the file comment).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Blocks until notified or `tp`; reports which one ended the wait.
  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  /// Blocks until notified or `d` elapsed; reports which one ended the wait.
  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock, std::chrono::duration<Rep, Period> d) {
    return cv_.wait_for(lock.lock_, d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bitflow::core
