// Serializable model container: the deployment artifact of BitFlow.
//
// A Model holds an engine-independent description of a binarized network —
// layer sequence, bit-packed weights, folded thresholds, input extents —
// and converts in both directions:
//
//   train::Sequential --export_to_model()--> Model --save()--> .bflow file
//   .bflow file --Model::load()--> Model --instantiate()--> BinaryNetwork
//
// The on-disk format ("BFLW", version 1) is little-endian and
// self-describing; see format.md-style notes in model.cpp.  Packed weights
// are stored verbatim (1 bit per weight), so a VGG-16 model file is ~17 MB
// against ~528 MB of float weights — the deployment half of Table V.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "kernels/binary_maxpool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"

namespace bitflow::io {

/// Default ceiling on the total weight/threshold payload bytes a single
/// Model::load may allocate (1 GiB — comfortably above any real BNN, far
/// below what a corrupt header can request).
inline constexpr std::int64_t kDefaultModelLoadBudgetBytes = std::int64_t{1} << 30;

/// Process-wide Model::load allocation budget.  The loader computes each
/// layer's payload size with overflow-checked arithmetic and rejects the
/// file (clean std::runtime_error, no allocation) once the running total
/// exceeds this budget — per-dimension extents can individually look
/// plausible while their product demands terabytes.
[[nodiscard]] std::int64_t model_load_budget_bytes() noexcept;

/// Replaces the load budget (serving operators size this to their fleet's
/// memory headroom).  Throws std::invalid_argument when bytes < 1.
void set_model_load_budget_bytes(std::int64_t bytes);

/// One serialized layer.  Exactly one of the kind-specific payloads is
/// meaningful, selected by `kind`.
struct LayerRecord {
  graph::LayerKind kind = graph::LayerKind::kConv;
  std::string name;
  // conv
  bool full_precision = false;   ///< first-layer float conv (kind == kConv)
  PackedFilterBank filters;      ///< binary conv weights
  FilterBank float_filters;      ///< full-precision conv weights
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  // pool
  kernels::PoolSpec pool;
  // fc
  PackedMatrix fc_weights;  // K x N rows (engine layout)
  // conv / fc
  std::vector<float> thresholds;
};

/// Engine-independent binarized model description.
class Model {
 public:
  Model() = default;
  explicit Model(graph::TensorDesc input) : input_(input) {}

  [[nodiscard]] graph::TensorDesc input() const noexcept { return input_; }
  void set_input(graph::TensorDesc d) noexcept { input_ = d; }

  [[nodiscard]] const std::vector<LayerRecord>& layers() const noexcept { return layers_; }
  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }

  /// Appends a conv layer with packed filters.
  void add_conv(std::string name, PackedFilterBank filters, std::int64_t stride,
                std::int64_t pad, std::vector<float> thresholds = {});
  /// Appends a full-precision first-layer conv with float filters.
  void add_conv_float(std::string name, FilterBank filters, std::int64_t stride,
                      std::int64_t pad, std::vector<float> thresholds = {});
  /// Appends a max pooling layer.
  void add_maxpool(std::string name, kernels::PoolSpec spec);
  /// Appends a fully connected layer with packed K x N weights.
  void add_fc(std::string name, PackedMatrix weights, std::vector<float> thresholds = {});

  /// Builds and finalizes an engine network for this model.
  [[nodiscard]] graph::BinaryNetwork instantiate(graph::NetworkConfig cfg) const;

  /// Total packed weight bytes (the model-file payload size).
  [[nodiscard]] std::int64_t weight_bytes() const;

  // --- persistence -----------------------------------------------------------

  /// Writes the model to `path` (throws std::runtime_error on I/O failure).
  void save(const std::string& path) const;
  void save(std::ostream& os) const;

  /// Reads a model from `path` (throws std::runtime_error on I/O failure or
  /// malformed/unsupported content).
  [[nodiscard]] static Model load(const std::string& path);
  [[nodiscard]] static Model load(std::istream& is);

 private:
  graph::TensorDesc input_{};
  std::vector<LayerRecord> layers_;
};

}  // namespace bitflow::io
