// On-disk format (version 1, little-endian):
//
//   magic   : 4 bytes "BFLW"
//   version : u32 = 1
//   input   : 3 x i64 (h, w, c)
//   count   : u32 layer count
//   layers  : repeated
//     kind  : u8 (0 conv, 1 pool, 2 fc, 3 full-precision conv)
//     name  : u32 length + bytes
//     conv  : i64 k, kh, kw, c, stride, pad; u8 has_thresholds;
//             [k x f32 thresholds]; k*kh*kw*ceil(c/64) x u64 packed words
//     pool  : i64 pool_h, pool_w, stride
//     fc    : i64 k, n; u8 has_thresholds; [k x f32];
//             k*ceil(n/64) x u64 packed words
//     fconv : i64 k, kh, kw, c, stride, pad; u8 has_thresholds;
//             [k x f32 thresholds]; k*kh*kw*c x f32 float weights
//
// The format stores packed words in host (little-endian) order; BitFlow
// targets x86, so no byte swapping is performed.  A corrupt or truncated
// stream throws std::runtime_error with a description of what failed.
#include "io/model.hpp"

#include <atomic>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "core/failpoint.hpp"

namespace bitflow::io {

namespace {

constexpr char kMagic[4] = {'B', 'F', 'L', 'W'};
constexpr std::uint32_t kVersion = 1;

// Ordering contract: relaxed loads/stores — the budget is a standalone
// configuration value; a load racing a set_model_load_budget_bytes() call
// legitimately sees either bound, and nothing else is published through it.
std::atomic<std::int64_t> g_load_budget{kDefaultModelLoadBudgetBytes};

/// `a * b`, throwing instead of overflowing.  Loader sizes are products of
/// attacker-controlled extents: each factor can pass its per-dimension
/// plausibility cap while the product wraps int64 or demands terabytes.
std::int64_t checked_mul(std::int64_t a, std::int64_t b, const char* what) {
  if (a != 0 && b > std::numeric_limits<std::int64_t>::max() / a) {
    throw std::runtime_error(std::string("model load: size overflow computing ") + what);
  }
  return a * b;
}

/// Running total of payload bytes a load is about to allocate; charge()
/// must be called BEFORE the corresponding allocation happens.
class PayloadBudget {
 public:
  void charge(std::int64_t bytes, const char* what) {
    if (bytes < 0 || bytes > std::numeric_limits<std::int64_t>::max() - used_) {
      throw std::runtime_error(std::string("model load: size overflow computing ") + what);
    }
    used_ += bytes;
    const std::int64_t budget = g_load_budget.load(std::memory_order_relaxed);
    if (used_ > budget) {
      throw std::runtime_error(std::string("model load: weight payload exceeds the ") +
                               std::to_string(budget) + "-byte load budget at " + what);
    }
  }

 private:
  std::int64_t used_ = 0;
};

// --- little-endian primitive I/O ------------------------------------------

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error(std::string("model load: truncated reading ") + what);
  return value;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = read_pod<std::uint32_t>(is, "string length");
  if (len > 4096) throw std::runtime_error("model load: implausible name length");
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw std::runtime_error("model load: truncated reading name");
  return s;
}

std::int64_t read_extent(std::istream& is, const char* what, std::int64_t max = 1 << 24) {
  const auto v = read_pod<std::int64_t>(is, what);
  if (v <= 0 || v > max) {
    throw std::runtime_error(std::string("model load: implausible extent for ") + what);
  }
  return v;
}

void write_thresholds(std::ostream& os, const std::vector<float>& th) {
  write_pod<std::uint8_t>(os, th.empty() ? 0 : 1);
  if (!th.empty()) {
    os.write(reinterpret_cast<const char*>(th.data()),
             static_cast<std::streamsize>(th.size() * sizeof(float)));
  }
}

std::vector<float> read_thresholds(std::istream& is, std::int64_t count) {
  const auto has = read_pod<std::uint8_t>(is, "threshold flag");
  if (has == 0) return {};
  std::vector<float> th(static_cast<std::size_t>(count));
  is.read(reinterpret_cast<char*>(th.data()),
          static_cast<std::streamsize>(th.size() * sizeof(float)));
  if (!is) throw std::runtime_error("model load: truncated reading thresholds");
  return th;
}

}  // namespace

std::int64_t model_load_budget_bytes() noexcept {
  return g_load_budget.load(std::memory_order_relaxed);
}

void set_model_load_budget_bytes(std::int64_t bytes) {
  if (bytes < 1) throw std::invalid_argument("model load budget must be >= 1 byte");
  g_load_budget.store(bytes, std::memory_order_relaxed);
}

void Model::add_conv(std::string name, PackedFilterBank filters, std::int64_t stride,
                     std::int64_t pad, std::vector<float> thresholds) {
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(filters.num_filters())) {
    throw std::invalid_argument("Model::add_conv: thresholds size mismatch");
  }
  LayerRecord r;
  r.kind = graph::LayerKind::kConv;
  r.name = std::move(name);
  r.filters = std::move(filters);
  r.stride = stride;
  r.pad = pad;
  r.thresholds = std::move(thresholds);
  layers_.push_back(std::move(r));
}

void Model::add_conv_float(std::string name, FilterBank filters, std::int64_t stride,
                           std::int64_t pad, std::vector<float> thresholds) {
  if (!thresholds.empty() &&
      thresholds.size() != static_cast<std::size_t>(filters.num_filters())) {
    throw std::invalid_argument("Model::add_conv_float: thresholds size mismatch");
  }
  LayerRecord r;
  r.kind = graph::LayerKind::kConv;
  r.full_precision = true;
  r.name = std::move(name);
  r.float_filters = std::move(filters);
  r.stride = stride;
  r.pad = pad;
  r.thresholds = std::move(thresholds);
  layers_.push_back(std::move(r));
}

void Model::add_maxpool(std::string name, kernels::PoolSpec spec) {
  LayerRecord r;
  r.kind = graph::LayerKind::kPool;
  r.name = std::move(name);
  r.pool = spec;
  layers_.push_back(std::move(r));
}

void Model::add_fc(std::string name, PackedMatrix weights, std::vector<float> thresholds) {
  if (!thresholds.empty() && thresholds.size() != static_cast<std::size_t>(weights.rows())) {
    throw std::invalid_argument("Model::add_fc: thresholds size mismatch");
  }
  LayerRecord r;
  r.kind = graph::LayerKind::kFc;
  r.name = std::move(name);
  r.fc_weights = std::move(weights);
  r.thresholds = std::move(thresholds);
  layers_.push_back(std::move(r));
}

graph::BinaryNetwork Model::instantiate(graph::NetworkConfig cfg) const {
  graph::BinaryNetwork net(cfg);
  for (const LayerRecord& r : layers_) {
    switch (r.kind) {
      case graph::LayerKind::kConv: {
        if (r.full_precision) {
          net.add_conv_float(r.name, r.float_filters, r.stride, r.pad, r.thresholds);
          break;
        }
        PackedFilterBank copy(r.filters.num_filters(), r.filters.kernel_h(),
                              r.filters.kernel_w(), r.filters.channels());
        std::memcpy(copy.words(), r.filters.words(),
                    static_cast<std::size_t>(r.filters.num_filters() *
                                             r.filters.words_per_filter() * 8));
        net.add_conv_packed(r.name, std::move(copy), r.stride, r.pad, r.thresholds);
        break;
      }
      case graph::LayerKind::kPool:
        net.add_maxpool(r.name, r.pool);
        break;
      case graph::LayerKind::kFc: {
        PackedMatrix copy(r.fc_weights.rows(), r.fc_weights.cols());
        std::memcpy(copy.words(), r.fc_weights.words(),
                    static_cast<std::size_t>(r.fc_weights.num_words() * 8));
        net.add_fc_packed(r.name, std::move(copy), r.thresholds);
        break;
      }
    }
  }
  net.finalize(input_);
  return net;
}

std::int64_t Model::weight_bytes() const {
  std::int64_t total = 0;
  for (const LayerRecord& r : layers_) {
    if (r.kind == graph::LayerKind::kConv) {
      total += r.full_precision ? r.float_filters.num_elements() * 4
                                : r.filters.num_filters() * r.filters.words_per_filter() * 8;
    } else if (r.kind == graph::LayerKind::kFc) {
      total += r.fc_weights.num_words() * 8;
    }
  }
  return total;
}

void Model::save(std::ostream& os) const {
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, kVersion);
  write_pod<std::int64_t>(os, input_.h);
  write_pod<std::int64_t>(os, input_.w);
  write_pod<std::int64_t>(os, input_.c);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(layers_.size()));
  for (const LayerRecord& r : layers_) {
    const std::uint8_t kind_byte =
        r.kind == graph::LayerKind::kConv && r.full_precision
            ? 3
            : static_cast<std::uint8_t>(r.kind);
    write_pod<std::uint8_t>(os, kind_byte);
    write_string(os, r.name);
    if (kind_byte == 3) {
      write_pod<std::int64_t>(os, r.float_filters.num_filters());
      write_pod<std::int64_t>(os, r.float_filters.kernel_h());
      write_pod<std::int64_t>(os, r.float_filters.kernel_w());
      write_pod<std::int64_t>(os, r.float_filters.channels());
      write_pod<std::int64_t>(os, r.stride);
      write_pod<std::int64_t>(os, r.pad);
      write_thresholds(os, r.thresholds);
      os.write(reinterpret_cast<const char*>(r.float_filters.data()),
               static_cast<std::streamsize>(r.float_filters.num_elements() * 4));
      continue;
    }
    switch (r.kind) {
      case graph::LayerKind::kConv: {
        write_pod<std::int64_t>(os, r.filters.num_filters());
        write_pod<std::int64_t>(os, r.filters.kernel_h());
        write_pod<std::int64_t>(os, r.filters.kernel_w());
        write_pod<std::int64_t>(os, r.filters.channels());
        write_pod<std::int64_t>(os, r.stride);
        write_pod<std::int64_t>(os, r.pad);
        write_thresholds(os, r.thresholds);
        os.write(reinterpret_cast<const char*>(r.filters.words()),
                 static_cast<std::streamsize>(r.filters.num_filters() *
                                              r.filters.words_per_filter() * 8));
        break;
      }
      case graph::LayerKind::kPool: {
        write_pod<std::int64_t>(os, r.pool.pool_h);
        write_pod<std::int64_t>(os, r.pool.pool_w);
        write_pod<std::int64_t>(os, r.pool.stride);
        break;
      }
      case graph::LayerKind::kFc: {
        write_pod<std::int64_t>(os, r.fc_weights.rows());
        write_pod<std::int64_t>(os, r.fc_weights.cols());
        write_thresholds(os, r.thresholds);
        os.write(reinterpret_cast<const char*>(r.fc_weights.words()),
                 static_cast<std::streamsize>(r.fc_weights.num_words() * 8));
        break;
      }
    }
  }
  if (!os) throw std::runtime_error("model save: stream write failed");
}

void Model::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("model save: cannot open " + path);
  save(f);
}

Model Model::load(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("model load: bad magic (not a BitFlow model file)");
  }
  const auto version = read_pod<std::uint32_t>(is, "version");
  if (version != kVersion) {
    throw std::runtime_error("model load: unsupported version " + std::to_string(version));
  }
  BF_FAILPOINT("io.read_header");
  PayloadBudget budget;
  Model m;
  m.input_.h = read_extent(is, "input h");
  m.input_.w = read_extent(is, "input w");
  m.input_.c = read_extent(is, "input c");
  const auto count = read_pod<std::uint32_t>(is, "layer count");
  if (count > 10000) throw std::runtime_error("model load: implausible layer count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind = read_pod<std::uint8_t>(is, "layer kind");
    LayerRecord r;
    r.name = read_string(is);
    switch (kind) {
      case 0: {
        r.kind = graph::LayerKind::kConv;
        const std::int64_t k = read_extent(is, "conv k");
        const std::int64_t kh = read_extent(is, "conv kh", 64);
        const std::int64_t kw = read_extent(is, "conv kw", 64);
        const std::int64_t c = read_extent(is, "conv c");
        r.stride = read_extent(is, "conv stride", 64);
        r.pad = read_pod<std::int64_t>(is, "conv pad");
        if (r.pad < 0 || r.pad > 64) throw std::runtime_error("model load: implausible pad");
        const std::int64_t wpf =
            checked_mul(checked_mul(kh, kw, "conv filter words"), (c + 63) / 64,
                        "conv filter words");
        budget.charge(checked_mul(checked_mul(k, wpf, "conv weights"), 8, "conv weights"),
                      "conv weights");
        budget.charge(checked_mul(k, 4, "conv thresholds"), "conv thresholds");
        r.thresholds = read_thresholds(is, k);
        r.filters = PackedFilterBank(k, kh, kw, c);
        BF_FAILPOINT("io.read_weights");
        is.read(reinterpret_cast<char*>(r.filters.words()),
                static_cast<std::streamsize>(k * r.filters.words_per_filter() * 8));
        if (!is) throw std::runtime_error("model load: truncated conv weights");
        break;
      }
      case 1: {
        r.kind = graph::LayerKind::kPool;
        r.pool.pool_h = read_extent(is, "pool h", 64);
        r.pool.pool_w = read_extent(is, "pool w", 64);
        r.pool.stride = read_extent(is, "pool stride", 64);
        break;
      }
      case 2: {
        r.kind = graph::LayerKind::kFc;
        const std::int64_t k = read_extent(is, "fc k");
        const std::int64_t n = read_extent(is, "fc n", 1 << 28);
        budget.charge(
            checked_mul(checked_mul(k, (n + 63) / 64, "fc weights"), 8, "fc weights"),
            "fc weights");
        budget.charge(checked_mul(k, 4, "fc thresholds"), "fc thresholds");
        r.thresholds = read_thresholds(is, k);
        r.fc_weights = PackedMatrix(k, n);
        BF_FAILPOINT("io.read_weights");
        is.read(reinterpret_cast<char*>(r.fc_weights.words()),
                static_cast<std::streamsize>(r.fc_weights.num_words() * 8));
        if (!is) throw std::runtime_error("model load: truncated fc weights");
        break;
      }
      case 3: {
        r.kind = graph::LayerKind::kConv;
        r.full_precision = true;
        const std::int64_t k = read_extent(is, "fconv k");
        const std::int64_t kh = read_extent(is, "fconv kh", 64);
        const std::int64_t kw = read_extent(is, "fconv kw", 64);
        const std::int64_t c = read_extent(is, "fconv c");
        r.stride = read_extent(is, "fconv stride", 64);
        r.pad = read_pod<std::int64_t>(is, "fconv pad");
        if (r.pad < 0 || r.pad > 64) throw std::runtime_error("model load: implausible pad");
        const std::int64_t elems = checked_mul(
            checked_mul(checked_mul(k, kh, "fconv weights"), kw, "fconv weights"), c,
            "fconv weights");
        budget.charge(checked_mul(elems, 4, "fconv weights"), "fconv weights");
        budget.charge(checked_mul(k, 4, "fconv thresholds"), "fconv thresholds");
        r.thresholds = read_thresholds(is, k);
        r.float_filters = FilterBank(k, kh, kw, c);
        BF_FAILPOINT("io.read_weights");
        is.read(reinterpret_cast<char*>(r.float_filters.data()),
                static_cast<std::streamsize>(r.float_filters.num_elements() * 4));
        if (!is) throw std::runtime_error("model load: truncated fconv weights");
        break;
      }
      default:
        throw std::runtime_error("model load: unknown layer kind " + std::to_string(kind));
    }
    m.layers_.push_back(std::move(r));
  }
  return m;
}

Model Model::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("model load: cannot open " + path);
  BF_FAILPOINT("io.open");
  return load(f);
}

}  // namespace bitflow::io
