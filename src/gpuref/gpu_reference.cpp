#include "gpuref/gpu_reference.hpp"

namespace bitflow::gpuref {

const std::vector<GpuTime>& gtx1080_operator_times() {
  // Visual estimates from paper Fig. 10 (ms); see header for provenance.
  static const std::vector<GpuTime> times = {
      {"conv2.1", 0.90}, {"conv3.1", 0.70}, {"conv4.1", 0.75}, {"conv5.1", 0.60},
      {"fc6", 0.55},     {"fc7", 0.20},     {"pool4", 0.08},   {"pool5", 0.03},
  };
  return times;
}

std::optional<double> gtx1080_operator_ms(const std::string& name) {
  for (const GpuTime& t : gtx1080_operator_times()) {
    if (t.op == name) return t.ms;
  }
  return std::nullopt;
}

double gtx1080_vgg16_ms() { return 12.87; }
double gtx1080_vgg19_ms() { return 14.92; }

const char* provenance() {
  return "GTX 1080 reference: end-to-end times quoted from the paper (Sec. V); "
         "per-operator times are visual estimates from Fig. 10 (no GPU in this "
         "environment - see DESIGN.md substitutions)";
}

}  // namespace bitflow::gpuref
