// GTX 1080 full-precision reference times for Figs. 10 and 11.
//
// No GPU exists in this reproduction environment, so the comparator side of
// the GPU figures is a fixed reference model calibrated from the paper's own
// published measurements (keras + tensorflow 1.2 on a GTX 1080):
//   * end-to-end VGG-16 / VGG-19 times are quoted exactly from Sec. V
//     (12.87 ms and 14.92 ms);
//   * per-operator times are visual estimates from Fig. 10 (the paper prints
//     no numeric table for them), scaled to be consistent with the narrative
//     — BitFlow/i7 loses to the GPU on conv2.1 and conv3.1, wins on conv4.1
//     and conv5.1; the Phi beats it on the fully connected operators.
// The CPU side of both figures is *measured* by this repository; only the
// GPU column is referenced.  See DESIGN.md "Substitutions".
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace bitflow::gpuref {

/// One reference entry.
struct GpuTime {
  std::string op;
  double ms;
};

/// Per-operator GTX 1080 float times for the Table IV benchmark set.
[[nodiscard]] const std::vector<GpuTime>& gtx1080_operator_times();

/// Lookup by operator name (nullopt when unknown).
[[nodiscard]] std::optional<double> gtx1080_operator_ms(const std::string& name);

/// End-to-end full-precision VGG-16 on GTX 1080 (paper Sec. V): 12.87 ms.
[[nodiscard]] double gtx1080_vgg16_ms();

/// End-to-end full-precision VGG-19 on GTX 1080 (paper Sec. V): 14.92 ms.
[[nodiscard]] double gtx1080_vgg19_ms();

/// Provenance string printed by every bench that uses this model.
[[nodiscard]] const char* provenance();

}  // namespace bitflow::gpuref
