// Instruction-set levels understood by the vector execution scheduler.
//
// The paper's code generator (Sec. III-B) picks a computing kernel by the
// channel dimension of the operator:
//   C % 512 == 0  -> AVX-512 (__m512i xor + vpopcntq)
//   C % 256 == 0  -> AVX2    (__m256i xor + nibble-LUT popcount)
//   C % 128 == 0  -> SSE     (__m128i xor + 2x scalar popcnt)
//   C %  32 == 0  -> scalar 64-bit words + popcnt instruction
//   otherwise     -> pad the channel dimension with zero bits
// BitFlow packs into 64-bit base words (the paper packs 32-bit unsigned
// ints and combines them); a channel count that is a multiple of 32 but not
// of 64 simply leaves a zeroed half-word tail, which the Eq. 1 identity
// absorbs (see packed_tensor.hpp).
#pragma once

#include <cstdint>
#include <string_view>

#include "core/check.hpp"

namespace bitflow::simd {

/// Vector ISA selected for a kernel, ordered from narrowest to widest.
enum class IsaLevel : std::uint8_t {
  kU64 = 0,    ///< scalar 64-bit words + hardware popcnt
  kSse = 1,    ///< 128-bit __m128i
  kAvx2 = 2,   ///< 256-bit __m256i
  kAvx512 = 3  ///< 512-bit __m512i (+ VPOPCNTDQ when available)
};

[[nodiscard]] constexpr std::string_view isa_name(IsaLevel isa) noexcept {
  switch (isa) {
    case IsaLevel::kU64: return "u64";
    case IsaLevel::kSse: return "sse";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kAvx512: return "avx512";
  }
  BF_UNREACHABLE("isa_name: corrupt IsaLevel ", static_cast<int>(isa));
}

/// Vector width of an ISA level in bits.
[[nodiscard]] constexpr int isa_bits(IsaLevel isa) noexcept {
  switch (isa) {
    case IsaLevel::kU64: return 64;
    case IsaLevel::kSse: return 128;
    case IsaLevel::kAvx2: return 256;
    case IsaLevel::kAvx512: return 512;
  }
  BF_UNREACHABLE("isa_bits: corrupt IsaLevel ", static_cast<int>(isa));
}

/// Vector width of an ISA level in 64-bit words.
[[nodiscard]] constexpr std::int64_t isa_words(IsaLevel isa) noexcept {
  return isa_bits(isa) / 64;
}

}  // namespace bitflow::simd
