// AVX-512 dispatch wrappers, LUT half: this TU is compiled with
// AVX512F/BW/DQ/VL but *without* VPOPCNTDQ, so the shared inline loops lower
// popcount through the 512-bit byte-LUT — the portable path for CPUs like
// Skylake-SP.  The VPOPCNTDQ-native half lives in bitops_avx512vp.cpp; the
// public xor_popcount_avx512 picks between them once, by CPUID.
#include "simd/bitops.hpp"
#include "simd/bitops_inline.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::simd {

namespace detail {

// Defined in bitops_avx512vp.cpp (compiled with -mavx512vpopcntdq).
std::uint64_t xor_popcount_avx512_vpopcnt(const std::uint64_t* a, const std::uint64_t* b,
                                          std::int64_t n);

std::uint64_t xor_popcount_avx512_lut(const std::uint64_t* a, const std::uint64_t* b,
                                      std::int64_t n) {
  return inl::xor_popcount_avx512(a, b, n);
}

}  // namespace detail

std::uint64_t xor_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n) {
  static const auto impl = cpu_features().avx512vpopcntdq ? &detail::xor_popcount_avx512_vpopcnt
                                                          : &detail::xor_popcount_avx512_lut;
  return impl(a, b, n);
}

std::uint64_t xor_popcount_avx512_variant(const std::uint64_t* a, const std::uint64_t* b,
                                          std::int64_t n, bool use_vpopcntdq) {
  return use_vpopcntdq ? detail::xor_popcount_avx512_vpopcnt(a, b, n)
                       : detail::xor_popcount_avx512_lut(a, b, n);
}

void or_accumulate_avx512(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  inl::or_accumulate_avx512(dst, src, n);
}

}  // namespace bitflow::simd
