#include "simd/cpu_features.hpp"

namespace bitflow::simd {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
  __builtin_cpu_init();
  f.popcnt = __builtin_cpu_supports("popcnt");
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
  f.avx512vpopcntdq = __builtin_cpu_supports("avx512vpopcntdq");
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string CpuFeatures::to_string() const {
  std::string s;
  auto add = [&s](bool on, const char* name) {
    if (on) {
      if (!s.empty()) s += ' ';
      s += name;
    }
  };
  add(popcnt, "popcnt");
  add(sse42, "sse4.2");
  add(avx2, "avx2");
  add(fma, "fma");
  add(avx512f, "avx512f");
  add(avx512bw, "avx512bw");
  add(avx512vl, "avx512vl");
  add(avx512vpopcntdq, "avx512vpopcntdq");
  if (s.empty()) s = "(baseline x86-64 only)";
  return s;
}

}  // namespace bitflow::simd
