// Vectorized bitwise primitives over runs of packed 64-bit words.
//
// These are the Table I instructions of the paper wrapped as word-run
// operations:
//   xor_popcount  — popcount(XOR(a, b)) over n words (Eq. 1 inner product)
//   or_accumulate — dst |= src over n words (binary max-pool reduction)
//
// One implementation per ISA level, each compiled in its own translation
// unit with exactly that ISA enabled (see CMakeLists.txt), dispatched at
// runtime.  Calling a variant the CPU does not support is undefined; use
// xor_popcount_fn / or_accumulate_fn which consult cpu_features().
#pragma once

#include <cstdint>

#include "simd/isa.hpp"

namespace bitflow::simd {

// --- per-ISA xor+popcount reductions -------------------------------------

/// Scalar: 64-bit XOR + hardware POPCNT per word.
std::uint64_t xor_popcount_u64(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n);

/// SSE: _mm_xor_si128 + two scalar popcnt per 128-bit lane pair.
std::uint64_t xor_popcount_sse(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n);

/// AVX2: _mm256_xor_si256 + nibble-LUT (vpshufb) popcount with vpsadbw
/// horizontal accumulation.
std::uint64_t xor_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n);

/// AVX-512: _mm512_xor_si512 + _mm512_popcnt_epi64 (VPOPCNTDQ) when the CPU
/// has it, otherwise an AVX-512BW nibble-LUT; tails use the zero-masked
/// _mm512_maskz_* forms of Table I.
std::uint64_t xor_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n);

/// AVX-512 xor_popcount pinned to one popcount lowering instead of the
/// CPUID-selected one: the byte-LUT half (use_vpopcntdq = false, any
/// AVX-512BW CPU) or the native VPOPCNTDQ half (use_vpopcntdq = true,
/// requires cpu_features().avx512vpopcntdq).  Exists so the ISA-parity
/// harness can exercise both halves explicitly.
std::uint64_t xor_popcount_avx512_variant(const std::uint64_t* a, const std::uint64_t* b,
                                          std::int64_t n, bool use_vpopcntdq);

// --- per-ISA bitwise-OR accumulation (binary max pooling) ----------------

void or_accumulate_u64(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n);
void or_accumulate_sse(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n);
void or_accumulate_avx2(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n);
void or_accumulate_avx512(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n);

// --- runtime dispatch ------------------------------------------------------

using XorPopcountFn = std::uint64_t (*)(const std::uint64_t*, const std::uint64_t*, std::int64_t);
using OrAccumulateFn = void (*)(std::uint64_t*, const std::uint64_t*, std::int64_t);

/// Function implementing xor_popcount at exactly `isa` (caller must have
/// verified cpu_features().supports(isa)).
[[nodiscard]] XorPopcountFn xor_popcount_fn(IsaLevel isa);

/// Function implementing or_accumulate at exactly `isa`.
[[nodiscard]] OrAccumulateFn or_accumulate_fn(IsaLevel isa);

/// Binary inner product of two n-word vectors holding `bits` valid bits
/// (Eq. 1):  dot = bits - 2 * popcount(xor).  Both operands must keep their
/// tail bits zero.
[[nodiscard]] inline std::int64_t binary_dot(XorPopcountFn f, const std::uint64_t* a,
                                             const std::uint64_t* b, std::int64_t n_words,
                                             std::int64_t bits) {
  return bits - 2 * static_cast<std::int64_t>(f(a, b, n_words));
}

}  // namespace bitflow::simd
