// AVX2 dispatch wrappers: 256-bit XOR (_mm256_xor_si256, Table I) with the
// Muła nibble-LUT popcount (vpshufb + vpsadbw) — AVX2 has no vector popcount
// instruction.
#include "simd/bitops.hpp"
#include "simd/bitops_inline.hpp"

namespace bitflow::simd {

std::uint64_t xor_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n) {
  return inl::xor_popcount_avx2(a, b, n);
}

void or_accumulate_avx2(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  inl::or_accumulate_avx2(dst, src, n);
}

}  // namespace bitflow::simd
