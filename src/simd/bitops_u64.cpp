// Scalar 64-bit word implementations (dispatch wrappers over the shared
// inline inner loops).  Compiled with -mpopcnt only: this is the kernel the
// scheduler selects for channel counts that are multiples of 32/64 but of
// nothing wider (paper rule 4).
#include "simd/bitops.hpp"
#include "simd/bitops_inline.hpp"

namespace bitflow::simd {

std::uint64_t xor_popcount_u64(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n) {
  return inl::xor_popcount_u64(a, b, n);
}

void or_accumulate_u64(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  inl::or_accumulate_u64(dst, src, n);
}

}  // namespace bitflow::simd
