// ISA-parity harness support: enumerate what the executing CPU can run and
// check that every vector implementation of the Table I primitives is
// bit-exact against the scalar u64 reference.
//
// The per-ISA kernels are separately compiled translation units whose only
// correctness contract is "same answer as the scalar path"; nothing in the
// type system enforces it.  This header gives tests (tests/isa_parity_test.cpp)
// and debugging tools one place to sweep every supported variant over
// adversarial word-run lengths — empty runs, single words, lengths straddling
// each vector width's tail handling — and to report the first divergence with
// enough context (kernel, shape, operand index) to reproduce it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simd/isa.hpp"

namespace bitflow::simd {

/// ISA levels the executing CPU supports, narrowest (kU64) first.  kU64 is
/// always present, so the scalar reference is always a member of the set.
[[nodiscard]] std::vector<IsaLevel> supported_isa_levels();

/// One named kernel variant: an ISA level plus, at kAvx512, which popcount
/// lowering it uses.  On a VPOPCNTDQ-capable host kAvx512 contributes two
/// variants ("avx512" byte-LUT and "avx512vp" native); elsewhere one.
struct IsaVariant {
  IsaLevel isa = IsaLevel::kU64;
  bool use_vpopcntdq = false;
  std::string_view name = "u64";  ///< "u64", "sse", "avx2", "avx512", "avx512vp"
};

/// Every kernel variant the executing CPU can run, narrowest first.
[[nodiscard]] std::vector<IsaVariant> supported_isa_variants();

/// Outcome of one parity sweep.  When !ok, the fields name the diverging
/// kernel and the exact inputs so the failure is reproducible.
struct ParityResult {
  bool ok = true;
  std::string kernel;  ///< e.g. "xor_popcount[avx512vp]"
  std::string shape;   ///< e.g. "n_words=37 seed=7"
  std::string detail;  ///< reference vs variant values at first divergence

  /// Empty when ok; otherwise "kernel ... shape ...: detail".
  [[nodiscard]] std::string to_string() const;
};

/// Checks xor_popcount at `v` against the scalar reference over random
/// operands of `n_words` words.  Deterministic in `seed`.
[[nodiscard]] ParityResult check_xor_popcount_parity(const IsaVariant& v, std::int64_t n_words,
                                                     std::uint64_t seed);

/// Checks or_accumulate at `isa` against the scalar reference (word-by-word
/// OR) over random operands of `n_words` words.
[[nodiscard]] ParityResult check_or_accumulate_parity(IsaLevel isa, std::int64_t n_words,
                                                      std::uint64_t seed);

/// Sweeps both primitives over every supported variant and a canonical set
/// of word-run lengths (0, 1, around each vector width's boundary, and runs
/// long enough to engage the unrolled main loops).  Returns the first
/// failure, or ok.
[[nodiscard]] ParityResult check_all_bitops_parity(std::uint64_t seed);

}  // namespace bitflow::simd
