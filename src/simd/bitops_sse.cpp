// SSE dispatch wrappers: 128-bit XOR (_mm_xor_si128, Table I) with popcount
// on the two 64-bit halves via the scalar POPCNT unit — pre-AVX2 x86 has no
// vector popcount, so this mirrors what the paper's SSE kernel can emit.
#include "simd/bitops.hpp"
#include "simd/bitops_inline.hpp"

namespace bitflow::simd {

std::uint64_t xor_popcount_sse(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n) {
  return inl::xor_popcount_sse(a, b, n);
}

void or_accumulate_sse(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  inl::or_accumulate_sse(dst, src, n);
}

}  // namespace bitflow::simd
