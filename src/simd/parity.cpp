#include "simd/parity.hpp"

#include <random>
#include <sstream>

#include "core/check.hpp"
#include "simd/bitops.hpp"
#include "simd/cpu_features.hpp"

namespace bitflow::simd {

namespace {

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::int64_t n) {
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& w : v) w = rng();
  return v;
}

std::uint64_t variant_xor_popcount(const IsaVariant& v, const std::uint64_t* a,
                                   const std::uint64_t* b, std::int64_t n) {
  if (v.isa == IsaLevel::kAvx512) return xor_popcount_avx512_variant(a, b, n, v.use_vpopcntdq);
  return xor_popcount_fn(v.isa)(a, b, n);
}

}  // namespace

std::vector<IsaLevel> supported_isa_levels() {
  const CpuFeatures& f = cpu_features();
  std::vector<IsaLevel> levels;
  for (IsaLevel isa : {IsaLevel::kU64, IsaLevel::kSse, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    if (f.supports(isa)) levels.push_back(isa);
  }
  BF_CHECK(!levels.empty() && levels.front() == IsaLevel::kU64,
           "supported_isa_levels: scalar level missing");
  return levels;
}

std::vector<IsaVariant> supported_isa_variants() {
  const CpuFeatures& f = cpu_features();
  std::vector<IsaVariant> variants;
  for (IsaLevel isa : supported_isa_levels()) {
    if (isa == IsaLevel::kAvx512) {
      variants.push_back({isa, false, "avx512"});
      if (f.avx512vpopcntdq) variants.push_back({isa, true, "avx512vp"});
    } else {
      variants.push_back({isa, false, isa_name(isa)});
    }
  }
  return variants;
}

std::string ParityResult::to_string() const {
  if (ok) return {};
  std::ostringstream os;
  os << "kernel " << kernel << " shape " << shape << ": " << detail;
  return os.str();
}

ParityResult check_xor_popcount_parity(const IsaVariant& v, std::int64_t n_words,
                                       std::uint64_t seed) {
  BF_CHECK(n_words >= 0, "check_xor_popcount_parity: negative n_words ", n_words);
  std::mt19937_64 rng(seed);
  const auto a = random_words(rng, n_words);
  const auto b = random_words(rng, n_words);

  ParityResult r;
  r.kernel = "xor_popcount[" + std::string(v.name) + "]";
  {
    std::ostringstream os;
    os << "n_words=" << n_words << " seed=" << seed;
    r.shape = os.str();
  }
  const std::uint64_t ref = xor_popcount_u64(a.data(), b.data(), n_words);
  const std::uint64_t got = variant_xor_popcount(v, a.data(), b.data(), n_words);
  if (got != ref) {
    r.ok = false;
    std::ostringstream os;
    os << "u64 reference=" << ref << " variant=" << got;
    r.detail = os.str();
  }
  return r;
}

ParityResult check_or_accumulate_parity(IsaLevel isa, std::int64_t n_words, std::uint64_t seed) {
  BF_CHECK(n_words >= 0, "check_or_accumulate_parity: negative n_words ", n_words);
  std::mt19937_64 rng(seed);
  const auto src = random_words(rng, n_words);
  const auto base = random_words(rng, n_words);

  ParityResult r;
  r.kernel = "or_accumulate[" + std::string(isa_name(isa)) + "]";
  {
    std::ostringstream os;
    os << "n_words=" << n_words << " seed=" << seed;
    r.shape = os.str();
  }
  auto got = base;
  or_accumulate_fn(isa)(got.data(), src.data(), n_words);
  for (std::int64_t i = 0; i < n_words; ++i) {
    const std::uint64_t want = base[static_cast<std::size_t>(i)] | src[static_cast<std::size_t>(i)];
    if (got[static_cast<std::size_t>(i)] != want) {
      r.ok = false;
      std::ostringstream os;
      os << "word " << i << ": reference=0x" << std::hex << want << " variant=0x"
         << got[static_cast<std::size_t>(i)];
      r.detail = os.str();
      return r;
    }
  }
  return r;
}

ParityResult check_all_bitops_parity(std::uint64_t seed) {
  // Every tail class each vector width can see: empty, sub-word counts, one
  // short of / exactly / one past each of 2-, 4-, and 8-word boundaries, and
  // runs long enough to engage the unrolled main loops plus a ragged tail.
  static constexpr std::int64_t kRuns[] = {0, 1,  2,  3,  4,  5,  7,   8,   9,
                                           15, 16, 17, 31, 33, 64, 127, 257, 1000};
  for (const IsaVariant& v : supported_isa_variants()) {
    for (std::int64_t n : kRuns) {
      ParityResult r = check_xor_popcount_parity(v, n, seed + static_cast<std::uint64_t>(n));
      if (!r.ok) return r;
    }
  }
  for (IsaLevel isa : supported_isa_levels()) {
    for (std::int64_t n : kRuns) {
      ParityResult r = check_or_accumulate_parity(isa, n, seed + static_cast<std::uint64_t>(n));
      if (!r.ok) return r;
    }
  }
  return {};
}

}  // namespace bitflow::simd
