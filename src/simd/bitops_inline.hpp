// Inline implementations of the xor+popcount / or-accumulate word-run
// primitives, guarded by the ISA macros of the including translation unit.
//
// This header is the single source of truth for the inner loops: the
// out-of-line dispatch wrappers in bitops_*.cpp and the PressedConv / bgemm
// kernel TUs (each compiled with its own -m flags) all include it, so the
// hot loops inline into the kernels without link-time optimization.
//
// Only the sections matching the TU's enabled ISA are visible; including
// this header never *requires* any ISA.
#pragma once

#include <cstdint>

#if defined(__SSE4_2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace bitflow::simd::inl {

// --- scalar 64-bit ---------------------------------------------------------

inline std::uint64_t xor_popcount_u64(const std::uint64_t* a, const std::uint64_t* b,
                                      std::int64_t n) {
  // 4 independent 64-bit accumulator lanes: the unrolled popcnts feed
  // separate registers instead of one serial chain, and the horizontal
  // reduction happens once per run rather than once per word.
  std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 0] ^ b[i + 0]));
    t1 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 1] ^ b[i + 1]));
    t2 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 2] ^ b[i + 2]));
    t3 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    t0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] ^ b[i]));
  }
  return (t0 + t1) + (t2 + t3);
}

inline void or_accumulate_u64(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] |= src[i];
}

// --- SSE ---------------------------------------------------------------------

#ifdef __SSE4_2__

inline std::uint64_t xor_popcount_sse(const std::uint64_t* a, const std::uint64_t* b,
                                      std::int64_t n) {
  std::uint64_t total = 0;
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i vx = _mm_xor_si128(va, vb);
    total += static_cast<std::uint64_t>(
        _mm_popcnt_u64(static_cast<std::uint64_t>(_mm_extract_epi64(vx, 0))));
    total += static_cast<std::uint64_t>(
        _mm_popcnt_u64(static_cast<std::uint64_t>(_mm_extract_epi64(vx, 1))));
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  }
  return total;
}

inline void or_accumulate_sse(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i vd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i vs = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_or_si128(vd, vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

#endif  // __SSE4_2__

// --- AVX2 --------------------------------------------------------------------

#ifdef __AVX2__

/// Per-byte popcount via two 4-bit LUT lookups (Muła).
inline __m256i popcount_bytes_256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

inline std::uint64_t xor_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                       std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i bytes = popcount_bytes_256(_mm256_xor_si256(va, vb));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 0)) +
                        static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 1)) +
                        static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 2)) +
                        static_cast<std::uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  }
  return total;
}

inline void or_accumulate_avx2(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_or_si256(vd, vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

#endif  // __AVX2__

// --- AVX-512 -------------------------------------------------------------------

#ifdef __AVX512BW__

/// Per-byte popcount of a 512-bit vector (AVX-512BW vpshufb LUT).
inline __m512i popcount_bytes_512(__m512i v) {
  const __m512i lut =
      _mm512_broadcast_i32x4(_mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi32(v, 4), low_mask);
  return _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo), _mm512_shuffle_epi8(lut, hi));
}

/// popcount of one 512-bit register as a vector of 8 qword counts; uses the
/// native VPOPCNTDQ instruction when the TU is compiled with it (Table I
/// _mm512_popcnt_epi64), the byte-LUT + vpsadbw otherwise.
inline __m512i popcount_epi64_512(__m512i v) {
#ifdef __AVX512VPOPCNTDQ__
  return _mm512_popcnt_epi64(v);
#else
  return _mm512_sad_epu8(popcount_bytes_512(v), _mm512_setzero_si512());
#endif
}

inline std::uint64_t xor_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                                         std::int64_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, popcount_epi64_512(_mm512_xor_si512(va, vb)));
  }
  if (i < n) {
    // 1..7 word tail: the Table I zero-masked forms keep everything in one
    // masked register operation.
    const __mmask8 k = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(k, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(k, b + i);
#ifdef __AVX512VPOPCNTDQ__
    const __m512i vx = _mm512_maskz_xor_epi64(k, va, vb);
    acc = _mm512_add_epi64(acc, _mm512_maskz_popcnt_epi64(k, vx));
#else
    acc = _mm512_add_epi64(acc, popcount_epi64_512(_mm512_xor_si512(va, vb)));
#endif
  }
  return static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
}

inline void or_accumulate_avx512(std::uint64_t* dst, const std::uint64_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vs = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(vd, vs));
  }
  if (i < n) {
    const __mmask8 k = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i vd = _mm512_maskz_loadu_epi64(k, dst + i);
    const __m512i vs = _mm512_maskz_loadu_epi64(k, src + i);
    _mm512_mask_storeu_epi64(dst + i, k, _mm512_or_si512(vd, vs));
  }
}

#endif  // __AVX512BW__

}  // namespace bitflow::simd::inl
