// Runtime CPU feature detection: the "hardware detector" component of the
// vector execution scheduler (paper Sec. III-B, Fig. 4).
#pragma once

#include <string>

#include "simd/isa.hpp"

namespace bitflow::simd {

/// x86 vector features relevant to BitFlow's kernels.
struct CpuFeatures {
  bool popcnt = false;        ///< hardware POPCNT instruction
  bool sse42 = false;         ///< SSE4.2 (implies SSE2/SSSE3 baseline we use)
  bool avx2 = false;          ///< AVX2 256-bit integer ops
  bool fma = false;           ///< FMA3 (used by the float sgemm baseline)
  bool avx512f = false;       ///< AVX-512 foundation
  bool avx512bw = false;      ///< AVX-512 byte/word ops (nibble-LUT popcount)
  bool avx512vl = false;      ///< AVX-512 vector-length extensions
  bool avx512vpopcntdq = false;  ///< native vpopcntq (Table I popcnt_epi64)

  /// Widest ISA level whose kernels this CPU can execute.
  [[nodiscard]] IsaLevel best_isa() const noexcept {
    if (avx512f && avx512bw) return IsaLevel::kAvx512;
    if (avx2) return IsaLevel::kAvx2;
    if (sse42 && popcnt) return IsaLevel::kSse;
    return IsaLevel::kU64;
  }

  /// True when kernels at `isa` can run on this CPU.
  [[nodiscard]] bool supports(IsaLevel isa) const noexcept {
    switch (isa) {
      case IsaLevel::kU64: return true;
      case IsaLevel::kSse: return sse42 && popcnt;
      case IsaLevel::kAvx2: return avx2;
      case IsaLevel::kAvx512: return avx512f && avx512bw;
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Detects the features of the executing CPU (cached after the first call).
const CpuFeatures& cpu_features();

}  // namespace bitflow::simd
