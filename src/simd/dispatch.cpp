#include <stdexcept>

#include "simd/bitops.hpp"

namespace bitflow::simd {

XorPopcountFn xor_popcount_fn(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kU64: return &xor_popcount_u64;
    case IsaLevel::kSse: return &xor_popcount_sse;
    case IsaLevel::kAvx2: return &xor_popcount_avx2;
    case IsaLevel::kAvx512: return &xor_popcount_avx512;
  }
  throw std::invalid_argument("xor_popcount_fn: bad ISA level");
}

OrAccumulateFn or_accumulate_fn(IsaLevel isa) {
  switch (isa) {
    case IsaLevel::kU64: return &or_accumulate_u64;
    case IsaLevel::kSse: return &or_accumulate_sse;
    case IsaLevel::kAvx2: return &or_accumulate_avx2;
    case IsaLevel::kAvx512: return &or_accumulate_avx512;
  }
  throw std::invalid_argument("or_accumulate_fn: bad ISA level");
}

}  // namespace bitflow::simd
