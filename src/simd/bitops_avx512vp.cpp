// AVX-512 dispatch wrappers, VPOPCNTDQ half: compiled with
// -mavx512vpopcntdq so the shared inline loops emit the native
// _mm512_popcnt_epi64 / _mm512_maskz_popcnt_epi64 of Table I.
#include "simd/bitops_inline.hpp"

#include <cstdint>

namespace bitflow::simd::detail {

std::uint64_t xor_popcount_avx512_vpopcnt(const std::uint64_t* a, const std::uint64_t* b,
                                          std::int64_t n) {
  return inl::xor_popcount_avx512(a, b, n);
}

}  // namespace bitflow::simd::detail
