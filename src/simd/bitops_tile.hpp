// Register-tiled xor+popcount accumulators for the interleaved weight
// layout (YFlows-style activation-stationary dataflow, daBNN-style
// finalize-time weight re-layout).
//
// A TileAcc holds kWidth per-filter popcount counters that live in registers
// for the whole filter-block word loop: accumulate(a, f) broadcasts one
// activation word against kWidth *contiguous* filter words (one interleaved
// tile row, at most one cache line) and adds the kWidth xor+popcounts into
// the counters; reduce() spills them exactly once per filter block.  This is
// the dual of bitops_inline.hpp's word-run primitives: there the activation
// run streams against one filter, here one activation word fans out across a
// tile of filters.
//
// Like bitops_inline.hpp, this is a SIMD implementation header: the bodies
// lower to whatever ISA the including translation unit enables, so only the
// per-ISA kernel TUs may include it (enforced by tools/check_isa_hygiene.py).
#pragma once

#include <cstdint>

#if defined(__SSE4_2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "simd/bitops_inline.hpp"

namespace bitflow::simd::inl {

/// 4-filter tile in four independent scalar 64-bit lanes (u64 and SSE
/// kernels: hardware popcnt has no vector form below AVX-512VPOPCNTDQ, so
/// four parallel dependency chains are the widest profitable tile).
struct TileAcc4Scalar {
  static constexpr std::int64_t kWidth = 4;
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    c0 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[0]));
    c1 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[1]));
    c2 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[2]));
    c3 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[3]));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    out[0] = c0;
    out[1] = c1;
    out[2] = c2;
    out[3] = c3;
  }
};

/// 8-filter tile in eight scalar popcnt chains.  Wider than the port count
/// of any x86 core, so whether it beats TileAcc4Scalar depends on how much
/// the loop bottlenecks on the activation reload instead — exactly the kind
/// of question the finalize-time auto-tuner answers by measuring, which is
/// why both widths are candidates on the scalar/SSE paths.
struct TileAcc8Scalar {
  static constexpr std::int64_t kWidth = 8;
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0, c4 = 0, c5 = 0, c6 = 0, c7 = 0;

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    c0 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[0]));
    c1 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[1]));
    c2 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[2]));
    c3 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[3]));
    c4 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[4]));
    c5 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[5]));
    c6 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[6]));
    c7 += static_cast<std::uint64_t>(__builtin_popcountll(a ^ f[7]));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    out[0] = c0;
    out[1] = c1;
    out[2] = c2;
    out[3] = c3;
    out[4] = c4;
    out[5] = c5;
    out[6] = c6;
    out[7] = c7;
  }
};

#ifdef __AVX2__

/// 8-filter tile in two 256-bit qword accumulators: one broadcast activation
/// word is XORed against 8 contiguous filter words, per-byte LUT popcounts
/// fold to qwords via vpsadbw, and the adds stay vertical — no horizontal
/// reduction until the filter block ends.
struct TileAcc8Avx2 {
  static constexpr std::int64_t kWidth = 8;
  __m256i lo = _mm256_setzero_si256();
  __m256i hi = _mm256_setzero_si256();

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    const __m256i va = _mm256_set1_epi64x(static_cast<long long>(a));
    const __m256i f0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f));
    const __m256i f1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f + 4));
    lo = _mm256_add_epi64(
        lo, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f0)),
                            _mm256_setzero_si256()));
    hi = _mm256_add_epi64(
        hi, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f1)),
                            _mm256_setzero_si256()));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), hi);
  }
};

/// 16-filter tile in four 256-bit qword accumulators: same vertical
/// popcount-and-add scheme as TileAcc8Avx2 over twice the filter fan-out.
/// Doubles the activation-word reuse at the cost of four live accumulator
/// registers — whether that wins over T = 8 depends on the layer's word
/// count per filter, which is what the auto-tuner measures.
struct TileAcc16Avx2 {
  static constexpr std::int64_t kWidth = 16;
  __m256i c0 = _mm256_setzero_si256();
  __m256i c1 = _mm256_setzero_si256();
  __m256i c2 = _mm256_setzero_si256();
  __m256i c3 = _mm256_setzero_si256();

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    const __m256i va = _mm256_set1_epi64x(static_cast<long long>(a));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i f0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f));
    const __m256i f1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f + 4));
    const __m256i f2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f + 8));
    const __m256i f3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(f + 12));
    c0 = _mm256_add_epi64(
        c0, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f0)), zero));
    c1 = _mm256_add_epi64(
        c1, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f1)), zero));
    c2 = _mm256_add_epi64(
        c2, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f2)), zero));
    c3 = _mm256_add_epi64(
        c3, _mm256_sad_epu8(popcount_bytes_256(_mm256_xor_si256(va, f3)), zero));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), c0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), c1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), c2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 12), c3);
  }
};

#endif  // __AVX2__

#ifdef __AVX512BW__

/// 8-filter tile in one 512-bit qword accumulator: the 8 interleaved filter
/// words of a tile row are exactly one aligned cache line, so accumulate()
/// is broadcast + load + xor + popcount_epi64 + add — popcount_epi64_512
/// picks native VPOPCNTDQ or the byte-LUT lowering by the TU's -m flags.
struct TileAcc8Avx512 {
  static constexpr std::int64_t kWidth = 8;
  __m512i acc = _mm512_setzero_si512();

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    const __m512i va = _mm512_set1_epi64(static_cast<long long>(a));
    const __m512i vf = _mm512_loadu_si512(f);
    acc = _mm512_add_epi64(acc, popcount_epi64_512(_mm512_xor_si512(va, vf)));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    _mm512_storeu_si512(out, acc);
  }
};

/// 16-filter tile in two 512-bit qword accumulators: one broadcast against
/// two cache lines of interleaved filter words.  Twice the activation reuse
/// of TileAcc8Avx512 per broadcast; the tuner decides per shape whether the
/// extra live registers pay off.
struct TileAcc16Avx512 {
  static constexpr std::int64_t kWidth = 16;
  __m512i lo = _mm512_setzero_si512();
  __m512i hi = _mm512_setzero_si512();

  inline void accumulate(std::uint64_t a, const std::uint64_t* f) noexcept {
    const __m512i va = _mm512_set1_epi64(static_cast<long long>(a));
    const __m512i f0 = _mm512_loadu_si512(f);
    const __m512i f1 = _mm512_loadu_si512(f + 8);
    lo = _mm512_add_epi64(lo, popcount_epi64_512(_mm512_xor_si512(va, f0)));
    hi = _mm512_add_epi64(hi, popcount_epi64_512(_mm512_xor_si512(va, f1)));
  }

  inline void reduce(std::uint64_t* out) const noexcept {
    _mm512_storeu_si512(out, lo);
    _mm512_storeu_si512(out + 8, hi);
  }
};

#endif  // __AVX512BW__

}  // namespace bitflow::simd::inl
