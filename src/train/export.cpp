#include "train/export.hpp"

#include "bitpack/packer.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace bitflow::train {

namespace {

constexpr float kAlwaysOne = -1e30f;   // threshold that every dot passes
constexpr float kAlwaysZero = 1e30f;   // threshold that no dot passes

float sign_pm1(float x) { return x >= 0.0f ? 1.0f : -1.0f; }

/// Folds a BatchNorm's inference statistics into per-channel thresholds and
/// a per-channel weight-flip flag.
void fold_batchnorm(const BatchNorm& bn, std::vector<float>& thresholds,
                    std::vector<bool>& flip) {
  const std::size_t c = bn.gamma().size();
  thresholds.resize(c);
  flip.assign(c, false);
  for (std::size_t k = 0; k < c; ++k) {
    const float gamma = bn.gamma()[k];
    const float beta = bn.beta()[k];
    const float mu = bn.running_mean()[k];
    const float s = std::sqrt(bn.running_var()[k] + bn.eps());
    if (gamma > 0.0f) {
      thresholds[k] = mu - beta * s / gamma;
    } else if (gamma < 0.0f) {
      flip[k] = true;
      thresholds[k] = -(mu - beta * s / gamma);
    } else {
      // Degenerate: BN output is the constant beta.
      thresholds[k] = beta >= 0.0f ? kAlwaysOne : kAlwaysZero;
    }
  }
}

}  // namespace

io::Model export_to_model(const Sequential& model) {
  const Dims input = model.in_dims();
  io::Model out(graph::TensorDesc{input.h, input.w, input.c});
  std::size_t i = 0;
  const std::size_t n = model.num_layers();

  // Leading sign = engine input packing.  A model may instead start
  // directly with a *float-weight* convolution (full-precision first layer,
  // the accuracy-recovery variant): the engine then consumes raw floats.
  bool first_layer_float = false;
  if (n == 0) throw std::invalid_argument("export: empty model");
  if (dynamic_cast<const SignAct*>(&model.layer(0)) != nullptr) {
    ++i;
  } else if (const auto* c0 = dynamic_cast<const Conv2d*>(&model.layer(0));
             c0 != nullptr && !c0->binary_weights()) {
    first_layer_float = true;
  } else {
    throw std::invalid_argument(
        "export: model must start with a sign activation or a full-precision conv");
  }

  int conv_idx = 0, fc_idx = 0;
  while (i < n) {
    if (const auto* conv = dynamic_cast<const Conv2d*>(&model.layer(i))) {
      const bool is_float_first = first_layer_float && i == 0;
      if (!conv->binary_weights() && !is_float_first) {
        throw std::invalid_argument(
            "export: only the first conv may keep full-precision weights");
      }
      const bool is_last = (i + 1 == n);
      std::vector<float> thresholds;
      std::vector<bool> flip;
      if (!is_last) {
        const auto* bn = i + 1 < n ? dynamic_cast<const BatchNorm*>(&model.layer(i + 1)) : nullptr;
        const auto* sg = i + 2 < n ? dynamic_cast<const SignAct*>(&model.layer(i + 2)) : nullptr;
        if (bn == nullptr || sg == nullptr) {
          throw std::invalid_argument("export: conv must be followed by batchnorm + sign");
        }
        fold_batchnorm(*bn, thresholds, flip);
      }
      // Materialize the exported weights, applying per-filter flips: +-1
      // signs for binary convs, the raw floats for the full-precision first
      // layer (flipping negates the float weights; the dot negates with
      // them, so the same threshold trick applies).
      const Dims din = conv->in_dims();
      const std::int64_t k_count = conv->out_dims().c;
      FilterBank fb(k_count, conv->kernel(), conv->kernel(), din.c);
      const std::vector<float>& latent = conv->weights();
      const std::int64_t per_filter = conv->kernel() * conv->kernel() * din.c;
      for (std::int64_t k = 0; k < k_count; ++k) {
        const float flip_mul =
            (!flip.empty() && flip[static_cast<std::size_t>(k)]) ? -1.0f : 1.0f;
        for (std::int64_t e = 0; e < per_filter; ++e) {
          const float w = latent[static_cast<std::size_t>(k * per_filter + e)];
          fb.elements()[static_cast<std::size_t>(k * per_filter + e)] =
              flip_mul * (is_float_first ? w : sign_pm1(w));
        }
      }
      if (is_float_first) {
        out.add_conv_float("conv" + std::to_string(++conv_idx), std::move(fb),
                           conv->stride(), conv->pad(), std::move(thresholds));
      } else {
        out.add_conv("conv" + std::to_string(++conv_idx), bitpack::pack_filters(fb),
                     conv->stride(), conv->pad(), std::move(thresholds));
      }
      i += is_last ? 1 : 3;
    } else if (const auto* fc = dynamic_cast<const Fc*>(&model.layer(i))) {
      if (!fc->binary_weights()) {
        throw std::invalid_argument("export: fc layers must have binary weights");
      }
      const bool is_last = (i + 1 == n);
      std::vector<float> thresholds;
      std::vector<bool> flip;
      if (!is_last) {
        const auto* bn = i + 1 < n ? dynamic_cast<const BatchNorm*>(&model.layer(i + 1)) : nullptr;
        const auto* sg = i + 2 < n ? dynamic_cast<const SignAct*>(&model.layer(i + 2)) : nullptr;
        if (bn == nullptr || sg == nullptr) {
          throw std::invalid_argument("export: fc must be followed by batchnorm + sign");
        }
        fold_batchnorm(*bn, thresholds, flip);
      }
      const std::int64_t nn = fc->in_dims().size();
      const std::int64_t kk = fc->out_dims().size();
      std::vector<float> w(static_cast<std::size_t>(nn * kk));
      const std::vector<float>& latent = fc->weights();
      for (std::int64_t r = 0; r < nn; ++r) {
        for (std::int64_t k = 0; k < kk; ++k) {
          const float flip_mul =
              (!flip.empty() && flip[static_cast<std::size_t>(k)]) ? -1.0f : 1.0f;
          w[static_cast<std::size_t>(r * kk + k)] =
              flip_mul * sign_pm1(latent[static_cast<std::size_t>(r * kk + k)]);
        }
      }
      out.add_fc("fc" + std::to_string(++fc_idx),
                 bitpack::pack_transpose_fc_weights(w.data(), nn, kk), std::move(thresholds));
      i += is_last ? 1 : 3;
    } else if (dynamic_cast<const Flatten*>(&model.layer(i)) != nullptr) {
      ++i;  // the engine flattens implicitly at the conv/pool -> fc boundary
    } else if (const auto* pool = dynamic_cast<const MaxPool*>(&model.layer(i))) {
      out.add_maxpool("pool" + std::to_string(conv_idx),
                      kernels::PoolSpec{pool->pool(), pool->pool(), pool->stride()});
      ++i;
    } else {
      throw std::invalid_argument("export: unexpected layer '" + model.layer(i).name() +
                                  "' at position " + std::to_string(i));
    }
  }
  return out;
}

graph::BinaryNetwork export_to_engine(const Sequential& model, graph::NetworkConfig cfg) {
  return export_to_model(model).instantiate(cfg);
}

}  // namespace bitflow::train
