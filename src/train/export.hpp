// Lowering a trained binarized classifier into the BitFlow inference engine.
//
// A make_binary_cnn() stack has the canonical BinaryNet structure
//   sign -> [conv(bin) -> batchnorm -> sign -> (pool)]* -> [fc(bin) ->
//   batchnorm -> sign]* -> fc(bin)
// which maps 1:1 onto a graph::BinaryNetwork:
//   * the leading sign is the engine's input packing;
//   * each conv/fc's batch-norm + sign folds into a per-channel threshold:
//       sign(gamma*(dot - mu)/s + beta)  with  s = sqrt(var + eps)
//     is  dot >= mu - beta*s/gamma          when gamma > 0,
//     and dot <= mu - beta*s/gamma          when gamma < 0 — realized by
//     flipping that filter's weight signs and negating the threshold
//     (flipping every weight bit negates the Eq. 1 dot);
//     gamma == 0 collapses to the constant sign(beta) (threshold -+inf);
//   * max pooling of +-1 activations is exactly the engine's OR pooling;
//   * the final fc emits raw Eq. 1 dots — identical to the float logits the
//     training graph computes with +-1 operands.
// The exported network is therefore *prediction-identical* to the training
// graph in inference mode, which tests/export_test.cpp asserts sample by
// sample.
#pragma once

#include <cstdint>

#include "graph/network.hpp"
#include "io/model.hpp"
#include "train/sequential.hpp"

namespace bitflow::train {

/// Lowers `model` (a binarized stack in the canonical structure above) into
/// a serializable io::Model with bit-packed weights and folded thresholds.
/// Throws std::invalid_argument if the stack does not match the expected
/// structure.
[[nodiscard]] io::Model export_to_model(const Sequential& model);

/// Convenience: export_to_model() + instantiate a finalized engine network.
[[nodiscard]] graph::BinaryNetwork export_to_engine(const Sequential& model,
                                                    graph::NetworkConfig cfg);

}  // namespace bitflow::train
