#include "train/layers.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace bitflow::train {

namespace {

/// Glorot-uniform initialization.
void init_weights(std::vector<float>& w, std::int64_t fan_in, std::int64_t fan_out,
                  std::uint64_t seed) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-limit, limit);
  for (float& v : w) v = dist(rng);
}

/// SGD + momentum + gradient zeroing; optionally clips parameters to
/// [-1, 1] (latent weights of binarized layers, per BinaryConnect).
void sgd_step(std::vector<float>& w, std::vector<float>& dw, std::vector<float>& vw, float lr,
              float momentum, bool clip) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    vw[i] = momentum * vw[i] - lr * dw[i];
    w[i] += vw[i];
    if (clip) w[i] = std::clamp(w[i], -1.0f, 1.0f);
    dw[i] = 0.0f;
  }
}

float sign_pm1(float x) { return x >= 0.0f ? 1.0f : -1.0f; }

}  // namespace

// --- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(Dims in, std::int64_t out_c, std::int64_t kernel, std::int64_t stride,
               std::int64_t pad, bool binary_weights, std::uint64_t seed, float pad_value)
    : in_(in),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      binary_(binary_weights),
      pad_value_(pad_value) {
  const std::int64_t oh = (in.h + 2 * pad - kernel) / stride + 1;
  const std::int64_t ow = (in.w + 2 * pad - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("Conv2d: kernel does not fit");
  out_ = {oh, ow, out_c};
  const std::size_t n_params = static_cast<std::size_t>(out_c * kernel * kernel * in.c);
  w_.resize(n_params);
  dw_.assign(n_params, 0.0f);
  vw_.assign(n_params, 0.0f);
  init_weights(w_, kernel * kernel * in.c, kernel * kernel * out_c, seed);
  w_eff_.resize(n_params);
}

void Conv2d::materialize_weights() {
  if (binary_) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_eff_[i] = sign_pm1(w_[i]);
  } else {
    w_eff_ = w_;
  }
}

const std::vector<float>& Conv2d::forward(const std::vector<float>& x, int batch, bool) {
  materialize_weights();
  x_cache_ = x;
  cached_batch_ = batch;
  y_.assign(static_cast<std::size_t>(batch) * static_cast<std::size_t>(out_.size()), 0.0f);
  const std::int64_t H = in_.h, W = in_.w, C = in_.c;
  const std::int64_t OH = out_.h, OW = out_.w, K = out_.c;
  for (int b = 0; b < batch; ++b) {
    const float* xb = x.data() + static_cast<std::int64_t>(b) * in_.size();
    float* yb = y_.data() + static_cast<std::int64_t>(b) * out_.size();
    for (std::int64_t oy = 0; oy < OH; ++oy) {
      for (std::int64_t ox = 0; ox < OW; ++ox) {
        for (std::int64_t k = 0; k < K; ++k) {
          float acc = 0.0f;
          const float* wk = w_eff_.data() + k * k_ * k_ * C;
          for (std::int64_t i = 0; i < k_; ++i) {
            const std::int64_t iy = oy * stride_ + i - pad_;
            for (std::int64_t j = 0; j < k_; ++j) {
              const std::int64_t ix = ox * stride_ + j - pad_;
              const float* wt = wk + (i * k_ + j) * C;
              if (iy >= 0 && iy < H && ix >= 0 && ix < W) {
                const float* px = xb + (iy * W + ix) * C;
                for (std::int64_t c = 0; c < C; ++c) acc += px[c] * wt[c];
              } else if (pad_value_ != 0.0f) {
                for (std::int64_t c = 0; c < C; ++c) acc += pad_value_ * wt[c];
              }
            }
          }
          yb[(oy * OW + ox) * K + k] = acc;
        }
      }
    }
  }
  return y_;
}

std::vector<float> Conv2d::backward(const std::vector<float>& grad_out, int batch) {
  std::vector<float> dx(static_cast<std::size_t>(batch) * static_cast<std::size_t>(in_.size()),
                        0.0f);
  const std::int64_t H = in_.h, W = in_.w, C = in_.c;
  const std::int64_t OH = out_.h, OW = out_.w, K = out_.c;
  for (int b = 0; b < batch; ++b) {
    const float* xb = x_cache_.data() + static_cast<std::int64_t>(b) * in_.size();
    const float* gb = grad_out.data() + static_cast<std::int64_t>(b) * out_.size();
    float* dxb = dx.data() + static_cast<std::int64_t>(b) * in_.size();
    for (std::int64_t oy = 0; oy < OH; ++oy) {
      for (std::int64_t ox = 0; ox < OW; ++ox) {
        for (std::int64_t k = 0; k < K; ++k) {
          const float g = gb[(oy * OW + ox) * K + k];
          if (g == 0.0f) continue;
          const float* wk = w_eff_.data() + k * k_ * k_ * C;
          float* dwk = dw_.data() + k * k_ * k_ * C;
          for (std::int64_t i = 0; i < k_; ++i) {
            const std::int64_t iy = oy * stride_ + i - pad_;
            for (std::int64_t j = 0; j < k_; ++j) {
              const std::int64_t ix = ox * stride_ + j - pad_;
              const float* wt = wk + (i * k_ + j) * C;
              float* dwt = dwk + (i * k_ + j) * C;
              if (iy >= 0 && iy < H && ix >= 0 && ix < W) {
                const float* px = xb + (iy * W + ix) * C;
                float* dpx = dxb + (iy * W + ix) * C;
                for (std::int64_t c = 0; c < C; ++c) {
                  dwt[c] += px[c] * g;
                  dpx[c] += wt[c] * g;
                }
              } else if (pad_value_ != 0.0f) {
                for (std::int64_t c = 0; c < C; ++c) dwt[c] += pad_value_ * g;
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::step(float lr, float momentum) { sgd_step(w_, dw_, vw_, lr, momentum, binary_); }

// --- Fc ----------------------------------------------------------------------

Fc::Fc(std::int64_t n, std::int64_t k, bool binary_weights, std::uint64_t seed)
    : n_(n), k_(k), binary_(binary_weights) {
  const std::size_t n_params = static_cast<std::size_t>(n * k);
  w_.resize(n_params);
  dw_.assign(n_params, 0.0f);
  vw_.assign(n_params, 0.0f);
  init_weights(w_, n, k, seed);
  w_eff_.resize(n_params);
}

void Fc::materialize_weights() {
  if (binary_) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_eff_[i] = sign_pm1(w_[i]);
  } else {
    w_eff_ = w_;
  }
}

const std::vector<float>& Fc::forward(const std::vector<float>& x, int batch, bool) {
  materialize_weights();
  x_cache_ = x;
  cached_batch_ = batch;
  y_.assign(static_cast<std::size_t>(batch) * static_cast<std::size_t>(k_), 0.0f);
  for (int b = 0; b < batch; ++b) {
    const float* xb = x.data() + static_cast<std::int64_t>(b) * n_;
    float* yb = y_.data() + static_cast<std::int64_t>(b) * k_;
    for (std::int64_t n = 0; n < n_; ++n) {
      const float xv = xb[n];
      if (xv == 0.0f) continue;
      const float* wr = w_eff_.data() + n * k_;
      for (std::int64_t k = 0; k < k_; ++k) yb[k] += xv * wr[k];
    }
  }
  return y_;
}

std::vector<float> Fc::backward(const std::vector<float>& grad_out, int batch) {
  std::vector<float> dx(static_cast<std::size_t>(batch) * static_cast<std::size_t>(n_), 0.0f);
  for (int b = 0; b < batch; ++b) {
    const float* xb = x_cache_.data() + static_cast<std::int64_t>(b) * n_;
    const float* gb = grad_out.data() + static_cast<std::int64_t>(b) * k_;
    float* dxb = dx.data() + static_cast<std::int64_t>(b) * n_;
    for (std::int64_t n = 0; n < n_; ++n) {
      const float* wr = w_eff_.data() + n * k_;
      float* dwr = dw_.data() + n * k_;
      const float xv = xb[n];
      float acc = 0.0f;
      for (std::int64_t k = 0; k < k_; ++k) {
        dwr[k] += xv * gb[k];
        acc += wr[k] * gb[k];
      }
      dxb[n] = acc;
    }
  }
  return dx;
}

void Fc::step(float lr, float momentum) { sgd_step(w_, dw_, vw_, lr, momentum, binary_); }

// --- SignAct -------------------------------------------------------------------

const std::vector<float>& SignAct::forward(const std::vector<float>& x, int, bool) {
  x_cache_ = x;
  y_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y_[i] = sign_pm1(x[i]);
  return y_;
}

std::vector<float> SignAct::backward(const std::vector<float>& grad_out, int) {
  std::vector<float> dx(grad_out.size());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    // Straight-through estimator with the hard-tanh window.
    dx[i] = std::abs(x_cache_[i]) <= 1.0f ? grad_out[i] : 0.0f;
  }
  return dx;
}

// --- Relu ---------------------------------------------------------------------

const std::vector<float>& Relu::forward(const std::vector<float>& x, int, bool) {
  y_.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y_[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return y_;
}

std::vector<float> Relu::backward(const std::vector<float>& grad_out, int) {
  std::vector<float> dx(grad_out.size());
  for (std::size_t i = 0; i < grad_out.size(); ++i) dx[i] = y_[i] > 0.0f ? grad_out[i] : 0.0f;
  return dx;
}

// --- MaxPool -------------------------------------------------------------------

MaxPool::MaxPool(Dims in, std::int64_t pool, std::int64_t stride)
    : in_(in), pool_(pool), stride_(stride) {
  const std::int64_t oh = (in.h - pool) / stride + 1;
  const std::int64_t ow = (in.w - pool) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("MaxPool: window does not fit");
  out_ = {oh, ow, in.c};
}

const std::vector<float>& MaxPool::forward(const std::vector<float>& x, int batch, bool) {
  y_.resize(static_cast<std::size_t>(batch) * static_cast<std::size_t>(out_.size()));
  argmax_.resize(y_.size());
  const std::int64_t W = in_.w, C = in_.c;
  for (int b = 0; b < batch; ++b) {
    const float* xb = x.data() + static_cast<std::int64_t>(b) * in_.size();
    const std::int64_t out_base = static_cast<std::int64_t>(b) * out_.size();
    for (std::int64_t oy = 0; oy < out_.h; ++oy) {
      for (std::int64_t ox = 0; ox < out_.w; ++ox) {
        for (std::int64_t c = 0; c < C; ++c) {
          float best = -1e30f;
          std::int64_t best_idx = 0;
          for (std::int64_t i = 0; i < pool_; ++i) {
            for (std::int64_t j = 0; j < pool_; ++j) {
              const std::int64_t idx =
                  ((oy * stride_ + i) * W + (ox * stride_ + j)) * C + c;
              if (xb[idx] > best) {
                best = xb[idx];
                best_idx = idx;
              }
            }
          }
          const std::int64_t o = out_base + (oy * out_.w + ox) * C + c;
          y_[static_cast<std::size_t>(o)] = best;
          argmax_[static_cast<std::size_t>(o)] =
              static_cast<std::int64_t>(b) * in_.size() + best_idx;
        }
      }
    }
  }
  return y_;
}

std::vector<float> MaxPool::backward(const std::vector<float>& grad_out, int batch) {
  std::vector<float> dx(static_cast<std::size_t>(batch) * static_cast<std::size_t>(in_.size()),
                        0.0f);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    dx[static_cast<std::size_t>(argmax_[i])] += grad_out[i];
  }
  return dx;
}

// --- Flatten -------------------------------------------------------------------

const std::vector<float>& Flatten::forward(const std::vector<float>& x, int, bool) {
  y_ = x;
  return y_;
}

std::vector<float> Flatten::backward(const std::vector<float>& grad_out, int) {
  return grad_out;
}

// --- BatchNorm ------------------------------------------------------------------

BatchNorm::BatchNorm(Dims d, float momentum, float eps)
    : d_(d), bn_momentum_(momentum), eps_(eps) {
  const std::size_t c = static_cast<std::size_t>(d.c);
  gamma_.assign(c, 1.0f);
  beta_.assign(c, 0.0f);
  dgamma_.assign(c, 0.0f);
  dbeta_.assign(c, 0.0f);
  vgamma_.assign(c, 0.0f);
  vbeta_.assign(c, 0.0f);
  run_mean_.assign(c, 0.0f);
  run_var_.assign(c, 1.0f);
}

const std::vector<float>& BatchNorm::forward(const std::vector<float>& x, int batch,
                                             bool training) {
  const std::int64_t C = d_.c;
  const std::int64_t spatial = d_.h * d_.w;
  const std::int64_t n = static_cast<std::int64_t>(batch) * spatial;  // samples per channel
  cached_batch_ = batch;
  y_.resize(x.size());
  xhat_.resize(x.size());
  mean_.assign(static_cast<std::size_t>(C), 0.0f);
  inv_std_.assign(static_cast<std::size_t>(C), 0.0f);

  std::vector<float> var(static_cast<std::size_t>(C), 0.0f);
  if (training) {
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(x.size()); ++i) {
      mean_[static_cast<std::size_t>(i % C)] += x[static_cast<std::size_t>(i)];
    }
    for (std::int64_t c = 0; c < C; ++c) mean_[static_cast<std::size_t>(c)] /= static_cast<float>(n);
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(x.size()); ++i) {
      const float d = x[static_cast<std::size_t>(i)] - mean_[static_cast<std::size_t>(i % C)];
      var[static_cast<std::size_t>(i % C)] += d * d;
    }
    for (std::int64_t c = 0; c < C; ++c) {
      var[static_cast<std::size_t>(c)] /= static_cast<float>(n);
      run_mean_[static_cast<std::size_t>(c)] =
          bn_momentum_ * run_mean_[static_cast<std::size_t>(c)] +
          (1.0f - bn_momentum_) * mean_[static_cast<std::size_t>(c)];
      run_var_[static_cast<std::size_t>(c)] =
          bn_momentum_ * run_var_[static_cast<std::size_t>(c)] +
          (1.0f - bn_momentum_) * var[static_cast<std::size_t>(c)];
    }
  } else {
    mean_ = run_mean_;
    var = run_var_;
  }
  for (std::int64_t c = 0; c < C; ++c) {
    inv_std_[static_cast<std::size_t>(c)] =
        1.0f / std::sqrt(var[static_cast<std::size_t>(c)] + eps_);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t c = i % static_cast<std::size_t>(C);
    xhat_[i] = (x[i] - mean_[c]) * inv_std_[c];
    y_[i] = gamma_[c] * xhat_[i] + beta_[c];
  }
  return y_;
}

std::vector<float> BatchNorm::backward(const std::vector<float>& grad_out, int batch) {
  const std::int64_t C = d_.c;
  const float n = static_cast<float>(static_cast<std::int64_t>(batch) * d_.h * d_.w);
  std::vector<float> sum_dy(static_cast<std::size_t>(C), 0.0f);
  std::vector<float> sum_dy_xhat(static_cast<std::size_t>(C), 0.0f);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const std::size_t c = i % static_cast<std::size_t>(C);
    sum_dy[c] += grad_out[i];
    sum_dy_xhat[c] += grad_out[i] * xhat_[i];
  }
  for (std::int64_t c = 0; c < C; ++c) {
    dgamma_[static_cast<std::size_t>(c)] += sum_dy_xhat[static_cast<std::size_t>(c)];
    dbeta_[static_cast<std::size_t>(c)] += sum_dy[static_cast<std::size_t>(c)];
  }
  std::vector<float> dx(grad_out.size());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const std::size_t c = i % static_cast<std::size_t>(C);
    dx[i] = (gamma_[c] * inv_std_[c] / n) *
            (n * grad_out[i] - sum_dy[c] - xhat_[i] * sum_dy_xhat[c]);
  }
  return dx;
}

void BatchNorm::step(float lr, float momentum) {
  sgd_step(gamma_, dgamma_, vgamma_, lr, momentum, false);
  sgd_step(beta_, dbeta_, vbeta_, lr, momentum, false);
}

}  // namespace bitflow::train
