#include "train/sequential.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <random>
#include <stdexcept>

namespace bitflow::train {

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layers_.empty() && !(layers_.back()->out_dims() == layer->in_dims())) {
    throw std::invalid_argument("Sequential: dims mismatch adding " + layer->name());
  }
  layers_.push_back(std::move(layer));
}

Dims Sequential::in_dims() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty");
  return layers_.front()->in_dims();
}

Dims Sequential::out_dims() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty");
  return layers_.back()->out_dims();
}

const std::vector<float>& Sequential::forward(const std::vector<float>& x, int batch,
                                              bool training) {
  const std::vector<float>* cur = &x;
  for (auto& l : layers_) cur = &l->forward(*cur, batch, training);
  last_out_ = cur;
  return *cur;
}

void Sequential::backward(const std::vector<float>& grad_logits, int batch) {
  std::vector<float> grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad, batch);
  }
}

void Sequential::step(float lr, float momentum) {
  for (auto& l : layers_) l->step(lr, momentum);
}

float softmax_cross_entropy(const std::vector<float>& logits, const std::vector<int>& labels,
                            int batch, int classes, std::vector<float>& grad) {
  grad.assign(logits.size(), 0.0f);
  float loss = 0.0f;
  for (int b = 0; b < batch; ++b) {
    const float* lb = logits.data() + static_cast<std::size_t>(b) * classes;
    float* gb = grad.data() + static_cast<std::size_t>(b) * classes;
    const float mx = *std::max_element(lb, lb + classes);
    float denom = 0.0f;
    for (int c = 0; c < classes; ++c) denom += std::exp(lb[c] - mx);
    const int y = labels[static_cast<std::size_t>(b)];
    loss -= (lb[y] - mx) - std::log(denom);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (int c = 0; c < classes; ++c) {
      const float p = std::exp(lb[c] - mx) / denom;
      gb[c] = (p - (c == y ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  return loss / static_cast<float>(batch);
}

float train_classifier(Sequential& model, const data::Dataset& ds, const TrainConfig& cfg) {
  const int n = static_cast<int>(ds.size());
  const std::int64_t in_size = model.in_dims().size();
  const int classes = static_cast<int>(model.out_dims().size());
  if (ds.num_classes > classes) throw std::invalid_argument("train: too few output units");

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(cfg.shuffle_seed);

  float lr = cfg.lr;
  float epoch_loss = 0.0f;
  std::vector<float> batch_x;
  std::vector<int> batch_y;
  std::vector<float> grad;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    epoch_loss = 0.0f;
    int batches = 0;
    for (int start = 0; start + cfg.batch_size <= n; start += cfg.batch_size) {
      const int bs = cfg.batch_size;
      batch_x.assign(static_cast<std::size_t>(bs) * static_cast<std::size_t>(in_size), 0.0f);
      batch_y.resize(static_cast<std::size_t>(bs));
      for (int b = 0; b < bs; ++b) {
        const int idx = order[static_cast<std::size_t>(start + b)];
        const Tensor& img = ds.images[static_cast<std::size_t>(idx)];
        std::copy(img.data(), img.data() + in_size,
                  batch_x.begin() + static_cast<std::int64_t>(b) * in_size);
        batch_y[static_cast<std::size_t>(b)] = ds.labels[static_cast<std::size_t>(idx)];
      }
      const std::vector<float>& logits = model.forward(batch_x, bs, /*training=*/true);
      epoch_loss += softmax_cross_entropy(logits, batch_y, bs, classes, grad);
      model.backward(grad, bs);
      model.step(lr, cfg.momentum);
      ++batches;
    }
    if (batches > 0) epoch_loss /= static_cast<float>(batches);
    lr *= cfg.lr_decay;
    if (cfg.verbose) {
      std::fprintf(stderr, "epoch %d: loss %.4f\n", epoch + 1, static_cast<double>(epoch_loss));
    }
  }
  return epoch_loss;
}

float evaluate(Sequential& model, const data::Dataset& ds) {
  int correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (predict(model, ds.images[i]) == ds.labels[i]) ++correct;
  }
  return ds.size() == 0 ? 0.0f : static_cast<float>(correct) / static_cast<float>(ds.size());
}

int predict(Sequential& model, const Tensor& image) {
  const std::int64_t in_size = model.in_dims().size();
  std::vector<float> x(image.data(), image.data() + in_size);
  const std::vector<float>& logits = model.forward(x, 1, /*training=*/false);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace bitflow::train
