// Sequential container + softmax cross-entropy loss + SGD training loop.
#pragma once

#include <memory>
#include <vector>

#include "data/synthetic.hpp"
#include "train/layers.hpp"

namespace bitflow::train {

/// A stack of layers trained end to end.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; its in_dims must match the current output dims.
  void add(std::unique_ptr<Layer> layer);

  [[nodiscard]] Dims in_dims() const;
  [[nodiscard]] Dims out_dims() const;
  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Forward over a batch; returns the logits (batch x out_dims().size()).
  const std::vector<float>& forward(const std::vector<float>& x, int batch, bool training);

  /// Backward from the loss gradient; accumulates parameter gradients.
  void backward(const std::vector<float>& grad_logits, int batch);

  /// Applies SGD + momentum to every layer and zeroes gradients.
  void step(float lr, float momentum);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  const std::vector<float>* last_out_ = nullptr;
};

/// Softmax cross-entropy over a batch of logits.  Writes the loss gradient
/// into `grad` (same extents as logits) and returns the mean loss.
float softmax_cross_entropy(const std::vector<float>& logits, const std::vector<int>& labels,
                            int batch, int classes, std::vector<float>& grad);

/// Training hyper-parameters.
struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  float lr = 0.01f;
  float momentum = 0.9f;
  float lr_decay = 0.95f;  ///< multiplicative, per epoch
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

/// Trains `model` on `ds` and returns the final-epoch mean training loss.
float train_classifier(Sequential& model, const data::Dataset& ds, const TrainConfig& cfg);

/// Top-1 accuracy of `model` on `ds` (inference mode).
float evaluate(Sequential& model, const data::Dataset& ds);

/// Batch-1 prediction (argmax of logits) for one image.
int predict(Sequential& model, const Tensor& image);

}  // namespace bitflow::train
