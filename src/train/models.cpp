#include "train/models.hpp"

#include <memory>

namespace bitflow::train {

Sequential make_float_cnn(Dims input, int num_classes, SmallVggOptions opt, std::uint64_t seed) {
  Sequential m;
  Dims d = input;
  std::int64_t c = opt.width;
  for (int b = 0; b < opt.num_blocks; ++b) {
    auto conv = std::make_unique<Conv2d>(d, c, 3, 1, 1, /*binary=*/false, seed + 10 * b,
                                         /*pad_value=*/0.0f);
    d = conv->out_dims();
    m.add(std::move(conv));
    m.add(std::make_unique<Relu>(d));
    auto pool = std::make_unique<MaxPool>(d, 2, 2);
    d = pool->out_dims();
    m.add(std::move(pool));
    c *= 2;
  }
  m.add(std::make_unique<Flatten>(d));
  auto fc1 = std::make_unique<Fc>(d.size(), opt.fc_width, /*binary=*/false, seed + 100);
  m.add(std::move(fc1));
  m.add(std::make_unique<Relu>(Dims{1, 1, opt.fc_width}));
  m.add(std::make_unique<Fc>(opt.fc_width, num_classes, /*binary=*/false, seed + 101));
  return m;
}

Sequential make_binary_cnn(Dims input, int num_classes, SmallVggOptions opt, std::uint64_t seed) {
  Sequential m;
  Dims d = input;
  // Binarize the raw input first (the engine's input stage packs sign(x)) —
  // unless the first layer stays in full precision, in which case the engine
  // consumes the raw floats directly.
  if (!opt.first_layer_float) m.add(std::make_unique<SignAct>(d));
  std::int64_t c = opt.width;
  for (int b = 0; b < opt.num_blocks; ++b) {
    const bool float_conv = opt.first_layer_float && b == 0;
    auto conv = std::make_unique<Conv2d>(d, c, 3, 1, 1, /*binary=*/!float_conv,
                                         seed + 10 * b,
                                         /*pad_value=*/float_conv ? 0.0f : -1.0f);
    d = conv->out_dims();
    m.add(std::move(conv));
    m.add(std::make_unique<BatchNorm>(d));
    m.add(std::make_unique<SignAct>(d));
    auto pool = std::make_unique<MaxPool>(d, 2, 2);
    d = pool->out_dims();
    m.add(std::move(pool));
    c *= 2;
  }
  m.add(std::make_unique<Flatten>(d));
  auto fc1 = std::make_unique<Fc>(d.size(), opt.fc_width, /*binary=*/true, seed + 100);
  m.add(std::move(fc1));
  m.add(std::make_unique<BatchNorm>(Dims{1, 1, opt.fc_width}));
  m.add(std::make_unique<SignAct>(Dims{1, 1, opt.fc_width}));
  m.add(std::make_unique<Fc>(opt.fc_width, num_classes, /*binary=*/true, seed + 101));
  return m;
}

}  // namespace bitflow::train
