// Small VGG-style classifier builders for the accuracy experiments
// (Table V): the same architecture instantiated in full precision and in
// binarized form, so the accuracy gap measured is the binarization gap.
#pragma once

#include <cstdint>

#include "train/sequential.hpp"

namespace bitflow::train {

/// Architecture knobs for the small VGG-style classifier.
struct SmallVggOptions {
  std::int64_t width = 32;  ///< channels of the first conv block
  int num_blocks = 2;       ///< conv blocks (each: conv-conv-pool pattern collapsed to conv-pool)
  std::int64_t fc_width = 128;
  /// Keep the first convolution in full precision (the accuracy-recovery
  /// technique the paper cites); the engine runs it as a float im2col conv
  /// feeding the binarized pipeline.
  bool first_layer_float = false;
};

/// Full-precision: [conv-relu-pool] x blocks, then fc-relu, fc.
[[nodiscard]] Sequential make_float_cnn(Dims input, int num_classes, SmallVggOptions opt,
                                        std::uint64_t seed);

/// Binarized (BinaryNet recipe): sign(input), then
/// [binary-conv -> batchnorm -> sign -> pool] x blocks, then
/// binary-fc -> batchnorm -> sign, binary-fc.
/// This stack is exactly what export_to_engine() lowers to a BitFlow
/// graph::BinaryNetwork.
[[nodiscard]] Sequential make_binary_cnn(Dims input, int num_classes, SmallVggOptions opt,
                                         std::uint64_t seed);

}  // namespace bitflow::train
