// Training substrate: batched layers with forward/backward.
//
// BitFlow is an inference engine; to reproduce the accuracy story of
// Table V we also need to *produce* binarized networks.  This module
// implements the training recipe of BinaryNet (Courbariaux & Bengio, the
// paper's ref [3]): latent float weights binarized with sign() on the
// forward pass, straight-through gradient estimation for sign activations
// (pass-through where |x| <= 1), latent weights clipped to [-1, 1], and
// batch normalization whose inference-time statistics fold into the
// per-channel thresholds of the BitFlow engine (see export.hpp).
//
// Data format: activations are flat row-major batches, sample-major then
// HWC — x[b * dims.size() + (h*W + w)*C + c] — matching the engine layout
// so a trained model exports without permutation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bitflow::train {

/// Spatial extents flowing through the stack (FC activations: h = w = 1).
struct Dims {
  std::int64_t h = 1, w = 1, c = 1;
  [[nodiscard]] std::int64_t size() const noexcept { return h * w * c; }
  [[nodiscard]] bool operator==(const Dims&) const = default;
};

/// Base class of all trainable layers.  Layers own their parameters,
/// gradients, momentum buffers and forward caches; batch size may vary
/// call-to-call.
class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Dims in_dims() const = 0;
  [[nodiscard]] virtual Dims out_dims() const = 0;

  /// Forward pass over `batch` samples; the returned reference stays valid
  /// until the next forward.  `training` toggles batch-norm statistics.
  virtual const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                            bool training) = 0;

  /// Backward pass: gradient w.r.t. this layer's input; accumulates
  /// parameter gradients (zeroed by step()).
  virtual std::vector<float> backward(const std::vector<float>& grad_out, int batch) = 0;

  /// SGD + momentum update; zeroes the accumulated gradients.
  virtual void step(float lr, float momentum) { (void)lr, (void)momentum; }
};

/// 2D convolution, HWC, symmetric zero padding.  With `binary_weights` the
/// forward uses sign(W) (BinaryConnect); gradients flow to the latent floats,
/// which are clipped to [-1, 1] after each update.
class Conv2d final : public Layer {
 public:
  /// `pad_value` is the constant used for out-of-bounds taps: 0 for float
  /// networks, -1 for binarized stacks — BitFlow's zero-cost padding leaves
  /// zero *bits*, which decode to -1, and training must see the same math
  /// for the exported engine to be prediction-identical.
  Conv2d(Dims in, std::int64_t out_c, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool binary_weights, std::uint64_t seed, float pad_value = 0.0f);

  [[nodiscard]] std::string name() const override { return "conv2d"; }
  [[nodiscard]] Dims in_dims() const override { return in_; }
  [[nodiscard]] Dims out_dims() const override { return out_; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;
  void step(float lr, float momentum) override;

  [[nodiscard]] bool binary_weights() const noexcept { return binary_; }
  [[nodiscard]] std::int64_t kernel() const noexcept { return k_; }
  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::int64_t pad() const noexcept { return pad_; }
  /// Latent weights, [out_c][kh][kw][in_c] (FilterBank order).
  [[nodiscard]] const std::vector<float>& weights() const noexcept { return w_; }

 private:
  /// Effective forward weights (sign of latent when binary).
  void materialize_weights();

  Dims in_, out_;
  std::int64_t k_, stride_, pad_;
  bool binary_;
  float pad_value_;
  std::vector<float> w_, w_eff_, dw_, vw_;
  std::vector<float> x_cache_, y_;
  int cached_batch_ = 0;
};

/// Fully connected layer; weights stored row-major n x k (input-major, the
/// paper's Table III orientation).  Optional latent-binarized weights.
class Fc final : public Layer {
 public:
  Fc(std::int64_t n, std::int64_t k, bool binary_weights, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "fc"; }
  [[nodiscard]] Dims in_dims() const override { return {1, 1, n_}; }
  [[nodiscard]] Dims out_dims() const override { return {1, 1, k_}; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;
  void step(float lr, float momentum) override;

  [[nodiscard]] bool binary_weights() const noexcept { return binary_; }
  [[nodiscard]] const std::vector<float>& weights() const noexcept { return w_; }

 private:
  void materialize_weights();

  std::int64_t n_, k_;
  bool binary_;
  std::vector<float> w_, w_eff_, dw_, vw_;
  std::vector<float> x_cache_, y_;
  int cached_batch_ = 0;
};

/// sign() activation with the straight-through estimator:
/// dy/dx = 1{|x| <= 1}.
class SignAct final : public Layer {
 public:
  explicit SignAct(Dims d) : d_(d) {}
  [[nodiscard]] std::string name() const override { return "sign"; }
  [[nodiscard]] Dims in_dims() const override { return d_; }
  [[nodiscard]] Dims out_dims() const override { return d_; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;

 private:
  Dims d_;
  std::vector<float> x_cache_, y_;
};

/// ReLU (float counterpart networks).
class Relu final : public Layer {
 public:
  explicit Relu(Dims d) : d_(d) {}
  [[nodiscard]] std::string name() const override { return "relu"; }
  [[nodiscard]] Dims in_dims() const override { return d_; }
  [[nodiscard]] Dims out_dims() const override { return d_; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;

 private:
  Dims d_;
  std::vector<float> y_;
};

/// Max pooling with argmax gradient routing.
class MaxPool final : public Layer {
 public:
  MaxPool(Dims in, std::int64_t pool, std::int64_t stride);
  [[nodiscard]] std::string name() const override { return "maxpool"; }
  [[nodiscard]] Dims in_dims() const override { return in_; }
  [[nodiscard]] Dims out_dims() const override { return out_; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;

  [[nodiscard]] std::int64_t pool() const noexcept { return pool_; }
  [[nodiscard]] std::int64_t stride() const noexcept { return stride_; }

 private:
  Dims in_, out_;
  std::int64_t pool_, stride_;
  std::vector<std::int64_t> argmax_;
  std::vector<float> y_;
};

/// Reshapes an H x W x C activation into 1 x 1 x (H*W*C).  A pure view
/// change: the flat HWC layout is already the fully-connected input order
/// (and the engine's flatten_packed order), so forward/backward are copies.
class Flatten final : public Layer {
 public:
  explicit Flatten(Dims in) : in_(in) {}
  [[nodiscard]] std::string name() const override { return "flatten"; }
  [[nodiscard]] Dims in_dims() const override { return in_; }
  [[nodiscard]] Dims out_dims() const override { return {1, 1, in_.size()}; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;

 private:
  Dims in_;
  std::vector<float> y_;
};

/// Batch normalization over the channel dimension (statistics across batch
/// and spatial positions).  Gamma is kept strictly positive is NOT enforced;
/// the exporter handles negative gamma by flipping the consumer filter's
/// sign (see export.cpp).
class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(Dims d, float momentum = 0.9f, float eps = 1e-5f);
  [[nodiscard]] std::string name() const override { return "batchnorm"; }
  [[nodiscard]] Dims in_dims() const override { return d_; }
  [[nodiscard]] Dims out_dims() const override { return d_; }
  const std::vector<float>& forward(const std::vector<float>& x, int batch,
                                    bool training) override;
  std::vector<float> backward(const std::vector<float>& grad_out, int batch) override;
  void step(float lr, float momentum) override;

  [[nodiscard]] const std::vector<float>& gamma() const noexcept { return gamma_; }
  [[nodiscard]] const std::vector<float>& beta() const noexcept { return beta_; }
  [[nodiscard]] const std::vector<float>& running_mean() const noexcept { return run_mean_; }
  [[nodiscard]] const std::vector<float>& running_var() const noexcept { return run_var_; }
  [[nodiscard]] float eps() const noexcept { return eps_; }

 private:
  Dims d_;
  float bn_momentum_, eps_;
  std::vector<float> gamma_, beta_, dgamma_, dbeta_, vgamma_, vbeta_;
  std::vector<float> run_mean_, run_var_;
  // forward caches
  std::vector<float> xhat_, y_, mean_, inv_std_;
  int cached_batch_ = 0;
};

}  // namespace bitflow::train
