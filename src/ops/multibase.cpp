#include "ops/multibase.hpp"

#include <cmath>
#include <stdexcept>

#include "bitpack/packer.hpp"
#include "graph/scheduler.hpp"

namespace bitflow::ops {

MultiBaseFilters approximate_filters(const FilterBank& w, int num_bases) {
  if (num_bases < 1) throw std::invalid_argument("approximate_filters: need >= 1 base");
  MultiBaseFilters mb;
  const std::int64_t k = w.num_filters();
  const std::int64_t per_filter = w.kernel_h() * w.kernel_w() * w.channels();

  // Residual starts as W itself.
  std::vector<float> residual(w.data(), w.data() + w.num_elements());
  FilterBank base_signs(k, w.kernel_h(), w.kernel_w(), w.channels());
  for (int m = 0; m < num_bases; ++m) {
    std::vector<float> alpha(static_cast<std::size_t>(k), 0.0f);
    for (std::int64_t f = 0; f < k; ++f) {
      // Least-squares scale for B = sign(R): alpha = mean |R| over the filter.
      double acc = 0.0;
      const float* r = residual.data() + f * per_filter;
      for (std::int64_t e = 0; e < per_filter; ++e) acc += std::abs(r[e]);
      alpha[static_cast<std::size_t>(f)] =
          static_cast<float>(acc / static_cast<double>(per_filter));
    }
    // Materialize the +-1 base and subtract alpha * B from the residual.
    float* signs = base_signs.data();
    for (std::int64_t f = 0; f < k; ++f) {
      float* r = residual.data() + f * per_filter;
      float* s = signs + f * per_filter;
      const float a = alpha[static_cast<std::size_t>(f)];
      for (std::int64_t e = 0; e < per_filter; ++e) {
        s[e] = r[e] >= 0.0f ? 1.0f : -1.0f;
        r[e] -= a * s[e];
      }
    }
    mb.bases.push_back(bitpack::pack_filters(base_signs));
    mb.alphas.push_back(std::move(alpha));
  }
  return mb;
}

std::vector<float> approximation_rmse(const FilterBank& w, const MultiBaseFilters& mb) {
  const std::int64_t k = w.num_filters();
  const std::int64_t per_filter = w.kernel_h() * w.kernel_w() * w.channels();
  std::vector<float> rmse(static_cast<std::size_t>(k), 0.0f);
  for (std::int64_t f = 0; f < k; ++f) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < w.kernel_h(); ++i) {
      for (std::int64_t j = 0; j < w.kernel_w(); ++j) {
        for (std::int64_t c = 0; c < w.channels(); ++c) {
          float approx = 0.0f;
          for (int m = 0; m < mb.num_bases(); ++m) {
            approx += mb.alphas[static_cast<std::size_t>(m)][static_cast<std::size_t>(f)] *
                      mb.bases[static_cast<std::size_t>(m)].sign_value(f, i, j, c);
          }
          const double d = static_cast<double>(w.at(f, i, j, c)) - approx;
          acc += d * d;
        }
      }
    }
    rmse[static_cast<std::size_t>(f)] =
        static_cast<float>(std::sqrt(acc / static_cast<double>(per_filter)));
  }
  return rmse;
}

MultiBaseConvOp::MultiBaseConvOp(const FilterBank& weights, int num_bases, std::int64_t stride,
                                 std::int64_t pad, BinaryOpOptions options)
    : spec_{weights.kernel_h(), weights.kernel_w(), stride},
      pad_(pad),
      mb_(approximate_filters(weights, num_bases)),
      isa_(options.force_isa.has_value()
               ? *options.force_isa
               : graph::select_isa(weights.channels(), simd::cpu_features(), options.policy)),
      dot_fn_(kernels::conv_dot_kernel(isa_)) {
  if (pad < 0) throw std::invalid_argument("MultiBaseConvOp: negative pad");
}

void MultiBaseConvOp::run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out) {
  if (in.channels() != mb_.bases.front().channels()) {
    throw std::invalid_argument("MultiBaseConvOp: channel mismatch");
  }
  const std::int64_t ph = in.height() + 2 * pad_;
  const std::int64_t pw = in.width() + 2 * pad_;
  if (in_buf_.height() != ph || in_buf_.width() != pw || in_buf_.channels() != in.channels()) {
    in_buf_ = PackedTensor(ph, pw, in.channels());
  }
  bitpack::pack_activations_into_interior(in, in_buf_, pad_);

  const std::int64_t oh = spec_.out_h(ph), ow = spec_.out_w(pw);
  const std::int64_t k = mb_.bases.front().num_filters();
  if (out.height() != oh || out.width() != ow || out.channels() != k) {
    throw std::invalid_argument("MultiBaseConvOp: output mis-shaped");
  }
  if (base_out_.height() != oh || base_out_.width() != ow || base_out_.channels() != k) {
    base_out_ = Tensor::hwc(oh, ow, k);
  }
  out.zero();
  for (int m = 0; m < num_bases(); ++m) {
    dot_fn_(in_buf_, mb_.bases[static_cast<std::size_t>(m)], spec_, pool, base_out_);
    const std::vector<float>& alpha = mb_.alphas[static_cast<std::size_t>(m)];
    float* dst = out.data();
    const float* src = base_out_.data();
    // HWC output: channel (= filter) is minor, so the alpha index cycles.
    const std::int64_t pixels = oh * ow;
    for (std::int64_t px = 0; px < pixels; ++px) {
      for (std::int64_t f = 0; f < k; ++f) {
        dst[px * k + f] += alpha[static_cast<std::size_t>(f)] * src[px * k + f];
      }
    }
  }
}

}  // namespace bitflow::ops
