#include "ops/operators.hpp"

#include <stdexcept>

#include "baseline/float_ops.hpp"
#include "bitpack/packer.hpp"

namespace bitflow::ops {

namespace {

simd::IsaLevel pick_isa(std::int64_t packed_dim, const BinaryOpOptions& options) {
  if (options.force_isa.has_value()) return *options.force_isa;
  return graph::select_isa(packed_dim, simd::cpu_features(), options.policy);
}

}  // namespace

// --- BinaryConvOp -----------------------------------------------------------

BinaryConvOp::BinaryConvOp(FilterBank weights, std::int64_t stride, std::int64_t pad,
                           BinaryOpOptions options)
    : spec_{weights.kernel_h(), weights.kernel_w(), stride},
      pad_(pad),
      filters_(bitpack::pack_filters(weights)),
      isa_(pick_isa(weights.channels(), options)),
      dot_fn_(kernels::conv_dot_kernel(isa_)),
      bin_fn_(kernels::conv_binarize_kernel(isa_)) {
  if (pad < 0) throw std::invalid_argument("BinaryConvOp: negative pad");
}

void BinaryConvOp::run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out) {
  if (in.channels() != filters_.channels()) {
    throw std::invalid_argument("BinaryConvOp: channel mismatch");
  }
  const std::int64_t ph = in.height() + 2 * pad_;
  const std::int64_t pw = in.width() + 2 * pad_;
  if (in_buf_.height() != ph || in_buf_.width() != pw || in_buf_.channels() != in.channels()) {
    in_buf_ = PackedTensor(ph, pw, in.channels());
  }
  bitpack::pack_activations_into_interior(in, in_buf_, pad_);
  const std::int64_t oh = spec_.out_h(ph), ow = spec_.out_w(pw);
  if (out.height() != oh || out.width() != ow || out.channels() != filters_.num_filters()) {
    throw std::invalid_argument("BinaryConvOp: output mis-shaped");
  }
  dot_fn_(in_buf_, filters_, spec_, pool, out);
}

void BinaryConvOp::run_packed(const PackedTensor& in_padded, const float* thresholds,
                              runtime::ThreadPool& pool, PackedTensor& out,
                              std::int64_t margin) const {
  kernels::check_conv_args(in_padded, filters_, spec_);
  bin_fn_(in_padded, filters_, spec_, thresholds, pool, out, margin);
}

// --- BinaryFcOp --------------------------------------------------------------

BinaryFcOp::BinaryFcOp(const float* w, std::int64_t n, std::int64_t k, BinaryOpOptions options)
    : n_(n),
      weights_(bitpack::pack_transpose_fc_weights(w, n, k)),
      isa_(pick_isa(n, options)),
      dot_fn_(kernels::bgemm_kernel(isa_)),
      x_buf_(1, n) {}

void BinaryFcOp::run(const float* x, runtime::ThreadPool& pool, float* y) {
  // Fused binarize+pack of the activation row (bit64_u path).
  PackedMatrix packed = bitpack::pack_rows(x, 1, n_);
  x_buf_ = std::move(packed);
  dot_fn_(x_buf_, weights_, pool, y);
}

// --- BinaryPoolOp -------------------------------------------------------------

BinaryPoolOp::BinaryPoolOp(kernels::PoolSpec spec, std::int64_t channels,
                           BinaryOpOptions options)
    : spec_(spec), isa_(pick_isa(channels, options)) {}

void BinaryPoolOp::run(const Tensor& in, runtime::ThreadPool& pool, PackedTensor& out) {
  if (in_buf_.height() != in.height() || in_buf_.width() != in.width() ||
      in_buf_.channels() != in.channels()) {
    in_buf_ = PackedTensor(in.height(), in.width(), in.channels());
  }
  bitpack::pack_activations_into(in, in_buf_);
  kernels::binary_maxpool(in_buf_, spec_, isa_, pool, out, 0);
}

void BinaryPoolOp::run_packed(const PackedTensor& in, runtime::ThreadPool& pool,
                              PackedTensor& out, std::int64_t margin) const {
  kernels::binary_maxpool(in, spec_, isa_, pool, out, margin);
}

// --- FloatConvOp ---------------------------------------------------------------

FloatConvOp::FloatConvOp(const FilterBank& weights, std::int64_t stride, std::int64_t pad)
    : spec_{weights.kernel_h(), weights.kernel_w(), stride},
      pad_(pad),
      k_(weights.num_filters()),
      weights_t_(baseline::flatten_filters_transposed(weights)) {
  if (pad < 0) throw std::invalid_argument("FloatConvOp: negative pad");
}

void FloatConvOp::run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out) {
  if (pad_ > 0) {
    const Tensor padded = baseline::pad_float(in, pad_);
    baseline::float_conv_im2col(padded, weights_t_, k_, spec_, pool, out, cols_scratch_);
  } else {
    baseline::float_conv_im2col(in, weights_t_, k_, spec_, pool, out, cols_scratch_);
  }
}

}  // namespace bitflow::ops
