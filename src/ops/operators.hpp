// Stand-alone operator-level API (paper's "operator level").
//
// Each class is one benchmarkable operator with its one-time setup (weight
// binarize+pack, kernel selection) done at construction and its per-inference
// work — input packing included, exactly the work PressedConv's Algorithm 1
// counts — done in run().  The graph engine (graph/network.hpp) fuses
// packing into the producing layer instead; these wrappers exist for users
// running single operators and for the per-operator figures (7-10), where
// the float/binary engines must all start from the same float activation
// tensor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/scheduler.hpp"
#include "kernels/bgemm.hpp"
#include "kernels/binary_maxpool.hpp"
#include "kernels/pressedconv.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::ops {

/// Shared options for binary operators.
struct BinaryOpOptions {
  graph::SchedulerPolicy policy = graph::SchedulerPolicy::kPaperRules;
  /// Overrides the scheduler's choice (ISA ablation).  The caller must
  /// ensure hardware support.
  std::optional<simd::IsaLevel> force_isa;
};

/// BitFlow-optimized binary convolution (PressedConv).
class BinaryConvOp {
 public:
  BinaryConvOp(FilterBank weights, std::int64_t stride, std::int64_t pad,
               BinaryOpOptions options = {});

  /// Full per-inference pipeline from a float activation tensor: binarize +
  /// pack into the pre-allocated padded buffer, then convolve.  `out`
  /// receives Eq. 1 dot products (extents out_h x out_w x K).
  void run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out);

  /// Packed-to-packed fused conv+binarize on an already padded input (the
  /// graph-engine path exposed standalone).
  void run_packed(const PackedTensor& in_padded, const float* thresholds,
                  runtime::ThreadPool& pool, PackedTensor& out, std::int64_t margin) const;

  [[nodiscard]] simd::IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] const kernels::ConvSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::int64_t pad() const noexcept { return pad_; }
  [[nodiscard]] std::int64_t num_filters() const noexcept { return filters_.num_filters(); }

 private:
  kernels::ConvSpec spec_;
  std::int64_t pad_;
  PackedFilterBank filters_;
  simd::IsaLevel isa_;
  kernels::ConvDotFn dot_fn_;
  kernels::ConvBinarizeFn bin_fn_;
  PackedTensor in_buf_;  // padded packed input, allocated on first run()
};

/// BitFlow-optimized binary fully connected operator.
class BinaryFcOp {
 public:
  /// `w` is the row-major n x k float weight matrix; packed transposed once
  /// here (Table III fused transform).
  BinaryFcOp(const float* w, std::int64_t n, std::int64_t k, BinaryOpOptions options = {});

  /// Packs the n input floats and computes the k Eq. 1 dots.
  void run(const float* x, runtime::ThreadPool& pool, float* y);

  [[nodiscard]] simd::IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] std::int64_t inputs() const noexcept { return n_; }
  [[nodiscard]] std::int64_t outputs() const noexcept { return weights_.rows(); }

 private:
  std::int64_t n_;
  PackedMatrix weights_;
  simd::IsaLevel isa_;
  kernels::BgemmFn dot_fn_;
  PackedMatrix x_buf_;
};

/// BitFlow-optimized binary max pooling.
class BinaryPoolOp {
 public:
  BinaryPoolOp(kernels::PoolSpec spec, std::int64_t channels, BinaryOpOptions options = {});

  /// Packs the float input and OR-pools it; `out` receives the packed
  /// result (margin 0).
  void run(const Tensor& in, runtime::ThreadPool& pool, PackedTensor& out);

  /// Packed-to-packed pooling (graph-engine path standalone).
  void run_packed(const PackedTensor& in, runtime::ThreadPool& pool, PackedTensor& out,
                  std::int64_t margin) const;

  [[nodiscard]] simd::IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] const kernels::PoolSpec& spec() const noexcept { return spec_; }

 private:
  kernels::PoolSpec spec_;
  simd::IsaLevel isa_;
  PackedTensor in_buf_;
};

/// Full-precision convolution baseline (conventional image-to-column +
/// sgemm; weights flattened/transposed once at construction).
class FloatConvOp {
 public:
  FloatConvOp(const FilterBank& weights, std::int64_t stride, std::int64_t pad);

  /// Pads (copy), unfolds, multiplies.  `out` extents out_h x out_w x K.
  void run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out);

  [[nodiscard]] const kernels::ConvSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::int64_t pad() const noexcept { return pad_; }
  [[nodiscard]] std::int64_t num_filters() const noexcept { return k_; }

 private:
  kernels::ConvSpec spec_;
  std::int64_t pad_;
  std::int64_t k_;
  std::vector<float> weights_t_;  // (kh*kw*C) x K
  std::vector<float> cols_scratch_;
};

}  // namespace bitflow::ops
