// Multi-base binary weight approximation — the accuracy-recovery extension
// the paper points to in Sec. V ("Lin's work approximates full-precision
// weights with the linear combination of multiple binary weight bases...
// BitFlow benefits from those advances").
//
// A float filter bank W is approximated as
//
//     W  ~=  sum_m  alpha_m ⊙ B_m,      B_m in {-1,+1},  alpha_m per filter
//
// found greedily on the residual: B_m = sign(R_m) and the least-squares
// scale alpha_m[k] = mean |R_m[k]| (the optimum for fixed B), with
// R_{m+1} = R_m - alpha_m ⊙ B_m.  Inference is then M PressedConv passes
// whose integer dots are combined with the alphas — every pass rides the
// same XOR+popcount kernels, so M binary convolutions still cost a small
// fraction of one float convolution while recovering most of the accuracy
// a single sign() throws away.  bench_multibase quantifies both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/pressedconv.hpp"
#include "ops/operators.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::ops {

/// The M binary bases and per-filter scales approximating one filter bank.
struct MultiBaseFilters {
  std::vector<PackedFilterBank> bases;       ///< M packed {-1,+1} banks
  std::vector<std::vector<float>> alphas;    ///< [m][k] per-filter scales

  [[nodiscard]] int num_bases() const noexcept { return static_cast<int>(bases.size()); }
};

/// Greedy residual decomposition of `w` into `num_bases` binary bases.
[[nodiscard]] MultiBaseFilters approximate_filters(const FilterBank& w, int num_bases);

/// Root-mean-square error of the approximation, per filter.
[[nodiscard]] std::vector<float> approximation_rmse(const FilterBank& w,
                                                    const MultiBaseFilters& mb);

/// Multi-base binary convolution: output(y,x,k) = sum_m alpha_m[k] *
/// dot_m(y,x,k).  Input activations are binarized once (sign), packed once,
/// and reused across all M bases.
class MultiBaseConvOp {
 public:
  MultiBaseConvOp(const FilterBank& weights, int num_bases, std::int64_t stride,
                  std::int64_t pad, BinaryOpOptions options = {});

  /// Full per-inference pipeline from a float activation tensor; `out`
  /// receives the scaled multi-base dot sums (out_h x out_w x K floats).
  void run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out);

  [[nodiscard]] int num_bases() const noexcept { return mb_.num_bases(); }
  [[nodiscard]] simd::IsaLevel isa() const noexcept { return isa_; }
  [[nodiscard]] const MultiBaseFilters& filters() const noexcept { return mb_; }
  [[nodiscard]] const kernels::ConvSpec& spec() const noexcept { return spec_; }

 private:
  kernels::ConvSpec spec_;
  std::int64_t pad_;
  MultiBaseFilters mb_;
  simd::IsaLevel isa_;
  kernels::ConvDotFn dot_fn_;
  PackedTensor in_buf_;
  Tensor base_out_;
};

}  // namespace bitflow::ops
