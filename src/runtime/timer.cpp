#include "runtime/timer.hpp"

#include <algorithm>

namespace bitflow::runtime {

double measure_best_seconds(const std::function<void()>& fn, int min_iters,
                            double min_total_seconds) {
  fn();  // warm-up: page in buffers, warm the icache, settle turbo
  double best = 1e300;
  double total = 0.0;
  int iters = 0;
  while (iters < min_iters || total < min_total_seconds) {
    Timer t;
    fn();
    const double s = t.elapsed_seconds();
    best = std::min(best, s);
    total += s;
    ++iters;
    if (iters > 1'000'000) break;  // degenerate zero-cost body
  }
  return best;
}

}  // namespace bitflow::runtime
