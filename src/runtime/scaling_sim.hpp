// Deterministic multicore scaling simulator.
//
// The evaluation machines of the paper (4-core i7-7700HQ, 64-core Xeon Phi
// 7210) are not available in this environment, which exposes a single
// hardware core.  Real `std::thread` parallelism is implemented and tested
// (thread_pool.hpp), but measured multi-thread speedups on one core are
// meaningless.  The simulator replays the engine's *actual* static work
// partition over *measured* single-thread chunk costs:
//
//     T(p) = max_{b < p} ( sum of chunk costs in static_block(n, p, b) )
//            + fork_join_overhead(p)
//
// Because both the partition function and the per-chunk cost distribution
// are the real ones, the mechanism that shapes Figs. 8 and 9 — large
// spatial extents scale near-linearly, small deep-layer extents saturate
// when per-block work no longer dwarfs the fork/join cost — is preserved.
// See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace bitflow::runtime {

/// Predicts fork/join makespan for p threads from measured per-chunk costs.
class ScalingSimulator {
 public:
  /// `chunk_costs_seconds[i]` is the measured single-thread execution time
  /// of work unit i (e.g. one output row of a convolution).
  /// `fork_join_base_seconds` models the cost of waking and joining the
  /// worker set; it is multiplied by log2(p) to reflect tree-structured
  /// wakeup (p = 1 incurs zero overhead).
  explicit ScalingSimulator(std::vector<double> chunk_costs_seconds,
                            double fork_join_base_seconds = 5e-6);

  [[nodiscard]] std::int64_t num_chunks() const noexcept {
    return static_cast<std::int64_t>(costs_.size());
  }

  /// Total single-thread time (sum of all chunk costs).
  [[nodiscard]] double serial_seconds() const noexcept { return serial_; }

  /// Predicted wall-clock of a fork/join execution on p threads using the
  /// engine's static block partition.
  [[nodiscard]] double predict_seconds(int p) const;

  /// serial_seconds() / predict_seconds(p).
  [[nodiscard]] double predict_speedup(int p) const;

 private:
  std::vector<double> costs_;
  double serial_ = 0.0;
  double fork_join_base_;
};

/// Measures the cost of each of `n_chunks` work units by running
/// `run_chunk(range)` over single-unit ranges, repeated until timing noise
/// is dominated (best-of-N per chunk).  `run_all` is executed once before
/// measurement as a warm-up.
std::vector<double> measure_chunk_costs(std::int64_t n_chunks,
                                        const std::function<void(Range)>& run_chunk,
                                        int repeats = 3);

}  // namespace bitflow::runtime
