#include "runtime/scaling_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "runtime/timer.hpp"

namespace bitflow::runtime {

ScalingSimulator::ScalingSimulator(std::vector<double> chunk_costs_seconds,
                                   double fork_join_base_seconds)
    : costs_(std::move(chunk_costs_seconds)),
      fork_join_base_(fork_join_base_seconds) {
  if (costs_.empty()) throw std::invalid_argument("ScalingSimulator: no chunks");
  serial_ = std::accumulate(costs_.begin(), costs_.end(), 0.0);
}

double ScalingSimulator::predict_seconds(int p) const {
  if (p < 1) throw std::invalid_argument("ScalingSimulator: p must be >= 1");
  const std::int64_t n = num_chunks();
  const int used = static_cast<int>(std::min<std::int64_t>(p, n));
  double makespan = 0.0;
  for (int b = 0; b < used; ++b) {
    const Range r = static_block(n, used, b);
    double block = 0.0;
    for (std::int64_t i = r.begin; i < r.end; ++i) block += costs_[static_cast<std::size_t>(i)];
    makespan = std::max(makespan, block);
  }
  const double overhead = p > 1 ? fork_join_base_ * std::log2(static_cast<double>(p)) : 0.0;
  return makespan + overhead;
}

double ScalingSimulator::predict_speedup(int p) const { return serial_ / predict_seconds(p); }

std::vector<double> measure_chunk_costs(std::int64_t n_chunks,
                                        const std::function<void(Range)>& run_chunk,
                                        int repeats) {
  if (n_chunks <= 0) throw std::invalid_argument("measure_chunk_costs: no chunks");
  run_chunk(Range{0, n_chunks});  // warm-up pass over everything
  std::vector<double> costs(static_cast<std::size_t>(n_chunks), 0.0);
  for (std::int64_t i = 0; i < n_chunks; ++i) {
    double best = 1e300;
    for (int r = 0; r < std::max(1, repeats); ++r) {
      Timer t;
      run_chunk(Range{i, i + 1});
      best = std::min(best, t.elapsed_seconds());
    }
    costs[static_cast<std::size_t>(i)] = best;
  }
  return costs;
}

}  // namespace bitflow::runtime
