#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "core/failpoint.hpp"
#include "telemetry/metrics.hpp"

namespace bitflow::runtime {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-effort message extraction from a captured exception.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void ThreadPool::run_job(const std::function<void(int)>& fn, int worker) {
  // Process-wide counters shared by every pool; per-worker detail stays in
  // the pool's own padded tick slots (stats()).
  static telemetry::Counter& g_tasks = telemetry::registry().counter("runtime.pool.tasks");
  static telemetry::Counter& g_busy = telemetry::registry().counter("runtime.pool.busy_ns");
  BF_FAILPOINT("runtime.worker");
  BF_FAILPOINT("runtime.worker_stall");
  Ticks& t = ticks_[static_cast<std::size_t>(worker)];
  const std::uint64_t t0 = steady_ns();
  try {
    fn(worker);
  } catch (...) {
    const std::uint64_t ns = steady_ns() - t0;
    t.tasks.fetch_add(1, std::memory_order_relaxed);
    t.busy_ns.fetch_add(ns, std::memory_order_relaxed);
    g_tasks.add();
    g_busy.add(ns);
    throw;
  }
  const std::uint64_t ns = steady_ns() - t0;
  t.tasks.fetch_add(1, std::memory_order_relaxed);
  t.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  g_tasks.add();
  g_busy.add(ns);
}

std::vector<int> ThreadPool::worker_tids() const {
  std::vector<int> tids;
  for (int i = 1; i < num_threads_; ++i) {
    const int tid = tids_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (tid > 0) tids.push_back(tid);
  }
  return tids;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers.resize(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    const Ticks& t = ticks_[static_cast<std::size_t>(i)];
    s.workers[static_cast<std::size_t>(i)].tasks = t.tasks.load(std::memory_order_relaxed);
    s.workers[static_cast<std::size_t>(i)].busy_ns =
        t.busy_ns.load(std::memory_order_relaxed);
  }
  return s;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads),
      ticks_(num_threads >= 1 ? std::make_unique<Ticks[]>(static_cast<std::size_t>(num_threads))
                              : nullptr),
      tids_(num_threads >= 1
                ? std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(num_threads))
                : nullptr) {
  if (num_threads < 1) throw std::invalid_argument("ThreadPool needs >= 1 thread");
  threads_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    core::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(int index) {
#if defined(__linux__)
  tids_[static_cast<std::size_t>(index)].store(
      static_cast<int>(::syscall(SYS_gettid)), std::memory_order_relaxed);
#endif
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      core::MutexLock lock(mutex_);
      while (!shutting_down_ && job_epoch_ == seen_epoch) start_cv_.wait(lock);
      if (shutting_down_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      run_job(*job, index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      core::MutexLock lock(mutex_);
      if (error) {
        if (!first_error_) first_error_ = error;
        ++error_count_;
      }
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  BF_CHECK(static_cast<bool>(fn), "run_on_all: empty job");
  if (num_threads_ == 1) {
    run_job(fn, 0);
    return;
  }
  {
    core::MutexLock lock(mutex_);
    BF_DCHECK(pending_ == 0, "run_on_all: previous job still pending (", pending_, " workers)");
    BF_DCHECK(job_ == nullptr, "run_on_all: re-entrant dispatch on the same pool");
    job_ = &fn;
    pending_ = num_threads_ - 1;
    first_error_ = nullptr;
    error_count_ = 0;
    ++job_epoch_;
  }
  start_cv_.notify_all();
  std::exception_ptr caller_error;
  try {
    run_job(fn, 0);  // the caller is worker 0
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr worker_error;
  int worker_errors = 0;
  {
    core::MutexLock lock(mutex_);
    while (pending_ != 0) done_cv_.wait(lock);
    job_ = nullptr;
    worker_error = first_error_;
    worker_errors = error_count_;
    first_error_ = nullptr;
    error_count_ = 0;
  }
  // Error contract: one failure rethrows the original exception (type
  // preserved); several failures throw an aggregate so no worker's outcome
  // is silently dropped.  The caller counts as worker 0.
  const int failures = worker_errors + (caller_error ? 1 : 0);
  if (failures == 0) return;
  const std::exception_ptr primary = caller_error ? caller_error : worker_error;
  if (failures == 1) std::rethrow_exception(primary);
  throw WorkerFailure(failures, num_threads_, describe(primary));
}

void ThreadPool::set_cancel_token(core::CancelToken token) {
  core::MutexLock lock(mutex_);
  cancel_ = std::move(token);
}

void ThreadPool::parallel_for(std::int64_t n, const std::function<void(Range, int)>& fn) {
  if (n <= 0) return;
  // One handle copy per dispatch (an uncontended lock, noise next to the
  // fork/join itself); the per-chunk poll below is lock-free.
  core::CancelToken cancel;
  {
    core::MutexLock lock(mutex_);
    cancel = cancel_;
  }
  if (num_threads_ == 1) {
    // Through run_job so failpoints and tick accounting behave the same as
    // the multi-threaded path.
    if (cancel.stop_requested()) return;  // chunk-level cooperative skip
    run_job([&fn, n](int worker) { fn(Range{0, n}, worker); }, 0);
    return;
  }
  const int p = static_cast<int>(std::min<std::int64_t>(num_threads_, n));
  run_on_all([&](int worker) {
    if (worker >= p) return;
    if (cancel.stop_requested()) return;  // chunk-level cooperative skip
    const Range r = static_block(n, p, worker);
    if (r.size() > 0) fn(r, worker);
  });
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t grain,
                              const std::function<void(Range, int)>& fn) {
  if (grain <= 1) {
    parallel_for(n, fn);
    return;
  }
  if (n <= 0) return;
  core::CancelToken cancel;
  {
    core::MutexLock lock(mutex_);
    cancel = cancel_;
  }
  if (num_threads_ == 1) {
    if (cancel.stop_requested()) return;  // chunk-level cooperative skip
    run_job([&fn, n](int worker) { fn(Range{0, n}, worker); }, 0);
    return;
  }
  const int p = static_cast<int>(std::min<std::int64_t>(num_threads_, n));
  run_on_all([&](int worker) {
    if (worker >= p) return;
    if (cancel.stop_requested()) return;  // chunk-level cooperative skip
    const Range r = static_block_grain(n, grain, p, worker);
    if (r.size() > 0) fn(r, worker);
  });
}

ThreadPool& default_pool() {
  static ThreadPool pool(static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace bitflow::runtime
