// Wall-clock timing helpers used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace bitflow::runtime {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` repeatedly and returns the best (minimum) time per run in
/// seconds.  A warm-up run is executed first; then the function runs for at
/// least `min_total_seconds` or `min_iters` iterations, whichever is more.
/// Minimum-of-N is the standard estimator for dedicated-machine kernel
/// timing: noise is strictly additive.
double measure_best_seconds(const std::function<void()>& fn, int min_iters = 5,
                            double min_total_seconds = 0.05);

}  // namespace bitflow::runtime
