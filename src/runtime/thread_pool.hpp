// Persistent worker-thread pool with a fork/join parallel_for.
//
// BitFlow's multi-core parallelism (paper Alg. 1) splits the *fused H*W*
// output range of a convolution (and the K dimension of a fully connected
// layer) into contiguous blocks, one per thread.  The partition is static
// and deterministic: block b of p covers [b*n/p, (b+1)*n/p).  The same
// partition function is reused by the multicore scaling simulator
// (scaling_sim.hpp) so simulated speedups reflect the real load balance.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/check.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace bitflow::runtime {

/// Aggregate failure thrown by ThreadPool::run_on_all when more than one
/// worker's job throws: the message carries the failure count and the first
/// failing worker's message; failed_count() exposes the count for callers
/// that map pool failures to a Status (serve/session.cpp).  When exactly
/// one worker throws, the original exception is rethrown unchanged instead.
class WorkerFailure : public std::runtime_error {
 public:
  WorkerFailure(int failed, int total, const std::string& first_message)
      : std::runtime_error("parallel job: " + std::to_string(failed) + " of " +
                           std::to_string(total) + " workers failed; first: " + first_message),
        failed_(failed) {}
  [[nodiscard]] int failed_count() const noexcept { return failed_; }

 private:
  int failed_;
};

/// Per-worker execution tallies (see ThreadPool::stats()).
struct WorkerStats {
  std::uint64_t tasks = 0;    ///< jobs this worker executed
  std::uint64_t busy_ns = 0;  ///< approximate wall-clock spent inside jobs
};

/// Point-in-time utilization snapshot of one pool.
struct PoolStats {
  std::vector<WorkerStats> workers;  ///< index = worker index (0 = caller)
  [[nodiscard]] std::uint64_t total_tasks() const {
    std::uint64_t t = 0;
    for (const WorkerStats& w : workers) t += w.tasks;
    return t;
  }
  [[nodiscard]] std::uint64_t total_busy_ns() const {
    std::uint64_t t = 0;
    for (const WorkerStats& w : workers) t += w.busy_ns;
    return t;
  }
};

/// Inclusive-exclusive index range [begin, end).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
};

/// Static block partition used everywhere in BitFlow: block `b` of `p` over
/// `n` items.  Blocks differ in size by at most one item; consecutive blocks
/// tile [0, n) exactly (contiguous, non-overlapping).
///
/// Preconditions: n >= 0, p >= 1, 0 <= b < p, and n * p must not overflow
/// int64 (the partition arithmetic computes n * (b + 1)).
[[nodiscard]] inline Range static_block(std::int64_t n, int p, int b) noexcept {
  BF_DCHECK(n >= 0, "static_block: negative range length ", n);
  BF_DCHECK(p >= 1 && b >= 0 && b < p, "static_block: block ", b, " of ", p);
  BF_DCHECK(p <= 1 || n <= INT64_MAX / p, "static_block: n=", n, " * p=", p,
            " overflows the partition arithmetic");
  const std::int64_t lo = n * b / p;
  const std::int64_t hi = n * (b + 1) / p;
  return {lo, hi};
}

/// static_block with boundaries rounded up to multiples of `grain` (the last
/// block is capped at n): the kernel auto-tuner's parallel-axis split knob —
/// grain = out_w hands out whole output rows, grain = 1 degenerates to
/// static_block exactly.  Blocks still tile [0, n) contiguously; some may be
/// empty when p * grain > n.
[[nodiscard]] inline Range static_block_grain(std::int64_t n, std::int64_t grain, int p,
                                              int b) noexcept {
  BF_DCHECK(grain >= 1, "static_block_grain: grain ", grain);
  if (grain <= 1) return static_block(n, p, b);
  const Range r = static_block(n, p, b);
  const std::int64_t lo = std::min(n, (r.begin + grain - 1) / grain * grain);
  const std::int64_t hi = std::min(n, (r.end + grain - 1) / grain * grain);
  return {lo, hi};
}

/// Fixed-size pool of worker threads executing fork/join parallel loops.
///
/// The pool is created once (typically at engine initialization) and reused
/// across layers; workers sleep between jobs.  Thread count 1 degenerates to
/// inline execution with zero synchronization, which keeps single-thread
/// measurements honest.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` logical workers (>= 1).  The calling
  /// thread acts as worker 0, so only num_threads-1 OS threads are spawned.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Runs `fn(worker_index)` on every worker (including the caller as worker
  /// 0) and returns when all have finished (the job still completes on every
  /// worker even when some throw).  Error contract: if exactly one worker's
  /// fn throws, that exception is rethrown unchanged on the calling thread;
  /// if several throw, a WorkerFailure aggregating the count and the first
  /// message is thrown instead.  The pool remains fully usable afterwards.
  void run_on_all(const std::function<void(int)>& fn) BF_EXCLUDES(mutex_);

  /// Splits [0, n) into static blocks and runs `fn(range, worker_index)` on
  /// each worker.  Workers whose block is empty skip the call.
  ///
  /// Cooperative cancellation: when a cancel token is installed
  /// (set_cancel_token) and fires, each worker checks it once at the start
  /// of its range chunk and *skips* the chunk — no exception crosses a pool
  /// worker, so the run_on_all error contract is unchanged.  The caller
  /// (graph layer) converts the latched token into an error at its next
  /// layer-boundary checkpoint; buffers touched by skipped chunks are
  /// garbage by then but provably never read.
  void parallel_for(std::int64_t n, const std::function<void(Range, int)>& fn)
      BF_EXCLUDES(mutex_);

  /// parallel_for with block boundaries rounded to multiples of `grain`
  /// (static_block_grain) — the tuner's parallel-axis split.  grain <= 1 is
  /// exactly the plain overload; the partition never changes what is
  /// computed, only which worker computes it.
  void parallel_for(std::int64_t n, std::int64_t grain,
                    const std::function<void(Range, int)>& fn) BF_EXCLUDES(mutex_);

  /// Installs the token every subsequent parallel_for chunk polls (an inert
  /// default token disables the checks beyond one null-pointer test).  Must
  /// not be called concurrently with a running job on this pool — the owner
  /// of the pool (one inference stream per context) sets it between
  /// inferences.
  void set_cancel_token(core::CancelToken token) BF_EXCLUDES(mutex_);

  /// Per-worker tallies since construction: every worker's task count and
  /// approximate busy time (two clock reads per job — noise next to a layer
  /// job, so always on).  Safe to call concurrently with running jobs; the
  /// totals also feed the process-wide `runtime.pool.*` telemetry counters.
  [[nodiscard]] PoolStats stats() const;

  /// OS thread ids (gettid) of the spawned workers, stamped by each worker
  /// as its loop starts; worker 0 is the caller and is NOT included (its
  /// identity changes per dispatch).  A worker that has not stamped yet is
  /// skipped.  Consumed by the perf-counter sampler to attach per-thread
  /// counter groups; empty on platforms without gettid.
  [[nodiscard]] std::vector<int> worker_tids() const;

 private:
  void worker_loop(int index);
  /// One worker's share of a job: fault-injection hooks + tick accounting.
  void run_job(const std::function<void(int)>& fn, int worker);

  /// Cache-line-padded so workers never contend on each other's tallies.
  /// Ordering contract: both counters are pure tallies written by their
  /// owning worker with relaxed adds and read racily by stats(); they order
  /// nothing, so every access is memory_order_relaxed.
  struct alignas(64) Ticks {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  int num_threads_;
  std::unique_ptr<Ticks[]> ticks_;
  /// Ordering contract: slot i is written once (relaxed) by worker i as its
  /// loop starts and read racily (relaxed) by worker_tids(); a reader that
  /// misses a late-starting worker's store just skips the still-zero slot.
  std::unique_ptr<std::atomic<int>[]> tids_;
  std::vector<std::thread> threads_;

  // Fork/join rendezvous state.  mutex_ guards the whole job protocol: the
  // dispatcher publishes {job_, job_epoch_, pending_} under it, workers pick
  // the job up and report completion/errors under it, and both cv waits
  // re-check their guarded condition in explicit loops.
  core::Mutex mutex_;
  core::CondVar start_cv_;
  core::CondVar done_cv_;
  /// Cooperative-cancellation token polled by parallel_for chunks.  Guarded
  /// by mutex_ only for the handle copy (set vs the per-dispatch snapshot);
  /// the token's own state is atomic and polled lock-free inside chunks.
  core::CancelToken cancel_ BF_GUARDED_BY(mutex_);
  const std::function<void(int)>* job_ BF_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_epoch_ BF_GUARDED_BY(mutex_) = 0;
  int pending_ BF_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ BF_GUARDED_BY(mutex_) = false;
  /// First worker exception of the current job.
  std::exception_ptr first_error_ BF_GUARDED_BY(mutex_);
  /// Worker exceptions of the current job.
  int error_count_ BF_GUARDED_BY(mutex_) = 0;
};

/// Process-wide default pool, sized to the hardware concurrency; created on
/// first use.  Engine code paths that want a specific thread count construct
/// their own pool instead.
ThreadPool& default_pool();

}  // namespace bitflow::runtime
