// Single-precision GEMM for the full-precision baselines.
//
// The paper's float comparators are "counterpart full-precision operators"
// executed through the conventional image-to-column + BLAS-sgemm route; the
// engine itself is dependency-free, so BitFlow ships its own sgemm: a
// register-blocked, cache-tiled ikj kernel with an AVX2+FMA inner loop and a
// portable fallback, dispatched by CPUID.
#pragma once

#include <cstdint>

#include "runtime/thread_pool.hpp"

namespace bitflow::baseline {

/// C (M x N, row-major) = A (M x K, row-major) * B (K x N, row-major).
/// C is overwritten.  Multi-core parallelism splits the M dimension.
void sgemm(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
           std::int64_t n, runtime::ThreadPool& pool);

/// Portable scalar/auto-vec implementation (always available).
void sgemm_generic(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n, runtime::ThreadPool& pool);

/// AVX2 + FMA implementation (requires AVX2 and FMA at runtime).
void sgemm_avx2(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                std::int64_t n, runtime::ThreadPool& pool);

/// y (M) = A (M x N, row-major) * x (N): the fully connected baseline.
void sgemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n,
           runtime::ThreadPool& pool);

}  // namespace bitflow::baseline
