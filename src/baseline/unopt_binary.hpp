// The "unoptimized BNN implementation" baseline of Figs. 7-9.
//
// This is the implementation style BitFlow argues against (Sec. III-A): the
// conventional image-to-column dataflow inherited from float convolution,
// with binary arithmetic done on scalar 32-bit words — bit-packing happens
// *after* unfolding, so the h*w-fold input blow-up is binarized and packed
// on every inference, and no SIMD or loop tiling is applied.  Hardware
// POPCNT is used (the baseline is unvectorized, not artificially crippled).
//
// Weights are still packed once at construction: weight preprocessing is a
// network-level property shared by every binary engine, not part of what
// vectorization buys.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/binary_maxpool.hpp"
#include "kernels/conv_spec.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/packed_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::baseline {

/// im2col + scalar-32-bit binary convolution.
class UnoptBinaryConv {
 public:
  UnoptBinaryConv(const FilterBank& filters, kernels::ConvSpec spec);

  /// `in` is the (pre-padded) float activation tensor; `out` receives the
  /// Eq. 1 dot products.  Each call unfolds, binarizes, packs, and multiplies
  /// — the full image-to-column pipeline the paper times.
  void run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out) const;

  [[nodiscard]] const kernels::ConvSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::int64_t num_filters() const noexcept { return weights_.rows(); }

 private:
  kernels::ConvSpec spec_;
  std::int64_t channels_;
  PackedMatrix weights_;  // K x (kh*kw*C) bits, row k = flattened filter k
  mutable std::vector<float> cols_scratch_;
};

/// Scalar-32-bit binary fully connected operator (n inputs, k outputs,
/// weights in the paper's row-major n x k float layout, packed transposed at
/// construction).
class UnoptBinaryFc {
 public:
  UnoptBinaryFc(const float* w, std::int64_t n, std::int64_t k);

  /// Binarizes + packs `x` (n floats), then computes the k Eq. 1 dots.
  void run(const float* x, runtime::ThreadPool& pool, float* y) const;

  [[nodiscard]] std::int64_t inputs() const noexcept { return n_; }
  [[nodiscard]] std::int64_t outputs() const noexcept { return weights_.rows(); }

 private:
  std::int64_t n_;
  PackedMatrix weights_;  // k x n bits
};

/// Scalar-32-bit binary max pooling (per-pixel word OR loop, no row-wise
/// vectorization).  Same output contract as kernels::binary_maxpool with
/// margin 0.
void unopt_binary_maxpool(const PackedTensor& in, const kernels::PoolSpec& spec,
                          runtime::ThreadPool& pool, PackedTensor& out);

}  // namespace bitflow::baseline
