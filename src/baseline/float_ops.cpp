#include "baseline/float_ops.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "baseline/sgemm.hpp"

namespace bitflow::baseline {

Tensor pad_float(const Tensor& in, std::int64_t margin, float value) {
  if (margin < 0) throw std::invalid_argument("pad_float: negative margin");
  Tensor out = Tensor::hwc(in.height() + 2 * margin, in.width() + 2 * margin, in.channels());
  if (value != 0.0f) {
    for (float& v : out.elements()) v = value;
  }
  const std::int64_t row_bytes = in.width() * in.channels() * static_cast<std::int64_t>(sizeof(float));
  for (std::int64_t h = 0; h < in.height(); ++h) {
    std::memcpy(out.data() + out.index(h + margin, margin, 0),
                in.data() + in.index(h, 0, 0),
                static_cast<std::size_t>(row_bytes));
  }
  return out;
}

void float_conv_direct(const Tensor& in, const FilterBank& filters,
                       const kernels::ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out) {
  if (in.channels() != filters.channels()) {
    throw std::invalid_argument("float_conv_direct: channel mismatch");
  }
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  const std::int64_t num_k = filters.num_filters();
  if (out.height() != oh || out.width() != ow || out.channels() != num_k) {
    throw std::invalid_argument("float_conv_direct: output mis-shaped");
  }
  const std::int64_t kh = spec.kernel_h, kw = spec.kernel_w, c = in.channels();
  pool.parallel_for(oh * ow, [&](runtime::Range r, int) {
    for (std::int64_t idx = r.begin; idx < r.end; ++idx) {
      const std::int64_t y = idx / ow, x = idx % ow;
      for (std::int64_t k = 0; k < num_k; ++k) {
        float acc = 0.0f;
        for (std::int64_t i = 0; i < kh; ++i) {
          for (std::int64_t j = 0; j < kw; ++j) {
            const float* px = in.data() + in.index(y * spec.stride + i, x * spec.stride + j, 0);
            const float* fw = filters.data() + filters.index(k, i, j, 0);
            for (std::int64_t cc = 0; cc < c; ++cc) acc += px[cc] * fw[cc];
          }
        }
        out.at(y, x, k) = acc;
      }
    }
  });
}

void im2col(const Tensor& in, const kernels::ConvSpec& spec, float* cols) {
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  const std::int64_t c = in.channels();
  const std::int64_t row_len = spec.kernel_h * spec.kernel_w * c;
  // HWC input: one window row (kw taps x C channels) is contiguous, so the
  // unfold is kh block copies per output pixel.
  const std::int64_t copy_floats = spec.kernel_w * c;
  for (std::int64_t y = 0; y < oh; ++y) {
    for (std::int64_t x = 0; x < ow; ++x) {
      float* dst = cols + (y * ow + x) * row_len;
      for (std::int64_t i = 0; i < spec.kernel_h; ++i) {
        std::memcpy(dst + i * copy_floats,
                    in.data() + in.index(y * spec.stride + i, x * spec.stride, 0),
                    static_cast<std::size_t>(copy_floats) * sizeof(float));
      }
    }
  }
}

std::vector<float> flatten_filters_transposed(const FilterBank& filters) {
  const std::int64_t kk = filters.kernel_h() * filters.kernel_w() * filters.channels();
  const std::int64_t k = filters.num_filters();
  std::vector<float> wt(static_cast<std::size_t>(kk * k));
  // Filter k is already contiguous (tap-major, channel-minor) in FilterBank,
  // which matches the im2col column order; transpose k to the minor axis.
  const float* src = filters.data();
  for (std::int64_t f = 0; f < k; ++f) {
    for (std::int64_t e = 0; e < kk; ++e) {
      wt[static_cast<std::size_t>(e * k + f)] = src[f * kk + e];
    }
  }
  return wt;
}

void float_conv_im2col(const Tensor& in, const std::vector<float>& weights_t, std::int64_t k,
                       const kernels::ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out,
                       std::vector<float>& cols_scratch) {
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  const std::int64_t row_len = spec.kernel_h * spec.kernel_w * in.channels();
  if (out.height() != oh || out.width() != ow || out.channels() != k) {
    throw std::invalid_argument("float_conv_im2col: output mis-shaped");
  }
  if (weights_t.size() != static_cast<std::size_t>(row_len * k)) {
    throw std::invalid_argument("float_conv_im2col: weight matrix mis-shaped");
  }
  cols_scratch.resize(static_cast<std::size_t>(oh * ow * row_len));
  im2col(in, spec, cols_scratch.data());
  // O (M x K) = cols (M x row_len) * W^T (row_len x K); with HWC output the
  // result lands directly in the out tensor (channel minor = K minor).
  sgemm(cols_scratch.data(), weights_t.data(), out.data(), oh * ow, row_len, k, pool);
}

void float_maxpool(const Tensor& in, const kernels::PoolSpec& spec, runtime::ThreadPool& pool,
                   Tensor& out) {
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  const std::int64_t c = in.channels();
  if (out.height() != oh || out.width() != ow || out.channels() != c) {
    throw std::invalid_argument("float_maxpool: output mis-shaped");
  }
  pool.parallel_for(oh, [&](runtime::Range r, int) {
    for (std::int64_t y = r.begin; y < r.end; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        float* dst = &out.at(y, x, 0);
        for (std::int64_t cc = 0; cc < c; ++cc) dst[cc] = -std::numeric_limits<float>::infinity();
        for (std::int64_t i = 0; i < spec.pool_h; ++i) {
          for (std::int64_t j = 0; j < spec.pool_w; ++j) {
            const float* src = in.data() + in.index(y * spec.stride + i, x * spec.stride + j, 0);
            for (std::int64_t cc = 0; cc < c; ++cc) dst[cc] = std::max(dst[cc], src[cc]);
          }
        }
      }
    }
  });
}

void float_fc(const float* w, const float* x, float* y, std::int64_t n, std::int64_t k_count,
              runtime::ThreadPool& pool) {
  // y[k] = sum_n w[nn * k_count + k] * x[nn]: accumulate axpy-style so the
  // inner loop streams contiguous weight rows and vectorizes.
  pool.parallel_for(k_count, [&](runtime::Range r, int) {
    const std::int64_t len = r.size();
    float* yr = y + r.begin;
    std::memset(yr, 0, static_cast<std::size_t>(len) * sizeof(float));
    for (std::int64_t nn = 0; nn < n; ++nn) {
      const float xv = x[nn];
      const float* wr = w + nn * k_count + r.begin;
      for (std::int64_t k = 0; k < len; ++k) yr[k] += xv * wr[k];
    }
  });
}

}  // namespace bitflow::baseline
