#include <cstring>

#include "baseline/sgemm.hpp"

namespace bitflow::baseline {

void sgemm_generic(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n, runtime::ThreadPool& pool) {
  // ikj loop order: the j loop streams one row of B and one row of C, which
  // the compiler auto-vectorizes with the build's baseline ISA.  K is
  // blocked so the B panel stays in L2.
  constexpr std::int64_t kKc = 256;
  pool.parallel_for(m, [&](runtime::Range r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      float* ci = c + i * n;
      std::memset(ci, 0, static_cast<std::size_t>(n) * sizeof(float));
      for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
        const std::int64_t k1 = std::min(k, k0 + kKc);
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aik = a[i * k + kk];
          const float* bk = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  });
}

void sgemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n,
           runtime::ThreadPool& pool) {
  pool.parallel_for(m, [&](runtime::Range r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      const float* ai = a + i * n;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        acc0 += ai[j + 0] * x[j + 0];
        acc1 += ai[j + 1] * x[j + 1];
        acc2 += ai[j + 2] * x[j + 2];
        acc3 += ai[j + 3] * x[j + 3];
      }
      float acc = acc0 + acc1 + acc2 + acc3;
      for (; j < n; ++j) acc += ai[j] * x[j];
      y[i] = acc;
    }
  });
}

}  // namespace bitflow::baseline
