#include "baseline/sgemm.hpp"

#include "simd/cpu_features.hpp"

namespace bitflow::baseline {

void sgemm(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
           std::int64_t n, runtime::ThreadPool& pool) {
  if (simd::cpu_features().avx2 && simd::cpu_features().fma) {
    sgemm_avx2(a, b, c, m, k, n, pool);
  } else {
    sgemm_generic(a, b, c, m, k, n, pool);
  }
}

}  // namespace bitflow::baseline
