// AVX2 + FMA sgemm: 2x16 register-blocked micro-kernel inside an
// L2-resident K panel.  Roughly the arithmetic shape a BLAS would use,
// without the packing machinery — adequate as the full-precision baseline
// the binary kernels are measured against.
#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "baseline/sgemm.hpp"

namespace bitflow::baseline {

void sgemm_avx2(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                std::int64_t n, runtime::ThreadPool& pool) {
  constexpr std::int64_t kKc = 256;  // K panel height kept hot in L2
  pool.parallel_for(m, [&](runtime::Range r, int) {
    // Two rows of C at a time share every B row load.
    std::int64_t i = r.begin;
    auto zero_row = [&](std::int64_t row) {
      std::memset(c + row * n, 0, static_cast<std::size_t>(n) * sizeof(float));
    };
    for (; i + 2 <= r.end; i += 2) {
      zero_row(i);
      zero_row(i + 1);
      float* c0 = c + i * n;
      float* c1 = c + (i + 1) * n;
      for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
        const std::int64_t k1 = std::min(k, k0 + kKc);
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const __m256 a0 = _mm256_set1_ps(a[i * k + kk]);
          const __m256 a1 = _mm256_set1_ps(a[(i + 1) * k + kk]);
          const float* bk = b + kk * n;
          std::int64_t j = 0;
          for (; j + 16 <= n; j += 16) {
            const __m256 b0 = _mm256_loadu_ps(bk + j);
            const __m256 b1 = _mm256_loadu_ps(bk + j + 8);
            _mm256_storeu_ps(c0 + j, _mm256_fmadd_ps(a0, b0, _mm256_loadu_ps(c0 + j)));
            _mm256_storeu_ps(c0 + j + 8, _mm256_fmadd_ps(a0, b1, _mm256_loadu_ps(c0 + j + 8)));
            _mm256_storeu_ps(c1 + j, _mm256_fmadd_ps(a1, b0, _mm256_loadu_ps(c1 + j)));
            _mm256_storeu_ps(c1 + j + 8, _mm256_fmadd_ps(a1, b1, _mm256_loadu_ps(c1 + j + 8)));
          }
          for (; j < n; ++j) {
            c0[j] += a[i * k + kk] * bk[j];
            c1[j] += a[(i + 1) * k + kk] * bk[j];
          }
        }
      }
    }
    for (; i < r.end; ++i) {
      zero_row(i);
      float* c0 = c + i * n;
      for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
        const std::int64_t k1 = std::min(k, k0 + kKc);
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const __m256 a0 = _mm256_set1_ps(a[i * k + kk]);
          const float* bk = b + kk * n;
          std::int64_t j = 0;
          for (; j + 8 <= n; j += 8) {
            _mm256_storeu_ps(c0 + j, _mm256_fmadd_ps(a0, _mm256_loadu_ps(bk + j),
                                                     _mm256_loadu_ps(c0 + j)));
          }
          for (; j < n; ++j) c0[j] += a[i * k + kk] * bk[j];
        }
      }
    }
  });
}

}  // namespace bitflow::baseline
