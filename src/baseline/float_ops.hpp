// Full-precision baseline operators ("counterpart float-value operators" in
// the paper's figures).
//
// Convolution goes through the conventional image-to-column route
// (Sec. II-B, Fig. 2): unfold the input into an M x (kh*kw*C) matrix, then
// one sgemm against the flattened filters.  A direct (no-unfold) reference
// convolution is kept alongside for correctness checks.
//
// All operators consume HWC tensors; convolutions are *valid* (the caller
// pads, mirroring the binary path — see pad_float below).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/binary_maxpool.hpp"
#include "kernels/conv_spec.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/filter_bank.hpp"
#include "tensor/tensor.hpp"

namespace bitflow::baseline {

/// Returns a copy of `in` with `margin` pixels of `value` on each side.
[[nodiscard]] Tensor pad_float(const Tensor& in, std::int64_t margin, float value = 0.0f);

/// Direct (triple-loop) valid convolution: the correctness reference for
/// both the float im2col path and (through sign decoding) the binary path.
void float_conv_direct(const Tensor& in, const FilterBank& filters,
                       const kernels::ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out);

/// Unfolds `in` for a (kh, kw, stride) valid convolution into `cols`:
/// row (y*out_w + x) holds the window at (y, x), tap-major then channel —
/// i.e. column index (i*kw + j)*C + c.  `cols` must have room for
/// out_h*out_w * kh*kw*C floats.
void im2col(const Tensor& in, const kernels::ConvSpec& spec, float* cols);

/// im2col + sgemm convolution.  `weights_t` is the (kh*kw*C) x K transposed
/// flattened filter matrix produced by flatten_filters_transposed (computed
/// once at init, matching BitFlow's network-level weight preprocessing).
void float_conv_im2col(const Tensor& in, const std::vector<float>& weights_t, std::int64_t k,
                       const kernels::ConvSpec& spec, runtime::ThreadPool& pool, Tensor& out,
                       std::vector<float>& cols_scratch);

/// Flattens a filter bank to the (kh*kw*C) x K matrix float_conv_im2col
/// expects: element (kk, k) = filter k, flat tap kk.
[[nodiscard]] std::vector<float> flatten_filters_transposed(const FilterBank& filters);

/// Valid max pooling over an HWC float tensor.
void float_maxpool(const Tensor& in, const kernels::PoolSpec& spec, runtime::ThreadPool& pool,
                   Tensor& out);

/// Fully connected layer: y[k] = sum_n w[n*k_count + k] * x[n] (weights in
/// the paper's row-major n x k layout); y has k_count elements.
void float_fc(const float* w, const float* x, float* y, std::int64_t n, std::int64_t k_count,
              runtime::ThreadPool& pool);

}  // namespace bitflow::baseline
