#include "baseline/unopt_binary.hpp"

#include <stdexcept>

#include "baseline/float_ops.hpp"

namespace bitflow::baseline {

namespace {

/// Scalar 32-bit xor+popcount over a word run viewed as uint32 halves —
/// the arithmetic granularity of a bit-packed but unvectorized engine.
std::uint64_t xor_popcount_u32(const std::uint64_t* a, const std::uint64_t* b, std::int64_t n64) {
  const auto* a32 = reinterpret_cast<const std::uint32_t*>(a);
  const auto* b32 = reinterpret_cast<const std::uint32_t*>(b);
  std::uint64_t total = 0;
  for (std::int64_t i = 0; i < 2 * n64; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcount(a32[i] ^ b32[i]));
  }
  return total;
}

/// Bit-by-bit binarize + pack of one float row (no bit64_u fusion tricks).
void pack_row_simple(const float* src, std::int64_t bits, std::uint64_t* dst) {
  const std::int64_t words = (bits + 63) / 64;
  for (std::int64_t w = 0; w < words; ++w) dst[w] = 0;
  for (std::int64_t i = 0; i < bits; ++i) {
    if (src[i] >= 0.0f) dst[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
}

/// Packs a filter bank to the K x (kh*kw*C) row matrix the im2col gemm
/// consumes (filter taps are already contiguous in FilterBank).
PackedMatrix pack_filter_rows(const FilterBank& filters) {
  const std::int64_t kk =
      filters.kernel_h() * filters.kernel_w() * filters.channels();
  PackedMatrix w(filters.num_filters(), kk);
  for (std::int64_t k = 0; k < filters.num_filters(); ++k) {
    pack_row_simple(filters.data() + k * kk, kk, w.row(k));
  }
  return w;
}

}  // namespace

UnoptBinaryConv::UnoptBinaryConv(const FilterBank& filters, kernels::ConvSpec spec)
    : spec_(spec), channels_(filters.channels()), weights_(pack_filter_rows(filters)) {
  if (spec.kernel_h != filters.kernel_h() || spec.kernel_w != filters.kernel_w()) {
    throw std::invalid_argument("UnoptBinaryConv: spec/filter mismatch");
  }
}

void UnoptBinaryConv::run(const Tensor& in, runtime::ThreadPool& pool, Tensor& out) const {
  if (in.channels() != channels_) {
    throw std::invalid_argument("UnoptBinaryConv: channel mismatch");
  }
  const std::int64_t oh = spec_.out_h(in.height());
  const std::int64_t ow = spec_.out_w(in.width());
  const std::int64_t m = oh * ow;
  const std::int64_t row_len = spec_.kernel_h * spec_.kernel_w * channels_;
  const std::int64_t num_k = weights_.rows();
  if (out.height() != oh || out.width() != ow || out.channels() != num_k) {
    throw std::invalid_argument("UnoptBinaryConv: output mis-shaped");
  }

  // Step 1: unfold (the float-width blow-up image-to-column always pays).
  cols_scratch_.resize(static_cast<std::size_t>(m * row_len));
  im2col(in, spec_, cols_scratch_.data());

  // Step 2: binarize + pack the unfolded matrix — after unfolding, so the
  // packing work is multiplied by the kernel footprint.
  PackedMatrix cols(m, row_len);
  pool.parallel_for(m, [&](runtime::Range r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      pack_row_simple(cols_scratch_.data() + i * row_len, row_len, cols.row(i));
    }
  });

  // Step 3: scalar 32-bit binary gemm, no unrolling or tiling.
  const std::int64_t n_words = cols.words_per_row();
  float* out_data = out.data();
  pool.parallel_for(m, [&](runtime::Range r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      const std::uint64_t* xi = cols.row(i);
      for (std::int64_t k = 0; k < num_k; ++k) {
        const std::uint64_t pops = xor_popcount_u32(xi, weights_.row(k), n_words);
        out_data[i * num_k + k] =
            static_cast<float>(row_len - 2 * static_cast<std::int64_t>(pops));
      }
    }
  });
}

UnoptBinaryFc::UnoptBinaryFc(const float* w, std::int64_t n, std::int64_t k)
    : n_(n), weights_(k, n) {
  // Transposed pack (column j of the n x k matrix -> row j), bit by bit.
  for (std::int64_t j = 0; j < k; ++j) {
    std::uint64_t* row = weights_.row(j);
    for (std::int64_t i = 0; i < n; ++i) {
      if (w[i * k + j] >= 0.0f) row[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }
}

void UnoptBinaryFc::run(const float* x, runtime::ThreadPool& pool, float* y) const {
  PackedMatrix xa(1, n_);
  pack_row_simple(x, n_, xa.row(0));
  const std::int64_t n_words = xa.words_per_row();
  const std::int64_t k = weights_.rows();
  pool.parallel_for(k, [&](runtime::Range r, int) {
    for (std::int64_t j = r.begin; j < r.end; ++j) {
      const std::uint64_t pops = xor_popcount_u32(xa.row(0), weights_.row(j), n_words);
      y[j] = static_cast<float>(n_ - 2 * static_cast<std::int64_t>(pops));
    }
  });
}

void unopt_binary_maxpool(const PackedTensor& in, const kernels::PoolSpec& spec,
                          runtime::ThreadPool& pool, PackedTensor& out) {
  const std::int64_t oh = spec.out_h(in.height());
  const std::int64_t ow = spec.out_w(in.width());
  if (out.height() != oh || out.width() != ow || out.channels() != in.channels()) {
    throw std::invalid_argument("unopt_binary_maxpool: output mis-shaped");
  }
  const std::int64_t pc = in.words_per_pixel();
  pool.parallel_for(oh, [&](runtime::Range r, int) {
    for (std::int64_t y = r.begin; y < r.end; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        auto* dst32 = reinterpret_cast<std::uint32_t*>(out.pixel(y, x));
        for (std::int64_t p = 0; p < 2 * pc; ++p) dst32[p] = 0;
        for (std::int64_t i = 0; i < spec.pool_h; ++i) {
          for (std::int64_t j = 0; j < spec.pool_w; ++j) {
            const auto* src32 = reinterpret_cast<const std::uint32_t*>(
                in.pixel(y * spec.stride + i, x * spec.stride + j));
            for (std::int64_t p = 0; p < 2 * pc; ++p) dst32[p] |= src32[p];
          }
        }
      }
    }
  });
}

}  // namespace bitflow::baseline
