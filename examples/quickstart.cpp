// Quickstart: build a small binarized network, run one inference, inspect
// what the engine did.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface in ~60 lines:
//   1. detect the hardware and print the scheduler's kernel mapping;
//   2. assemble a conv/pool/fc network from float weights;
//   3. finalize (shape inference + weight packing + memory planning);
//   4. run batch-1 inference on a random image and read the scores.
#include <cstdio>

#include "core/bitflow.hpp"

int main() {
  using namespace bitflow;

  // 1. What machine are we on, and which kernels will the vector execution
  //    scheduler pick?  (paper Fig. 4 / Fig. 6)
  std::printf("%s\n", system_report().c_str());

  // 2. Describe the network.  Weights are ordinary floats here (they would
  //    normally come from training — see train_and_deploy.cpp); the engine
  //    binarizes and bit-packs them once, at finalize().
  graph::NetworkConfig config;
  config.num_threads = 2;
  config.profile = true;  // record per-layer wall clock
  graph::BinaryNetwork net(config);
  net.add_conv("conv1", models::random_filters(/*k=*/64, 3, 3, /*c=*/3, /*seed=*/1),
               /*stride=*/1, /*pad=*/1);
  net.add_maxpool("pool1", kernels::PoolSpec{2, 2, 2});
  net.add_conv("conv2", models::random_filters(128, 3, 3, 64, 2), 1, 1);
  net.add_maxpool("pool2", kernels::PoolSpec{2, 2, 2});
  net.add_fc("fc", models::random_fc_weights(8 * 8 * 128, 10, 3), 8 * 8 * 128, 10);

  // 3. Freeze the graph: shape inference, kernel selection, one-time weight
  //    binarize+pack, and pre-allocation of every buffer with the margins
  //    that make padding free (paper Fig. 5).
  net.finalize(graph::TensorDesc{32, 32, 3});
  std::printf("network: %zu layers, %lld bytes of packed weights\n", net.layers().size(),
              static_cast<long long>(net.packed_weight_bytes()));
  for (const auto& l : net.layers()) {
    std::printf("  %-7s %-8s in %3lldx%-3lldx%-4lld -> out %3lldx%-3lldx%-4lld  kernel=%s\n",
                l.name.c_str(), graph::layer_kind_name(l.kind), static_cast<long long>(l.in.h),
                static_cast<long long>(l.in.w), static_cast<long long>(l.in.c),
                static_cast<long long>(l.out.h), static_cast<long long>(l.out.w),
                static_cast<long long>(l.out.c), std::string(simd::isa_name(l.isa)).c_str());
  }

  // 4. Run an inference.
  Tensor image = Tensor::hwc(32, 32, 3);
  fill_uniform(image, /*seed=*/42);
  const auto scores = net.infer(image);
  std::printf("\nscores:");
  for (float s : scores) std::printf(" %+.0f", s);
  std::printf("\nper-stage ms (first entry = input pack):");
  for (double ms : net.last_profile_ms()) std::printf(" %.3f", ms);
  std::printf("\n");
  return 0;
}
