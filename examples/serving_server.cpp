// The wire front-end: a net::Server over a sharded serving tier.
//
//   $ ./examples/serving_server
//
// Where serving_engine.cpp submits requests in-process, this example puts
// the full production tier on a TCP socket:
//   1. build a model and share ONE finalized network across two engine
//      shards behind a ShardRouter (power-of-two-choices routing, zero-copy
//      weights — N shards cost N activation buffers, not N weight copies);
//   2. start net::Server on an ephemeral loopback port — one poll loop
//      speaking the length-prefixed BitFlow framing protocol, with a
//      minimal HTTP/1.1 path for health and metrics probes;
//   3. drive it with net::Client: single requests, a pipelined burst, and
//      a request carrying a deadline the server enforces end to end;
//   4. probe the HTTP endpoints a load balancer or Prometheus would hit:
//      GET /healthz, /varz, /metrics;
//   5. drain and stop — /healthz flips unhealthy first, so an external
//      balancer stops sending traffic before the socket closes.
//
// The framing protocol (see src/net/frame.hpp): a 24-byte little-endian
// header — magic "BF01", type, priority, request id, deadline_ms, payload
// length — then an HWC float tensor.  Anything that fails to parse gets
// one machine-readable error frame and the connection is closed.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bitflow.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/shard_router.hpp"

int main() {
  using namespace bitflow;

  // 1. A small conv->pool->fc model, served from memory by two shards.
  io::Model model(graph::TensorDesc{16, 16, 8});
  model.add_conv("c1", bitpack::pack_filters(models::random_filters(32, 3, 3, 8, 7)), 1, 1,
                 std::vector<float>(32, 0.0f));
  model.add_maxpool("p1", kernels::PoolSpec{2, 2, 2});
  model.add_fc("f1", bitpack::pack_transpose_fc_weights(
                         models::random_fc_weights(8 * 8 * 32, 10, 8).data(), 8 * 8 * 32, 10));

  serve::RouterConfig rcfg;
  rcfg.shards = 2;
  rcfg.engine.workers = 1;
  rcfg.engine.max_batch = 8;
  rcfg.engine.net.num_threads = 1;
  auto routed = serve::ShardRouter::create(model, rcfg);
  if (!routed.is_ok()) {
    std::printf("router create failed: %s\n", routed.status().to_string().c_str());
    return 1;
  }
  serve::ShardRouter router = std::move(routed).value();

  // 2. The front-end.  port=0 asks the kernel for an ephemeral port; a real
  // deployment would pin cfg.port and put the printed address in service
  // discovery.
  net::ServerConfig scfg;
  scfg.host = "127.0.0.1";
  scfg.port = 0;
  auto started = net::Server::start(router, scfg);
  if (!started.is_ok()) {
    std::printf("server start failed: %s\n", started.status().to_string().c_str());
    return 1;
  }
  net::Server server = std::move(started).value();
  std::printf("serving on 127.0.0.1:%u (2 shards, zero-copy weights)\n", server.port());

  // 3. A client.  infer() frames the tensor, writes it, and decodes the
  // response or error frame — the same bytes any other language could send.
  auto connected = net::Client::connect("127.0.0.1", server.port());
  if (!connected.is_ok()) {
    std::printf("connect failed: %s\n", connected.status().to_string().c_str());
    return 1;
  }
  net::Client client = std::move(connected).value();

  Tensor input = Tensor::hwc(16, 16, 8);
  fill_uniform(input, 42);
  net::RequestFrame req;
  req.id = 1;
  req.deadline_ms = 250;  // enforced server-side: expire in queue, not on the wire
  req.h = 16;
  req.w = 16;
  req.c = 8;
  req.data.assign(input.elements().begin(), input.elements().end());
  auto scores = client.infer(req, std::chrono::milliseconds(2000));
  if (!scores.is_ok()) {
    std::printf("infer failed: %s\n", scores.status().to_string().c_str());
    return 1;
  }
  std::printf("request 1: %zu scores, argmax %zu\n", scores.value().size(),
              static_cast<std::size_t>(
                  std::max_element(scores.value().begin(), scores.value().end()) -
                  scores.value().begin()));

  // Pipelining: many frames on the wire before the first response — the
  // server's shards batch whatever arrives together.
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    net::RequestFrame burst = req;
    burst.id = static_cast<std::uint64_t>(2 + i);
    if (auto sent = client.send(burst); !sent.is_ok()) {
      std::printf("send failed: %s\n", sent.to_string().c_str());
      return 1;
    }
  }
  int answered = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto frame = client.recv(std::chrono::milliseconds(2000));
    if (frame.is_ok()) ++answered;
  }
  std::printf("pipelined burst: %d/%d answered\n", answered, kBurst);

  // 4. The operational surface.  /healthz gates load balancers, /varz is
  // for humans, /metrics is Prometheus text exposition (PR 5 format).
  for (const char* target : {"/healthz", "/varz"}) {
    auto body = net::Client::http_get("127.0.0.1", server.port(), target);
    if (body.is_ok()) {
      std::printf("GET %s ->\n%s", target, body.value().c_str());
    }
  }
  auto metrics = net::Client::http_get("127.0.0.1", server.port(), "/metrics");
  if (metrics.is_ok()) {
    int lines = 0;
    for (char ch : metrics.value()) lines += ch == '\n' ? 1 : 0;
    std::printf("GET /metrics -> %d lines (serve_shard_*, net_* families)\n", lines);
  }

  // 5. Graceful exit: drain resolves every admitted request and flips
  // /healthz to 503 so a balancer stops routing here, then stop() joins the
  // poll loop and closes the socket.
  if (auto drained = router.drain(std::chrono::milliseconds(2000)); !drained.is_ok()) {
    std::printf("drain: %s\n", drained.to_string().c_str());
  }
  auto health = net::Client::http_get("127.0.0.1", server.port(), "/healthz");
  std::printf("post-drain /healthz healthy=%s\n", health.is_ok() ? "yes" : "no");
  server.stop();
  std::printf("server stopped cleanly\n");
  return 0;
}
