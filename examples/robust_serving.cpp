// Robust serving: the Status-returning boundary around model load + infer.
//
//   $ ./examples/robust_serving
//
// Everything inside the engine reports failure by exception; an
// InferenceSession converts every failure into a core::Status so a serving
// process never crashes on a bad file, a bad request, or a wedged worker:
//   1. save a small model and open it through serve::InferenceSession;
//   2. serve a good request and a malformed one;
//   3. inject a worker fault with the failpoint framework, watch it surface
//      as kWorkerFailure, and verify the session recovers bit-exactly;
//   4. demonstrate the per-request deadline watchdog.
#include <cstdio>
#include <filesystem>

#include "core/bitflow.hpp"
#include "io/model.hpp"

int main() {
  using namespace bitflow;

  // 1. Build + save a model, then open it behind the serving boundary.
  io::Model model(graph::TensorDesc{16, 16, 8});
  model.add_conv("c1", bitpack::pack_filters(models::random_filters(32, 3, 3, 8, 7)), 1, 1,
                 std::vector<float>(32, 0.0f));
  model.add_maxpool("p1", kernels::PoolSpec{2, 2, 2});
  model.add_fc("f1", bitpack::pack_transpose_fc_weights(
                         models::random_fc_weights(8 * 8 * 32, 10, 8).data(), 8 * 8 * 32, 10));
  const std::string path =
      (std::filesystem::temp_directory_path() / "robust_serving.bflow").string();
  model.save(path);

  serve::SessionConfig cfg;
  cfg.net.num_threads = 2;
  cfg.deadline = std::chrono::milliseconds(500);  // 4. watchdog: wedged -> Status
  auto opened = serve::InferenceSession::open(path, cfg);
  if (!opened.is_ok()) {
    std::printf("open failed: %s\n", opened.status().to_string().c_str());
    return 1;
  }
  serve::InferenceSession session = std::move(opened).value();

  // A file that is not a model is a Status, not a crash.
  auto bad = serve::InferenceSession::open("/no/such/model.bflow", cfg);
  std::printf("opening a missing file     -> %s\n", bad.status().to_string().c_str());

  // 2. Serve a good request, then a malformed one.
  Tensor image = Tensor::hwc(16, 16, 8);
  fill_uniform(image, 42);
  std::vector<float> scores;
  core::Status st = session.infer(image, scores);
  std::printf("well-formed request        -> %s (top score %.3f)\n",
              st.to_string().c_str(), scores.empty() ? 0.0f : scores[0]);
  const std::vector<float> reference = scores;

  Tensor wrong = Tensor::hwc(4, 4, 8);
  st = session.infer(wrong, scores);
  std::printf("shape-mismatched request   -> %s\n", st.to_string().c_str());

  // 3. Inject a fault into the thread-pool workers (same hook CI's fault
  //    matrix uses; in production this path only fires if a worker throws).
  failpoint::arm("runtime.worker", {failpoint::Action::kError, failpoint::Trigger::kOnce});
  st = session.infer(image, scores);
  std::printf("request with injected fault-> %s\n", st.to_string().c_str());
  failpoint::disarm_all();

  // The session survives the fault: the very next request is bit-exact.
  st = session.infer(image, scores);
  std::printf("request after recovery     -> %s (%s)\n", st.to_string().c_str(),
              scores == reference ? "bit-exact" : "MISMATCH");

  std::printf("served %llu ok / %llu failed\n",
              static_cast<unsigned long long>(session.ok_count()),
              static_cast<unsigned long long>(session.error_count()));
  std::filesystem::remove(path);
  return scores == reference ? 0 : 1;
}
