// Train -> binarize -> deploy: the full BNN lifecycle on a synthetic task.
//
//   $ ./examples/train_and_deploy
//
// Trains a small VGG-style network twice — full precision and binarized
// (BinaryNet recipe: latent weights, straight-through sign) — then lowers
// the binarized model into the BitFlow engine (batch-norm folded into
// per-channel thresholds) and verifies the engine predicts identically to
// the training graph while storing ~32x less weight data.
#include <algorithm>
#include <cstdio>

#include "core/bitflow.hpp"
#include "data/synthetic.hpp"
#include "io/model.hpp"
#include "train/export.hpp"
#include "train/models.hpp"
#include "train/sequential.hpp"

int main() {
  using namespace bitflow;

  std::printf("generating synthetic digit dataset...\n");
  const data::Dataset all = data::make_synth_digits(900, data::Difficulty::kMedium, 7);
  data::Dataset train_set, test_set;
  data::split(all, 5, train_set, test_set);
  std::printf("  %zu train / %zu test, %d classes\n", train_set.size(), test_set.size(),
              all.num_classes);

  train::SmallVggOptions opt;
  opt.width = 16;
  opt.num_blocks = 2;
  opt.fc_width = 64;
  const train::Dims in{all.image_size, all.image_size, all.channels};

  std::printf("training full-precision counterpart...\n");
  train::Sequential fmodel = train::make_float_cnn(in, all.num_classes, opt, 1);
  train::TrainConfig fcfg;
  fcfg.epochs = 8;
  fcfg.batch_size = 32;
  fcfg.lr = 0.05f;
  train::train_classifier(fmodel, train_set, fcfg);
  const float facc = train::evaluate(fmodel, test_set);

  std::printf("training binarized network (BinaryNet recipe)...\n");
  train::Sequential bmodel = train::make_binary_cnn(in, all.num_classes, opt, 2);
  train::TrainConfig bcfg;
  bcfg.epochs = 16;
  bcfg.batch_size = 32;
  bcfg.lr = 0.02f;
  train::train_classifier(bmodel, train_set, bcfg);
  const float bacc_graph = train::evaluate(bmodel, test_set);

  std::printf("lowering to a serializable model (fold batch-norm -> thresholds)...\n");
  const io::Model exported = train::export_to_model(bmodel);
  const std::string path = "/tmp/bitflow_digits.bflow";
  exported.save(path);
  std::printf("saved %s (%.1f KB packed weights) — reload and instantiate:\n", path.c_str(),
              static_cast<double>(exported.weight_bytes()) / 1e3);
  graph::NetworkConfig nc;
  nc.num_threads = 1;
  graph::BinaryNetwork net = io::Model::load(path).instantiate(nc);

  int correct = 0, agree = 0;
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    const auto scores = net.infer(test_set.images[i]);
    const int pred = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    if (pred == test_set.labels[i]) ++correct;
    if (pred == train::predict(bmodel, test_set.images[i])) ++agree;
  }
  const float bacc_engine = static_cast<float>(correct) / static_cast<float>(test_set.size());

  std::printf("\n%-34s %6.1f%%\n", "float counterpart accuracy:", facc * 100.0);
  std::printf("%-34s %6.1f%%\n", "binarized (training graph):", bacc_graph * 100.0);
  std::printf("%-34s %6.1f%%\n", "binarized (BitFlow engine):", bacc_engine * 100.0);
  std::printf("%-34s %6.1f%%\n", "engine/training-graph agreement:",
              100.0 * agree / static_cast<double>(test_set.size()));
  std::printf("%-34s %7.1f KB (float equivalent ~%.0f KB)\n", "deployed weight storage:",
              static_cast<double>(net.packed_weight_bytes()) / 1e3,
              static_cast<double>(net.packed_weight_bytes()) * 32 / 1e3);
  return 0;
}
