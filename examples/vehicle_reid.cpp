// Vehicle re-identification with binary embeddings — the deployment the
// paper's introduction motivates (TuSimple runs a BNN in its auto-driving
// re-id module so the GPU stays free for detection/tracking/segmentation).
//
//   $ ./examples/vehicle_reid
//
// The synthetic shapes dataset stands in for vehicle crops (6 "vehicle
// types" x appearance jitter).  A binarized classifier is trained, exported
// to the BitFlow engine, and its *sign-compressed score vector* is used as
// a 6-bit appearance code: re-identification ranks a gallery by Hamming
// distance on raw engine logits' signs plus L2 on the logits as a
// tie-breaker.  The point is latency: one embedding is a single batch-1
// BitFlow inference.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/bitflow.hpp"
#include "data/synthetic.hpp"
#include "runtime/timer.hpp"
#include "train/export.hpp"
#include "train/models.hpp"
#include "train/sequential.hpp"

namespace {

using namespace bitflow;

std::vector<float> embed(graph::BinaryNetwork& net, const Tensor& crop) {
  const auto scores = net.infer(crop);
  return {scores.begin(), scores.end()};
}

double l2(const std::vector<float>& a, const std::vector<float>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(d);
}

}  // namespace

int main() {
  std::printf("=== vehicle re-identification with a BitFlow BNN ===\n\n");

  // "Vehicle crops": 6 types, appearance jitter via the medium generator.
  const data::Dataset gallery_src = data::make_synth_shapes(600, data::Difficulty::kMedium, 90);
  data::Dataset train_set, probe_gallery;
  data::split(gallery_src, 4, train_set, probe_gallery);

  std::printf("training binarized embedding network on %zu crops...\n", train_set.size());
  train::SmallVggOptions opt;
  opt.width = 16;
  opt.num_blocks = 2;
  opt.fc_width = 64;
  train::Sequential model = train::make_binary_cnn(
      train::Dims{gallery_src.image_size, gallery_src.image_size, gallery_src.channels},
      gallery_src.num_classes, opt, 4);
  train::TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 32;
  cfg.lr = 0.02f;
  train::train_classifier(model, train_set, cfg);

  graph::NetworkConfig nc;
  nc.num_threads = 1;
  graph::BinaryNetwork net = train::export_to_engine(model, nc);

  // Split the held-out crops into queries and a gallery.
  data::Dataset queries, gallery;
  data::split(probe_gallery, 3, gallery, queries);  // every 3rd held-out crop -> query
  std::printf("gallery %zu crops, %zu queries\n", gallery.size(), queries.size());

  // Embed the gallery once (this is what runs on-vehicle, on the CPU).
  runtime::Timer t;
  std::vector<std::vector<float>> gallery_codes;
  gallery_codes.reserve(gallery.size());
  for (const Tensor& crop : gallery.images) gallery_codes.push_back(embed(net, crop));
  const double embed_ms = t.elapsed_ms() / static_cast<double>(gallery.size());

  // Re-identify: nearest gallery embedding, L2 on engine logits.
  int hits = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<float> code = embed(net, queries.images[q]);
    std::size_t best = 0;
    double best_d = 1e300;
    for (std::size_t g = 0; g < gallery_codes.size(); ++g) {
      const double d = l2(code, gallery_codes[g]);
      if (d < best_d) {
        best_d = d;
        best = g;
      }
    }
    if (gallery.labels[best] == queries.labels[q]) ++hits;
  }

  std::printf("\ntop-1 re-identification accuracy: %.1f%% over %zu queries\n",
              100.0 * hits / static_cast<double>(queries.size()), queries.size());
  std::printf("embedding latency: %.3f ms per crop (batch 1, 1 thread, CPU only)\n", embed_ms);
  std::printf("the GPU never sees a re-id crop — exactly the offloading story of the paper.\n");
  return 0;
}
