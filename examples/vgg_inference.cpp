// Full binarized VGG-16 / VGG-19 inference at 224x224 — the paper's
// evaluation workload — with a per-layer latency profile.
//
//   $ ./examples/vgg_inference [vgg16|vgg19] [threads]
//
// Prints the Fig. 6 kernel mapping for every layer, the packed model size
// (the 32x of Table V), and the end-to-end latency (Fig. 11's CPU column).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/bitflow.hpp"

int main(int argc, char** argv) {
  using namespace bitflow;
  const std::string which = argc > 1 ? argv[1] : "vgg16";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 1;
  const models::VggConfig cfg = which == "vgg19" ? models::vgg19() : models::vgg16();

  std::printf("building binarized %s (input %lldx%lldx%lld, %d thread%s)...\n",
              cfg.name.c_str(), static_cast<long long>(cfg.input_size),
              static_cast<long long>(cfg.input_size), static_cast<long long>(cfg.input_channels),
              threads, threads == 1 ? "" : "s");

  graph::NetworkConfig nc;
  nc.num_threads = threads;
  nc.profile = true;
  runtime::Timer build_timer;
  graph::BinaryNetwork net = models::build_binary_vgg(cfg, nc, /*seed=*/7);
  std::printf("finalize (weight binarize+pack + memory plan): %.0f ms\n",
              build_timer.elapsed_ms());
  std::printf("packed weights: %.1f MB (float equivalent ~%.0f MB)\n",
              static_cast<double>(net.packed_weight_bytes()) / 1e6,
              static_cast<double>(net.packed_weight_bytes()) * 32 / 1e6);

  Tensor image = Tensor::hwc(cfg.input_size, cfg.input_size, cfg.input_channels);
  fill_uniform(image, 123);
  (void)net.infer(image);  // warm-up

  runtime::Timer t;
  const auto scores = net.infer(image);
  const double total_ms = t.elapsed_ms();

  std::printf("\n%-9s %-8s %10s %8s\n", "layer", "kernel", "out", "ms");
  const auto& profile = net.last_profile_ms();
  std::printf("%-9s %-8s %10s %8.3f\n", "(pack)", "-", "-", profile[0]);
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const auto& l = net.layers()[i];
    char shape[32];
    std::snprintf(shape, sizeof shape, "%lldx%lldx%lld", static_cast<long long>(l.out.h),
                  static_cast<long long>(l.out.w), static_cast<long long>(l.out.c));
    std::printf("%-9s %-8s %10s %8.3f\n", l.name.c_str(),
                std::string(simd::isa_name(l.isa)).c_str(), shape, profile[i + 1]);
  }
  std::printf("\nend-to-end: %.2f ms (paper, 64-core Phi: %s)\n", total_ms,
              which == "vgg19" ? "13.68 ms" : "11.82 ms");
  std::printf("top score: %.0f (random weights — the timing, not the label, is the point)\n",
              *std::max_element(scores.begin(), scores.end()));
  return 0;
}
