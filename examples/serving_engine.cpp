// Concurrent serving with serve::Engine: worker pool + micro-batching.
//
//   $ ./examples/serving_engine
//
// Where robust_serving.cpp serves one request at a time through an
// InferenceSession, an Engine serves many callers at once:
//   1. build a model and start an engine — 2 workers, micro-batches of up
//      to 8 requests, a bounded admission queue;
//   2. submit a burst of requests from several caller threads and collect
//      the futures — the batcher coalesces whatever is queued together so
//      N requests cost one fork/join per layer instead of N;
//   3. demonstrate admission control: a tiny queue rejects overflow with
//      kResourceExhausted instead of blocking the caller, and a request
//      with a too-tight deadline expires in queue with kDeadlineExceeded;
//   4. read the engine's counters: throughput, achieved batch sizes, and
//      latency quantiles — the numbers bench_serving_throughput sweeps;
//   5. print the per-layer profile of the served model: time, achieved
//      GOPS and the measured roofline of each layer's chosen ISA.
//
// Observability: run with BITFLOW_TRACE=trace.json to get a Chrome-tracing
// timeline of every request -> batch -> layer -> kernel span (open it at
// chrome://tracing or https://ui.perfetto.dev), and scrape the process
// metrics registry (telemetry::registry().prometheus_text()) for the
// engine's counters in Prometheus text format.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/bitflow.hpp"

int main() {
  using namespace bitflow;

  // 1. A small conv->pool->fc model, served straight from memory.
  io::Model model(graph::TensorDesc{16, 16, 8});
  model.add_conv("c1", bitpack::pack_filters(models::random_filters(32, 3, 3, 8, 7)), 1, 1,
                 std::vector<float>(32, 0.0f));
  model.add_maxpool("p1", kernels::PoolSpec{2, 2, 2});
  model.add_fc("f1", bitpack::pack_transpose_fc_weights(
                         models::random_fc_weights(8 * 8 * 32, 10, 8).data(), 8 * 8 * 32, 10));

  serve::EngineConfig cfg;
  cfg.workers = 2;                                    // replicated inference contexts
  cfg.max_batch = 8;                                  // fused batch-N kernel passes
  cfg.batch_timeout = std::chrono::microseconds(500); // how long a batch waits to fill
  cfg.net.num_threads = 2;                            // per-worker thread pool
  auto created = serve::Engine::create(model, cfg);
  if (!created.is_ok()) {
    std::printf("engine create failed: %s\n", created.status().to_string().c_str());
    return 1;
  }
  serve::Engine engine = std::move(created).value();

  // 2. A burst of requests from several caller threads.
  constexpr int kCallers = 4, kPerCaller = 8;
  std::vector<std::future<core::Result<std::vector<float>>>> futures(kCallers * kPerCaller);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int i = 0; i < kPerCaller; ++i) {
        Tensor image = Tensor::hwc(16, 16, 8);
        fill_uniform(image, static_cast<std::uint64_t>(t * kPerCaller + i));
        futures[static_cast<std::size_t>(t * kPerCaller + i)] = engine.submit(std::move(image));
      }
    });
  }
  for (std::thread& t : callers) t.join();

  int ok = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.is_ok()) ++ok;
  }
  std::printf("burst of %d requests       -> %d served\n", kCallers * kPerCaller, ok);

  // 3a. Backpressure: shrink the queue and flood it — overflow is a Status,
  // never a blocked or crashed caller.
  serve::EngineConfig tiny = cfg;
  tiny.workers = 1;
  tiny.max_batch = 1;
  tiny.queue_capacity = 2;
  serve::Engine small = std::move(serve::Engine::create(model, tiny).value());
  std::vector<std::future<core::Result<std::vector<float>>>> flood;
  for (int i = 0; i < 32; ++i) {
    Tensor image = Tensor::hwc(16, 16, 8);
    fill_uniform(image, static_cast<std::uint64_t>(i));
    flood.push_back(small.submit(std::move(image)));
  }
  int rejected = 0;
  for (auto& f : flood) {
    if (f.get().status().code() == core::ErrorCode::kResourceExhausted) ++rejected;
  }
  std::printf("flooding a 2-slot queue    -> %d of 32 rejected (kResourceExhausted)\n",
              rejected);

  // 3b. Deadlines: a queue wait longer than the request's budget expires it.
  // Wedge the worker with the same failpoint hook CI's fault matrix uses, so
  // a 1 ms budget reliably lapses in queue.
  failpoint::arm("serve.infer",
                 failpoint::Config{failpoint::Action::kStall, failpoint::Trigger::kOnce, 1,
                                   /*stall_ms=*/50});
  Tensor image = Tensor::hwc(16, 16, 8);
  fill_uniform(image, 99);
  auto anchor = small.submit(image);  // the worker stalls 50 ms on this one
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto expired = small.submit(image, std::chrono::milliseconds(1));
  std::printf("1ms deadline under load    -> %s\n",
              expired.get().status().to_string().c_str());
  (void)anchor.get();
  small.shutdown();

  // 4. Counters: what the engine achieved.
  const serve::EngineStats stats = engine.stats();
  std::printf("engine counters            -> accepted=%llu completed=%llu batches=%llu "
              "mean_batch=%.2f p50=%.3fms p99=%.3fms\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches), stats.mean_batch(),
              stats.latency_p50_ms, stats.latency_p99_ms);

  // 5. Per-layer profile with roofline attribution: where the time goes and
  // how close each layer runs to its ISA's measured xor+popcount peak.
  graph::NetworkConfig prof_cfg;
  prof_cfg.profile = true;
  prof_cfg.num_threads = 1;
  graph::BinaryNetwork net = model.instantiate(prof_cfg);
  for (int i = 0; i < 50; ++i) {
    Tensor image = Tensor::hwc(16, 16, 8);
    fill_uniform(image, static_cast<std::uint64_t>(i));
    (void)net.infer(image);
  }
  std::printf("\nper-layer profile (50 batch-1 inferences):\n%s",
              net.profile_report().to_table().c_str());
  return 0;
}
